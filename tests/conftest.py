"""Shared test configuration: Hypothesis profiles.

The ``ci`` profile (selected with ``pytest --hypothesis-profile=ci``)
bounds example counts and derandomizes so CI runs are deterministic and
time-bounded; the default ``dev`` profile keeps Hypothesis's random
exploration but drops its per-example deadline, which false-positives
on LP solves and cold numpy imports.
"""

from hypothesis import settings

settings.register_profile(
    "ci",
    max_examples=25,
    derandomize=True,
    deadline=None,
)
settings.register_profile("dev", deadline=None)
settings.load_profile("dev")
