"""Every script in examples/ must run clean in fast mode.

The examples are executable documentation; they rot silently unless CI
executes them.  Each runs as a real subprocess — the way a reader
would — with ``REPRO_FAST=1`` so the whole sweep stays in CI budget.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(SCRIPTS) >= 5


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    env["REPRO_FAST"] = "1"
    env["REPRO_JOBS"] = "1"
    src = str(EXAMPLES_DIR.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    # A throwaway cache keeps the smoke run hermetic: it must pass on a
    # machine that has never solved a design before.
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=str(tmp_path),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
