"""Deadlock-analysis tests reproducing the paper's VC-count claims:
DOR is deadlock-free with 2 VCs, IVAL and 2TURN with 4 (Section 5.2)."""

import numpy as np
import pytest

from repro.deadlock import (
    dateline_bits,
    dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
    single_vc_scheme,
    turn_increment_scheme,
    vcs_used,
    verify_deadlock_freedom,
)
from repro.routing import IVAL, DimensionOrderRouting, design_2turn
from repro.routing.paths import build_path
from repro.topology import Torus


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="module")
def t5():
    return Torus(5, 2)


class TestDatelineBits:
    def test_no_wrap_stays_low(self, t4):
        p = build_path(t4, 0, [(0, +1, 2)])
        assert dateline_bits(t4, p) == [0, 0]

    def test_wrap_raises_bit(self, t4):
        p = build_path(t4, t4.node_at([3, 0]), [(0, +1, 2)])
        assert dateline_bits(t4, p) == [0, 1]

    def test_negative_direction_wrap(self, t4):
        p = build_path(t4, t4.node_at([1, 0]), [(0, -1, 2)])
        # first hop 1 -> 0 (not a wrap), second 0 -> 3 wraps... the hop
        # leaving coordinate 0 in the minus direction is the wrap.
        assert dateline_bits(t4, p) == [0, 0] or dateline_bits(t4, p) == [0, 1]
        p2 = build_path(t4, 0, [(0, -1, 1)])
        assert dateline_bits(t4, p2) == [0]

    def test_bit_resets_on_turn(self, t4):
        p = build_path(t4, t4.node_at([3, 0]), [(0, +1, 2), (1, +1, 1)])
        assert dateline_bits(t4, p) == [0, 1, 0]


class TestSchemes:
    def test_dor_uses_two_vcs(self, t4):
        dor = DimensionOrderRouting(t4)
        paths = [
            p for d in range(1, 16) for p, _ in dor.path_distribution(0, d)
        ]
        assert vcs_used(t4, paths, turn_increment_scheme) == 2

    def test_two_turn_uses_four_vcs(self, t4):
        from repro.routing import two_turn_paths

        paths = [p for ps in two_turn_paths(t4).values() for p in ps]
        assert vcs_used(t4, paths, turn_increment_scheme) == 4

    def test_single_vc_scheme(self, t4):
        p = build_path(t4, 0, [(0, +1, 3)])
        assert single_vc_scheme(t4, p) == [0, 0, 0]


class TestDependencyGraph:
    def test_ring_single_vc_cycles(self, t4):
        # All nodes sending around the ring on one VC: classic deadlock.
        paths = [build_path(t4, 0, [(0, +1, 3)])]
        g = dependency_graph(t4, paths, single_vc_scheme)
        assert not is_deadlock_free(g)
        assert find_dependency_cycle(g) is not None

    def test_ring_dateline_acyclic(self, t4):
        paths = [build_path(t4, 0, [(0, +1, 3)])]
        g = dependency_graph(t4, paths, turn_increment_scheme)
        assert is_deadlock_free(g)
        assert find_dependency_cycle(g) is None

    def test_single_source_only(self, t4):
        paths = [build_path(t4, 0, [(0, +1, 3)])]
        g = dependency_graph(t4, paths, single_vc_scheme, all_sources=False)
        # one source alone cannot close the ring cycle
        assert is_deadlock_free(g)

    def test_empty_paths(self, t4):
        g = dependency_graph(t4, [], single_vc_scheme)
        assert g.number_of_edges() == 0
        assert is_deadlock_free(g)

    def test_vc_overflow_guard(self, t4):
        def silly_scheme(torus, path):
            return [999] * (len(path) - 1)

        with pytest.raises(ValueError, match="VC"):
            dependency_graph(
                t4, [build_path(t4, 0, [(0, +1, 2)])], silly_scheme
            )


class TestPaperClaims:
    """Section 5.2's deadlock claims, verified statically."""

    def test_dor_deadlock_free_with_2vcs(self, t5):
        report = verify_deadlock_freedom(
            DimensionOrderRouting(t5), turn_increment_scheme
        )
        assert report.deadlock_free
        assert report.num_vcs == 2

    def test_dor_deadlocks_with_1vc(self, t4):
        report = verify_deadlock_freedom(
            DimensionOrderRouting(t4), single_vc_scheme
        )
        assert not report.deadlock_free
        assert report.cycle is not None

    def test_ival_deadlock_free_with_4vcs(self, t4):
        # IVAL paths are two-turn paths, so the 2TURN scheme covers them.
        report = verify_deadlock_freedom(IVAL(t4), turn_increment_scheme)
        assert report.deadlock_free
        assert report.num_vcs <= 4

    def test_2turn_deadlock_free_with_4vcs(self, t4):
        design = design_2turn(t4)
        report = verify_deadlock_freedom(design.routing, turn_increment_scheme)
        assert report.deadlock_free
        assert report.num_vcs <= 4

    def test_2turn_full_path_set_deadlock_free(self, t4):
        # stronger: every allowed 2TURN path at once, not just the
        # LP-selected support
        from repro.routing import two_turn_paths

        paths = [p for ps in two_turn_paths(t4).values() for p in ps]
        g = dependency_graph(t4, paths, turn_increment_scheme)
        assert is_deadlock_free(g)

    def test_report_counts_dependencies(self, t4):
        report = verify_deadlock_freedom(
            DimensionOrderRouting(t4), turn_increment_scheme
        )
        assert report.num_dependencies > 0

    def test_rejects_non_invariant(self):
        from repro.topology import Mesh
        from repro.routing.base import ObliviousRouting

        class Dummy(ObliviousRouting):
            def path_distribution(self, s, d):  # pragma: no cover
                return [((s,), 1.0)]

        with pytest.raises(TypeError, match="translation-invariant"):
            verify_deadlock_freedom(Dummy(Mesh(3, 2)), turn_increment_scheme)
