"""Progress-line rendering tests (repro.obs.progress)."""

import io

from repro.obs.progress import ProgressReporter


class _TtyBuffer(io.StringIO):
    def isatty(self):
        return True


class TestProgressReporter:
    def test_non_tty_writes_full_lines(self):
        out = io.StringIO()
        p = ProgressReporter(label="fig6", stream=out)
        p.min_interval = 0.0
        p.update(1, 4, hits=1)
        p.update(4, 4, hits=1)
        p.close()
        lines = out.getvalue().splitlines()
        assert lines[0].startswith("fig6:  1/4 tasks (25%)")
        assert "hit-rate 100%" in lines[0]
        assert "eta" in lines[0]
        assert lines[-1].startswith("fig6:  4/4 tasks (100%)")
        assert "eta" not in lines[-1]  # complete -> no estimate

    def test_tty_redraws_in_place(self):
        out = _TtyBuffer()
        p = ProgressReporter(stream=out)
        p.min_interval = 0.0
        p.update(1, 2)
        p.update(2, 2)
        p.close()
        text = out.getvalue()
        assert text.count("\r") == 2  # one per update, no newlines between
        assert text.endswith("\n")  # close() terminates the line

    def test_throttles_intermediate_updates(self):
        out = io.StringIO()
        p = ProgressReporter(stream=out)  # default 0.1s min interval
        for done in range(1, 100):
            p.update(done, 100)
        # far fewer renders than updates (first one always draws)
        assert 1 <= len(out.getvalue().splitlines()) < 99

    def test_final_update_always_renders(self):
        out = io.StringIO()
        p = ProgressReporter(stream=out)
        p.update(1, 2)
        p.update(2, 2)  # inside the throttle window but final
        assert "2/2" in out.getvalue()

    def test_close_is_idempotent(self):
        out = _TtyBuffer()
        p = ProgressReporter(stream=out)
        p.update(1, 1)
        p.close()
        p.close()
        p.update(5, 5)  # after close: ignored
        assert out.getvalue().count("\n") == 1

    def test_zero_total(self):
        out = io.StringIO()
        p = ProgressReporter(stream=out)
        p.update(0, 0)
        assert "0/0 tasks (100%)" in out.getvalue()
