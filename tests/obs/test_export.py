"""Exporter tests: Prometheus text format and JSONL (repro.obs.export)."""

import json

from repro.obs.export import to_jsonl, to_prometheus, write_metrics
from repro.obs.metrics import MetricsRegistry


def _populated():
    reg = MetricsRegistry()
    reg.counter("lp.solves", status="0").inc(3)
    reg.gauge("engine.cache_hit_rate").set(0.25)
    h = reg.histogram("sim.queue_peak", backend="vectorized")
    for v in (1.0, 2.0, 7.0):
        h.observe(v)
    return reg


class TestPrometheus:
    def test_counter_rendering(self):
        text = to_prometheus(_populated())
        assert "# TYPE lp_solves counter" in text
        assert 'lp_solves_total{status="0"} 3' in text

    def test_gauge_with_min_max(self):
        text = to_prometheus(_populated())
        assert "# TYPE engine_cache_hit_rate gauge" in text
        assert "engine_cache_hit_rate 0.25" in text
        assert "engine_cache_hit_rate_min 0.25" in text
        assert "engine_cache_hit_rate_max 0.25" in text

    def test_histogram_cumulative_buckets(self):
        text = to_prometheus(_populated())
        # buckets 0 (le=1), 1 (le=2), 3 (le=8) -> cumulative 1, 2, 3
        assert 'sim_queue_peak_bucket{backend="vectorized",le="1"} 1' in text
        assert 'sim_queue_peak_bucket{backend="vectorized",le="2"} 2' in text
        assert 'sim_queue_peak_bucket{backend="vectorized",le="8"} 3' in text
        assert 'sim_queue_peak_bucket{backend="vectorized",le="+Inf"} 3' in text
        assert 'sim_queue_peak_sum{backend="vectorized"} 10' in text
        assert 'sim_queue_peak_count{backend="vectorized"} 3' in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c').inc()
        text = to_prometheus(reg)
        assert 'path="a\\"b\\\\c"' in text

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJsonl:
    def test_one_object_per_metric(self):
        lines = to_jsonl(_populated()).strip().splitlines()
        docs = [json.loads(line) for line in lines]
        assert len(docs) == 3
        by_name = {d["name"]: d for d in docs}
        assert by_name["lp.solves"]["type"] == "counter"
        assert by_name["lp.solves"]["labels"] == {"status": "0"}
        assert by_name["lp.solves"]["value"] == 3.0
        assert by_name["sim.queue_peak"]["n"] == 3
        assert by_name["engine.cache_hit_rate"]["volatile"] is False


class TestWriteMetrics:
    def test_extension_selects_format(self, tmp_path):
        reg = _populated()
        prom = tmp_path / "m.prom"
        assert write_metrics(reg, str(prom)) == "prometheus"
        assert "# TYPE" in prom.read_text()

        jsonl = tmp_path / "m.jsonl"
        assert write_metrics(reg, str(jsonl)) == "jsonl"
        for line in jsonl.read_text().strip().splitlines():
            json.loads(line)
