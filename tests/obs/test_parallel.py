"""Parallel-worker span aggregation: pool workers ship their spans back
to the parent, and serial vs. parallel runs trace the same span set."""

import pytest

from repro import obs
from repro.experiments.engine import DesignTask, Engine


@pytest.fixture()
def fresh_tracer():
    tracer = obs.configure()
    yield tracer
    obs.configure()


TASKS = [DesignTask(kind="wc_point", k=4, ratio=r) for r in (1.0, 1.5, 2.0)]


def _span_paths(tracer):
    return sorted(ev["path"] for ev in tracer.events if ev["ev"] == "span")


class TestWorkerSpanShipping:
    def test_serial_and_parallel_trace_same_span_set(self, fresh_tracer):
        Engine(jobs=1, cache=None).run(TASKS)
        serial = _span_paths(obs.get_tracer())

        parallel_tracer = obs.configure()
        Engine(jobs=2, cache=None).run(TASKS)
        parallel = _span_paths(parallel_tracer)

        assert serial == parallel  # identical multisets of span paths
        assert any(p.endswith("lp.solve") for p in serial)

    def test_parallel_trace_records_worker_pids(self, fresh_tracer):
        Engine(jobs=2, cache=None).run(TASKS)
        pids = {ev["pid"] for ev in fresh_tracer.events}
        assert len(pids) > 1  # parent + at least one pool worker

    def test_cache_doc_not_polluted_with_events(self, fresh_tracer, tmp_path):
        from repro.cache import DesignCache, cache_key

        cache = DesignCache(tmp_path)
        task = TASKS[0]
        Engine(jobs=1, cache=cache).run_one(task)
        doc = cache.get(cache_key(task.cache_payload()))
        assert "obs_events" not in doc

    def test_metrics_view_matches_event_stream(self, fresh_tracer):
        engine = Engine(jobs=1, cache=None)
        engine.run(TASKS)
        task_events = [
            ev for ev in fresh_tracer.events
            if ev["ev"] == "span" and ev["name"] == "engine.task"
        ]
        assert len(task_events) == len(engine.metrics) == len(TASKS)
        for ev, metric in zip(task_events, engine.metrics):
            assert ev["attrs"]["label"] == metric.label
            assert ev["attrs"]["nonzeros"] == metric.nonzeros

    def test_metrics_survive_disabled_tracer(self):
        tracer = obs.configure(enabled=False)
        try:
            engine = Engine(jobs=1, cache=None)
            engine.run([TASKS[0]])
            assert tracer.events == []
            (metric,) = engine.metrics
            assert metric.kind == "wc_point" and metric.nonzeros > 0
        finally:
            obs.configure()
