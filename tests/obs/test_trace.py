"""Tests for the tracing core: spans, counters, gauges, JSONL sink."""

import json

import pytest

from repro import obs
from repro.obs.trace import Tracer


@pytest.fixture()
def tracer():
    return Tracer()


class TestSpans:
    def test_nesting_builds_paths(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        paths = [ev["path"] for ev in tracer.events]
        assert paths == ["outer/inner", "outer/inner", "outer"]

    def test_timing_monotonicity(self, tracer):
        with tracer.span("parent"):
            with tracer.span("child"):
                sum(range(10_000))
        child, parent = tracer.events
        assert child["name"] == "child" and parent["name"] == "parent"
        assert 0.0 <= child["dur"] <= parent["dur"]
        assert child["t0"] >= parent["t0"]
        assert child["cpu"] >= 0.0 and parent["cpu"] >= 0.0

    def test_attrs_and_late_set(self, tracer):
        with tracer.span("s", a=1) as sp:
            sp.set(b="two")
        (ev,) = tracer.events
        assert ev["attrs"] == {"a": 1, "b": "two"}

    def test_exception_annotated_and_propagated(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (ev,) = tracer.events
        assert ev["attrs"]["error"] == "RuntimeError"

    def test_aggregates(self, tracer):
        for _ in range(3):
            with tracer.span("s"):
                pass
        agg = tracer.span_agg["s"]
        assert agg["count"] == 3
        assert agg["total"] >= agg["max"] >= 0.0

    def test_emit_span_lands_under_current_path(self, tracer):
        with tracer.span("outer"):
            tracer.emit_span("synthetic", dur=1.25, attrs={"k": 1})
        synth = tracer.events[0]
        assert synth["path"] == "outer/synthetic"
        assert synth["dur"] == 1.25


class TestCountersGauges:
    def test_counters_accumulate(self, tracer):
        tracer.count("hits")
        tracer.count("hits", 4)
        assert tracer.counters["hits"] == 5
        assert [ev["ev"] for ev in tracer.events] == ["count", "count"]

    def test_gauges_track_last_min_max(self, tracer):
        for v in (3.0, 1.0, 7.0):
            tracer.gauge("depth", v)
        assert tracer.gauges["depth"] == {"last": 7.0, "min": 1.0, "max": 7.0}


class TestDisabled:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("s", a=1) as sp:
            sp.set(b=2)
        tracer.count("c")
        tracer.gauge("g", 1.0)
        assert tracer.events == []
        assert tracer.counters == {} and tracer.span_agg == {}


class TestIngest:
    def test_ingest_rebases_span_paths(self, tracer):
        shipped = [
            {"ev": "span", "name": "lp.solve", "path": "task/lp.solve",
             "t0": 0.0, "dur": 0.1, "cpu": 0.1, "pid": 99, "attrs": {}},
            {"ev": "count", "name": "n", "value": 2, "pid": 99},
        ]
        with tracer.span("fig"):
            tracer.ingest(shipped)
        span_ev = tracer.events[0]
        assert span_ev["path"] == "fig/task/lp.solve"
        assert tracer.counters["n"] == 2

    def test_ingest_at_top_level_keeps_paths(self, tracer):
        tracer.ingest(
            [{"ev": "span", "name": "s", "path": "a/s", "t0": 0, "dur": 0,
              "cpu": 0, "pid": 1, "attrs": {}}]
        )
        assert tracer.events[0]["path"] == "a/s"


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(trace_path=str(path))
        with tracer.span("outer", k=4):
            tracer.count("hits", 2)
            tracer.gauge("depth", 3.5)
        tracer.close()

        loaded = obs.load_trace(str(path))
        assert loaded == tracer.events
        # every line is strict JSON
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_no_sink_no_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.close()
        assert list(tmp_path.iterdir()) == []

    def test_append_across_tracers(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            tracer = Tracer(trace_path=str(path))
            with tracer.span("s"):
                pass
            tracer.close()
        assert len(obs.load_trace(str(path))) == 2


class TestGlobalApi:
    def test_configure_swaps_tracer(self):
        old = obs.get_tracer()
        new = obs.configure()
        try:
            assert new is obs.get_tracer() and new is not old
            with obs.span("s"):
                obs.count("c")
            assert [ev["ev"] for ev in new.events] == ["count", "span"]
        finally:
            obs.configure()

    def test_module_level_helpers_delegate(self):
        tracer = obs.configure()
        try:
            obs.gauge("g", 1.0)
            assert tracer.gauges["g"]["last"] == 1.0
        finally:
            obs.configure()
