"""Tests for trace aggregation and the ``obs-report`` CLI."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.report import aggregate, load_trace, sort_events


def _span(name, path, dur, attrs=None, pid=1):
    return {
        "ev": "span",
        "name": name,
        "path": path,
        "t0": 0.0,
        "dur": dur,
        "cpu": dur,
        "pid": pid,
        "attrs": attrs or {},
    }


SYNTHETIC = [
    _span("lp.solve", "run/lp.solve", 0.5,
          {"nnz": 120, "status": 0, "iterations": 40}),
    _span("lp.solve", "run/lp.solve", 0.3,
          {"nnz": 4500, "status": 0, "iterations": 90}, pid=2),
    _span("sim.run", "run/sim.run", 0.2,
          {"rate": 0.5, "cycles": 100, "delivered": 40,
           "accepted_rate": 0.4, "queue_peak": 7}),
    _span("sim.run", "run/sim.run", 0.2,
          {"rate": 0.5, "cycles": 100, "delivered": 44,
           "accepted_rate": 0.44, "queue_peak": 3}),
    _span("run", "run", 1.5),
    {"ev": "count", "name": "cache.hit", "value": 3, "pid": 1},
    {"ev": "count", "name": "cache.miss", "value": 1, "pid": 1},
    {"ev": "count", "name": "cache.bytes_written", "value": 2048, "pid": 1},
    {"ev": "gauge", "name": "depth", "value": 4.0, "pid": 1},
]


class TestAggregate:
    def test_span_rows_sorted_by_total(self):
        report = aggregate(SYNTHETIC)
        rows = report.span_rows()
        assert [r[0] for r in rows] == ["run", "run/lp.solve", "run/sim.run"]
        assert rows[1][1] == 2  # two lp.solve calls
        assert rows[1][2] == pytest.approx(0.8)

    def test_top_limits_rows(self):
        assert len(aggregate(SYNTHETIC).span_rows(top=1)) == 1

    def test_lp_histogram_buckets_by_decade(self):
        hist = aggregate(SYNTHETIC).lp_size_histogram()
        assert hist == {"[100, 1000)": 1, "[1000, 10000)": 1}

    def test_cache_stats(self):
        stats = aggregate(SYNTHETIC).cache_stats()
        assert stats["hits"] == 3 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.75)
        assert stats["bytes_written"] == 2048

    def test_sim_rows_grouped_by_rate(self):
        report = aggregate(SYNTHETIC)
        rendered = report.render()
        assert "Simulation (per rate point):" in rendered
        # two runs at rate 0.5, mean accepted 0.42, max queue peak 7
        assert "0.5000" in rendered and "0.4200" in rendered

    def test_counts_processes(self):
        report = aggregate(SYNTHETIC)
        assert report.pids == {1, 2}
        assert "2 processes" in report.render()

    def test_fault_sweep_section(self):
        events = SYNTHETIC + [
            _span("faults.case", "run/faults.case", 0.1,
                  {"failures": 1, "algorithm": "IVAL",
                   "reroute": "detour", "theta_wc": 0.5,
                   "disconnected": False, "sat_lo": 0.88, "sat_hi": 0.94}),
            _span("faults.case", "run/faults.case", 0.1,
                  {"failures": 1, "algorithm": "DOR",
                   "reroute": "renormalize", "theta_wc": 0.0,
                   "disconnected": True, "sat_lo": 0.0, "sat_hi": 0.0}),
        ]
        report = aggregate(events)
        assert len(report.fault_cases) == 2
        rendered = report.render()
        assert "Fault sweep (per failure count and algorithm):" in rendered
        assert "disc." in rendered  # disconnected shown instead of a number
        assert "IVAL" in rendered and "0.8800" in rendered

    def test_no_fault_section_without_fault_cases(self):
        assert "Fault sweep" not in aggregate(SYNTHETIC).render()

    def test_topo3d_sweep_section(self):
        events = SYNTHETIC + [
            _span("topo3d.point", "run/topo3d.point", 0.2,
                  {"k": 3, "dims": 3, "bz": 0.5, "rate": 0.4}),
            _span("topo3d.point", "run/topo3d.point", 0.3,
                  {"k": 3, "dims": 3, "bz": 0.5, "rate": 0.6}),
            _span("topo3d.point", "run/topo3d.point", 0.1,
                  {"topology": "mesh3d", "k": 3, "bz": 1.0, "rate": 0.4}),
        ]
        report = aggregate(events)
        assert len(report.topo3d_points) == 3
        rendered = report.render()
        assert "3-D topology sweep (per bandwidth point):" in rendered
        # torus points grouped (2 points, 0.5s total); mesh3d named as-is
        assert "torus3d" in rendered and "mesh3d" in rendered

    def test_no_topo3d_section_without_points(self):
        assert "3-D topology sweep" not in aggregate(SYNTHETIC).render()


class TestSortEvents:
    def test_orders_by_start_time_across_event_kinds(self):
        events = [
            {"ev": "span", "name": "late", "path": "late", "t0": 5.0,
             "dur": 0.1, "cpu": 0.1, "pid": 2, "attrs": {}},
            {"ev": "count", "name": "mid", "value": 1, "t": 3.0, "pid": 1},
            {"ev": "span", "name": "early", "path": "early", "t0": 1.0,
             "dur": 0.1, "cpu": 0.1, "pid": 1, "attrs": {}},
        ]
        assert [ev["name"] for ev in sort_events(events)] == [
            "early", "mid", "late"
        ]

    def test_untimed_events_sort_first_and_stay_stable(self):
        events = [
            {"ev": "count", "name": "a", "value": 1, "pid": 1},
            {"ev": "count", "name": "b", "value": 1, "pid": 1},
            {"ev": "gauge", "name": "timed", "value": 1.0, "t": 0.5, "pid": 1},
        ]
        assert [ev["name"] for ev in sort_events(events)] == [
            "a", "b", "timed"
        ]

    def test_aggregate_is_order_insensitive(self):
        shuffled = list(reversed(SYNTHETIC))
        assert aggregate(shuffled).render() == aggregate(SYNTHETIC).render()


class TestLoadTrace:
    def test_rejects_corrupt_line_with_lineno(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"ev": "count", "name": "c", "value": 1, "pid": 1})
            + "\n{truncated"
        )
        with pytest.raises(ValueError, match=r"t\.jsonl:2"):
            load_trace(str(path))

    def test_rejects_non_event_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"no_ev_key": true}\n')
        with pytest.raises(ValueError, match="not a trace event"):
            load_trace(str(path))

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            "\n" + json.dumps({"ev": "gauge", "name": "g", "value": 1.0}) + "\n\n"
        )
        assert len(load_trace(str(path))) == 1


class TestObsReportCli:
    @pytest.fixture()
    def traced_fig6(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        monkeypatch.setenv("REPRO_JOBS", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        trace = tmp_path / "t.jsonl"
        rc = main(["run", "fig6", "--k", "4", "--trace", str(trace)])
        assert rc == 0
        try:
            yield trace
        finally:
            obs.configure()

    def test_report_on_real_fig6_trace(self, traced_fig6, capsys):
        capsys.readouterr()  # drop the experiment's own output
        assert main(["obs-report", str(traced_fig6)]) == 0
        out = capsys.readouterr().out
        assert "Trace report:" in out
        assert "fig6/engine.run" in out
        assert "lp.solve" in out
        assert "LP size histogram (by nonzeros):" in out
        assert "Cache:" in out

    def test_report_missing_file_exits_2(self, capsys):
        assert main(["obs-report", "/nonexistent/trace.jsonl"]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_corrupt_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["obs-report", str(path)]) == 2
        assert "not a JSON trace event" in capsys.readouterr().err
