"""Tests for the repro.* logger hierarchy."""

import logging

import pytest

from repro.obs.log import _StderrHandler, get_logger, setup_logging


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    yield
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if isinstance(handler, _StderrHandler):
            root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


class TestGetLogger:
    def test_bare_suffix_is_namespaced(self):
        assert get_logger("experiments").name == "repro.experiments"

    def test_full_module_path_kept(self):
        assert get_logger("repro.lp.model").name == "repro.lp.model"
        assert get_logger("repro").name == "repro"


class TestSetupLogging:
    def test_idempotent_single_handler(self):
        root = setup_logging("info")
        setup_logging("debug")
        handlers = [h for h in root.handlers if isinstance(h, _StderrHandler)]
        assert len(handlers) == 1
        assert root.level == logging.DEBUG

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            setup_logging("chatty")

    def test_output_reaches_stderr_not_stdout(self, capsys):
        setup_logging("info")
        get_logger("experiments").info("engine: %d tasks", 3)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "repro.experiments: INFO: engine: 3 tasks" in captured.err

    def test_level_filters(self, capsys):
        setup_logging("warning")
        get_logger("x").info("quiet")
        get_logger("x").warning("loud")
        err = capsys.readouterr().err
        assert "quiet" not in err and "loud" in err
