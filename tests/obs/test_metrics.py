"""Unit tests for the typed metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    bucket_key,
    bucket_upper_bound,
    configure_metrics,
    counter,
    gauge,
    get_registry,
    metric_key,
    observe,
    split_key,
    use_registry,
)


class TestBuckets:
    @pytest.mark.parametrize(
        "value,key",
        [
            (0.0, "le0"),
            (-1.0, "le0"),
            (0.5, "-1"),
            (1.0, "0"),
            (1.5, "1"),
            (2.0, "1"),
            (2.1, "2"),
            (1024.0, "10"),
            (1025.0, "11"),
        ],
    )
    def test_bucket_key(self, value, key):
        assert bucket_key(value) == key

    def test_bucket_covers_value(self):
        for value in (0.001, 0.7, 3.0, 17.0, 9999.5):
            upper = bucket_upper_bound(bucket_key(value))
            assert value <= upper
            assert value > upper / 2.0

    def test_extreme_exponents_clamped(self):
        assert bucket_key(1e300) == "64"
        assert bucket_key(1e-300) == "-40"


class TestKeys:
    def test_key_roundtrip(self):
        key = metric_key("sim.runs", {"backend": "vectorized", "a": "1"})
        assert key == "sim.runs{a=1,backend=vectorized}"
        name, labels = split_key(key)
        assert name == "sim.runs"
        assert labels == {"a": "1", "backend": "vectorized"}

    def test_label_order_is_canonical(self):
        assert metric_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert metric_key("m", {"a": 2, "b": 1}) == "m{a=2,b=1}"

    def test_unlabeled_key_is_bare_name(self):
        assert metric_key("m", {}) == "m"
        assert split_key("m") == ("m", {})


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5.0

    def test_gauge_tracks_last_min_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        for v in (3.0, 1.0, 7.0):
            g.set(v)
        assert (g.last, g.min, g.max, g.n) == (7.0, 1.0, 7.0, 3)

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 2.0, 3.0, 100.0):
            h.observe(v)
        assert h.n == 4 and h.sum == 106.0
        assert h.buckets == {"0": 1, "1": 1, "2": 1, "7": 1}

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("c", backend="a").inc()
        reg.counter("c", backend="b").inc(2)
        snap = reg.snapshot()["counter"]
        assert snap["c{backend=a}"]["value"] == 1.0
        assert snap["c{backend=b}"]["value"] == 2.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError, match="is a counter"):
            reg.gauge("x")

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        assert reg.metrics() == []

    def test_canonical_excludes_volatile(self):
        reg = MetricsRegistry()
        reg.counter("work").inc()
        reg.histogram("t", volatile=True).observe(0.123)
        doc = json.loads(reg.canonical())
        assert "work" in doc["counter"]
        assert doc["histogram"] == {}
        full = json.loads(reg.canonical(include_volatile=True))
        assert "t" in full["histogram"]

    def test_canonical_is_stable_json(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert reg.canonical() == reg.canonical()
        assert reg.canonical().index('"a"') < reg.canonical().index('"b"')


class TestMergeRoundTrip:
    def test_merge_equals_direct_increments(self):
        """Per-task pre-summed merge == per-increment serial accumulation."""
        serial = MetricsRegistry()
        parent = MetricsRegistry()
        for task in range(3):
            worker = MetricsRegistry()
            for i in range(4):
                worker.counter("c").inc(task + i)
                serial.counter("c").inc(task + i)
                worker.histogram("h").observe(2 ** i)
                serial.histogram("h").observe(2 ** i)
            worker.gauge("g").set(float(task))
            serial.gauge("g").set(float(task))
            parent.merge(worker.to_doc())
        assert parent.canonical(include_volatile=True) == serial.canonical(
            include_volatile=True
        )

    def test_merge_preserves_volatile_flag(self):
        worker = MetricsRegistry()
        worker.gauge("speed", volatile=True).set(100.0)
        parent = MetricsRegistry()
        parent.merge(worker.to_doc())
        assert json.loads(parent.canonical())["gauge"] == {}

    def test_merge_none_is_noop(self):
        reg = MetricsRegistry()
        reg.merge(None)
        assert reg.metrics() == []


class TestGlobalHelpers:
    def test_module_helpers_hit_global(self):
        reg = configure_metrics()
        try:
            counter("c", 2)
            gauge("g", 1.5)
            observe("h", 3.0)
            snap = reg.snapshot()
            assert snap["counter"]["c"]["value"] == 2.0
            assert snap["gauge"]["g"]["last"] == 1.5
            assert snap["histogram"]["h"]["n"] == 1
        finally:
            configure_metrics()

    def test_use_registry_isolates(self):
        global_reg = configure_metrics()
        try:
            isolated = MetricsRegistry()
            with use_registry(isolated):
                assert get_registry() is isolated
                counter("c")
            assert get_registry() is global_reg
            assert isolated.counter("c").value == 1.0
            assert global_reg.metrics() == []
        finally:
            configure_metrics()
