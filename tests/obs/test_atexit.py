"""Abnormal-exit durability of the JSONL trace sink.

The sink flushes every event line and registers an ``atexit`` close, so
a traced process that dies mid-run — an unhandled exception, a
``sys.exit``, even SIGKILL between events — leaves a complete, parseable
JSONL file behind rather than a truncated one.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.obs.report import load_trace
from repro.obs.trace import Tracer

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _run_traced(tmp_path, body: str) -> tuple[subprocess.Popen, str]:
    """Launch a python subprocess tracing to ``tmp_path/trace.jsonl``."""
    trace = str(tmp_path / "trace.jsonl")
    script = (
        "import sys\n"
        f"sys.path.insert(0, {REPO_SRC!r})\n"
        "from repro import obs\n"
        f"obs.configure(trace_path={trace!r})\n" + body
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    return proc, trace


def _wait_for_lines(path: str, n: int, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(path) as fh:
                if sum(1 for line in fh if line.endswith("\n")) >= n:
                    return
        except OSError:
            pass
        time.sleep(0.02)
    raise AssertionError(f"{path}: fewer than {n} complete lines")


class TestAbnormalExit:
    def test_sigkill_mid_run_leaves_parseable_trace(self, tmp_path):
        proc, trace = _run_traced(
            tmp_path,
            "import time\n"
            "for i in range(1000):\n"
            "    with obs.span('work', i=i):\n"
            "        pass\n"
            "    time.sleep(0.01)\n",
        )
        try:
            _wait_for_lines(trace, 5)
        finally:
            proc.kill()
            proc.wait(timeout=10)
        events = load_trace(trace)  # raises on any malformed line
        assert len(events) >= 5
        assert all(ev["ev"] == "span" and ev["name"] == "work" for ev in events)

    def test_unhandled_exception_flushes_all_events(self, tmp_path):
        proc, trace = _run_traced(
            tmp_path,
            "for i in range(25):\n"
            "    obs.count('step')\n"
            "raise RuntimeError('boom')\n",
        )
        proc.wait(timeout=30)
        assert proc.returncode == 1
        events = load_trace(trace)
        assert len(events) == 25
        assert {ev["name"] for ev in events} == {"step"}

    def test_sys_exit_without_explicit_close(self, tmp_path):
        proc, trace = _run_traced(
            tmp_path,
            "with obs.span('outer'):\n"
            "    obs.count('inner')\n"
            "import sys; sys.exit(3)\n",
        )
        proc.wait(timeout=30)
        assert proc.returncode == 3
        events = load_trace(trace)
        assert [ev["ev"] for ev in events] == ["count", "span"]


class TestAtexitRegistration:
    def test_close_is_idempotent(self, tmp_path):
        tracer = Tracer(trace_path=str(tmp_path / "t.jsonl"))
        tracer.count("x")
        tracer.close()
        tracer.close()  # second close must be a no-op
        assert len(load_trace(str(tmp_path / "t.jsonl"))) == 1

    def test_memory_only_tracer_skips_atexit(self):
        # No sink -> nothing registered; close stays callable regardless.
        tracer = Tracer()
        tracer.count("x")
        tracer.close()

    @pytest.mark.skipif(
        not hasattr(signal, "SIGTERM"), reason="POSIX signals required"
    )
    def test_sigterm_default_handler_keeps_complete_lines(self, tmp_path):
        proc, trace = _run_traced(
            tmp_path,
            "import time\n"
            "for i in range(1000):\n"
            "    obs.count('tick')\n"
            "    time.sleep(0.01)\n",
        )
        try:
            _wait_for_lines(trace, 3)
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
        events = load_trace(trace)
        assert len(events) >= 3
