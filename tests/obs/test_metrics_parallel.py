"""Serial vs. parallel metrics-registry equality.

The deterministic subset of the metrics registry must serialize to
byte-identical canonical JSON whether the engine solved in-process
(``jobs=1``) or across pool workers (``jobs=4``): worker registries are
isolated per task and merged back through the result-doc channel on the
same code path in both modes, and deterministic metrics only ever
accumulate exactly-representable values, so association order cannot
leak into the bytes.
"""

import json

import pytest

from repro import obs
from repro.experiments import faults, fig6, topo3d
from repro.experiments.common import make_context
from repro.experiments.engine import DesignTask, Engine


@pytest.fixture(autouse=True)
def _fresh_obs(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")
    obs.configure()
    obs.configure_metrics()
    yield
    obs.configure()
    obs.configure_metrics()


def _canonical_after(run) -> str:
    registry = obs.configure_metrics()
    run()
    return registry.canonical()


class TestSerialParallelEquality:
    def test_plain_task_batch(self):
        tasks = [
            DesignTask(kind="wc_point", k=4, ratio=r) for r in (1.0, 1.5, 2.0)
        ]
        serial = _canonical_after(
            lambda: Engine(jobs=1, cache=None).run(tasks)
        )
        parallel = _canonical_after(
            lambda: Engine(jobs=4, cache=None).run(tasks)
        )
        assert serial == parallel
        doc = json.loads(serial)
        assert doc["counter"]["engine.tasks"]["value"] == 3.0
        assert any(key.startswith("lp.solves") for key in doc["counter"])

    def test_fig6(self):
        ctx = make_context(k=3, eval_samples=6, design_samples=3)
        serial = _canonical_after(
            lambda: fig6.run(ctx, num_points=3, engine=Engine(jobs=1, cache=None))
        )
        parallel = _canonical_after(
            lambda: fig6.run(ctx, num_points=3, engine=Engine(jobs=4, cache=None))
        )
        assert serial == parallel

    def test_faults(self):
        serial = _canonical_after(
            lambda: faults.run(
                k=3,
                seed=7,
                engine=Engine(jobs=1, cache=None),
                failures=1,
                cycles=400,
            )
        )
        parallel = _canonical_after(
            lambda: faults.run(
                k=3,
                seed=7,
                engine=Engine(jobs=4, cache=None),
                failures=1,
                cycles=400,
            )
        )
        assert serial == parallel
        doc = json.loads(serial)
        assert any(k.startswith("faults.evaluations") for k in doc["counter"])

    def test_topo3d(self):
        serial = _canonical_after(
            lambda: topo3d.run(
                k=3,
                engine=Engine(jobs=1, cache=None),
                bandwidths=(1.0, 1.0, 0.5),
                cycles=200,
            )
        )
        parallel = _canonical_after(
            lambda: topo3d.run(
                k=3,
                engine=Engine(jobs=4, cache=None),
                bandwidths=(1.0, 1.0, 0.5),
                cycles=200,
            )
        )
        assert serial == parallel


class TestSerialParallelWithCache:
    def test_cold_cache_runs_identical(self, tmp_path):
        """Cached-blob byte counts embed wall-clock reprs -> volatile;
        the deterministic surface must still match across modes."""
        from repro.cache import DesignCache

        tasks = [
            DesignTask(kind="wc_point", k=4, ratio=r) for r in (1.0, 1.5, 2.0)
        ]
        serial = _canonical_after(
            lambda: Engine(jobs=1, cache=DesignCache(tmp_path / "a")).run(tasks)
        )
        parallel = _canonical_after(
            lambda: Engine(jobs=4, cache=DesignCache(tmp_path / "b")).run(tasks)
        )
        assert serial == parallel
        doc = json.loads(serial)
        assert doc["counter"]["cache.misses"]["value"] == 3.0
        assert not any(
            key.startswith("cache.bytes") for key in doc["counter"]
        )


class TestShippingMechanics:
    def test_worker_metrics_do_not_double_count_in_serial(self):
        registry = obs.configure_metrics()
        Engine(jobs=1, cache=None).run_one(
            DesignTask(kind="wc_point", k=3, ratio=1.5)
        )
        doc = json.loads(registry.canonical())
        # exactly one lp.solve status series summing to the solve count
        solves = sum(
            v["value"]
            for key, v in doc["counter"].items()
            if key.startswith("lp.solves")
        )
        assert solves >= 1.0
        assert doc["counter"]["engine.cache_misses"]["value"] == 1.0

    def test_cache_doc_not_polluted_with_metrics(self, tmp_path):
        from repro.cache import DesignCache, cache_key

        cache = DesignCache(tmp_path)
        task = DesignTask(kind="wc_point", k=3, ratio=1.5)
        Engine(jobs=1, cache=cache).run_one(task)
        doc = cache.get(cache_key(task.cache_payload()))
        assert "obs_metrics" not in doc
        assert "resources" not in doc
        assert "obs_events" not in doc

    def test_cache_hit_skips_worker_metrics(self, tmp_path):
        from repro.cache import DesignCache

        task = DesignTask(kind="wc_point", k=3, ratio=1.5)
        Engine(jobs=1, cache=DesignCache(tmp_path)).run_one(task)

        registry = obs.configure_metrics()
        Engine(jobs=1, cache=DesignCache(tmp_path)).run_one(task)
        doc = json.loads(registry.canonical())
        assert doc["counter"]["engine.cache_hits"]["value"] == 1.0
        assert not any(k.startswith("lp.solves") for k in doc["counter"])

    def test_resources_attached_to_fresh_solves(self):
        result = Engine(jobs=1, cache=None).run_one(
            DesignTask(kind="wc_point", k=3, ratio=1.5)
        )
        assert result.resources is not None
        assert result.resources["rss_peak_kb"] > 0
        assert result.resources["user_cpu_s"] >= 0.0

    def test_resources_surface_in_task_event(self):
        tracer = obs.configure()
        Engine(jobs=1, cache=None).run_one(
            DesignTask(kind="wc_point", k=3, ratio=1.5)
        )
        (task_ev,) = [
            ev
            for ev in tracer.events
            if ev["ev"] == "span" and ev["name"] == "engine.task"
        ]
        assert task_ev["attrs"]["rss_peak_kb"] > 0
