"""Benchmark-regression tracker tests (repro.obs.bench + CLI gate)."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.obs import bench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _doc(name="demo", median=1.0, **kwargs):
    return bench.new_doc(
        name,
        workload={"k": 4},
        timings={"total": [median]},
        git_rev="deadbeef",
        **kwargs,
    )


class TestSchema:
    def test_new_doc_round_trips_through_write_and_load(self, tmp_path):
        doc = bench.new_doc(
            "roundtrip",
            workload={"k": 4, "points": 3},
            timings={"total": [1.0, 3.0, 2.0]},
            derived={"speedup": 2.5},
            meta={"rows": [[1, 2]]},
            git_rev="deadbeef",
        )
        path = bench.write_doc(doc, tmp_path)
        assert path.name == "BENCH_roundtrip.json"
        assert bench.load_doc(path) == doc

    def test_timing_stats(self):
        stats = bench.timing_stats([3.0, 1.0, 2.0])
        assert stats["median"] == 2.0
        assert stats["mean"] == 2.0
        assert (stats["min"], stats["max"]) == (1.0, 3.0)
        assert stats["total"] == 6.0
        assert stats["n"] == 3
        assert stats["unit"] == "seconds"

    def test_empty_samples_rejected(self):
        with pytest.raises(bench.BenchValidationError, match="at least one"):
            bench.timing_stats([])

    def test_bad_name_rejected(self):
        with pytest.raises(bench.BenchValidationError, match="invalid"):
            bench.new_doc("a/b", workload={}, timings={"t": [1.0]})

    def test_missing_key_rejected(self):
        doc = _doc()
        del doc["git_rev"]
        with pytest.raises(bench.BenchValidationError, match="git_rev"):
            bench.validate_doc(doc)

    def test_wrong_schema_version_rejected(self):
        doc = _doc()
        doc["bench_schema"] = 99
        with pytest.raises(bench.BenchValidationError, match="bench_schema"):
            bench.validate_doc(doc)

    def test_sample_count_mismatch_rejected(self):
        doc = _doc()
        doc["timings"]["total"]["n"] = 5
        with pytest.raises(bench.BenchValidationError, match="n=5"):
            bench.validate_doc(doc)

    def test_non_json_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(bench.BenchValidationError, match="not JSON"):
            bench.load_doc(path)


class TestLegacyMigration:
    def test_sim_backend_shape(self):
        doc = bench.migrate_legacy(
            {
                "workload": {"rates": 5},
                "reference_seconds": 9.6,
                "vectorized_seconds": 0.8,
                "speedup": 12.0,
                "results_identical": True,
            },
            "sim_backend",
        )
        assert doc["name"] == "sim_backend"
        assert doc["timings"]["reference"]["median"] == 9.6
        assert doc["timings"]["vectorized"]["median"] == 0.8
        assert doc["derived"]["speedup"] == 12.0
        assert doc["meta"]["results_identical"] is True

    def test_total_seconds_shape_with_saturation(self):
        doc = bench.migrate_legacy(
            {
                "workload": {"k": 4},
                "total_seconds": 3.5,
                "saturation": ["vc", "wc", 0.4, 0.5],
                "rows": [[1, 2]],
            },
            "faults",
        )
        assert doc["timings"]["total"]["median"] == 3.5
        assert doc["derived"]["saturation_mid"] == pytest.approx(0.45)
        assert doc["meta"]["rows"] == [[1, 2]]

    def test_canonical_doc_passes_through(self):
        doc = _doc()
        assert bench.migrate_legacy(doc, "demo") is doc

    def test_unknown_shape_rejected(self):
        with pytest.raises(bench.BenchValidationError, match="unrecognized"):
            bench.migrate_legacy({"mystery": 1}, "mystery")

    def test_migrate_directory(self, tmp_path):
        (tmp_path / "topo3d_bench.json").write_text(
            json.dumps({"workload": {"k": 3}, "total_seconds": 2.0})
        )
        written = bench.migrate_directory(tmp_path)
        assert [p.name for p in written] == ["BENCH_topo3d.json"]
        assert bench.load_doc(written[0])["timings"]["total"]["median"] == 2.0


class TestDiff:
    def test_ratio_and_verdicts(self):
        row = bench.DiffRow("b", "m", 1.0, 1.2, threshold=0.25)
        assert row.ratio == pytest.approx(1.2)
        assert not row.regressed and row.verdict == "ok"
        assert bench.DiffRow("b", "m", 1.0, 2.0, 0.25).verdict == "REGRESSED"
        assert bench.DiffRow("b", "m", 1.0, 0.5, 0.25).verdict == "improved"

    def test_zero_baseline(self):
        assert bench.DiffRow("b", "m", 0.0, 1.0, 0.25).ratio == float("inf")
        assert bench.DiffRow("b", "m", 0.0, 0.0, 0.25).ratio == 1.0

    def test_compare_dirs(self, tmp_path):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        bench.write_doc(_doc("same", 1.0), baselines)
        bench.write_doc(_doc("same", 1.1), results)
        bench.write_doc(_doc("slow", 1.0), baselines)
        bench.write_doc(_doc("slow", 2.0), results)
        bench.write_doc(_doc("fresh", 1.0), results)  # no baseline yet
        bench.write_doc(_doc("gone", 1.0), baselines)  # no current run

        report = bench.compare_dirs(results, baselines)
        assert not report.passed
        assert [r.bench for r in report.regressions] == ["slow"]
        assert report.missing_baseline == ["fresh"]
        assert report.missing_current == ["gone"]
        rendered = report.render()
        assert "REGRESSED" in rendered and "2.00x" in rendered
        assert "2 series compared, 1 regressed" in rendered


class TestCli:
    def test_check_passes_on_committed_baseline(self, capsys):
        rc = main(
            [
                "bench-report",
                "--results", str(REPO_ROOT / "results"),
                "--baseline", str(REPO_ROOT / "results" / "baselines"),
                "--check",
            ]
        )
        assert rc == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_check_flags_artificial_2x_slowdown(self, tmp_path, capsys):
        """The acceptance gate: a 2x-slowed copy of a real artifact fails."""
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        results.mkdir()
        baselines.mkdir()
        src = REPO_ROOT / "results" / "BENCH_sim_backend.json"
        doc = bench.load_doc(src)
        bench.write_doc(doc, baselines)
        slowed = json.loads(json.dumps(doc))
        for series in slowed["timings"].values():
            series["samples"] = [2.0 * s for s in series["samples"]]
            for key in ("median", "mean", "min", "max", "total"):
                series[key] = 2.0 * series[key]
        bench.write_doc(slowed, results)

        rc = main(
            [
                "bench-report",
                "--results", str(results),
                "--baseline", str(baselines),
                "--check",
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "2.00x" in out

    def test_without_check_reports_but_passes(self, tmp_path, capsys):
        results = tmp_path / "results"
        baselines = tmp_path / "baselines"
        bench.write_doc(_doc("slow", 1.0), baselines)
        bench.write_doc(_doc("slow", 9.0), results)
        rc = main(
            ["bench-report", "--results", str(results), "--baseline",
             str(baselines)]
        )
        assert rc == 0  # report-only mode never gates
        assert "REGRESSED" in capsys.readouterr().out

    def test_invalid_artifact_exits_2(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_bad.json").write_text('{"bench_schema": 1}')
        rc = main(
            ["bench-report", "--results", str(results), "--baseline",
             str(tmp_path / "baselines")]
        )
        assert rc == 2

    def test_migrate_flag(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "faults_bench.json").write_text(
            json.dumps({"workload": {"k": 4}, "total_seconds": 1.5})
        )
        rc = main(
            ["bench-report", "--results", str(results), "--baseline",
             str(tmp_path / "baselines"), "--migrate"]
        )
        assert rc == 0
        assert (results / "BENCH_faults.json").exists()
