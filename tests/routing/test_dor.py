"""Unit tests for dimension-order routing."""

import numpy as np
import pytest

from repro.routing import DimensionOrderRouting, minimal_direction_choices
from repro.routing.paths import count_turns, path_length
from repro.topology import Torus


@pytest.fixture(scope="module")
def t8():
    return Torus(8, 2)


@pytest.fixture(scope="module")
def dor8(t8):
    return DimensionOrderRouting(t8)


class TestMinimalChoices:
    def test_unique_choice(self, t8):
        combos = minimal_direction_choices(t8, 0, t8.node_at([2, 6]))
        assert combos == [({0: +1, 1: -1}, 1.0)]

    def test_tie_splits(self, t8):
        combos = minimal_direction_choices(t8, 0, t8.node_at([4, 1]))
        assert len(combos) == 2
        assert all(prob == 0.5 for _, prob in combos)

    def test_double_tie(self, t8):
        combos = minimal_direction_choices(t8, 0, t8.node_at([4, 4]))
        assert len(combos) == 4
        assert sum(p for _, p in combos) == pytest.approx(1.0)

    def test_no_movement_dim_skipped(self, t8):
        combos = minimal_direction_choices(t8, 0, t8.node_at([3, 0]))
        assert combos == [({0: +1}, 1.0)]


class TestDOR:
    def test_trivial_pair(self, dor8):
        assert dor8.path_distribution(5, 5) == [((5,), 1.0)]

    def test_single_minimal_path(self, t8, dor8):
        d = t8.node_at([2, 3])
        dist = dor8.path_distribution(0, d)
        assert len(dist) == 1
        path, prob = dist[0]
        assert prob == 1.0
        assert path_length(path) == 5
        # X first: second node moves in x
        assert path[1] == t8.node_at([1, 0])

    def test_y_first_order(self, t8):
        dor_yx = DimensionOrderRouting(t8, order=(1, 0))
        d = t8.node_at([2, 3])
        path, _ = dor_yx.path_distribution(0, d)[0]
        assert path[1] == t8.node_at([0, 1])

    def test_paths_minimal(self, t8, dor8):
        for d in range(1, t8.num_nodes):
            for path, _ in dor8.path_distribution(0, d):
                assert path_length(path) == t8.min_distance(0, d)

    def test_at_most_one_turn(self, t8, dor8):
        for d in range(1, t8.num_nodes):
            for path, _ in dor8.path_distribution(0, d):
                assert count_turns(t8, path) <= 1

    def test_normalized_path_length_is_one(self, dor8):
        assert dor8.normalized_path_length() == pytest.approx(1.0)

    def test_validates(self, dor8):
        dor8.validate()

    def test_bad_order_rejected(self, t8):
        with pytest.raises(ValueError, match="permutation"):
            DimensionOrderRouting(t8, order=(0, 0))

    def test_tie_pair_has_four_paths(self, t8, dor8):
        d = t8.node_at([4, 4])
        dist = dor8.path_distribution(0, d)
        assert len(dist) == 4
        assert sum(p for _, p in dist) == pytest.approx(1.0)

    def test_canonical_flows_row_zero_empty(self, dor8):
        assert dor8.canonical_flows[0].sum() == 0.0

    def test_canonical_flows_conservation(self, t8, dor8):
        # flow out of source - flow in = 1 for every d != 0
        x = dor8.canonical_flows
        for d in (1, 9, 37):
            out = x[d, t8.out_channels(0)].sum()
            inn = x[d, t8.in_channels(0)].sum()
            assert out - inn == pytest.approx(1.0)

    def test_sample_path_follows_distribution(self, t8, dor8):
        rng = np.random.default_rng(0)
        d = t8.node_at([4, 0])  # tie: two candidate paths
        seen = {dor8.sample_path(rng, 0, d) for _ in range(50)}
        assert len(seen) == 2

    def test_odd_radix_no_ties(self):
        t = Torus(5, 2)
        dor = DimensionOrderRouting(t)
        for d in range(1, t.num_nodes):
            assert len(dor.path_distribution(0, d)) == 1
