"""Hypercube routing and LP-design tests (the Cayley generalization).

Classic results serve as oracles: hypercube capacity is 2.0 under
uniform traffic, deterministic e-cube has poor worst-case throughput
(transpose-like adversaries), and Valiant's randomization restores the
half-of-capacity guarantee — exactly the torus story replayed on a
second topology, as the paper's future work proposes.
"""

import numpy as np
import pytest

from repro.core import design_worst_case, solve_capacity
from repro.core.recovery import routing_from_flows
from repro.metrics import uniform_load, worst_case_load
from repro.routing import ECube, HypercubeValiant
from repro.routing.paths import path_length
from repro.topology import Hypercube


@pytest.fixture(scope="module")
def h3():
    return Hypercube(3)


@pytest.fixture(scope="module")
def ecube3(h3):
    return ECube(h3)


class TestECube:
    def test_single_minimal_path(self, h3, ecube3):
        for d in range(1, 8):
            dist = ecube3.path_distribution(0, d)
            assert len(dist) == 1
            path, prob = dist[0]
            assert prob == 1.0
            assert path_length(path) == bin(d).count("1")

    def test_ascending_dimension_order(self, h3, ecube3):
        (path, _), = ecube3.path_distribution(0, 0b110)
        assert path == (0, 0b010, 0b110)

    def test_validates(self, ecube3):
        ecube3.validate()

    def test_uniform_load_is_capacity(self, h3, ecube3):
        assert uniform_load(ecube3) == pytest.approx(
            solve_capacity(h3).load, rel=1e-6
        )

    def test_poor_worst_case(self, h3, ecube3):
        # deterministic minimal routing loses a factor >= 2 in the worst
        # case even on the tiny 3-cube
        wc = worst_case_load(ecube3)
        assert wc.load >= 2 * solve_capacity(h3).load + 0.5


class TestHypercubeValiant:
    def test_validates(self, h3):
        HypercubeValiant(h3).validate()

    def test_achieves_half_capacity(self, h3):
        val = HypercubeValiant(h3)
        cap = solve_capacity(h3).load
        assert worst_case_load(val).load == pytest.approx(2 * cap, rel=1e-9)

    def test_locality_near_double(self, h3):
        val = HypercubeValiant(h3)
        n = h3.num_nodes
        assert val.normalized_path_length() == pytest.approx(
            2 * (n - 1) / n, rel=1e-9
        )


class TestHypercubeDesign:
    def test_capacity_is_two(self, h3):
        # classic: hypercube uniform capacity = 2 injections/cycle
        cap = solve_capacity(h3)
        assert cap.throughput == pytest.approx(2.0, rel=1e-6)

    def test_worst_case_optimum_is_half_capacity(self, h3):
        cap = solve_capacity(h3).load
        design = design_worst_case(h3)
        assert design.worst_case_load == pytest.approx(2 * cap, rel=1e-5)

    def test_optimal_locality_beats_valiant(self, h3):
        design = design_worst_case(h3, minimize_locality=True)
        val_h = HypercubeValiant(h3).average_path_length()
        assert design.avg_path_length < val_h - 0.3

    def test_recovered_routing_runs(self, h3):
        design = design_worst_case(h3, minimize_locality=True)
        alg = routing_from_flows(h3, design.flows, "cube-opt")
        alg.validate()
        assert worst_case_load(alg).load <= design.worst_case_load * (1 + 1e-5)

    def test_4cube_scales(self):
        h4 = Hypercube(4)
        cap = solve_capacity(h4)
        assert cap.load == pytest.approx(0.5, rel=1e-6)
        val = HypercubeValiant(h4)
        assert worst_case_load(val).load == pytest.approx(1.0, rel=1e-9)
