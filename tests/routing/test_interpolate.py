"""Tests for interpolated routing algorithms (paper Section 5.3)."""

import numpy as np
import pytest

from repro.metrics import worst_case_load
from repro.routing import (
    DimensionOrderRouting,
    IVAL,
    Interpolated,
    VAL,
)
from repro.routing.interpolate import sweep
from repro.topology import Torus


@pytest.fixture(scope="module")
def t6():
    return Torus(6, 2)


@pytest.fixture(scope="module")
def dor6(t6):
    return DimensionOrderRouting(t6)


@pytest.fixture(scope="module")
def ival6(t6):
    return IVAL(t6)


class TestInterpolated:
    def test_is_valid_routing(self, dor6, ival6):
        Interpolated(dor6, ival6, 0.3).validate(
            pairs=[(0, d) for d in range(1, 36, 5)]
        )

    def test_endpoints(self, t6, dor6, ival6):
        a0 = Interpolated(dor6, ival6, 0.0)
        a1 = Interpolated(dor6, ival6, 1.0)
        assert np.allclose(a0.canonical_flows, ival6.canonical_flows)
        assert np.allclose(a1.canonical_flows, dor6.canonical_flows)

    def test_path_length_interpolates_linearly(self, dor6, ival6):
        # eq. (12)
        alpha = 0.37
        mix = Interpolated(dor6, ival6, alpha)
        expected = (
            alpha * dor6.average_path_length()
            + (1 - alpha) * ival6.average_path_length()
        )
        assert mix.average_path_length() == pytest.approx(expected)

    def test_worst_case_convexity_bound(self, dor6, ival6):
        # eq. (13): interpolated worst-case load is at most the mix.
        alpha = 0.5
        mix = Interpolated(dor6, ival6, alpha)
        bound = (
            alpha * worst_case_load(dor6).load
            + (1 - alpha) * worst_case_load(ival6).load
        )
        assert worst_case_load(mix).load <= bound + 1e-9

    def test_shared_adversary_gives_equality(self, t6, dor6, ival6):
        # footnote 5: DOR and IVAL share a worst-case permutation, so the
        # bound of eq. (13) is tight.
        alpha = 0.4
        mix = Interpolated(dor6, ival6, alpha)
        bound = (
            alpha * worst_case_load(dor6).load
            + (1 - alpha) * worst_case_load(ival6).load
        )
        assert worst_case_load(mix).load == pytest.approx(bound, rel=1e-6)

    def test_throughput_harmonic_mean_bound(self, dor6, ival6):
        # eq. (14)
        alpha = 0.25
        mix = Interpolated(dor6, ival6, alpha)
        t1 = worst_case_load(dor6).throughput
        t2 = worst_case_load(ival6).throughput
        hmean = 1.0 / (alpha / t1 + (1 - alpha) / t2)
        assert worst_case_load(mix).throughput >= hmean - 1e-9

    def test_alpha_validation(self, dor6, ival6):
        with pytest.raises(ValueError, match="alpha"):
            Interpolated(dor6, ival6, 1.5)

    def test_network_mismatch(self, dor6):
        other = DimensionOrderRouting(Torus(4, 2))
        with pytest.raises(ValueError, match="share a network"):
            Interpolated(dor6, other, 0.5)

    def test_distribution_merges_common_paths(self, t6, dor6):
        # interpolating an algorithm with itself is the identity
        mix = Interpolated(dor6, dor6, 0.5)
        for d in (1, 7, 13):
            dist = dict(mix.path_distribution(0, d))
            base = dict(dor6.path_distribution(0, d))
            assert dist.keys() == base.keys()
            for p, w in base.items():
                assert dist[p] == pytest.approx(w)

    def test_sweep(self, dor6, ival6):
        mixes = sweep(dor6, ival6, [0.0, 0.5, 1.0])
        assert len(mixes) == 3
        lengths = [m.average_path_length() for m in mixes]
        # monotone from IVAL's length down to DOR's
        assert lengths[0] > lengths[1] > lengths[2]

    def test_default_name(self, dor6, ival6):
        assert "DOR" in Interpolated(dor6, ival6, 0.25).name


class TestThetaEndpoints:
    """θ ∈ {0, 0.5, 1}: endpoints reproduce the constituent algorithms
    distribution-by-distribution, the midpoint is their exact 50/50 mix."""

    PAIRS = [(0, 1), (0, 7), (0, 13), (0, 35)]

    @staticmethod
    def _dist(alg, s, d):
        return {tuple(p): w for p, w in alg.path_distribution(s, d)}

    def _assert_matches(self, mix, base, s, d):
        # the mix may keep the other endpoint's paths at weight exactly
        # 0.0; every weight must equal the endpoint's, bit for bit
        got = self._dist(mix, s, d)
        ref = self._dist(base, s, d)
        assert ref.keys() <= got.keys()
        for p, w in got.items():
            assert w == ref.get(p, 0.0)

    def test_theta_zero_matches_second_endpoint(self, dor6, ival6):
        mix = Interpolated(dor6, ival6, 0.0)
        for s, d in self.PAIRS:
            self._assert_matches(mix, ival6, s, d)

    def test_theta_one_matches_first_endpoint(self, dor6, ival6):
        mix = Interpolated(dor6, ival6, 1.0)
        for s, d in self.PAIRS:
            self._assert_matches(mix, dor6, s, d)

    def test_theta_half_is_exact_mixture(self, dor6, ival6):
        mix = Interpolated(dor6, ival6, 0.5)
        for s, d in self.PAIRS:
            a = self._dist(dor6, s, d)
            b = self._dist(ival6, s, d)
            got = self._dist(mix, s, d)
            assert got.keys() == a.keys() | b.keys()
            for p, w in got.items():
                assert w == pytest.approx(0.5 * a.get(p, 0.0) + 0.5 * b.get(p, 0.0))

    def test_theta_half_flows_are_exact_mixture(self, dor6, ival6):
        mix = Interpolated(dor6, ival6, 0.5)
        expected = 0.5 * dor6.canonical_flows + 0.5 * ival6.canonical_flows
        np.testing.assert_allclose(mix.canonical_flows, expected, atol=1e-15)

    def test_endpoint_metrics_match(self, dor6, ival6):
        assert Interpolated(dor6, ival6, 1.0).average_path_length() == (
            pytest.approx(dor6.average_path_length(), abs=0.0)
        )
        assert Interpolated(dor6, ival6, 0.0).average_path_length() == (
            pytest.approx(ival6.average_path_length(), abs=0.0)
        )
