"""Deterministic shortest-path routing on general networks."""

import numpy as np
import pytest

from repro.faults import FaultSet, degrade
from repro.metrics.worst_case_eval import general_worst_case_load
from repro.routing import ShortestPathRouting
from repro.topology import Mesh, SparsePillarTorus3D, Torus


@pytest.fixture(scope="module", params=["mesh", "pillar"])
def network(request):
    if request.param == "mesh":
        return Mesh(3, 2)
    return SparsePillarTorus3D(3, pillar_spacing=2)


class TestPaths:
    def test_single_minimal_path_per_pair(self, network):
        sp = ShortestPathRouting(network)
        dist = network.distance_matrix()
        for s in range(network.num_nodes):
            for d in range(network.num_nodes):
                distn = sp.path_distribution(s, d)
                assert len(distn) == 1
                path, prob = distn[0]
                assert prob == 1.0
                assert len(path) - 1 == dist[s, d] if s != d else path == (s,)

    def test_paths_use_existing_channels(self, network):
        sp = ShortestPathRouting(network)
        sp.validate()

    def test_deterministic_smallest_next_hop(self):
        torus = Torus(4, 2)
        sp = ShortestPathRouting(torus)
        # 0 -> 5 has two minimal orders (+x then +y, or +y then +x);
        # the smallest-id rule always advances through node 1 first.
        (path, _), = sp.path_distribution(0, 5)
        assert path == (0, 1, 5)

    def test_repeated_calls_identical(self, network):
        sp = ShortestPathRouting(network)
        assert sp.path_distribution(0, 7) == sp.path_distribution(0, 7)


class TestEvaluation:
    def test_general_worst_case_dominates_uniform(self, network):
        sp = ShortestPathRouting(network)
        flows = sp.full_flows()
        result = general_worst_case_load(network, flows)
        # gamma_wc is a maximum over doubly-stochastic traffic, so it is
        # at least the uniform-traffic load of the busiest channel
        uniform_load = flows.sum(axis=(0, 1)) / network.num_nodes
        gamma_u = float((uniform_load / network.bandwidth).max())
        assert result.load >= gamma_u - 1e-9

    def test_average_path_length_is_mean_distance(self, network):
        sp = ShortestPathRouting(network)
        assert sp.average_path_length() == pytest.approx(
            network.mean_min_distance()
        )


class TestUnreachable:
    def test_unreachable_pair_raises(self):
        degraded = degrade(Torus(4, 2), FaultSet(nodes=(3,)))
        sp = ShortestPathRouting(degraded)
        with pytest.raises(ValueError, match="no path"):
            sp.path_distribution(0, 3)
