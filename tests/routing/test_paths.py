"""Unit and property tests for the path model (incl. Fig. 3 loop removal)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.paths import (
    build_path,
    concatenate,
    count_turns,
    has_dimension_reversal,
    hop_moves,
    path_channels,
    path_length,
    remove_loops,
    validate_path,
)
from repro.topology import Torus


@pytest.fixture(scope="module")
def t8():
    return Torus(8, 2)


class TestBasics:
    def test_path_length(self):
        assert path_length((0,)) == 0
        assert path_length((0, 1, 2)) == 2

    def test_path_channels(self, t8):
        p = build_path(t8, 0, [(0, +1, 2)])
        chans = path_channels(t8, p)
        assert len(chans) == 2
        assert t8.channel_src[chans[0]] == 0

    def test_path_channels_rejects_nonadjacent(self, t8):
        with pytest.raises(KeyError):
            path_channels(t8, (0, 2))

    def test_validate_ok(self, t8):
        p = build_path(t8, 0, [(0, +1, 3), (1, -1, 2)])
        validate_path(t8, p, 0, p[-1])

    def test_validate_bad_endpoints(self, t8):
        p = build_path(t8, 0, [(0, +1, 1)])
        with pytest.raises(ValueError, match="endpoints"):
            validate_path(t8, p, 0, 99)

    def test_validate_channel_revisit(self, t8):
        a, b = 0, t8.node_at([1, 0])
        with pytest.raises(ValueError, match="revisits"):
            validate_path(t8, (a, b, a, b), a, b)

    def test_validate_empty(self, t8):
        with pytest.raises(ValueError, match="empty"):
            validate_path(t8, (), 0, 0)

    def test_concatenate(self):
        assert concatenate((0, 1, 2), (2, 3)) == (0, 1, 2, 3)

    def test_concatenate_mismatch(self):
        with pytest.raises(ValueError, match="share an endpoint"):
            concatenate((0, 1), (2, 3))


class TestRemoveLoops:
    def test_figure3_style_loop(self, t8):
        # go +x four hops then back -x three: loop collapses to one hop
        fwd = build_path(t8, 0, [(0, +1, 4)])
        back = build_path(t8, fwd[-1], [(0, -1, 3)])
        path = concatenate(fwd, back)
        assert remove_loops(path) == build_path(t8, 0, [(0, +1, 1)])

    def test_no_loop_unchanged(self):
        assert remove_loops((0, 1, 2, 3)) == (0, 1, 2, 3)

    def test_full_cycle_collapses(self):
        assert remove_loops((5, 1, 2, 5)) == (5,)

    def test_nested_loops(self):
        # 0-1-2-1-3-0-4: inner loop at 1, then outer loop back to 0
        assert remove_loops((0, 1, 2, 1, 3, 0, 4)) == (0, 4)

    def test_preserves_endpoints(self):
        p = (7, 3, 4, 3, 9)
        out = remove_loops(p)
        assert out[0] == 7 and out[-1] == 9

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
    @settings(max_examples=200)
    def test_properties(self, nodes):
        path = tuple(nodes)
        out = remove_loops(path)
        # endpoints preserved, no repeats, never longer
        assert out[0] == path[0]
        assert out[-1] == path[-1]
        assert len(set(out)) == len(out)
        assert len(out) <= len(path)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_idempotent(self, nodes):
        once = remove_loops(tuple(nodes))
        assert remove_loops(once) == once


class TestTorusStructure:
    def test_hop_moves(self, t8):
        p = build_path(t8, 0, [(0, +1, 2), (1, -1, 1)])
        assert hop_moves(t8, p) == [(0, +1), (0, +1), (1, -1)]

    def test_hop_moves_rejects_jump(self, t8):
        with pytest.raises(ValueError, match="neighbours"):
            hop_moves(t8, (0, t8.node_at([2, 0])))

    def test_hop_moves_rejects_diagonal(self, t8):
        with pytest.raises(ValueError, match="neighbours"):
            hop_moves(t8, (0, t8.node_at([1, 1])))

    def test_count_turns(self, t8):
        straight = build_path(t8, 0, [(0, +1, 3)])
        assert count_turns(t8, straight) == 0
        one = build_path(t8, 0, [(0, +1, 2), (1, +1, 2)])
        assert count_turns(t8, one) == 1
        two = build_path(t8, 0, [(0, +1, 1), (1, +1, 1), (0, +1, 1)])
        assert count_turns(t8, two) == 2

    def test_dimension_reversal_detection(self, t8):
        # X+ then Y then X- reverses X across the gap.
        p = build_path(t8, 0, [(0, +1, 2), (1, +1, 1), (0, -1, 1)])
        assert has_dimension_reversal(t8, p)
        q = build_path(t8, 0, [(0, +1, 2), (1, +1, 1), (0, +1, 1)])
        assert not has_dimension_reversal(t8, q)

    def test_build_path_wraps(self, t8):
        p = build_path(t8, t8.node_at([7, 0]), [(0, +1, 1)])
        assert p[-1] == t8.node_at([0, 0])
