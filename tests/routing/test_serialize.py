"""Tests for routing-table serialization."""

import json

import numpy as np
import pytest

from repro.core.recovery import routing_from_flows
from repro.routing import DimensionOrderRouting, design_2turn
from repro.routing.serialize import dump_routing, load_routing
from repro.topology import Torus


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


class TestRoundtrip:
    def test_2turn_roundtrip(self, t4, tmp_path_factory):
        path = tmp_path_factory.mktemp("ser") / "twoturn.json"
        design = design_2turn(t4)
        dump_routing(design.routing, path)
        loaded = load_routing(path)
        assert loaded.name == "2TURN"
        assert np.allclose(
            loaded.canonical_flows, design.routing.canonical_flows, atol=1e-12
        )

    def test_recovered_table_roundtrip(self, t4, tmp_path):
        dor = DimensionOrderRouting(t4)
        table = routing_from_flows(t4, dor.canonical_flows, "dor-table")
        dump_routing(table, tmp_path / "dor.json")
        loaded = load_routing(tmp_path / "dor.json", t4)
        assert np.allclose(loaded.canonical_flows, dor.canonical_flows)

    def test_metrics_survive_roundtrip(self, t4, tmp_path):
        from repro.metrics import worst_case_load

        design = design_2turn(t4)
        dump_routing(design.routing, tmp_path / "t.json")
        loaded = load_routing(tmp_path / "t.json")
        assert worst_case_load(loaded).load == pytest.approx(
            worst_case_load(design.routing).load
        )


class TestValidation:
    def test_topology_mismatch(self, t4, tmp_path):
        design = design_2turn(t4)
        dump_routing(design.routing, tmp_path / "t.json")
        with pytest.raises(ValueError, match="topology mismatch"):
            load_routing(tmp_path / "t.json", Torus(5, 2))

    def test_bad_format_version(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError, match="unsupported routing table"):
            load_routing(tmp_path / "bad.json")

    def test_bad_topology_kind(self, tmp_path):
        doc = {"format": 1, "topology": {"kind": "hypercube"}, "table": {}}
        (tmp_path / "bad.json").write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="topology kind"):
            load_routing(tmp_path / "bad.json")

    def test_dump_requires_torus_table(self, tmp_path):
        from repro.routing.base import ObliviousRouting
        from repro.topology import Mesh

        class Dummy(ObliviousRouting):
            def path_distribution(self, s, d):  # pragma: no cover
                return [((s,), 1.0)]

        with pytest.raises(TypeError, match="tori"):
            dump_routing(Dummy(Mesh(3, 2)), tmp_path / "x.json")


class TestFlowDocs:
    def test_roundtrip_is_bit_identical(self, t4):
        from repro.routing.serialize import flows_from_doc, flows_to_doc

        rng = np.random.default_rng(3)
        flows = rng.random((t4.num_nodes, t4.num_channels))
        doc = json.loads(json.dumps(flows_to_doc(flows, t4, name="test")))
        restored = flows_from_doc(doc, t4)
        np.testing.assert_array_equal(restored, flows)  # exact, via repr

    def test_shape_mismatch_rejected(self, t4):
        from repro.routing.serialize import flows_to_doc

        with pytest.raises(ValueError, match="shape"):
            flows_to_doc(np.zeros((3, 3)), t4)

    def test_topology_mismatch_rejected(self, t4):
        from repro.routing.serialize import flows_from_doc, flows_to_doc

        doc = flows_to_doc(np.zeros((t4.num_nodes, t4.num_channels)), t4)
        with pytest.raises(ValueError, match="topology mismatch"):
            flows_from_doc(doc, Torus(5, 2))

    def test_reconstructs_torus_when_omitted(self, t4):
        from repro.routing.serialize import flows_from_doc, flows_to_doc

        flows = np.ones((t4.num_nodes, t4.num_channels))
        assert flows_from_doc(flows_to_doc(flows, t4)).shape == flows.shape

    def test_extreme_values_roundtrip_exactly(self, t4):
        # float repr round-trips are exact for subnormals, huge
        # magnitudes and negative zero alike — a flow doc must never
        # lose a bit, since verify re-checks conservation at 1e-9
        from repro.routing.serialize import flows_from_doc, flows_to_doc

        flows = np.zeros((t4.num_nodes, t4.num_channels))
        flows[0, 0] = 5e-324  # smallest subnormal
        flows[1, 1] = 1e300
        flows[2, 2] = -0.0
        flows[3, 3] = 1.0 / 3.0
        doc = json.loads(json.dumps(flows_to_doc(flows, t4)))
        np.testing.assert_array_equal(flows_from_doc(doc, t4), flows)

    def test_random_flows_roundtrip_exactly(self, t4):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.routing.serialize import flows_from_doc, flows_to_doc

        @given(st.integers(0, 2**32 - 1))
        @settings(max_examples=20, deadline=None)
        def roundtrip(seed):
            rng = np.random.default_rng(seed)
            flows = rng.random((t4.num_nodes, t4.num_channels))
            doc = json.loads(json.dumps(flows_to_doc(flows, t4)))
            np.testing.assert_array_equal(flows_from_doc(doc, t4), flows)

        roundtrip()


class TestExactDistributionRoundtrip:
    def test_table_distributions_preserved(self, t4, tmp_path):
        design = design_2turn(t4)
        dump_routing(design.routing, tmp_path / "t.json")
        loaded = load_routing(tmp_path / "t.json")
        for d in range(1, t4.num_nodes):
            orig = {tuple(p): w for p, w in design.routing.path_distribution(0, d)}
            got = {tuple(p): w for p, w in loaded.path_distribution(0, d)}
            # same path support; weights only touched by the loader's
            # renormalization (last-bit dust, far below any tolerance)
            assert got.keys() == orig.keys()
            for p, w in orig.items():
                assert got[p] == pytest.approx(w, abs=1e-15)

    def test_doc_roundtrip_is_stable(self, t4):
        # doc -> algorithm -> doc: path sets and path order stable, so
        # re-serializing a loaded table cannot churn version control
        from repro.routing.serialize import routing_from_doc, routing_to_doc

        doc1 = routing_to_doc(design_2turn(t4).routing)
        doc2 = routing_to_doc(routing_from_doc(json.loads(json.dumps(doc1))))
        assert doc1["table"].keys() == doc2["table"].keys()
        for d in doc1["table"]:
            paths1 = [e["path"] for e in doc1["table"][d]]
            paths2 = [e["path"] for e in doc2["table"][d]]
            assert paths1 == paths2
