"""Direct tests for table-driven routing algorithms."""

import numpy as np
import pytest

from repro.routing import DimensionOrderRouting, TableRouting
from repro.topology import Torus


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


def dor_table(torus):
    dor = DimensionOrderRouting(torus)
    return {
        d: list(dor.path_distribution(0, d)) for d in range(1, torus.num_nodes)
    }


class TestConstruction:
    def test_reproduces_source_algorithm(self, t4):
        table = TableRouting(t4, dor_table(t4), name="dor-copy")
        dor = DimensionOrderRouting(t4)
        assert np.allclose(table.canonical_flows, dor.canonical_flows)

    def test_missing_destination_rejected(self, t4):
        tbl = dor_table(t4)
        del tbl[7]
        with pytest.raises(ValueError, match="missing destination 7"):
            TableRouting(t4, tbl)

    def test_zero_weight_destination_rejected(self, t4):
        tbl = dor_table(t4)
        tbl[3] = [(p, 0.0) for p, _ in tbl[3]]
        with pytest.raises(ValueError, match="positive weight"):
            TableRouting(t4, tbl)

    def test_prune_and_renormalize(self, t4):
        tbl = dor_table(t4)
        # add dust entries that must be pruned away
        dust_path = (0, t4.node_at([0, 1]), t4.node_at([1, 1]))
        tbl[t4.node_at([1, 1])].append((dust_path, 1e-15))
        table = TableRouting(t4, tbl, prune=1e-12)
        dist = table.path_distribution(0, t4.node_at([1, 1]))
        assert all(w > 1e-12 for _, w in dist)
        assert sum(w for _, w in dist) == pytest.approx(1.0)

    def test_weights_renormalized(self, t4):
        # intentionally unnormalized weights are scaled to sum 1
        tbl = dor_table(t4)
        tbl[1] = [(p, w * 7.0) for p, w in tbl[1]]
        table = TableRouting(t4, tbl)
        assert sum(w for _, w in table.path_distribution(0, 1)) == (
            pytest.approx(1.0)
        )


class TestTranslation:
    def test_translated_distribution(self, t4):
        table = TableRouting(t4, dor_table(t4))
        s = t4.node_at([2, 1])
        d = t4.node_at([3, 3])
        t_off = int(t4.sub_nodes(d, s))
        canonical = table.path_distribution(0, t_off)
        shifted = table.path_distribution(s, d)
        assert len(shifted) == len(canonical)
        for (cp, cw), (sp, sw) in zip(canonical, shifted):
            assert sw == cw
            assert sp[0] == s and sp[-1] == d

    def test_trivial_pair(self, t4):
        table = TableRouting(t4, dor_table(t4))
        assert table.path_distribution(6, 6) == [((6,), 1.0)]

    def test_validates(self, t4):
        TableRouting(t4, dor_table(t4)).validate()
