"""Unit tests for ROMM, RLB and RLBth."""

import numpy as np
import pytest

from repro.routing import RLB, ROMM, RLBth
from repro.routing.paths import count_turns, path_length
from repro.topology import Torus


@pytest.fixture(scope="module")
def t8():
    return Torus(8, 2)


class TestROMM:
    def test_minimal(self, t8):
        romm = ROMM(t8)
        for d in range(1, t8.num_nodes, 5):
            for path, _ in romm.path_distribution(0, d):
                assert path_length(path) == t8.min_distance(0, d)

    def test_normalized_locality_one(self, t8):
        assert ROMM(t8).normalized_path_length() == pytest.approx(1.0)

    def test_validates(self, t8):
        ROMM(t8).validate(pairs=[(0, d) for d in range(1, 64, 9)])

    def test_at_most_three_turns(self, t8):
        # Two X-first phases give at most an x-y-x-y shape (3 turns);
        # note ROMM paths are NOT a subset of 2TURN's.
        romm = ROMM(t8)
        for d in range(1, t8.num_nodes, 7):
            for path, _ in romm.path_distribution(0, d):
                assert count_turns(t8, path) <= 3

    def test_straight_line_single_path(self, t8):
        romm = ROMM(t8)
        dist = romm.path_distribution(0, t8.node_at([3, 0]))
        assert len(dist) == 1

    def test_spreads_over_quadrant(self, t8):
        romm = ROMM(t8)
        dist = romm.path_distribution(0, t8.node_at([2, 2]))
        # diagonal 2x2 quadrant: XY, YX, and staircase paths
        assert len(dist) >= 4

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            ROMM(Torus(4, 1))

    def test_trivial(self, t8):
        assert ROMM(t8).path_distribution(2, 2) == [((2,), 1.0)]


class TestRLB:
    def test_validates(self, t8):
        RLB(t8).validate(pairs=[(0, d) for d in range(1, 64, 9)])

    def test_direction_probabilities(self, t8):
        rlb = RLB(t8)
        opts = rlb._direction_options(2)  # forward 2, backward 6
        probs = {direction: p for direction, _, p in opts}
        assert probs[+1] == pytest.approx(6 / 8)
        assert probs[-1] == pytest.approx(2 / 8)

    def test_direction_probabilities_sum_to_one(self, t8):
        rlb = RLB(t8)
        for off in range(1, 8):
            assert sum(p for _, _, p in rlb._direction_options(off)) == (
                pytest.approx(1.0)
            )

    def test_zero_offset_no_move(self, t8):
        assert RLB(t8)._direction_options(0) == [(+1, 0, 1.0)]

    def test_locality_between_minimal_and_val(self, t8):
        h = RLB(t8).normalized_path_length()
        assert 1.0 < h < 2.0

    def test_ring_load_balance(self, t8):
        # RLB equalizes the expected load a pair puts on both ring
        # directions: E[hops+] over choices = E[hops-].
        rlb = RLB(t8)
        opts = rlb._direction_options(3)
        load = {direction: hops * p for direction, hops, p in opts}
        assert load[+1] == pytest.approx(load[-1])

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            RLB(Torus(5, 1))


class TestRLBth:
    def test_short_hops_minimal(self, t8):
        rlbth = RLBth(t8)
        # offset 1 < k/4 = 2: always minimal
        assert rlbth._direction_options(1) == [(+1, 1, 1.0)]
        assert rlbth._direction_options(7) == [(-1, 1, 1.0)]

    def test_threshold_boundary(self, t8):
        rlbth = RLBth(t8)
        # offset exactly k/4 = 2 is NOT below the threshold: RLB weighting
        opts = rlbth._direction_options(2)
        assert len(opts) == 2

    def test_better_locality_than_rlb(self, t8):
        assert (
            RLBth(t8).normalized_path_length() < RLB(t8).normalized_path_length()
        )

    def test_validates(self, t8):
        RLBth(t8).validate(pairs=[(0, d) for d in range(1, 64, 11)])


class TestRegistry:
    def test_standard_algorithms(self, t8):
        from repro.routing import standard_algorithms

        algs = standard_algorithms(t8)
        assert set(algs) == {"DOR", "VAL", "ROMM", "RLB", "RLBth"}
        for name, alg in algs.items():
            assert alg.name == name
            assert alg.translation_invariant
