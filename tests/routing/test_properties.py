"""Property-based invariants across all routing algorithms.

Hypothesis draws random algorithm/pair combinations and checks the
defining constraints of eq. (1) plus translation invariance — the
structural assumptions every LP in the paper relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import standard_algorithms
from repro.routing.paths import path_channels, path_length
from repro.topology import Torus

TORUS = Torus(6, 2)
ALGS = standard_algorithms(TORUS)
NAMES = sorted(ALGS)


@st.composite
def pair(draw):
    s = draw(st.integers(0, TORUS.num_nodes - 1))
    d = draw(st.integers(0, TORUS.num_nodes - 1))
    return s, d


class TestDistributionInvariants:
    @given(st.sampled_from(NAMES), pair())
    @settings(max_examples=120, deadline=None)
    def test_probabilities_form_distribution(self, name, sd):
        s, d = sd
        dist = ALGS[name].path_distribution(s, d)
        total = sum(w for _, w in dist)
        assert total == pytest.approx(1.0, abs=1e-9)
        assert all(w > 0 for _, w in dist)

    @given(st.sampled_from(NAMES), pair())
    @settings(max_examples=120, deadline=None)
    def test_paths_connect_endpoints(self, name, sd):
        s, d = sd
        for path, _ in ALGS[name].path_distribution(s, d):
            assert path[0] == s and path[-1] == d
            if len(path) > 1:
                path_channels(TORUS, path)  # raises on broken adjacency

    @given(st.sampled_from(NAMES), pair())
    @settings(max_examples=60, deadline=None)
    def test_no_channel_revisits(self, name, sd):
        s, d = sd
        for path, _ in ALGS[name].path_distribution(s, d):
            chans = path_channels(TORUS, path)
            assert len(set(chans)) == len(chans)

    @given(st.sampled_from(NAMES), pair())
    @settings(max_examples=60, deadline=None)
    def test_translation_invariance(self, name, sd):
        s, d = sd
        alg = ALGS[name]
        t = int(TORUS.sub_nodes(d, s))
        canonical = {
            tuple(int(TORUS.add_nodes(v, s)) for v in p): w
            for p, w in alg.path_distribution(0, t)
        }
        shifted = dict(alg.path_distribution(s, d))
        assert shifted.keys() == canonical.keys()
        for p, w in shifted.items():
            assert w == pytest.approx(canonical[p], abs=1e-12)

    @given(st.sampled_from(NAMES), pair())
    @settings(max_examples=60, deadline=None)
    def test_path_length_at_least_minimal(self, name, sd):
        s, d = sd
        minimal = TORUS.min_distance(s, d)
        for path, _ in ALGS[name].path_distribution(s, d):
            assert path_length(path) >= minimal


class TestFlowInvariants:
    @pytest.mark.parametrize("name", NAMES)
    def test_flow_conservation(self, name):
        x = ALGS[name].canonical_flows
        for d in range(0, TORUS.num_nodes, 7):
            for v in range(0, TORUS.num_nodes, 5):
                balance = (
                    x[d, TORUS.out_channels(v)].sum()
                    - x[d, TORUS.in_channels(v)].sum()
                )
                expected = float(v == 0 and d != 0) - float(v == d and d != 0)
                assert balance == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("name", NAMES)
    def test_total_flow_is_expected_length(self, name):
        alg = ALGS[name]
        x = alg.canonical_flows
        for d in (1, 8, 21):
            expected = sum(
                path_length(p) * w for p, w in alg.path_distribution(0, d)
            )
            assert x[d].sum() == pytest.approx(expected, abs=1e-9)
