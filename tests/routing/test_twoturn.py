"""Tests for 2TURN / 2TURNA (paper Sections 5.2 and 5.4)."""

import numpy as np
import pytest

from repro.core import design_worst_case, solve_capacity
from repro.metrics import average_case_load, worst_case_load
from repro.routing import IVAL, design_2turn, design_2turn_average, two_turn_paths
from repro.routing.paths import count_turns, hop_moves
from repro.topology import Torus
from repro.traffic import sample_traffic_set


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="module")
def t6():
    return Torus(6, 2)


class TestPathEnumeration:
    def test_all_paths_at_most_two_turns(self, t4):
        for d, paths in two_turn_paths(t4).items():
            for p in paths:
                assert count_turns(t4, p) <= 2

    def test_no_immediate_uturns(self, t4):
        for d, paths in two_turn_paths(t4).items():
            for p in paths:
                moves = hop_moves(t4, p)
                for (d1, s1), (d2, s2) in zip(moves[:-1], moves[1:]):
                    assert not (d1 == d2 and s1 != s2)

    def test_no_channel_revisits(self, t4):
        from repro.routing.paths import validate_path

        for d, paths in two_turn_paths(t4).items():
            for p in paths:
                validate_path(t4, p, 0, d)

    def test_endpoints(self, t4):
        for d, paths in two_turn_paths(t4).items():
            assert all(p[0] == 0 and p[-1] == d for p in paths)

    def test_axis_destinations_get_straight_paths_only(self, t4):
        # monotone straight runs are the only u-turn-free single-row options
        d = t4.node_at([2, 0])
        straight = [
            p for p in two_turn_paths(t4)[d] if count_turns(t4, p) == 0
        ]
        assert len(straight) == 2  # +x (2 hops) and -x (2 hops)

    def test_contains_ival_paths(self, t6):
        # Section 5.2: "2TURN contains all the paths considered by IVAL"
        table = two_turn_paths(t6)
        sets = {d: set(ps) for d, ps in table.items()}
        ival = IVAL(t6)
        for d in range(1, t6.num_nodes, 5):
            for p, _ in ival.path_distribution(0, d):
                assert p in sets[d]

    def test_no_duplicates(self, t4):
        for d, paths in two_turn_paths(t4).items():
            assert len(set(paths)) == len(paths)

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            two_turn_paths(Torus(4, 1))


class TestDesign2Turn:
    @pytest.mark.parametrize("k", [4, 5, 6])
    def test_worst_case_is_half_capacity(self, k):
        t = Torus(k, 2)
        design = design_2turn(t)
        cap = solve_capacity(t).load
        exact = worst_case_load(design.routing)
        assert exact.load == pytest.approx(2 * cap, rel=1e-4)

    def test_matches_optimal_locality_k4(self, t4):
        # Figure 4: "for the k = 4 and k = 6 cases, 2TURN exactly
        # matches the optimal."
        design = design_2turn(t4)
        opt = design_worst_case(t4, minimize_locality=True)
        assert design.avg_path_length == pytest.approx(
            opt.avg_path_length, rel=1e-4
        )

    def test_beats_ival_locality(self, t6):
        design = design_2turn(t6)
        assert (
            design.normalized_path_length
            < IVAL(t6).normalized_path_length() + 1e-9
        )

    def test_routing_validates(self, t4):
        design = design_2turn(t4)
        design.routing.validate()

    def test_paths_in_declared_set(self, t4):
        table = two_turn_paths(t4)
        design = design_2turn(t4)
        for d in range(1, t4.num_nodes):
            allowed = set(table[d])
            for p, _ in design.routing.path_distribution(0, d):
                assert p in allowed


class TestDesign2TurnAverage:
    def test_average_design_beats_2turn_on_its_sample(self, t4):
        sample = sample_traffic_set(
            np.random.default_rng(7), t4.num_nodes, 10, num_permutations=3
        )
        turna = design_2turn_average(t4, sample)
        turn = design_2turn(t4)
        assert average_case_load(turna.routing, sample) <= (
            average_case_load(turn.routing, sample) + 1e-6
        )

    def test_objective_matches_evaluation(self, t4):
        sample = sample_traffic_set(
            np.random.default_rng(8), t4.num_nodes, 8, num_permutations=3
        )
        turna = design_2turn_average(t4, sample)
        assert average_case_load(turna.routing, sample) == pytest.approx(
            turna.objective_load, rel=1e-4
        )

    def test_routing_validates(self, t4):
        sample = sample_traffic_set(np.random.default_rng(9), 16, 5)
        design_2turn_average(t4, sample).routing.validate()
