"""Unit tests for VAL and IVAL (paper Section 5.2)."""

import numpy as np
import pytest

from repro.routing import IVAL, VAL
from repro.routing.paths import count_turns, path_length
from repro.topology import Torus


@pytest.fixture(scope="module")
def t6():
    return Torus(6, 2)


@pytest.fixture(scope="module")
def val6(t6):
    return VAL(t6)


@pytest.fixture(scope="module")
def ival6(t6):
    return IVAL(t6)


class TestVAL:
    def test_distribution_normalized(self, val6):
        val6.validate(pairs=[(0, d) for d in range(1, 36, 5)])

    def test_trivial_pair(self, val6):
        assert val6.path_distribution(3, 3) == [((3,), 1.0)]

    def test_path_length_twice_minimal(self, val6):
        # For every pair s != d, VAL's expected path length is
        # E_i[d(s,i) + d(i,d)] = 2 * mean distance; the N diagonal pairs
        # contribute zero, giving an exact factor of 2 (N-1)/N.
        t = val6.network
        n = t.num_nodes
        expected = 2 * t.mean_min_distance() * (n - 1) / n
        assert val6.average_path_length() == pytest.approx(expected, rel=1e-9)

    def test_normalized_locality_near_two(self, val6):
        n = val6.network.num_nodes
        assert val6.normalized_path_length() == pytest.approx(2 * (n - 1) / n)

    def test_uniform_loads_balanced(self, val6):
        # VAL load under ANY pattern equals its uniform load; check that
        # canonical flows spread symmetrically over direction classes.
        t = val6.network
        x = val6.canonical_flows
        class_totals = [
            x[:, t.class_members(cls)].sum() for cls in range(t.num_classes)
        ]
        assert np.allclose(class_totals, class_totals[0])


class TestIVAL:
    def test_distribution_normalized(self, ival6):
        ival6.validate(pairs=[(0, d) for d in range(1, 36, 5)])

    def test_shorter_than_val(self, val6, ival6):
        assert ival6.average_path_length() < val6.average_path_length()

    def test_no_node_revisits(self, ival6):
        for d in range(1, 36, 7):
            for path, _ in ival6.path_distribution(0, d):
                assert len(set(path)) == len(path)

    def test_at_most_two_turns(self, ival6):
        # Loop-removed two-phase XY/YX paths have at most two turns
        # (Section 5.2: "every path in IVAL also has at most two turns").
        t = ival6.network
        for d in range(1, 36, 3):
            for path, _ in ival6.path_distribution(0, d):
                assert count_turns(t, path) <= 2

    def test_paper_locality_8ary(self):
        # Paper: IVAL ~= 1.61x minimal on the 8-ary 2-cube.
        ival = IVAL(Torus(8, 2))
        assert ival.normalized_path_length() == pytest.approx(1.61, abs=0.02)

    def test_loads_dominated_by_val(self, t6, val6, ival6):
        # Removing loops only removes channel crossings: IVAL flows are
        # pointwise <= VAL-with-reversed-phase flows... compare the total.
        assert ival6.canonical_flows.sum() < val6.canonical_flows.sum()


class TestValiantVariants:
    def test_reverse_without_removal_keeps_length(self, t6, val6):
        from repro.routing.valiant import Valiant

        rev = Valiant(t6, reverse_second_phase=True, name="VAL-rev")
        assert rev.average_path_length() == pytest.approx(
            val6.average_path_length()
        )

    def test_removal_without_reverse_helps_less(self, t6, ival6):
        from repro.routing.valiant import Valiant

        plain_removed = Valiant(t6, remove_loops=True, name="VAL-rm")
        # Reversing the second phase creates more loops to remove, so
        # IVAL must be at least as short.
        assert (
            ival6.average_path_length()
            <= plain_removed.average_path_length() + 1e-12
        )
