"""Reroute policies, and the ISSUE acceptance oracle: on k = 3 with one
failed link, the Hungarian gamma_wc of a renormalized routing matches
brute-force permutation enumeration exactly."""

import numpy as np
import pytest

from repro.faults import (
    DisconnectedCommodityError,
    FaultSet,
    degrade,
    degrade_routing,
)
from repro.metrics import general_worst_case_load
from repro.routing import IVAL, VAL, DimensionOrderRouting, design_2turn
from repro.topology import Torus
from repro.verify import brute_force_general_worst_case


@pytest.fixture(scope="module")
def t3():
    return Torus(3, 2)


@pytest.fixture(scope="module")
def deg3(t3):
    return degrade(t3, FaultSet(channels=(2,)))


def _paths_avoid_dead(routing, degraded):
    net = degraded
    for s in net.alive_nodes:
        for d in net.alive_nodes:
            if s == d:
                continue
            for path, w in routing.path_distribution(int(s), int(d)):
                assert w > 0.0
                for a, b in zip(path[:-1], path[1:]):
                    assert net.has_channel(a, b), (path, a, b)


class TestRenormalize:
    def test_dor_disconnects_on_first_failure(self, t3, deg3):
        # DOR has exactly one path per pair, so killing any channel
        # orphans the commodities routed over it.
        routing = degrade_routing(DimensionOrderRouting(t3), deg3,
                                  mode="renormalize")
        with pytest.raises(DisconnectedCommodityError, match="detour"):
            routing.full_flows()

    @pytest.mark.parametrize("alg_cls", [VAL, IVAL])
    def test_distributions_stay_valid(self, t3, deg3, alg_cls):
        routing = degrade_routing(alg_cls(t3), deg3, mode="renormalize")
        routing.validate()
        _paths_avoid_dead(routing, deg3)

    def test_probabilities_renormalized(self, t3, deg3):
        routing = degrade_routing(VAL(t3), deg3, mode="renormalize")
        src = int(t3.channel_src[2])
        dst = int(t3.channel_dst[2])
        dist = routing.path_distribution(src, dst)
        assert sum(w for _, w in dist) == pytest.approx(1.0)
        base = VAL(t3).path_distribution(src, dst)
        assert len(dist) < len(base)


class TestDetour:
    @pytest.mark.parametrize(
        "alg_cls", [DimensionOrderRouting, VAL, IVAL]
    )
    def test_link_failure(self, t3, deg3, alg_cls):
        routing = degrade_routing(alg_cls(t3), deg3, mode="detour")
        routing.validate()
        _paths_avoid_dead(routing, deg3)

    def test_node_failure(self, t3):
        degraded = degrade(t3, FaultSet(nodes=(4,)))
        routing = degrade_routing(
            DimensionOrderRouting(t3), degraded, mode="detour"
        )
        routing.validate()
        _paths_avoid_dead(routing, degraded)
        # commodities touching the dead node are refused, not misrouted
        with pytest.raises(DisconnectedCommodityError, match="endpoint"):
            routing.path_distribution(4, 0)

    def test_deterministic(self, t3, deg3):
        a = degrade_routing(IVAL(t3), deg3, mode="detour").full_flows()
        b = degrade_routing(IVAL(t3), deg3, mode="detour").full_flows()
        assert np.array_equal(a, b)

    def test_dor_detour_known_load(self, t3, deg3):
        # Established interactively and stable: DOR+detour piles the
        # rerouted commodities onto one bypass link.
        routing = degrade_routing(DimensionOrderRouting(t3), deg3)
        wc = general_worst_case_load(deg3, routing.full_flows())
        assert wc.load == pytest.approx(2.0)


class TestModeSelection:
    def test_unknown_mode_rejected(self, t3, deg3):
        with pytest.raises(ValueError, match="unknown reroute mode"):
            degrade_routing(VAL(t3), deg3, mode="ostrich")

    def test_mismatched_network_rejected(self, t3, deg3):
        other = Torus(3, 2)
        with pytest.raises(ValueError, match="not derived"):
            degrade_routing(VAL(other), deg3)


class TestAcceptanceOracle:
    """ISSUE.md acceptance criterion, verbatim: k = 3 torus, one failed
    link, renormalize — the assignment-solver gamma_wc must equal the
    brute-force permutation enumeration, channel by channel."""

    @pytest.mark.parametrize(
        "alg_cls, expected",
        [(VAL, 0.9333333333333332), (IVAL, 1.3333333333333333)],
    )
    def test_hungarian_matches_brute_force(self, t3, alg_cls, expected):
        degraded = degrade(t3, FaultSet(channels=(5,)))
        routing = degrade_routing(alg_cls(t3), degraded, mode="renormalize")
        flows = routing.full_flows()
        fast = general_worst_case_load(degraded, flows)
        slow = brute_force_general_worst_case(degraded, flows)
        assert fast.load == pytest.approx(slow.load, abs=0.0)
        assert fast.load == pytest.approx(expected)

    def test_detour_agrees_too(self, t3, deg3):
        twoturn = design_2turn(t3).routing
        routing = degrade_routing(twoturn, deg3, mode="detour")
        flows = routing.full_flows()
        fast = general_worst_case_load(deg3, flows)
        slow = brute_force_general_worst_case(deg3, flows)
        assert fast.load == pytest.approx(slow.load, abs=0.0)
