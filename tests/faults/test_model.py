"""Fault-model layer: FaultSet, degrade(), and the fault pickers."""

import numpy as np
import pytest

from repro.faults import (
    DisconnectedNetworkError,
    FaultSet,
    adversarial_faults,
    degrade,
    random_faults,
)
from repro.routing import IVAL, DimensionOrderRouting
from repro.topology import Torus


@pytest.fixture(scope="module")
def t3():
    return Torus(3, 2)


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


class TestFaultSet:
    def test_normalizes_sorted_unique(self):
        fs = FaultSet(channels=(5, 2, 5), nodes=(3, 3, 1))
        assert fs.channels == (2, 5)
        assert fs.nodes == (1, 3)
        assert fs.num_faults == 4
        assert bool(fs)

    def test_empty_is_falsy(self):
        assert not FaultSet()
        assert FaultSet().describe() == "no faults"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FaultSet(channels=(-1,))
        with pytest.raises(ValueError):
            FaultSet(nodes=(-2,))

    def test_digest_is_canonical(self):
        assert (
            FaultSet(channels=(2, 5)).digest()
            == FaultSet(channels=(5, 2, 2)).digest()
        )
        assert (
            FaultSet(channels=(2,)).digest() != FaultSet(channels=(3,)).digest()
        )
        assert (
            FaultSet(channels=(2,)).digest() != FaultSet(nodes=(2,)).digest()
        )


class TestDegrade:
    def test_channel_removal_and_renumbering(self, t4):
        faults = FaultSet(channels=(3, 10))
        deg = degrade(t4, faults)
        assert deg.num_nodes == t4.num_nodes
        assert deg.num_channels == t4.num_channels - 2
        # new -> old skips the dead ones; old -> new marks them -1
        assert 3 not in deg.original_channel
        assert 10 not in deg.original_channel
        assert deg.channel_map[3] == -1
        assert deg.channel_map[10] == -1
        alive_old = [c for c in range(t4.num_channels) if c not in (3, 10)]
        for old in alive_old:
            new = deg.channel_map[old]
            assert deg.original_channel[new] == old
            assert deg.channel_src[new] == t4.channel_src[old]
            assert deg.channel_dst[new] == t4.channel_dst[old]
            assert deg.bandwidth[new] == t4.bandwidth[old]

    def test_node_fault_kills_incident_channels(self, t4):
        deg = degrade(t4, FaultSet(nodes=(5,)), require_connected=False)
        assert not deg.alive[5]
        assert 5 not in deg.alive_nodes
        assert (deg.channel_src != 5).all()
        assert (deg.channel_dst != 5).all()

    def test_distances_recomputed(self, t4):
        # Kill one +x link; some pair's shortest path must lengthen.
        deg = degrade(t4, FaultSet(channels=(0,)))
        d_base = t4.distance_matrix()
        d_deg = deg.distance_matrix()
        assert (d_deg >= d_base).all()
        assert (d_deg > d_base).any()

    def test_disconnection_detected(self, t3):
        # Kill every channel incident to node 0 (channel faults only):
        # node 0 has no surviving route, pairs involving it disconnect.
        incident = [
            c
            for c in range(t3.num_channels)
            if t3.channel_src[c] == 0 or t3.channel_dst[c] == 0
        ]
        with pytest.raises(DisconnectedNetworkError):
            degrade(t3, FaultSet(channels=tuple(incident)))
        # ... but the same cut is fine when node 0 itself is dead,
        # since dead endpoints carry no traffic.
        deg = degrade(t3, FaultSet(channels=tuple(incident), nodes=(0,)))
        deg.validate_degraded_connected()

    def test_out_of_range_rejected(self, t3):
        with pytest.raises(ValueError):
            degrade(t3, FaultSet(channels=(t3.num_channels,)))
        with pytest.raises(ValueError):
            degrade(t3, FaultSet(nodes=(t3.num_nodes,)))


class TestRandomFaults:
    def test_count_connectivity_and_prefixes(self, t4):
        rng = np.random.default_rng(0)
        fs = random_faults(t4, rng, 4)
        assert len(fs.channels) == 4
        for f in range(5):
            degrade(
                t4, FaultSet(channels=fs.channels[:f])
            ).validate_degraded_connected()

    def test_deterministic_per_seed(self, t4):
        a = random_faults(t4, np.random.default_rng(7), 3)
        b = random_faults(t4, np.random.default_rng(7), 3)
        assert a == b

    def test_rejects_bad_count(self, t4):
        with pytest.raises(ValueError):
            random_faults(t4, np.random.default_rng(0), t4.num_channels + 1)

    def test_raises_when_impossible(self, t3):
        # A 3-ary 2-cube cannot lose all 36 channels and stay connected.
        with pytest.raises(DisconnectedNetworkError):
            random_faults(t3, np.random.default_rng(0), t3.num_channels)


class TestAdversarialFaults:
    def test_kills_most_loaded_channel_first(self, t4):
        alg = DimensionOrderRouting(t4)
        flows = alg.full_flows()
        fs = adversarial_faults(t4, flows, 1)
        # The greedy pick must attain the maximum per-channel assignment
        # load over all channels (DOR's torus symmetry means ties, so
        # membership, not identity).
        from scipy.optimize import linear_sum_assignment

        loads = []
        for c in range(t4.num_channels):
            rows, cols = linear_sum_assignment(flows[:, :, c], maximize=True)
            loads.append(flows[rows, cols, c].sum() / t4.bandwidth[c])
        assert loads[fs.channels[0]] == pytest.approx(max(loads))

    def test_respects_connectivity(self, t4):
        alg = IVAL(t4)
        fs = adversarial_faults(t4, alg.full_flows(), 5)
        assert len(fs.channels) == 5
        degrade(t4, fs).validate_degraded_connected()
