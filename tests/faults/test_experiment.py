"""fault_wc engine tasks, the faults experiment, and its CLI surface."""

import pytest

from repro.cache import DesignCache, cache_key
from repro.experiments import faults
from repro.experiments.engine import (
    FAULT_ALGORITHMS,
    DesignTask,
    Engine,
)


@pytest.fixture()
def engine(tmp_path):
    return Engine(jobs=1, cache=DesignCache(tmp_path / "designs"))


class TestDesignTaskValidation:
    def test_requires_known_algorithm(self):
        with pytest.raises(ValueError, match="fault_wc task needs algorithm"):
            DesignTask(kind="fault_wc", k=3, algorithm="ROMM")

    def test_requires_known_reroute(self):
        with pytest.raises(ValueError, match="unknown reroute mode"):
            DesignTask(
                kind="fault_wc", k=3, algorithm="DOR", reroute="ostrich"
            )

    def test_faults_normalized(self):
        task = DesignTask(
            kind="fault_wc", k=3, algorithm="VAL", faults=(5, 2, 5)
        )
        assert task.faults == (2, 5)


class TestCacheKey:
    def test_key_varies_with_fault_set(self):
        base = dict(kind="fault_wc", k=3, algorithm="VAL")
        keys = {
            cache_key(DesignTask(faults=f, **base).cache_payload())
            for f in [(), (2,), (5,), (2, 5)]
        }
        assert len(keys) == 4

    def test_key_varies_with_algorithm_and_reroute(self):
        a = DesignTask(kind="fault_wc", k=3, algorithm="VAL", faults=(2,))
        b = DesignTask(kind="fault_wc", k=3, algorithm="IVAL", faults=(2,))
        c = DesignTask(
            kind="fault_wc",
            k=3,
            algorithm="VAL",
            faults=(2,),
            reroute="renormalize",
        )
        keys = {cache_key(t.cache_payload()) for t in (a, b, c)}
        assert len(keys) == 3

    def test_degraded_never_collides_with_pristine(self):
        faulted = DesignTask(kind="fault_wc", k=3, algorithm="2TURN")
        pristine = DesignTask(kind="twoturn", k=3)
        assert cache_key(faulted.cache_payload()) != cache_key(
            pristine.cache_payload()
        )


class TestEngineFaultWC:
    def test_known_values_and_cache_roundtrip(self, engine):
        # k = 3, channel 2 dead, detour: loads established interactively
        # and pinned by tests/faults/test_reroute.py.
        tasks = [
            DesignTask(
                kind="fault_wc", k=3, algorithm=alg, faults=(2,)
            )
            for alg in ("DOR", "VAL", "IVAL")
        ]
        first = engine.run(tasks)
        assert [r.cache_hit for r in first] == [False] * 3
        assert first[0].load == pytest.approx(2.0)
        assert first[1].load == pytest.approx(4.0 / 3.0)
        assert first[2].load == pytest.approx(4.0 / 3.0)
        for r in first:
            assert r.doc["disconnected"] is False
            assert r.doc["num_faults"] == 1
            assert r.avg_path_length > 0.0
        second = engine.run(tasks)
        assert [r.cache_hit for r in second] == [True] * 3
        assert [r.load for r in second] == [r.load for r in first]

    def test_disconnected_is_a_result_not_an_error(self, engine):
        # DOR + renormalize loses a commodity on the first link failure.
        result = engine.run_one(
            DesignTask(
                kind="fault_wc",
                k=3,
                algorithm="DOR",
                faults=(2,),
                reroute="renormalize",
            )
        )
        assert result.doc["disconnected"] is True
        assert result.load == 0.0

    def test_no_faults_matches_pristine_wc(self, engine):
        # fault_wc with an empty fault set is just the general evaluator
        # on the pristine torus.
        from repro.metrics import general_worst_case_load
        from repro.routing import VAL
        from repro.topology import Torus

        t3 = Torus(3, 2)
        expected = general_worst_case_load(t3, VAL(t3).full_flows()).load
        result = engine.run_one(
            DesignTask(kind="fault_wc", k=3, algorithm="VAL")
        )
        assert result.doc["disconnected"] is False
        assert result.doc["num_faults"] == 0
        assert result.load == pytest.approx(expected)


class TestFaultsExperiment:
    def test_fast_sweep_shape(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        data = faults.run(k=3, seed=7, engine=engine, failures=1, cycles=600)
        assert len(data.fault_sequence) == 1
        assert len(data.rows_data) == 2 * len(FAULT_ALGORITHMS)
        for f, alg, theta, lo, hi in data.rows_data:
            assert f in (0, 1)
            assert alg in FAULT_ALGORITHMS
            assert theta >= 0.0
            assert 0.0 <= lo <= hi <= 1.0
        text = data.render()
        assert "Fault sweep" in text
        assert "failed-channel sequence:" in text

    def test_renormalize_zeroes_dor(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        data = faults.run(
            k=3,
            seed=7,
            engine=engine,
            failures=1,
            reroute="renormalize",
            cycles=600,
        )
        by_case = {(f, alg): theta for f, alg, theta, _, _ in data.rows_data}
        assert by_case[(1, "DOR")] == 0.0
        assert by_case[(0, "DOR")] > 0.0

    def test_rejects_negative_failures(self, engine):
        with pytest.raises(ValueError, match="failures"):
            faults.run(k=3, engine=engine, failures=-1)


class TestCLISurface:
    def test_parser_accepts_fault_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "run",
                "faults",
                "--k",
                "4",
                "--failures",
                "2",
                "--reroute",
                "renormalize",
            ]
        )
        assert args.experiment == "faults"
        assert args.failures == 2
        assert args.reroute == "renormalize"

    def test_reroute_choices_enforced(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "faults", "--reroute", "ostrich"]
            )
        capsys.readouterr()
