"""Tests for the parallel experiment engine and the design cache."""

import json

import numpy as np
import pytest

from repro.cache import (
    DesignCache,
    cache_key,
    code_fingerprint,
    default_cache_dir,
    sample_digest,
)
from repro.core.worst_case import design_worst_case
from repro.experiments.engine import (
    DesignTask,
    Engine,
    TaskMetrics,
    resolve_jobs,
    solve_task,
)
from repro.topology import Torus, TranslationGroup
from repro.traffic.doubly_stochastic import sample_traffic_set


@pytest.fixture()
def sample4():
    rng = np.random.default_rng(7)
    return tuple(sample_traffic_set(rng, 16, 3, num_permutations=2))


class TestDesignTask:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            DesignTask(kind="nope", k=4)

    def test_point_kinds_need_ratio(self):
        with pytest.raises(ValueError, match="locality ratio"):
            DesignTask(kind="wc_point", k=4)

    def test_average_kinds_need_sample(self):
        with pytest.raises(ValueError, match="traffic sample"):
            DesignTask(kind="twoturn_avg", k=4)

    def test_label_not_in_cache_payload(self):
        a = DesignTask(kind="wc_point", k=4, ratio=1.5, label="one")
        b = DesignTask(kind="wc_point", k=4, ratio=1.5, label="two")
        assert a.cache_payload() == b.cache_payload()
        assert cache_key(a.cache_payload()) == cache_key(b.cache_payload())

    def test_key_varies_with_every_field(self, sample4):
        base = DesignTask(kind="wc_point", k=4, ratio=1.5)
        variants = [
            DesignTask(kind="wc_point", k=5, ratio=1.5),
            DesignTask(kind="wc_point", k=4, n=3, ratio=1.5),
            DesignTask(kind="wc_point", k=4, ratio=1.25),
            DesignTask(kind="wc_point", k=4, ratio=1.5, sense="=="),
            DesignTask(kind="wc_opt", k=4),
            DesignTask(kind="avg_point", k=4, ratio=1.5, sample=sample4),
        ]
        keys = {cache_key(t.cache_payload()) for t in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_sample_content_enters_key(self, sample4):
        a = DesignTask(kind="avg_point", k=4, ratio=1.5, sample=sample4)
        perturbed = (sample4[0] + 1e-9,) + sample4[1:]
        b = DesignTask(kind="avg_point", k=4, ratio=1.5, sample=perturbed)
        assert cache_key(a.cache_payload()) != cache_key(b.cache_payload())


class TestCacheKey:
    def test_sample_digest_order_sensitive(self, sample4):
        assert sample_digest(sample4) != sample_digest(tuple(reversed(sample4)))

    def test_key_includes_code_fingerprint(self, monkeypatch):
        payload = {"kind": "wc_opt", "k": 4, "n": 2}
        before = cache_key(payload)
        monkeypatch.setattr("repro.cache.code_fingerprint", lambda: "different")
        assert cache_key(payload) != before

    def test_fingerprint_stable_and_hex(self):
        assert code_fingerprint() == code_fingerprint()
        int(code_fingerprint(), 16)

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
        assert default_cache_dir() == tmp_path / "x"


class TestDesignCache:
    def test_roundtrip(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.put("abc", {"load": 1.5})
        assert "abc" in cache
        assert cache.get("abc") == {"load": 1.5}
        assert len(cache) == 1

    def test_miss(self, tmp_path):
        cache = DesignCache(tmp_path)
        assert cache.get("nothing") is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DesignCache(tmp_path)
        cache.put("abc", {"load": 1.5})
        (tmp_path / "abc.json").write_text("{not json")
        assert cache.get("abc") is None


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_is_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(0)


class TestEngineExecution:
    def test_serial_matches_direct_solve(self, tmp_path):
        t4 = Torus(4, 2)
        g4 = TranslationGroup(t4)
        direct = design_worst_case(
            t4, locality_hops=1.5 * t4.mean_min_distance(),
            locality_sense="<=", group=g4,
        )
        engine = Engine(jobs=1, cache=DesignCache(tmp_path))
        res = engine.run_one(DesignTask(kind="wc_point", k=4, ratio=1.5))
        assert res.load == pytest.approx(direct.worst_case_load, rel=1e-9)
        np.testing.assert_array_equal(res.flows, direct.flows)

    def test_parallel_matches_serial(self, tmp_path):
        tasks = [
            DesignTask(kind="wc_point", k=4, ratio=r) for r in (1.0, 1.5, 2.0)
        ]
        serial = Engine(jobs=1, cache=None).run(tasks)
        parallel = Engine(jobs=2, cache=None).run(tasks)
        for s, p in zip(serial, parallel):
            assert s.load == p.load
            np.testing.assert_array_equal(s.flows, p.flows)

    def test_second_run_is_all_cache_hits_and_bit_identical(self, tmp_path):
        cache = DesignCache(tmp_path)
        tasks = [
            DesignTask(kind="wc_point", k=4, ratio=r) for r in (1.2, 1.8)
        ]
        cold = Engine(jobs=1, cache=cache)
        first = cold.run(tasks)
        assert cold.solves == 2 and cold.hits == 0

        warm = Engine(jobs=1, cache=cache)
        second = warm.run(tasks)
        assert warm.solves == 0 and warm.hits == 2
        for a, b in zip(first, second):
            assert a.load == b.load  # exact, not approx
            np.testing.assert_array_equal(a.flows, b.flows)

    def test_no_cache_bypasses(self, tmp_path):
        cache = DesignCache(tmp_path)
        task = DesignTask(kind="wc_point", k=4, ratio=1.5)
        Engine(jobs=1, cache=cache).run_one(task)
        assert len(cache) == 1
        uncached = Engine(jobs=1, cache=None)
        uncached.run_one(task)
        assert uncached.solves == 1  # solved again, no cache consulted
        assert len(cache) == 1  # and nothing new written

    def test_key_change_invalidates(self, tmp_path):
        cache = DesignCache(tmp_path)
        engine = Engine(jobs=1, cache=cache)
        engine.run_one(DesignTask(kind="wc_point", k=4, ratio=1.5))
        engine.run_one(DesignTask(kind="wc_point", k=4, ratio=1.6))
        assert engine.solves == 2 and engine.hits == 0

    def test_code_change_invalidates(self, tmp_path, monkeypatch):
        cache = DesignCache(tmp_path)
        task = DesignTask(kind="wc_point", k=4, ratio=1.5)
        Engine(jobs=1, cache=cache).run_one(task)
        monkeypatch.setattr("repro.cache.code_fingerprint", lambda: "edited")
        fresh = Engine(jobs=1, cache=cache)
        fresh.run_one(task)
        assert fresh.solves == 1 and fresh.hits == 0

    def test_twoturn_task_roundtrips_routing(self, tmp_path):
        from repro.routing import design_2turn

        t4 = Torus(4, 2)
        cache = DesignCache(tmp_path)
        Engine(jobs=1, cache=cache).run_one(DesignTask(kind="twoturn", k=4))
        res = Engine(jobs=1, cache=cache).run_one(DesignTask(kind="twoturn", k=4))
        assert res.cache_hit
        native = design_2turn(t4)
        loaded = res.routing(t4)
        loaded.validate()
        np.testing.assert_allclose(
            loaded.canonical_flows, native.routing.canonical_flows, atol=1e-12
        )

    def test_mixed_batch_preserves_order(self, tmp_path, sample4):
        tasks = [
            DesignTask(kind="wc_opt", k=4),
            DesignTask(kind="avg_point", k=4, ratio=1.5, sample=sample4),
            DesignTask(kind="wc_point", k=4, ratio=1.1),
        ]
        results = Engine(jobs=1, cache=DesignCache(tmp_path)).run(tasks)
        assert [r.task.kind for r in results] == [t.kind for t in tasks]


class TestMetrics:
    def test_metrics_recorded(self, tmp_path):
        engine = Engine(jobs=1, cache=DesignCache(tmp_path))
        engine.run_one(DesignTask(kind="wc_point", k=4, ratio=1.5, label="pt"))
        (m,) = engine.metrics
        assert m.label == "pt" and m.kind == "wc_point"
        assert not m.cache_hit
        assert m.solve_time > 0
        assert m.variables > 0 and m.rows > 0 and m.nonzeros > 0
        assert len(m.row()) == len(TaskMetrics.CSV_HEADERS)

    def test_summary_counts(self, tmp_path):
        cache = DesignCache(tmp_path)
        Engine(jobs=1, cache=cache).run_one(
            DesignTask(kind="wc_point", k=4, ratio=1.5)
        )
        warm = Engine(jobs=1, cache=cache)
        warm.run_one(DesignTask(kind="wc_point", k=4, ratio=1.5))
        assert "0 solved" in warm.summary()
        assert "1 cache hits" in warm.summary()

    def test_empty_engine_summary(self):
        assert Engine(jobs=1, cache=None).summary() == ""


class TestSolveTaskDoc:
    def test_doc_is_json_serializable(self, tmp_path):
        doc = solve_task(DesignTask(kind="wc_point", k=4, ratio=1.5))
        blob = json.dumps(doc)
        assert json.loads(blob)["payload"]["kind"] == "wc_point"
        assert doc["model_stats"]["variables"] > 0
        assert doc["solve_time"] > 0
