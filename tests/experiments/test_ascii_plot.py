"""Tests for the terminal plot renderer."""

import pytest

from repro.experiments.ascii_plot import ascii_plot, tradeoff_plot


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot(
            "demo",
            {"a": [(0.0, 0.0), (1.0, 1.0)], "b": [(0.5, 0.5)]},
            width=20,
            height=10,
        )
        assert "demo" in text
        assert "legend: o a   * b" in text
        assert "[0.000 .. 1.000]" in text

    def test_markers_placed(self):
        text = ascii_plot("t", {"a": [(0, 0), (1, 1)]}, width=11, height=5)
        rows = [l for l in text.splitlines() if l.startswith("|")]
        # bottom-left and top-right corners carry the marker
        assert rows[0][-2] == "o"  # top row, right edge
        assert rows[-1][1] == "o"  # bottom row, left edge

    def test_degenerate_single_point(self):
        text = ascii_plot("t", {"a": [(2.0, 3.0)]})
        assert "[2.000 .. 2.000]" in text
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            ascii_plot("t", {"a": []})

    def test_later_series_wins_cell(self):
        text = ascii_plot(
            "t", {"a": [(0, 0), (1, 1)], "b": [(0, 0)]}, width=9, height=5
        )
        rows = [l for l in text.splitlines() if l.startswith("|")]
        assert rows[-1][1] == "*"  # b overwrote a at the origin


class TestTradeoffPlot:
    def test_axes_orientation(self):
        text = tradeoff_plot(
            "fig",
            curve=[(1.0, 0.3), (1.5, 0.5)],
            points={"VAL": (2.0, 0.5)},
            throughput_label="Theta/cap",
        )
        assert "Theta/cap" in text
        assert "H_avg / H_min" in text
        assert "VAL" in text
