"""Experiment-harness tests on a small torus (k = 4) — shape checks of
every figure's data, kept fast; the paper-scale k = 8 numbers live in
benchmarks/ and EXPERIMENTS.md."""

import logging
import math

import numpy as np
import pytest

from repro.experiments import make_context, render_table
from repro.experiments import fig1, fig4, fig5, fig6, headline, sim_validation
from repro.experiments.runner import EXPERIMENTS, run_experiment


@pytest.fixture(scope="module")
def ctx4():
    return make_context(k=4, seed=11, eval_samples=12, design_samples=6)


class TestContext:
    def test_fields(self, ctx4):
        assert ctx4.torus.k == 4
        assert ctx4.capacity_load == pytest.approx(0.5)
        assert len(ctx4.eval_sample) == 12
        assert len(ctx4.design_sample) == 6
        assert ctx4.h_min == pytest.approx(2.0)

    def test_samples_are_independent(self, ctx4):
        assert not np.allclose(ctx4.eval_sample[0], ctx4.design_sample[0])


class TestFig1:
    def test_shape(self, ctx4):
        data = fig1.run(ctx4, num_points=4)
        assert len(data.curve) == 4
        assert set(data.points) == {"DOR", "VAL", "ROMM", "RLB", "RLBth"}

    def test_curve_monotone(self, ctx4):
        data = fig1.run(ctx4, num_points=4)
        ths = [th for _, th in data.curve]
        assert all(a <= b + 1e-7 for a, b in zip(ths, ths[1:]))

    def test_val_at_half_capacity(self, ctx4):
        data = fig1.run(ctx4, num_points=3)
        h, th = data.points["VAL"]
        assert th == pytest.approx(0.5, abs=1e-6)

    def test_points_inside_feasible_region(self, ctx4):
        # no algorithm may beat the optimal curve
        data = fig1.run(ctx4, num_points=5)
        hs = np.asarray([h for h, _ in data.curve])
        ths = np.asarray([th for _, th in data.curve])
        for name, (h, th) in data.points.items():
            bound = float(np.interp(min(h, hs[-1]), hs, ths))
            assert th <= bound + 1e-6, name

    def test_render(self, ctx4):
        text = fig1.run(ctx4, num_points=3).render()
        assert "Figure 1" in text and "DOR" in text


class TestFig4:
    def test_series(self):
        data = fig4.run(radices=(4, 5))
        assert data.radices == [4, 5]
        # IVAL >= 2TURN >= optimal, everywhere
        for i in range(2):
            assert data.ival[i] >= data.two_turn[i] - 1e-9
            assert data.two_turn[i] >= data.optimal[i] - 1e-6

    def test_2turn_matches_optimal_at_k4(self):
        data = fig4.run(radices=(4,))
        assert data.two_turn[0] == pytest.approx(data.optimal[0], rel=1e-4)


class TestFig5:
    def test_families(self, ctx4):
        data = fig5.run(ctx4, num_alphas=3, curve_points=4)
        assert len(data.dor_ival) == 3
        assert len(data.dor_2turn) == 3
        # endpoints: alpha=0 is DOR (minimal locality), alpha=1 is
        # IVAL/2TURN (worst-case optimal at half capacity)
        assert data.dor_ival[0][1] == pytest.approx(1.0, abs=1e-6)  # H(DOR)
        assert data.dor_ival[-1][2] == pytest.approx(0.5, abs=1e-6)
        assert data.dor_2turn[-1][2] == pytest.approx(0.5, abs=1e-6)

    def test_gap_statistics_nonnegative(self, ctx4):
        data = fig5.run(ctx4, num_alphas=3, curve_points=4)
        assert data.max_gap_ival >= -1e-6
        assert data.max_gap_2turn <= data.max_gap_ival + 0.05

    def test_render(self, ctx4):
        assert "max locality gap" in fig5.run(ctx4, 3, 4).render()

    def test_max_gap_skips_points_outside_curve_support(self):
        # curve: throughput 0.4 -> H 1.0, throughput 0.5 -> H 2.0
        curve = [(1.0, 0.4), (2.0, 0.5)]
        # In-support point: 10% above the optimal locality at th=0.45.
        inside = (0.0, 1.65, 0.45)
        # Out-of-range point: np.interp would clamp to the th=0.5
        # endpoint (H_opt 2.0) and report a large spurious "gap" for a
        # throughput the curve never sampled.
        outside = (0.0, 9.9, 0.9)
        gap = fig5._max_gap([inside, outside], curve)
        assert gap == pytest.approx(1.65 / 1.5 - 1.0)
        assert math.isnan(fig5._max_gap([outside], curve))


class TestFig6:
    def test_shape_and_points(self, ctx4):
        data = fig6.run(ctx4, num_points=3)
        assert len(data.curve) == 3
        assert {"2TURN", "2TURNA", "IVAL", "VAL"} <= set(data.points)
        assert data.max_average_throughput > 0.4

    def test_throughputs_bounded_by_capacity(self, ctx4):
        data = fig6.run(ctx4, num_points=3)
        for name, (_, th) in data.points.items():
            assert th <= 1.0 + 1e-9, name

    def test_render(self, ctx4):
        assert "max average-case throughput" in fig6.run(ctx4, 3).render()


class TestHeadline:
    def test_table(self, ctx4):
        data = headline.run(ctx4)
        assert "WC-OPTIMAL" in data.table
        h, wc, avg = data.table["WC-OPTIMAL"]
        assert wc == pytest.approx(0.5, abs=1e-4)
        assert data.table["2TURN"][1] == pytest.approx(0.5, abs=1e-4)
        assert data.table["DOR"][0] == pytest.approx(1.0)


class TestSimValidation:
    def test_rows(self):
        data = sim_validation.run(k=4, cycles=1200, seed=1)
        assert len(data.rows()) == 5
        for name, traffic, analytic, lo, hi in data.rows():
            assert 0.0 <= lo <= hi <= 1.0
            # empirical bracket near the (capped) analytic value
            assert abs(min(analytic, 1.0) - 0.5 * (lo + hi)) < 0.15


class TestRunner:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1",
            "fig4",
            "fig5",
            "fig6",
            "headline",
            "sim",
            "adaptive",
            "faults",
            "rotor",
            "design-scale",
            "topo3d",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("nope")

    def test_run_and_csv(self, tmp_path, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_FAST", "1")
        with caplog.at_level(logging.INFO, logger="repro"):
            data, text = run_experiment(
                "sim", k=4, seed=3, out_dir=str(tmp_path)
            )
        # the rendered table is results-only; timing goes to the logger
        assert text == data.render()
        assert any("sim:" in r.getMessage() for r in caplog.records)
        assert (tmp_path / "sim.csv").exists()


class TestRenderTable:
    def test_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], ["xyz", 3]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.5000" in text
        assert "xyz" in text

    def test_empty_rows(self):
        text = render_table("T", ["col"], [])
        assert "col" in text


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "headline" in out

    def test_run_sim(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_FAST", "1")
        assert main(["run", "sim", "--k", "4", "--seed", "5"]) == 0
        assert "saturation" in capsys.readouterr().out

    def test_fast_flag_sets_env(self, capsys, monkeypatch):
        from repro.cli import main
        from repro.experiments.common import fast_mode

        monkeypatch.delenv("REPRO_FAST", raising=False)
        assert main(["run", "sim", "--k", "4", "--fast"]) == 0
        assert fast_mode()
        capsys.readouterr()


class TestFastMode:
    def test_fast_mode_flag(self, monkeypatch):
        from repro.experiments.common import fast_mode

        monkeypatch.setenv("REPRO_FAST", "0")
        assert not fast_mode()
        monkeypatch.setenv("REPRO_FAST", "1")
        assert fast_mode()
        monkeypatch.delenv("REPRO_FAST")
        assert not fast_mode()

    def test_fast_context_shrinks_samples(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        from repro.experiments import make_context

        ctx = make_context(k=4, eval_samples=100, design_samples=25)
        assert len(ctx.eval_sample) <= 20
        assert len(ctx.design_sample) <= 8
