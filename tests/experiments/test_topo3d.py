"""The topo3d experiment: heterogeneous 3-D sweep plumbing."""

import numpy as np
import pytest

from repro.experiments import topo3d
from repro.experiments.engine import DesignTask, Engine
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.routing.serialize import flows_from_doc, flows_to_doc
from repro.topology import Torus


@pytest.fixture(autouse=True)
def _fast(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")


@pytest.fixture()
def engine():
    return Engine(jobs=1, cache=None)


class TestTorusMode:
    def test_single_point_sweep(self, engine):
        data = topo3d.run(
            k=3, engine=engine, bandwidths=(1.0, 1.0, 0.5), cycles=200
        )
        assert data.topology == "torus"
        assert [r[1] for r in data.rows()] == ["DOR", "VAL", "IVAL", "OPT"]
        by_alg = {r[1]: r for r in data.rows()}
        bz, _, theta, cap, ratio = by_alg["OPT"]
        assert bz == 0.5
        assert ratio == pytest.approx(theta / cap)
        # the optimal design dominates every fixed algorithm
        for alg in ("DOR", "VAL", "IVAL"):
            assert theta >= by_alg[alg][2] - 1e-6
        # VAL's two-phase bound survives; DOR breaks it
        breakpoints = dict(data.breakpoints)
        assert breakpoints["VAL"] is None
        assert breakpoints["DOR"] == 0.5

    def test_fast_mode_sweeps_two_points(self, engine):
        data = topo3d.run(k=3, engine=engine, cycles=200)
        assert sorted({r[0] for r in data.rows()}, reverse=True) == [1.0, 0.5]

    def test_render_mentions_bound_and_saturation(self, engine):
        data = topo3d.run(
            k=3, engine=engine, bandwidths=(1.0, 1.0, 0.5), cycles=200
        )
        text = data.render()
        assert "50% worst-case bound" in text
        assert "simulated saturation" in text

    def test_2d_dims_supported(self, engine):
        data = topo3d.run(
            k=3, engine=engine, dims=2, bandwidths=(1.0, 0.5), cycles=200
        )
        assert "3-ary 2-cube" in data.instance


class TestValidation:
    def test_unknown_topology(self, engine):
        with pytest.raises(ValueError, match="unknown topology"):
            topo3d.run(engine=engine, topology="hyperx")

    def test_bandwidths_length_mismatch(self, engine):
        with pytest.raises(ValueError, match="--bandwidths"):
            topo3d.run(engine=engine, bandwidths=(1.0, 0.5))

    def test_nonpositive_bandwidths(self, engine):
        with pytest.raises(ValueError, match="positive"):
            topo3d.run(engine=engine, bandwidths=(1.0, 1.0, 0.0))

    def test_pillar_requires_3d(self, engine):
        with pytest.raises(ValueError, match="3-D"):
            topo3d.run(engine=engine, topology="pillar", dims=2)


class TestGeneralModes:
    def test_pillar_fast_mode(self):
        data = topo3d.run(k=3, topology="pillar", bandwidths=(1.0, 1.0, 0.5))
        assert data.topology == "pillar"
        assert "pillar-cube" in data.instance
        assert "b=" not in data.instance
        # fast mode evaluates shortest-path routing only
        assert [r[1] for r in data.rows()] == ["SP"]

    def test_radix_clamped_for_general_lp(self, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro"):
            data = topo3d.run(k=5, topology="mesh", bandwidths=(1.0, 1.0, 0.5))
        assert "3-ary" in data.instance
        assert any(
            "caps the mesh radix" in r.getMessage() for r in caplog.records
        )


class TestRunnerIntegration:
    def test_registered(self):
        assert "topo3d" in EXPERIMENTS
        assert EXPERIMENTS["topo3d"].get("topo") is True

    def test_kwargs_pass_through(self, engine):
        data, text = run_experiment(
            "topo3d",
            k=3,
            engine=engine,
            bandwidths=(1.0, 1.0, 0.5),
            sim_backend="reference",
        )
        assert "Z-slowdown sweep" in text
        assert {r[0] for r in data.rows()} == {0.5}

    def test_topo_kwargs_ignored_by_other_experiments(self, engine):
        # passing topology flags to a non-topo experiment must not leak
        data, _ = run_experiment(
            "fig4", k=3, engine=engine, topology="pillar", dims=3
        )
        assert data.rows()


class TestEngineBandwidthsCacheKey:
    def test_key_varies_with_bandwidths(self):
        base = DesignTask(kind="wc_opt", k=3, n=3)
        hetero = DesignTask(kind="wc_opt", k=3, n=3, bandwidths=(1.0, 1.0, 0.5))
        assert base.cache_payload() != hetero.cache_payload()
        assert hetero.cache_payload()["bandwidths"] == [1.0, 1.0, 0.5]

    def test_unit_bandwidths_normalize_to_legacy_key(self):
        base = DesignTask(kind="wc_opt", k=3, n=3)
        unit = DesignTask(kind="wc_opt", k=3, n=3, bandwidths=(1.0, 1.0, 1.0))
        assert base.cache_payload() == unit.cache_payload()
        assert "bandwidths" not in unit.cache_payload()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DesignTask(kind="wc_opt", k=3, n=3, bandwidths=(1.0, 0.5))

    def test_solved_design_carries_bandwidths(self, engine):
        task = DesignTask(kind="wc_opt", k=3, n=2, bandwidths=(1.0, 0.5))
        result = engine.run_one(task)
        doc = result.doc["flows"]
        assert doc["topology"]["bandwidths"] == [1.0, 0.5]
        flows = flows_from_doc(doc)
        assert flows.shape == (9, 9 * 4)


class TestSerializeBandwidths:
    def test_roundtrip_heterogeneous(self):
        torus = Torus(3, 3, bandwidths=(1.0, 1.0, 0.5))
        flows = np.zeros((torus.num_nodes, torus.num_channels))
        doc = flows_to_doc(flows, torus)
        out = flows_from_doc(doc)  # reconstructs the torus from the doc
        assert out.shape == flows.shape

    def test_mismatch_detected(self):
        hetero = Torus(3, 3, bandwidths=(1.0, 1.0, 0.5))
        homo = Torus(3, 3)
        doc = flows_to_doc(
            np.zeros((hetero.num_nodes, hetero.num_channels)), hetero
        )
        with pytest.raises(ValueError, match="topology mismatch"):
            flows_from_doc(doc, homo)

    def test_uniform_nonunit_bandwidth_roundtrips(self):
        torus = Torus(3, 2, bandwidth=2.0)
        doc = flows_to_doc(
            np.zeros((torus.num_nodes, torus.num_channels)), torus
        )
        assert doc["topology"]["bandwidths"] == [2.0, 2.0]
        flows_from_doc(doc, torus)  # matches; no exception
