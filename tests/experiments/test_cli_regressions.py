"""CLI-level regression tests: argument wiring, output paths, caching.

Covers the bugs fixed alongside the experiment engine: ``fig4``
silently ignoring ``--k``, silent radix clamping in ``sim``/``adaptive``,
CSV output into not-yet-existing directories, and the cache/metrics
flags threaded through the CLI.
"""

import csv
import logging

import pytest

from repro.cli import main
from repro.experiments import fig4
from repro.experiments.common import save_csv
from repro.experiments.runner import (
    RADIX_CLAMP_MESSAGE,
    SIM_RADIX_LIMIT,
    _fig4_radices,
    _sim_radix,
    run_experiment,
)


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_FAST", "1")
    monkeypatch.setenv("REPRO_JOBS", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestFig4HonoursArguments:
    def test_radices_follow_k(self):
        assert _fig4_radices(3) == (3,)
        assert _fig4_radices(5) == (3, 4, 5)

    def test_too_small_k_rejected(self):
        with pytest.raises(ValueError, match="fig4 needs k >= 3"):
            _fig4_radices(2)

    def test_output_varies_with_k(self, capsys):
        assert main(["run", "fig4", "--k", "3"]) == 0
        out3 = capsys.readouterr().out
        assert main(["run", "fig4", "--k", "4"]) == 0
        out4 = capsys.readouterr().out
        assert out3 != out4
        # the k=4 run contains the extra radix row, the k=3 run does not
        assert any(line.startswith("4") for line in out4.splitlines())
        assert not any(line.startswith("4") for line in out3.splitlines())

    def test_run_experiment_honours_k(self):
        data3, _ = run_experiment("fig4", k=3)
        data4, _ = run_experiment("fig4", k=4)
        assert data3.radices == [3]
        assert data4.radices == [3, 4]

    def test_direct_run_validates_radices(self):
        with pytest.raises(ValueError, match="radices >= 3"):
            fig4.run(radices=(2, 3))
        with pytest.raises(ValueError, match="at least one radix"):
            fig4.run(radices=())

    def test_cli_reports_bad_values_cleanly(self, capsys):
        # invalid --k / --jobs exit 2 with a one-line error, not a traceback
        assert main(["run", "fig4", "--k", "2"]) == 2
        err = capsys.readouterr().err
        assert "repro-experiments: error: fig4 needs k >= 3" in err
        assert "Traceback" not in err

        assert main(["run", "fig4", "--k", "3", "--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert "repro-experiments: error: jobs must be >= 1" in err


class TestSimRadixCap:
    def test_within_limit_passes_through(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert _sim_radix("sim", 4) == 4
        assert caplog.records == []

    def test_clamp_warns_with_the_one_canonical_message(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert _sim_radix("sim", 8) == SIM_RADIX_LIMIT
        (record,) = caplog.records
        assert record.levelno == logging.WARNING
        assert record.name == "repro.experiments.runner"
        # every clamp site shares this exact message template
        assert record.msg == RADIX_CLAMP_MESSAGE
        assert record.getMessage() == RADIX_CLAMP_MESSAGE % (
            "sim", SIM_RADIX_LIMIT, 8
        )


class TestCsvOutputPaths:
    def test_save_csv_creates_missing_directories(self, tmp_path):
        target = tmp_path / "fresh" / "nested" / "dir" / "rows.csv"
        save_csv(str(target), ["a", "b"], [[1, 2]])
        assert target.exists()
        with open(target) as fh:
            assert list(csv.reader(fh)) == [["a", "b"], ["1", "2"]]

    def test_cli_out_into_fresh_nested_directory(self, tmp_path, capsys):
        out = tmp_path / "results" / "deep" / "run1"
        assert (
            main(["run", "sim", "--k", "4", "--seed", "3", "--out", str(out)])
            == 0
        )
        capsys.readouterr()
        assert (out / "sim.csv").exists()


class TestCacheAndMetricsFlags:
    def test_second_run_is_all_cache_hits(self, tmp_path, capsys):
        metrics = tmp_path / "m" / "metrics.csv"
        args = ["run", "fig1", "--k", "4", "--metrics", str(metrics)]
        assert main(args) == 0
        first = capsys.readouterr()
        # engine diagnostics land on stderr; stdout stays results-only
        assert "0 cache hits" in first.err
        assert "cache hits" not in first.out

        assert main(args) == 0
        second = capsys.readouterr()
        assert "0 solved" in second.err

        with open(metrics) as fh:
            rows = list(csv.DictReader(fh))
        assert rows and all(r["cache_hit"] == "1" for r in rows)
        assert all(r["kind"] == "wc_point" for r in rows)
        assert all(int(r["lp_nonzeros"]) > 0 for r in rows)

    def test_no_cache_flag_bypasses(self, capsys):
        args = ["run", "fig1", "--k", "4"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "0 cache hits" in err  # cache ignored despite warm entries

    def test_cache_dir_flag_overrides_env(self, tmp_path, capsys):
        alt = tmp_path / "alt-cache"
        assert main(["run", "fig1", "--k", "4", "--cache-dir", str(alt)]) == 0
        capsys.readouterr()
        assert any(alt.glob("*.json"))

    def test_rows_identical_across_cache_and_jobs(self, capsys):
        data_cold, _ = run_experiment("fig1", k=4, use_cache=True)
        data_warm, _ = run_experiment("fig1", k=4, use_cache=True)
        data_par, _ = run_experiment("fig1", k=4, jobs=2, use_cache=False)
        assert data_cold.rows() == data_warm.rows() == data_par.rows()


class TestTopo3DFlags:
    def test_cli_runs_single_point(self, capsys):
        args = [
            "run", "topo3d", "--k", "3",
            "--bandwidths", "1,1,0.5", "--no-cache",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Z-slowdown sweep" in out
        assert "50% worst-case bound" in out

    def test_cli_rejects_malformed_bandwidths(self, capsys):
        rc = main(["run", "topo3d", "--bandwidths", "1,fast,0.5"])
        assert rc == 2
        assert "--bandwidths" in capsys.readouterr().err

    def test_cli_rejects_wrong_arity(self, capsys):
        rc = main(["run", "topo3d", "--k", "3", "--bandwidths", "1,0.5"])
        assert rc == 2
        assert "bandwidths" in capsys.readouterr().err

    def test_cli_rejects_unknown_topology(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "topo3d", "--topology", "hyperx"])
