"""Tests for the ``design-scale`` experiment and the engine's
``method`` plumbing (cache-key discipline + persisted certificates)."""

import json

import pytest

from repro import obs
from repro.cache import DesignCache
from repro.experiments import design_scale
from repro.experiments.engine import DesignTask, Engine, cache_key
from repro.experiments.runner import run_experiment
from repro.verify import recheck_cached_doc


class TestDesignScaleRun:
    def test_small_sweep_explicit_methods(self):
        data = design_scale.run(k=4, radices=(3, 4), method="colgen")
        assert [p.k for p in data.points] == [3, 4]
        assert all(p.method == "colgen" for p in data.points)
        assert all(p.solve_seconds > 0 for p in data.points)
        # k=3 2-D torus: Theta_wc = 1/load = 1/(2/3)
        assert data.points[0].theta_wc == pytest.approx(1.5, rel=1e-6)
        text = data.render()
        assert "re-certified" in text and "method=colgen" in text

    def test_auto_resolves_full_below_threshold(self):
        data = design_scale.run(k=4, radices=(4,), method="auto")
        assert data.points[0].method == "full"
        assert "re-certified" not in data.render()

    def test_default_radices_clip_to_k(self):
        data = design_scale.run(k=8, radices=None, method="full")
        assert [p.k for p in data.points] == [8]

    def test_engine_and_seed_ignored(self):
        a = design_scale.run(k=3, radices=(3,), method="full", engine=object())
        b = design_scale.run(k=3, radices=(3,), method="full", seed=7)
        assert a.points[0].theta_wc == b.points[0].theta_wc

    def test_bench_artifact_written_and_valid(self, tmp_path):
        design_scale.run(
            k=3, radices=(3,), method="colgen", bench_out=str(tmp_path)
        )
        path = tmp_path / "BENCH_design_scale.json"
        doc = obs.load_bench_doc(path)
        obs.validate_bench_doc(doc)
        assert doc["workload"]["radices"] == [3]
        assert "k3_colgen" in doc["timings"]
        row = doc["meta"]["rows"][0]
        assert row["method"] == "colgen" and row["k"] == 3

    def test_invalid_method_rejected_before_solving(self):
        with pytest.raises(ValueError):
            design_scale.run(k=3, radices=(3,), method="bogus")

    def test_runner_threads_scale_kwargs(self, tmp_path):
        data, text = run_experiment(
            "design-scale",
            k=4,
            radices=(3,),
            method="colgen",
            bench_out=str(tmp_path),
            use_cache=False,
        )
        assert data.points[0].method == "colgen"
        assert (tmp_path / "BENCH_design_scale.json").exists()
        assert "Theta_wc" in text


class TestEngineMethodField:
    def test_default_method_keeps_legacy_cache_key(self):
        legacy = DesignTask(kind="wc_opt", k=3)
        explicit = DesignTask(kind="wc_opt", k=3, method="full")
        auto_small = DesignTask(kind="wc_opt", k=3, method="auto")
        assert cache_key(legacy.cache_payload()) == cache_key(explicit.cache_payload())
        assert cache_key(legacy.cache_payload()) == cache_key(auto_small.cache_payload())
        assert "method" not in legacy.cache_payload()

    def test_colgen_gets_distinct_key(self):
        full = DesignTask(kind="wc_opt", k=3)
        colgen = DesignTask(kind="wc_opt", k=3, method="colgen")
        assert cache_key(full.cache_payload()) != cache_key(colgen.cache_payload())
        assert colgen.cache_payload()["method"] == "colgen"

    def test_auto_above_threshold_matches_explicit_colgen(self):
        # 100 nodes is the auto threshold: k=10 resolves to colgen.
        auto = DesignTask(kind="wc_opt", k=10, method="auto")
        colgen = DesignTask(kind="wc_opt", k=10, method="colgen")
        assert cache_key(auto.cache_payload()) == cache_key(colgen.cache_payload())

    def test_bogus_method_rejected(self):
        with pytest.raises(ValueError):
            DesignTask(kind="wc_opt", k=3, method="bogus")

    def test_non_worst_case_kinds_reject_method(self):
        with pytest.raises(ValueError):
            DesignTask(kind="twoturn", k=3, method="colgen")


class TestEngineColgenCertificates:
    def test_wc_opt_colgen_solves_and_certifies(self, tmp_path):
        engine = Engine(jobs=1, cache=DesignCache(tmp_path))
        task = DesignTask(kind="wc_opt", k=3, method="colgen")
        res = engine.run_one(task)
        full = Engine(jobs=1, cache=None).run_one(
            DesignTask(kind="wc_opt", k=3)
        )
        assert res.load == pytest.approx(full.load, rel=1e-6)
        assert res.doc["method"] == "colgen"
        cert = res.doc["colgen_certificate"]
        assert cert["passed"] and len(cert["checks"]) == 4
        assert {c["name"] for c in cert["checks"]} == {
            "colgen_oracle",
            "colgen_duality_gap",
            "colgen_sampled",
            "colgen_exhaustive",
        }

    def test_cached_colgen_doc_rechecks(self, tmp_path):
        cache = DesignCache(tmp_path)
        task = DesignTask(kind="wc_opt", k=3, method="colgen")
        Engine(jobs=1, cache=cache).run_one(task)
        doc = cache.get(cache_key(task.cache_payload()))
        report = recheck_cached_doc(doc)
        assert report.passed, report.render()
        names = {c.name for c in report.checks}
        assert "colgen_duality_gap" in names

    def test_corrupted_cached_bound_fails_recheck(self, tmp_path):
        cache = DesignCache(tmp_path)
        task = DesignTask(kind="wc_opt", k=3, method="colgen")
        Engine(jobs=1, cache=cache).run_one(task)
        doc = json.loads(json.dumps(cache.get(cache_key(task.cache_payload()))))
        doc["colgen"]["lower_bound"] *= 0.9
        report = recheck_cached_doc(doc)
        assert not report.passed
