"""End-to-end integration: design -> recover -> verify -> simulate.

Drives the full pipeline a user of the library would run: solve a design
LP, materialize the flows as an explicit routing algorithm, check its
metrics against the LP objectives, verify deadlock freedom, and confirm
in the packet simulator that the analytic saturation point is real.
"""

import numpy as np
import pytest

from repro import (
    SimulationConfig,
    Torus,
    design_2turn,
    design_worst_case,
    routing_from_flows,
    simulate,
    solve_capacity,
    turn_increment_scheme,
    verify_deadlock_freedom,
    worst_case_load,
)


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


class TestDesignToSimulation:
    def test_worst_case_design_pipeline(self, t4):
        cap = solve_capacity(t4)
        design = design_worst_case(t4, minimize_locality=True)
        alg = routing_from_flows(t4, design.flows, "wc-opt")
        alg.validate()

        wc = worst_case_load(alg)
        assert wc.load == pytest.approx(design.worst_case_load, rel=1e-5)
        assert cap.load / wc.load == pytest.approx(0.5, rel=1e-5)

        adversary = wc.traffic_matrix()
        theta = wc.throughput

        below = simulate(
            alg,
            adversary,
            SimulationConfig(
                cycles=2500, warmup=800, injection_rate=0.8 * theta, seed=0
            ),
        )
        assert below.stable

        above_rate = min(1.0, 1.3 * theta)
        above = simulate(
            alg,
            adversary,
            SimulationConfig(
                cycles=2500, warmup=800, injection_rate=above_rate, seed=0
            ),
        )
        if above_rate > theta * 1.05:
            assert not above.stable

    def test_2turn_design_pipeline(self, t4):
        design = design_2turn(t4)
        alg = design.routing
        alg.validate()

        # deadlock-free with the paper's 4-VC scheme
        report = verify_deadlock_freedom(alg, turn_increment_scheme)
        assert report.deadlock_free and report.num_vcs <= 4

        # optimal worst case survives the whole pipeline
        wc = worst_case_load(alg)
        cap = solve_capacity(t4)
        assert cap.load / wc.load == pytest.approx(0.5, rel=1e-4)

        # simulate under uniform at 80% of its uniform saturation
        from repro.metrics import uniform_load
        from repro.traffic import uniform

        theta_u = 1.0 / uniform_load(alg)
        res = simulate(
            alg,
            uniform(t4.num_nodes),
            SimulationConfig(
                cycles=2000,
                warmup=600,
                injection_rate=min(1.0, 0.8 * theta_u),
                seed=1,
            ),
        )
        assert res.stable

    def test_interpolation_pipeline(self, t4):
        # interpolate a recovered optimal design with DOR and check the
        # harmonic-mean worst-case bound of eq. (14) end to end
        from repro.routing import DimensionOrderRouting, Interpolated

        design = design_worst_case(t4, minimize_locality=True)
        opt = routing_from_flows(t4, design.flows, "wc-opt")
        dor = DimensionOrderRouting(t4)
        mix = Interpolated(opt, dor, 0.5)
        mix.validate(pairs=[(0, d) for d in range(1, 16, 3)])

        t_opt = worst_case_load(opt).throughput
        t_dor = worst_case_load(dor).throughput
        bound = 1.0 / (0.5 / t_opt + 0.5 / t_dor)
        assert worst_case_load(mix).throughput >= bound - 1e-9


class Test3DTorus:
    """The paper's future-work direction: the machinery is generic in the
    torus dimension, so the core pipeline must also hold on 3-D tori."""

    def test_capacity_3d(self):
        t = Torus(4, 3)
        cap = solve_capacity(t)
        # per-dimension ring argument still gives k/8 for even k
        assert cap.load == pytest.approx(0.5, rel=1e-6)

    def test_dor_3d_uniform_optimal(self):
        from repro.metrics import uniform_load
        from repro.routing import DimensionOrderRouting

        t = Torus(4, 3)
        assert uniform_load(DimensionOrderRouting(t)) == pytest.approx(0.5)

    def test_worst_case_design_3d(self):
        t = Torus(3, 3)
        cap = solve_capacity(t)
        design = design_worst_case(t)
        assert design.worst_case_load == pytest.approx(2 * cap.load, rel=1e-4)

    def test_ival_3d_keeps_optimal_worst_case(self):
        from repro.routing import IVAL

        t = Torus(3, 3)
        cap = solve_capacity(t)
        wc = worst_case_load(IVAL(t))
        assert cap.load / wc.load == pytest.approx(0.5, rel=1e-6)

    def test_ival_3d_shorter_than_val(self):
        from repro.routing import IVAL, VAL

        t = Torus(3, 3)
        assert (
            IVAL(t).normalized_path_length() < VAL(t).normalized_path_length()
        )
