"""Tests for the restricted-path-set LP machinery."""

import numpy as np
import pytest

from repro.core.path_lp import PathSetLP
from repro.routing import DimensionOrderRouting
from repro.routing.base import TableRouting
from repro.topology import Torus, TranslationGroup


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="module")
def g4(t4):
    return TranslationGroup(t4)


def dor_path_set(torus):
    """Path set containing exactly DOR's minimal XY paths."""
    dor = DimensionOrderRouting(torus)
    return {
        d: [p for p, _ in dor.path_distribution(0, d)]
        for d in range(1, torus.num_nodes)
    }


def xy_yx_path_set(torus):
    """Minimal XY and YX paths for every destination."""
    xy = DimensionOrderRouting(torus)
    yx = DimensionOrderRouting(torus, order=(1, 0))
    out = {}
    for d in range(1, torus.num_nodes):
        paths = {p for p, _ in xy.path_distribution(0, d)}
        paths |= {p for p, _ in yx.path_distribution(0, d)}
        out[d] = sorted(paths)
    return out


class TestConstruction:
    def test_counts(self, t4, g4):
        lp = PathSetLP(t4, dor_path_set(t4), g4)
        assert lp.num_paths >= t4.num_nodes - 1
        assert lp.model.num_variables == lp.num_paths

    def test_missing_destination_rejected(self, t4, g4):
        paths = dor_path_set(t4)
        del paths[5]
        with pytest.raises(ValueError, match="destination 5"):
            PathSetLP(t4, paths, g4)

    def test_wrong_endpoint_rejected(self, t4, g4):
        paths = dor_path_set(t4)
        paths[1] = [(0, t4.node_at([0, 1]))]  # ends at wrong node
        with pytest.raises(ValueError, match="not a 0->1 path"):
            PathSetLP(t4, paths, g4)


class TestWorstCase:
    def test_dor_only_set_reproduces_dor(self, t4, g4):
        # With exactly DOR's paths (unique per destination), the LP has a
        # single feasible point: DOR itself.
        from repro.metrics import worst_case_load
        from repro.routing import DimensionOrderRouting

        lp = PathSetLP(t4, dor_path_set(t4), g4)
        w = lp.model.add_variables("w", 1)
        lp.add_worst_case(int(w.indices()[0]))
        lp.model.set_objective(w.indices(), [1.0])
        sol = lp.model.solve()
        dor_wc = worst_case_load(DimensionOrderRouting(t4)).load
        assert sol.objective == pytest.approx(dor_wc, rel=1e-6)

    def test_larger_set_does_no_worse(self, t4, g4):
        def solve_wc(paths):
            lp = PathSetLP(t4, paths, g4)
            w = lp.model.add_variables("w", 1)
            lp.add_worst_case(int(w.indices()[0]))
            lp.model.set_objective(w.indices(), [1.0])
            return lp.model.solve().objective

        assert solve_wc(xy_yx_path_set(t4)) <= solve_wc(dor_path_set(t4)) + 1e-7

    def test_bound_matches_exact_evaluation(self, t4, g4):
        from repro.metrics import worst_case_load

        lp = PathSetLP(t4, xy_yx_path_set(t4), g4)
        w = lp.model.add_variables("w", 1)
        lp.add_worst_case(int(w.indices()[0]))
        lp.model.set_objective(w.indices(), [1.0])
        sol = lp.model.solve()
        alg = TableRouting(t4, lp.table_from(sol), name="xy-yx-opt")
        assert worst_case_load(alg).load == pytest.approx(
            sol.objective, rel=1e-5
        )


class TestAverageCase:
    def test_matches_canonical_formulation(self, t4, g4):
        # The path LP restricted to XY/YX paths must agree with direct
        # load evaluation of its own solution.
        from repro.metrics import average_case_load
        from repro.traffic import sample_traffic_set

        sample = sample_traffic_set(np.random.default_rng(0), 16, 6, num_permutations=3)
        lp = PathSetLP(t4, xy_yx_path_set(t4), g4)
        m = lp.model.add_variables("m", len(sample))
        lp.add_average_case(sample, m)
        lp.model.set_objective(m.indices(), np.full(len(sample), 1 / len(sample)))
        sol = lp.model.solve()
        alg = TableRouting(t4, lp.table_from(sol), name="avg-min")
        assert average_case_load(alg, sample) == pytest.approx(
            sol.objective, rel=1e-5
        )

    def test_bound_block_size_guard(self, t4, g4):
        lp = PathSetLP(t4, dor_path_set(t4), g4)
        m = lp.model.add_variables("m", 2)
        with pytest.raises(ValueError, match="per sample"):
            lp.add_average_case([np.eye(16)] * 3, m)


class TestLocality:
    def test_locality_terms_evaluate_h_avg(self, t4, g4):
        lp = PathSetLP(t4, dor_path_set(t4), g4)
        cols, vals = lp.locality_terms()
        # all weights 1 distributes... instead: uniform over DOR paths per
        # destination equals DOR's H_avg.
        weights = np.zeros(lp.num_paths)
        for d in range(1, t4.num_nodes):
            pids = np.nonzero(lp.dest == d)[0]
            weights[pids] = 1.0 / len(pids)
        h = float((vals * weights[cols - lp.weights.offset]).sum())
        dor = DimensionOrderRouting(t4)
        assert h == pytest.approx(dor.average_path_length())

    def test_constraint_sense_validation(self, t4, g4):
        lp = PathSetLP(t4, dor_path_set(t4), g4)
        with pytest.raises(ValueError, match="sense"):
            lp.add_locality_constraint(2.0, sense=">=")

    def test_pinned_locality(self, t4, g4):
        lp = PathSetLP(t4, xy_yx_path_set(t4), g4)
        lp.add_locality_constraint(t4.mean_min_distance(), "==")
        cols, vals = lp.locality_terms()
        lp.model.set_objective(cols, vals)
        sol = lp.model.solve()
        assert sol.objective == pytest.approx(t4.mean_min_distance(), rel=1e-7)
