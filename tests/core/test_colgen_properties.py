"""Property tests for the column-generation machinery (Hypothesis).

Two load-bearing properties back the lazy-row solver:

* the separation oracle (one Hungarian assignment per direction class)
  finds the *exact* worst-case permutation — cross-checked against the
  brute-force enumeration/DP oracle of :mod:`repro.verify.harness`,
  which shares no code with the matching path; and
* termination really means termination: after ``design_worst_case``
  returns, a fresh separation pass at the claimed bound finds zero
  violated rows at the loop's own tolerance.

Run with ``--hypothesis-profile=ci`` for the bounded deterministic
sweep (the CI design-scale job does).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import COLGEN_VIOLATION_TOL
from repro.core.worst_case import design_worst_case
from repro.metrics.worst_case_eval import separate_worst_case
from repro.topology import Torus
from repro.topology.symmetry import TranslationGroup
from repro.verify import brute_force_worst_case

SMALL_RADII = st.integers(min_value=3, max_value=4)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _random_flows(torus: Torus, seed: int) -> np.ndarray:
    """A random canonical flow table (no conservation needed: both
    oracles only contract the table against permutations)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 2.0, size=(torus.num_nodes, torus.num_channels))


class TestOracleMatchesBruteForce:
    @given(k=SMALL_RADII, seed=SEEDS)
    @settings(max_examples=25)
    def test_uniform_torus(self, k, seed):
        torus = Torus(k, 2)
        group = TranslationGroup(torus)
        flows = _random_flows(torus, seed)
        sep = separate_worst_case(torus, group, flows, np.inf, None)
        brute = brute_force_worst_case(flows, torus, group)
        assert np.isclose(sep.max_load, brute.load, rtol=1e-9, atol=1e-12)

    @given(seed=SEEDS, bz=st.floats(min_value=0.25, max_value=1.0))
    @settings(max_examples=10)
    def test_heterogeneous_bandwidth(self, seed, bz):
        torus = Torus(3, 2, bandwidths=(1.0, bz))
        group = TranslationGroup(torus)
        flows = _random_flows(torus, seed)
        sep = separate_worst_case(torus, group, flows, np.inf, None)
        brute = brute_force_worst_case(flows, torus, group)
        assert np.isclose(sep.max_load, brute.load, rtol=1e-9, atol=1e-12)

    @given(k=SMALL_RADII, seed=SEEDS)
    @settings(max_examples=10)
    def test_oracle_reports_achieving_permutation(self, k, seed):
        # The returned permutation must itself realize max_load — the
        # witness the certificate replays by plain indexing.
        torus = Torus(k, 2)
        group = TranslationGroup(torus)
        flows = _random_flows(torus, seed)
        sep = separate_worst_case(torus, group, flows, np.inf, None)
        brute = brute_force_worst_case(flows, torus, group)
        n = torus.num_nodes
        mat = np.zeros((n, n))
        mat[np.arange(n), brute.permutation] = 1.0
        assert mat.sum(axis=0).max() == 1.0  # a genuine permutation


class TestTerminationMeansTermination:
    @given(
        k=SMALL_RADII,
        bz=st.one_of(st.none(), st.floats(min_value=0.5, max_value=1.0)),
    )
    @settings(max_examples=8)
    def test_no_violated_rows_at_tolerance(self, k, bz):
        bandwidths = None if bz is None else (1.0, float(bz))
        torus = Torus(k, 2, bandwidths=bandwidths)
        design = design_worst_case(torus, method="colgen")
        group = TranslationGroup(torus)
        sep = separate_worst_case(
            torus,
            group,
            design.flows,
            design.worst_case_load,
            COLGEN_VIOLATION_TOL,
        )
        assert sep.satisfied, (
            f"{len(sep.violations)} violated rows after termination"
        )
        # ... and the claimed bound is the oracle's own measurement.
        assert np.isclose(
            sep.max_load, design.worst_case_load, rtol=1e-12, atol=0.0
        )

    @given(hops_scale=st.floats(min_value=1.05, max_value=1.5))
    @settings(max_examples=5)
    def test_locality_pinned_termination(self, hops_scale):
        # The pinned loop takes real iterations (no closed-form anchor
        # matches an arbitrary H pin), so this exercises generated rows.
        torus = Torus(3, 2)
        h_min = float(torus.mean_min_distance())
        design = design_worst_case(
            torus,
            locality_hops=hops_scale * h_min,
            locality_sense="==",
            method="colgen",
        )
        group = TranslationGroup(torus)
        sep = separate_worst_case(
            torus,
            group,
            design.flows,
            design.worst_case_load,
            COLGEN_VIOLATION_TOL,
        )
        assert sep.satisfied
