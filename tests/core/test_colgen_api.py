"""Unit coverage for the column-generation API surface.

The differential/property/mutation suites exercise the happy paths;
this file pins the contract edges: method resolution, stats
round-tripping, iteration limits, anchor fallbacks, and the unseeded
lazy loop actually generating blocks.
"""

import numpy as np
import pytest

from repro.constants import COLGEN_AUTO_NODE_THRESHOLD, COLGEN_GENERAL_VIOLATION_TOL
from repro.core.general import (
    ColGenError as GeneralColGenError,
)
from repro.core.general import (
    GeneralRestrictedMaster,
    _general_stage_loop,
    design_general_worst_case,
)
from repro.core.worst_case import (
    ColGenStats,
    design_worst_case,
    resolve_design_method,
)
from repro.topology import Torus


class TestResolveDesignMethod:
    def test_explicit_methods_pass_through(self):
        assert resolve_design_method("full", 10**6) == "full"
        assert resolve_design_method("colgen", 4) == "colgen"

    def test_auto_switches_at_node_threshold(self):
        below = COLGEN_AUTO_NODE_THRESHOLD - 1
        assert resolve_design_method("auto", below) == "full"
        assert (
            resolve_design_method("auto", COLGEN_AUTO_NODE_THRESHOLD)
            == "colgen"
        )

    def test_solver_name_gets_pointed_error(self):
        with pytest.raises(ValueError, match="solver"):
            resolve_design_method("highs-ds", 16)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown design method"):
            resolve_design_method("lazy", 16)


class TestColGenStatsDoc:
    def test_roundtrip(self):
        stats = ColGenStats(
            iterations=3,
            stage2_iterations=1,
            rows_generated=7,
            seeded_rows=32,
            oracle_load=1.5,
            lower_bound=1.4999999,
            stage2_locality_bound=2.25,
        )
        assert ColGenStats.from_doc(stats.to_doc()) == stats

    def test_roundtrip_without_stage2(self):
        stats = ColGenStats(
            iterations=1,
            stage2_iterations=0,
            rows_generated=0,
            seeded_rows=32,
            oracle_load=2.0,
            lower_bound=2.0,
        )
        doc = stats.to_doc()
        assert doc["stage2_locality_bound"] is None
        assert ColGenStats.from_doc(doc) == stats
        assert ColGenStats.from_doc(doc).converged


class TestDesignEdges:
    def test_throughput_property(self):
        design = design_worst_case(Torus(3, 2), method="colgen")
        assert design.worst_case_throughput == pytest.approx(
            1.0 / design.worst_case_load
        )

    def test_zero_max_iterations_rejected(self):
        with pytest.raises(ValueError, match="max_iterations"):
            design_worst_case(Torus(3, 2), method="colgen", max_iterations=0)
        with pytest.raises(ValueError, match="max_iterations"):
            design_general_worst_case(
                Torus(3, 2), method="colgen", max_iterations=0
            )

    def test_loose_locality_upper_bound_uses_val_anchor(self):
        # sense "<=" with generous hops: VAL already satisfies the pin,
        # so the anchor closes the loop as in the unconstrained case.
        torus = Torus(3, 2)
        free = design_worst_case(torus, method="colgen")
        pinned = design_worst_case(
            torus,
            locality_hops=10.0,
            locality_sense="<=",
            method="colgen",
        )
        assert pinned.worst_case_load == pytest.approx(
            free.worst_case_load, rel=1e-7
        )

    def test_pin_beyond_val_locality_still_converges(self):
        # An "==" pin above VAL's own H has no closed-form anchor (the
        # VAL/DOR blend cannot reach it) — the loop must work unaided.
        torus = Torus(3, 2)
        hops = 2.2 * torus.mean_min_distance()
        design = design_worst_case(
            torus, locality_hops=hops, locality_sense="==", method="colgen"
        )
        assert design.avg_path_length == pytest.approx(hops, rel=1e-6)


class TestGeneralLazyLoop:
    def test_duplicate_channel_block_not_regenerated(self):
        master = GeneralRestrictedMaster(Torus(3, 2))
        assert master.add_channel(0) is True
        assert master.add_channel(0) is False
        assert master.channels == [0]

    def test_unseeded_loop_generates_blocks_lazily(self):
        # No warm start: every block must come from the oracle, which is
        # the code path the seeded production configuration shortcuts.
        torus = Torus(3, 2)
        master = GeneralRestrictedMaster(torus)
        master.model.set_objective(master.w.indices(), [1.0])
        flows, load, bound, iters = _general_stage_loop(
            master,
            "highs-ipm",
            COLGEN_GENERAL_VIOLATION_TOL,
            limit=50,
            stage=1,
        )
        assert iters > 1 and len(master.channels) > 0
        assert master.seeded_blocks == 0
        reference = design_worst_case(torus, method="full")
        assert load == pytest.approx(
            reference.worst_case_load, rel=1e-6
        )

    def test_unseeded_loop_truncation_raises(self):
        torus = Torus(3, 2)
        master = GeneralRestrictedMaster(torus)
        master.model.set_objective(master.w.indices(), [1.0])
        with pytest.raises(GeneralColGenError, match="no convergence"):
            _general_stage_loop(
                master,
                "highs-ipm",
                COLGEN_GENERAL_VIOLATION_TOL,
                limit=1,
                stage=1,
            )

    def test_general_lexicographic_colgen_matches_full(self):
        torus = Torus(3, 2)
        full = design_general_worst_case(torus, minimize_locality=True)
        colgen = design_general_worst_case(
            torus, minimize_locality=True, method="colgen"
        )
        assert colgen.objective_load == pytest.approx(
            full.objective_load, rel=1e-5
        )
        assert colgen.avg_path_length == pytest.approx(
            full.avg_path_length, rel=1e-4
        )
        assert colgen.colgen.stage2_iterations >= 1

    def test_seed_covers_loaded_channels(self):
        master = GeneralRestrictedMaster(Torus(3, 2))
        added = master.seed(COLGEN_GENERAL_VIOLATION_TOL)
        assert added == master.seeded_blocks > 0
        assert len(master.channels) == added

    def test_negative_flows_clipped(self):
        design = design_general_worst_case(Torus(3, 2), method="colgen")
        assert (np.asarray(design.flows) >= 0.0).all()
