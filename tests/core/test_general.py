"""Tests for the general (non-symmetric) formulation, cross-checked
against the symmetric torus machinery."""

import numpy as np
import pytest

from repro.core import design_worst_case, solve_capacity
from repro.core.general import (
    design_general_worst_case,
    solve_general_capacity,
)
from repro.topology import Mesh, Torus


class TestCrossCheck:
    """On a torus both formulations must agree — the strongest internal
    validation of the Section 4 symmetry reduction."""

    def test_capacity_agrees(self):
        t = Torus(4, 2)
        general = solve_general_capacity(t)
        symmetric = solve_capacity(t)
        assert general.objective_load == pytest.approx(
            symmetric.load, rel=1e-5
        )

    def test_worst_case_agrees(self):
        t = Torus(3, 2)
        general = design_general_worst_case(t)
        symmetric = design_worst_case(t)
        assert general.objective_load == pytest.approx(
            symmetric.worst_case_load, rel=1e-4
        )

    def test_worst_case_locality_agrees(self):
        t = Torus(3, 2)
        general = design_general_worst_case(t, minimize_locality=True)
        symmetric = design_worst_case(t, minimize_locality=True)
        assert general.avg_path_length == pytest.approx(
            symmetric.avg_path_length, rel=1e-3
        )


class TestMesh:
    def test_capacity_bisection_bound(self):
        # 3x3 mesh: the center column/row cut limits uniform throughput.
        m = Mesh(3, 2)
        res = solve_general_capacity(m)
        assert res.objective_load > 0
        # uniform load must be at least (nodes crossing the cut) / (cut
        # bandwidth): 3*6*... simple sanity: load >= N/ (2k) * something
        assert res.objective_load >= 0.5

    def test_mesh_worst_case_worse_than_capacity(self):
        m = Mesh(3, 2)
        cap = solve_general_capacity(m).objective_load
        wc = design_general_worst_case(m).objective_load
        assert wc >= cap - 1e-7

    def test_flows_satisfy_conservation(self):
        m = Mesh(3, 2)
        res = solve_general_capacity(m)
        x = res.flows
        for s in range(m.num_nodes):
            for d in range(m.num_nodes):
                if s == d:
                    assert x[s, d].sum() == pytest.approx(0.0, abs=1e-8)
                    continue
                for v in range(m.num_nodes):
                    bal = (
                        x[s, d, m.out_channels(v)].sum()
                        - x[s, d, m.in_channels(v)].sum()
                    )
                    expected = (v == s) - (v == d)
                    assert bal == pytest.approx(expected, abs=1e-6)

    def test_general_worst_case_evaluates_exactly(self):
        from repro.metrics.worst_case_eval import general_worst_case_load

        m = Mesh(3, 2)
        design = design_general_worst_case(m, minimize_locality=True)
        exact = general_worst_case_load(m, design.flows)
        assert exact.load == pytest.approx(design.objective_load, rel=1e-4)
