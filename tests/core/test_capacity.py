"""Tests for the capacity problem (paper eq. 6)."""

import numpy as np
import pytest

from repro.core import solve_capacity
from repro.core.capacity import torus_capacity_load
from repro.metrics.channel_load import canonical_max_load
from repro.topology import Torus, TranslationGroup
from repro.traffic import uniform


class TestCapacity:
    @pytest.mark.parametrize("k", [4, 5, 6, 8])
    def test_matches_closed_form(self, k):
        t = Torus(k, 2)
        res = solve_capacity(t)
        assert res.load == pytest.approx(torus_capacity_load(t), rel=1e-6)

    def test_throughput_is_inverse(self):
        res = solve_capacity(Torus(4, 2))
        assert res.throughput == pytest.approx(1.0 / res.load)

    def test_flows_realize_the_load(self):
        t = Torus(4, 2)
        g = TranslationGroup(t)
        res = solve_capacity(t, g)
        realized = canonical_max_load(g.torus, g, res.flows, uniform(t.num_nodes))
        assert realized == pytest.approx(res.load, rel=1e-6)

    def test_dor_achieves_capacity(self):
        # DOR is uniform-optimal: its uniform load equals capacity load.
        from repro.metrics import uniform_load
        from repro.routing import DimensionOrderRouting

        t = Torus(6, 2)
        assert uniform_load(DimensionOrderRouting(t)) == pytest.approx(
            solve_capacity(t).load, rel=1e-6
        )

    def test_flows_satisfy_conservation(self):
        t = Torus(4, 2)
        res = solve_capacity(t)
        x = res.flows
        for d in range(1, t.num_nodes):
            for v in range(t.num_nodes):
                balance = (
                    x[d, t.out_channels(v)].sum() - x[d, t.in_channels(v)].sum()
                )
                expected = (1.0 if v == 0 else 0.0) - (1.0 if v == d else 0.0)
                assert balance == pytest.approx(expected, abs=1e-7)

    def test_higher_bandwidth_scales_capacity(self):
        fat = solve_capacity(Torus(4, 2, bandwidth=2.0))
        thin = solve_capacity(Torus(4, 2, bandwidth=1.0))
        assert fat.load == pytest.approx(thin.load / 2.0, rel=1e-6)
