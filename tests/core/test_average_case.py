"""Tests for average-case-optimal design (paper eq. 9, problem (15))."""

import numpy as np
import pytest

from repro.core import design_average_case, design_worst_case, solve_capacity
from repro.core.recovery import routing_from_flows
from repro.metrics import average_case_load
from repro.topology import Torus, TranslationGroup
from repro.traffic import sample_traffic_set


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="module")
def g4(t4):
    return TranslationGroup(t4)


@pytest.fixture(scope="module")
def sample4(t4):
    rng = np.random.default_rng(42)
    return sample_traffic_set(rng, t4.num_nodes, 12, num_permutations=4)


class TestAverageCaseDesign:
    def test_design_load_realized_in_sample(self, t4, g4, sample4):
        design = design_average_case(t4, sample4, group=g4)
        alg = routing_from_flows(t4, design.flows, "avg-opt")
        realized = average_case_load(alg, sample4)
        assert realized == pytest.approx(design.average_load, rel=1e-5)

    def test_average_beats_worst_case_design(self, t4, g4, sample4):
        # Optimizing for the sample mean must do at least as well on it
        # as any other algorithm, e.g. the worst-case-optimal design.
        avg_design = design_average_case(t4, sample4, group=g4)
        wc_design = design_worst_case(t4, minimize_locality=True, group=g4)
        wc_alg = routing_from_flows(t4, wc_design.flows, "wc-opt")
        assert avg_design.average_load <= (
            average_case_load(wc_alg, sample4) + 1e-7
        )

    def test_average_load_above_capacity_load(self, t4, g4, sample4):
        # No algorithm beats the uniform-optimal load on average.
        design = design_average_case(t4, sample4, group=g4)
        cap = solve_capacity(t4).load
        assert design.average_load >= cap - 1e-7

    def test_lexicographic_keeps_load(self, t4, g4, sample4):
        plain = design_average_case(t4, sample4, group=g4)
        lex = design_average_case(
            t4, sample4, minimize_locality=True, group=g4
        )
        assert lex.avg_path_length <= plain.avg_path_length + 1e-9
        alg = routing_from_flows(t4, lex.flows, "avg-lex")
        realized = average_case_load(alg, sample4)
        assert realized <= plain.average_load * (1 + 1e-5)

    def test_locality_constraint_respected(self, t4, g4, sample4):
        hops = 1.2 * t4.mean_min_distance()
        design = design_average_case(
            t4, sample4, locality_hops=hops, group=g4
        )
        assert design.avg_path_length == pytest.approx(hops, rel=1e-6)

    def test_empty_sample_rejected(self, t4):
        with pytest.raises(ValueError, match="nonempty"):
            design_average_case(t4, [])

    def test_throughput_property(self, t4, g4, sample4):
        design = design_average_case(t4, sample4, group=g4)
        assert design.average_throughput == pytest.approx(
            1 / design.average_load
        )

    def test_sample_size_mismatch_guard(self, t4, g4, sample4):
        # internal guard of average_case_constraints
        from repro.core.flows import CanonicalFlowProblem

        prob = CanonicalFlowProblem(t4, g4)
        bounds = prob.model.add_variables("m", 3)
        with pytest.raises(ValueError, match="one variable per sample"):
            prob.average_case_constraints(sample4, bounds)
