"""Tests for the tradeoff sweeps behind Figures 1, 4 and 6."""

import numpy as np
import pytest

from repro.core import (
    average_case_tradeoff,
    optimal_locality_at_max_worst_case,
    solve_capacity,
    worst_case_tradeoff,
)
from repro.topology import Torus, TranslationGroup
from repro.traffic import sample_traffic_set


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="module")
def g4(t4):
    return TranslationGroup(t4)


class TestWorstCaseTradeoff:
    def test_monotone_decreasing_load(self, t4, g4):
        pts = worst_case_tradeoff(t4, [1.0, 1.2, 1.35], group=g4)
        loads = [p.load for p in pts]
        assert loads[0] >= loads[1] >= loads[2] - 1e-9

    def test_reaches_half_capacity(self, t4, g4):
        cap = solve_capacity(t4).load
        opt_h = optimal_locality_at_max_worst_case(t4, group=g4)
        pts = worst_case_tradeoff(t4, [opt_h], group=g4)
        assert pts[0].load == pytest.approx(2 * cap, rel=1e-5)

    def test_minimal_end_matches_dor(self, t4, g4):
        from repro.metrics import worst_case_load
        from repro.routing import DimensionOrderRouting

        pts = worst_case_tradeoff(t4, [1.0], group=g4)
        dor_wc = worst_case_load(DimensionOrderRouting(t4)).load
        assert pts[0].load <= dor_wc + 1e-6

    def test_point_fields(self, t4, g4):
        (pt,) = worst_case_tradeoff(t4, [1.1], group=g4)
        assert pt.normalized_length == pytest.approx(1.1)
        assert pt.throughput == pytest.approx(1 / pt.load)


class TestAverageCaseTradeoff:
    def test_monotone_and_bounded(self, t4, g4):
        sample = sample_traffic_set(
            np.random.default_rng(3), t4.num_nodes, 8, num_permutations=3
        )
        pts = average_case_tradeoff(t4, sample, [1.0, 1.2, 1.4], group=g4)
        loads = [p.load for p in pts]
        assert loads[0] >= loads[1] >= loads[2] - 1e-9
        cap = solve_capacity(t4).load
        assert all(l >= cap - 1e-7 for l in loads)

    def test_average_tradeoff_below_worst_case(self, t4, g4):
        # At equal locality, the best average load can only be lower
        # than the best worst-case load.
        sample = sample_traffic_set(
            np.random.default_rng(4), t4.num_nodes, 8, num_permutations=3
        )
        (avg_pt,) = average_case_tradeoff(t4, sample, [1.2], group=g4)
        (wc_pt,) = worst_case_tradeoff(t4, [1.2], group=g4)
        assert avg_pt.load <= wc_pt.load + 1e-7


class TestOptimalLocality:
    def test_k4_value(self, t4, g4):
        # cross-checked against the 2TURN design (Fig. 4: they coincide
        # at k = 4)
        h = optimal_locality_at_max_worst_case(t4, group=g4)
        assert h == pytest.approx(1.35, abs=0.01)


class TestFeasibleRegion:
    def test_range_at_optimal_worst_case(self, t4, g4):
        from repro.core import locality_range_at_worst_case, solve_capacity
        from repro.metrics import worst_case_load
        from repro.routing import VAL

        cap = solve_capacity(t4).load
        lo, hi = locality_range_at_worst_case(t4, 2 * cap, group=g4)
        # minimum coincides with the Pareto point...
        assert lo == pytest.approx(
            optimal_locality_at_max_worst_case(t4, group=g4), rel=1e-4
        )
        # ...and VAL (2x minimal) lies inside the feasible interval
        val_h = VAL(t4).normalized_path_length()
        assert lo - 1e-6 <= val_h <= hi + 1e-6
        assert worst_case_load(VAL(t4)).load <= 2 * cap + 1e-6

    def test_interval_widens_with_budget(self, t4, g4):
        from repro.core import locality_range_at_worst_case

        lo_tight, hi_tight = locality_range_at_worst_case(t4, 1.0, group=g4)
        lo_loose, hi_loose = locality_range_at_worst_case(t4, 1.4, group=g4)
        assert lo_loose <= lo_tight + 1e-7
        assert hi_loose >= hi_tight - 1e-7
