"""Tests for worst-case-optimal design (paper LP (8), problem (10))."""

import numpy as np
import pytest

from repro.core import design_worst_case, solve_capacity
from repro.core.recovery import routing_from_flows
from repro.metrics import worst_case_load
from repro.topology import Torus, TranslationGroup


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="module")
def g4(t4):
    return TranslationGroup(t4)


class TestWorstCaseDesign:
    @pytest.mark.parametrize("k", [4, 5, 6])
    def test_optimum_is_half_capacity(self, k):
        # The known optimal worst-case throughput of a torus is half its
        # capacity (Section 5.2: "the maximum worst-case throughput
        # (50% of capacity)"); VAL proves achievability.
        t = Torus(k, 2)
        design = design_worst_case(t)
        cap = solve_capacity(t).load
        assert design.worst_case_load == pytest.approx(2 * cap, rel=1e-5)

    def test_lp_bound_matches_exact_evaluation(self, t4, g4):
        design = design_worst_case(t4, minimize_locality=True, group=g4)
        exact = worst_case_load(design.flows, t4, g4)
        assert exact.load == pytest.approx(design.worst_case_load, rel=1e-5)

    def test_lexicographic_improves_locality(self, t4, g4):
        plain = design_worst_case(t4, group=g4)
        lex = design_worst_case(t4, minimize_locality=True, group=g4)
        assert lex.avg_path_length <= plain.avg_path_length + 1e-9
        assert lex.worst_case_load == pytest.approx(
            plain.worst_case_load, rel=1e-5
        )

    def test_minimal_locality_constraint_gives_dor_worst_case(self, t4, g4):
        # Constraining H_avg to minimal forces a minimal algorithm; DOR is
        # worst-case optimal among minimal algorithms (Section 5.1).
        from repro.metrics import worst_case_load as wc_eval
        from repro.routing import DimensionOrderRouting

        design = design_worst_case(
            t4, locality_hops=t4.mean_min_distance(), group=g4
        )
        dor_wc = wc_eval(DimensionOrderRouting(t4)).load
        assert design.worst_case_load <= dor_wc + 1e-6
        exact = wc_eval(design.flows, t4, g4)
        assert exact.load == pytest.approx(design.worst_case_load, rel=1e-5)

    def test_locality_le_sense(self, t4, g4):
        # '<=' with a generous budget must reach the unconstrained optimum
        budget = 2.5 * t4.mean_min_distance()
        free = design_worst_case(t4, group=g4)
        capped = design_worst_case(
            t4, locality_hops=budget, locality_sense="<=", group=g4
        )
        assert capped.worst_case_load == pytest.approx(
            free.worst_case_load, rel=1e-5
        )

    def test_bad_sense_rejected(self, t4):
        with pytest.raises(ValueError, match="sense"):
            design_worst_case(t4, locality_hops=2.0, locality_sense=">=")

    def test_paper_8ary_optimal_locality(self):
        # Section 5.2: optimal worst-case algorithms reach "just below
        # 1.48 times minimal" on the 8-ary 2-cube.
        t = Torus(8, 2)
        design = design_worst_case(t, minimize_locality=True)
        normalized = design.avg_path_length / t.mean_min_distance()
        assert design.worst_case_load == pytest.approx(2.0, rel=1e-5)
        assert normalized == pytest.approx(1.479, abs=0.005)

    def test_tradeoff_monotone(self, t4, g4):
        # Tightening the locality budget can only worsen the worst case.
        h_min = t4.mean_min_distance()
        loads = [
            design_worst_case(
                t4, locality_hops=r * h_min, locality_sense="<=", group=g4
            ).worst_case_load
            for r in (1.0, 1.3, 1.6, 2.0)
        ]
        assert all(a >= b - 1e-7 for a, b in zip(loads, loads[1:]))

    def test_lexicographic_load_is_self_consistent(self, t4, g4):
        # Regression: the two-stage solve used to report the stage-1 LP
        # bound as worst_case_load while returning stage-2 flows (and
        # stage-2 model_stats).  The reported load must now be the
        # measured worst case of the *returned* flows, within the
        # lexicographic slack of the stage-1 optimum.
        from repro.core.worst_case import LEXICOGRAPHIC_SLACK

        stage1 = design_worst_case(t4, group=g4)
        lex = design_worst_case(t4, minimize_locality=True, group=g4)
        measured = worst_case_load(lex.flows, t4, g4).load
        assert lex.worst_case_load == measured
        assert (
            lex.worst_case_load
            <= stage1.worst_case_load * (1 + LEXICOGRAPHIC_SLACK) + 1e-9
        )
        # and no better than the true optimum (stage 1 minimized it)
        assert lex.worst_case_load >= stage1.worst_case_load - 1e-7

    def test_recovered_routing_is_valid(self, t4, g4):
        design = design_worst_case(t4, minimize_locality=True, group=g4)
        alg = routing_from_flows(t4, design.flows, "wc-opt")
        alg.validate()
        assert worst_case_load(alg).load <= design.worst_case_load * (1 + 1e-6)
