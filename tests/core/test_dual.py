"""Tests for the Appendix dual LP (19): strong duality and structure."""

import numpy as np
import pytest

from repro.core import design_worst_case
from repro.core.dual import solve_worst_case_dual
from repro.core.general import design_general_worst_case
from repro.topology import Mesh, Torus


class TestStrongDuality:
    def test_torus_matches_primal(self):
        t = Torus(3, 2)
        dual = solve_worst_case_dual(t)
        primal = design_worst_case(t)
        assert dual.objective == pytest.approx(
            primal.worst_case_load, rel=1e-4
        )

    def test_mesh_matches_primal(self):
        m = Mesh(3, 2)
        dual = solve_worst_case_dual(m)
        primal = design_general_worst_case(m)
        assert dual.objective == pytest.approx(primal.objective_load, rel=1e-4)


class TestDualStructure:
    @pytest.fixture(scope="class")
    def dual3(self):
        return solve_worst_case_dual(Torus(3, 2))

    def test_phi_normalized(self, dual3):
        assert dual3.phi.sum() == pytest.approx(1.0, abs=1e-6)
        assert (dual3.phi >= -1e-9).all()

    def test_traffic_row_col_sums(self, dual3):
        for ch in range(dual3.traffic.shape[0]):
            rows = dual3.traffic[ch].sum(axis=1)
            cols = dual3.traffic[ch].sum(axis=0)
            assert np.allclose(rows, dual3.phi[ch], atol=1e-6)
            assert np.allclose(cols, dual3.phi[ch], atol=1e-6)

    def test_adversary_is_doubly_stochastic(self, dual3):
        from repro.traffic import validate_doubly_stochastic

        heavy = int(np.argmax(dual3.phi))
        adv = dual3.adversary(heavy)
        validate_doubly_stochastic(adv, tol=1e-5)

    def test_adversary_of_unused_channel_is_zero(self, dual3):
        phi = dual3.phi.copy()
        if phi.min() < 1e-12:
            ch = int(np.argmin(phi))
            assert np.allclose(dual3.adversary(ch), 0.0)

    def test_nonnegative_traffic(self, dual3):
        assert (dual3.traffic >= 0).all()
