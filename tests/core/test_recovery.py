"""Tests for flow decomposition / path recovery (paper Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recovery import (
    decompose_flows,
    decompose_single_commodity,
    routing_from_flows,
)
from repro.routing import DimensionOrderRouting, IVAL
from repro.topology import Torus


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


class TestDecomposition:
    def test_roundtrip_dor(self, t4):
        dor = DimensionOrderRouting(t4)
        table = decompose_flows(t4, dor.canonical_flows)
        rebuilt = routing_from_flows(t4, dor.canonical_flows, "dor-rt")
        assert np.allclose(rebuilt.canonical_flows, dor.canonical_flows)

    def test_roundtrip_ival(self, t4):
        ival = IVAL(t4)
        rebuilt = routing_from_flows(t4, ival.canonical_flows, "ival-rt")
        assert np.allclose(
            rebuilt.canonical_flows, ival.canonical_flows, atol=1e-9
        )

    def test_probabilities_sum_to_one(self, t4):
        dor = DimensionOrderRouting(t4)
        table = decompose_flows(t4, dor.canonical_flows)
        for d, entries in table.items():
            assert sum(w for _, w in entries) == pytest.approx(1.0)

    def test_paths_have_correct_endpoints(self, t4):
        ival = IVAL(t4)
        table = decompose_flows(t4, ival.canonical_flows)
        for d, entries in table.items():
            for path, _ in entries:
                assert path[0] == 0 and path[-1] == d

    def test_cycle_flow_discarded(self, t4):
        # DOR flows to one node plus a circulation on a 4-cycle: the
        # decomposition must recover the path and report the cycle mass.
        dor = DimensionOrderRouting(t4)
        d = t4.node_at([1, 0])
        flow = dor.canonical_flows[d].copy()
        cyc_nodes = [
            t4.node_at([0, 2]),
            t4.node_at([1, 2]),
            t4.node_at([1, 3]),
            t4.node_at([0, 3]),
        ]
        for a, b in zip(cyc_nodes, cyc_nodes[1:] + cyc_nodes[:1]):
            flow[t4.channel_index(a, b)] += 0.7
        paths, residual = decompose_single_commodity(t4, flow, d)
        assert residual == pytest.approx(4 * 0.7, abs=1e-6)
        assert paths == [((0, d), 1.0)]

    def test_no_flow_raises(self, t4):
        with pytest.raises(ValueError, match="no flow"):
            decompose_single_commodity(t4, np.zeros(t4.num_channels), 5)

    def test_split_flow_recovers_both_paths(self, t4):
        # Hand-built half/half split across two parallel routes.
        d = t4.node_at([1, 1])
        flow = np.zeros(t4.num_channels)
        xy = [0, t4.node_at([1, 0]), d]
        yx = [0, t4.node_at([0, 1]), d]
        for p in (xy, yx):
            for a, b in zip(p[:-1], p[1:]):
                flow[t4.channel_index(a, b)] += 0.5
        paths, residual = decompose_single_commodity(t4, flow, d)
        assert residual == pytest.approx(0.0, abs=1e-9)
        assert sorted(w for _, w in paths) == pytest.approx([0.5, 0.5])

    @given(st.integers(1, 15), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_mixtures_roundtrip(self, dest, seed):
        # Property: decomposing the flows of a random path mixture and
        # re-materializing reproduces the flows exactly.
        t = Torus(4, 2)
        rng = np.random.default_rng(seed)
        dor_xy = DimensionOrderRouting(t)
        dor_yx = DimensionOrderRouting(t, order=(1, 0))
        w = rng.random()
        flow = (
            w * dor_xy.canonical_flows[dest]
            + (1 - w) * dor_yx.canonical_flows[dest]
        )
        paths, residual = decompose_single_commodity(t, flow, dest)
        assert residual == pytest.approx(0.0, abs=1e-9)
        rebuilt = np.zeros_like(flow)
        for path, prob in paths:
            for a, b in zip(path[:-1], path[1:]):
                rebuilt[t.channel_index(a, b)] += prob
        assert np.allclose(rebuilt, flow, atol=1e-9)
