"""Differential battery: column generation versus the full LP.

The lazy-row solver never materializes the full worst-case constraint
set, so its headline claim — same optimum as the dense formulation —
is checked here by solving every small instance *both* ways and
comparing the optima to ``DIFFERENTIAL_TOL``.  The colgen flows also
run the standard flow-table invariant battery (:mod:`repro.verify`),
so equivalence is established at the artifact level, not just the
objective value.

The general-topology pillar case re-solves a 670-second full LP, so it
is opt-in: set ``REPRO_SLOW_DIFFERENTIAL=1`` (the CI design-scale job
does) to run it.
"""

import os

import numpy as np
import pytest

from repro.constants import COLGEN_GENERAL_VIOLATION_TOL
from repro.core.general import design_general_worst_case
from repro.core.worst_case import design_worst_case
from repro.topology import SparsePillarTorus3D, Torus
from repro.verify import (
    certify_colgen_design,
    certify_colgen_general,
    verify_flows,
)

#: The equivalence the differential battery certifies (ISSUE 9): the
#: lazy and dense formulations agree to well below solver tolerance.
DIFFERENTIAL_TOL = 1e-9

SMALL_TORI = [
    pytest.param(3, 2, None, id="k3-2d"),
    pytest.param(4, 2, None, id="k4-2d"),
    pytest.param(5, 2, None, id="k5-2d"),
    pytest.param(3, 3, (1.0, 1.0, 0.5), id="k3-3d-het"),
]


@pytest.mark.parametrize("k,n,bandwidths", SMALL_TORI)
def test_colgen_matches_full_lp(k, n, bandwidths):
    torus = Torus(k, n, bandwidths=bandwidths)
    full = design_worst_case(torus, method="full")
    colgen = design_worst_case(torus, method="colgen")
    assert colgen.method == "colgen" and full.method == "full"
    assert colgen.worst_case_load == pytest.approx(
        full.worst_case_load, rel=DIFFERENTIAL_TOL
    )


@pytest.mark.parametrize("k,n,bandwidths", SMALL_TORI)
def test_colgen_flows_pass_invariants(k, n, bandwidths):
    torus = Torus(k, n, bandwidths=bandwidths)
    design = design_worst_case(torus, method="colgen")
    report = verify_flows(torus, design.flows, subject=f"colgen-k{k}n{n}")
    assert report.passed, report.render()


@pytest.mark.parametrize("k,n,bandwidths", SMALL_TORI)
def test_colgen_certificate_passes(k, n, bandwidths):
    torus = Torus(k, n, bandwidths=bandwidths)
    design = design_worst_case(torus, method="colgen")
    report = certify_colgen_design(
        torus,
        design.flows,
        design.worst_case_load,
        lower_bound=design.colgen.lower_bound,
    )
    assert report.passed, report.render()


def test_colgen_matches_full_lexicographic():
    # Stage 2 (minimize locality under the stage-1 cap) relaxes the
    # worst case by LEXICOGRAPHIC_SLACK, so the two formulations agree
    # only to that slack — still far tighter than any published figure.
    torus = Torus(4, 2)
    full = design_worst_case(torus, minimize_locality=True)
    colgen = design_worst_case(
        torus, minimize_locality=True, method="colgen"
    )
    assert colgen.worst_case_load == pytest.approx(
        full.worst_case_load, rel=1e-6
    )
    assert colgen.avg_path_length == pytest.approx(
        full.avg_path_length, rel=1e-6
    )
    report = certify_colgen_design(
        torus,
        colgen.flows,
        colgen.worst_case_load,
        lower_bound=colgen.colgen.lower_bound,
        lexicographic=colgen.colgen.stage2_iterations > 0,
    )
    assert report.passed, report.render()


def test_general_colgen_matches_symmetric_full():
    # Cross-formulation differential: the general lazy-block solver on
    # a torus must reproduce the symmetric dense formulation's optimum.
    torus = Torus(3, 2)
    full = design_worst_case(torus, method="full")
    general = design_general_worst_case(torus, method="colgen")
    assert general.method == "colgen"
    assert general.objective_load == pytest.approx(
        full.worst_case_load, rel=COLGEN_GENERAL_VIOLATION_TOL * 10
    )
    report = certify_colgen_general(
        torus,
        general.flows,
        general.objective_load,
        lower_bound=general.colgen.lower_bound,
    )
    assert report.passed, report.render()


@pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW_DIFFERENTIAL"),
    reason="re-solves a multi-minute general LP; REPRO_SLOW_DIFFERENTIAL=1",
)
def test_pillar_colgen_matches_full_lp():
    """SparsePillarTorus3D: lazy blocks versus the dense general LP.

    The full formulation on the 27-node pillar takes ~11 minutes; its
    optimum (worst-case load 1.5) is pinned here as the measured
    reference so the gated job re-solves only the colgen side, and the
    certificate's exact oracle (plus brute-force enumeration at N=27
    via sampling) closes the loop against the full constraint set.
    """
    network = SparsePillarTorus3D(3, pillar_spacing=2)
    design = design_general_worst_case(network, method="colgen")
    assert design.objective_load == pytest.approx(
        1.5, rel=COLGEN_GENERAL_VIOLATION_TOL * 10
    )
    report = certify_colgen_general(
        network,
        design.flows,
        design.objective_load,
        lower_bound=design.colgen.lower_bound,
    )
    assert report.passed, report.render()
    assert np.isfinite(design.flows).all() and (design.flows >= -1e-9).all()
