"""Mutation battery for the column-generation duality certificate.

A certificate that passes on everything certifies nothing, so each
test here *breaks* the colgen loop in one specific way — dropping a
generated row, perturbing the recorded dual bound, stopping an
iteration early — and asserts the battery
(:mod:`repro.verify.colgen`) fails on the mutated artifacts while
passing on the genuine ones.
"""

import numpy as np
import pytest

import repro.core.worst_case as wc_mod
from repro.core.general import design_general_worst_case
from repro.core.worst_case import (
    ColGenError,
    RestrictedMasterProblem,
    design_worst_case,
)
from repro.metrics.worst_case_eval import separate_worst_case
from repro.topology import Torus
from repro.topology.symmetry import TranslationGroup
from repro.verify import certify_colgen_design, certify_colgen_general


@pytest.fixture(scope="module")
def genuine():
    torus = Torus(3, 2)
    design = design_worst_case(torus, method="colgen")
    return torus, design


def _failed(report, name):
    return {c.name for c in report.checks if not c.passed} >= {name}


class TestGenuineArtifactsPass:
    def test_full_battery_passes(self, genuine):
        torus, design = genuine
        report = certify_colgen_design(
            torus,
            design.flows,
            design.worst_case_load,
            lower_bound=design.colgen.lower_bound,
        )
        assert report.passed, report.render()
        names = [c.name for c in report.checks]
        assert names == [
            "colgen_oracle",
            "colgen_duality_gap",
            "colgen_sampled",
            "colgen_exhaustive",
        ]

    def test_exhaustive_runs_on_small_instances(self, genuine):
        torus, design = genuine
        report = certify_colgen_design(
            torus, design.flows, design.worst_case_load,
            lower_bound=design.colgen.lower_bound,
        )
        exhaustive = [c for c in report.checks if c.name == "colgen_exhaustive"]
        assert exhaustive and "skipped" not in exhaustive[0].detail

    def test_exhaustive_skips_beyond_limit(self, genuine):
        torus, design = genuine
        report = certify_colgen_design(
            torus, design.flows, design.worst_case_load,
            lower_bound=design.colgen.lower_bound,
            exhaustive_limit=torus.num_nodes - 1,
        )
        exhaustive = [c for c in report.checks if c.name == "colgen_exhaustive"]
        assert exhaustive and "skipped" in exhaustive[0].detail


class TestMutationsFail:
    def test_dropped_row_fails(self, genuine):
        # Rebuild the master missing one seeded permutation row, take
        # its optimal vertex as "the design": the oracle re-measure and
        # the witness replay must both expose the gap.
        torus, _ = genuine
        group = TranslationGroup(torus)
        reps = list(map(int, torus.class_representatives()))
        master = RestrictedMasterProblem(torus, group, seed_rows=False)
        for rep in reps:
            for s in range(1, torus.num_nodes):
                if rep == reps[0] and s == 1:
                    continue  # the dropped row
                master.add_row(rep, group.node_sum[:, s])
        master.model.set_objective(master.w.indices(), [1.0])
        _, w, flows = master.solve()
        report = certify_colgen_design(torus, flows, w, lower_bound=w)
        assert not report.passed
        assert _failed(report, "colgen_oracle")

    def test_dropped_row_caught_by_gap_even_if_bound_remeasured(
        self, genuine
    ):
        # A "self-consistent" mutant that honestly re-measures its bad
        # flows passes the oracle check — the duality gap against the
        # stale master bound is what exposes the missing row.
        torus, _ = genuine
        group = TranslationGroup(torus)
        reps = list(map(int, torus.class_representatives()))
        master = RestrictedMasterProblem(torus, group, seed_rows=False)
        for rep in reps[1:]:
            for s in range(1, torus.num_nodes):
                master.add_row(rep, group.node_sum[:, s])
        master.model.set_objective(master.w.indices(), [1.0])
        _, w, flows = master.solve()
        honest = float(
            separate_worst_case(torus, group, flows, np.inf, None).max_load
        )
        assert honest > w + 1e-6  # the drop genuinely hurt
        report = certify_colgen_design(torus, flows, honest, lower_bound=w)
        assert not report.passed
        assert _failed(report, "colgen_duality_gap")

    def test_perturbed_bound_fails(self, genuine):
        torus, design = genuine
        report = certify_colgen_design(
            torus,
            design.flows,
            design.worst_case_load * 1.01,
            lower_bound=design.colgen.lower_bound,
        )
        assert not report.passed
        assert _failed(report, "colgen_oracle")

    def test_perturbed_dual_weight_fails(self, genuine):
        # The recorded master optimum is the aggregated dual weight of
        # the generated rows; nudging it opens a certified gap.
        torus, design = genuine
        report = certify_colgen_design(
            torus,
            design.flows,
            design.worst_case_load,
            lower_bound=design.colgen.lower_bound * 0.99,
        )
        assert not report.passed
        assert _failed(report, "colgen_duality_gap")

    def test_missing_lower_bound_fails(self, genuine):
        torus, design = genuine
        report = certify_colgen_design(
            torus, design.flows, design.worst_case_load, lower_bound=None
        )
        assert not report.passed
        assert _failed(report, "colgen_duality_gap")

    def test_perturbed_flows_fail(self, genuine):
        torus, design = genuine
        flows = design.flows.copy()
        flows[:, 0] *= 1.5  # overload one channel column
        report = certify_colgen_design(
            torus,
            flows,
            design.worst_case_load,
            lower_bound=design.colgen.lower_bound,
        )
        assert not report.passed

    def test_early_termination_raises_and_fails_certification(
        self, monkeypatch
    ):
        # Without the closed-form VAL anchor the loop needs tens of
        # iterations; truncating it must raise (never silently return a
        # non-converged design), and certifying the partial artifacts
        # it carries must fail.
        monkeypatch.setattr(
            wc_mod, "_heuristic_anchor_flows", lambda *a, **k: []
        )
        torus = Torus(4, 2)
        with pytest.raises(ColGenError) as err:
            design_worst_case(torus, method="colgen", max_iterations=1)
        assert err.value.iterations == 1
        flows = np.clip(np.asarray(err.value.flows, dtype=float), 0.0, None)
        if flows.shape == (torus.num_nodes, torus.num_channels):
            report = certify_colgen_design(
                torus, flows, err.value.bound, lower_bound=err.value.bound
            )
            assert not report.passed


class TestGeneralCertificate:
    def test_genuine_general_passes(self):
        torus = Torus(3, 2)
        design = design_general_worst_case(torus, method="colgen")
        report = certify_colgen_general(
            torus,
            design.flows,
            design.objective_load,
            lower_bound=design.colgen.lower_bound,
        )
        assert report.passed, report.render()

    def test_perturbed_general_bound_fails(self):
        torus = Torus(3, 2)
        design = design_general_worst_case(torus, method="colgen")
        report = certify_colgen_general(
            torus,
            design.flows,
            design.objective_load * 1.05,
            lower_bound=design.colgen.lower_bound,
        )
        assert not report.passed
        assert _failed(report, "colgen_oracle")

    def test_perturbed_general_dual_fails(self):
        torus = Torus(3, 2)
        design = design_general_worst_case(torus, method="colgen")
        report = certify_colgen_general(
            torus,
            design.flows,
            design.objective_load,
            lower_bound=design.colgen.lower_bound * 0.9,
        )
        assert not report.passed
        assert _failed(report, "colgen_duality_gap")
