"""Tests for algorithm-level metric bundles."""

import numpy as np
import pytest

from repro.metrics import average_case_load, evaluate_algorithm, uniform_load
from repro.routing import DimensionOrderRouting, VAL
from repro.topology import Torus
from repro.traffic import sample_traffic_set, uniform


@pytest.fixture(scope="module")
def t8():
    return Torus(8, 2)


@pytest.fixture(scope="module")
def dor8(t8):
    return DimensionOrderRouting(t8)


class TestUniformLoad:
    def test_dor_8ary(self, dor8):
        assert uniform_load(dor8) == pytest.approx(1.0)

    def test_dor_odd_radix(self):
        # odd-k ring: optimal uniform load (k^2 - 1) / (8k); DOR attains it
        dor = DimensionOrderRouting(Torus(5, 2))
        assert uniform_load(dor) == pytest.approx((25 - 1) / 40)


class TestAverageCaseLoad:
    def test_bounded_by_worst_case(self, t8, dor8):
        from repro.metrics import worst_case_load

        sample = sample_traffic_set(np.random.default_rng(0), 64, 10)
        avg = average_case_load(dor8, sample)
        assert avg <= worst_case_load(dor8).load + 1e-9

    def test_at_least_uniform_for_dor(self, dor8):
        # uniform is DOR's best pattern among doubly-stochastic ones
        sample = sample_traffic_set(np.random.default_rng(1), 64, 10)
        assert average_case_load(dor8, sample) >= uniform_load(dor8) - 1e-9

    def test_empty_sample_rejected(self, dor8):
        with pytest.raises(ValueError, match="empty"):
            average_case_load(dor8, [])

    def test_val_average_equals_worst(self, t8):
        # VAL is pattern-oblivious in the strongest sense: its loads are
        # the same for every fixed-point-free permutation, and nearly so
        # for interior doubly-stochastic matrices.
        val = VAL(t8)
        sample = sample_traffic_set(np.random.default_rng(2), 64, 5)
        avg = average_case_load(val, sample)
        assert avg == pytest.approx(2.0, rel=0.02)


class TestEvaluateAlgorithm:
    def test_bundle_fields(self, dor8):
        sample = sample_traffic_set(np.random.default_rng(0), 64, 5)
        m = evaluate_algorithm(dor8, traffic_sample=sample, capacity_load=1.0)
        assert m.name == "DOR"
        assert m.normalized_path_length == pytest.approx(1.0)
        assert m.uniform_load == pytest.approx(1.0)
        assert m.worst_case_load == pytest.approx(3.5)
        assert m.worst_case_vs_capacity == pytest.approx(2 / 7)
        assert m.average_case_load is not None
        assert 0 < m.average_case_vs_capacity < 1

    def test_throughput_properties(self, dor8):
        m = evaluate_algorithm(dor8, capacity_load=1.0)
        assert m.uniform_throughput == pytest.approx(1.0)
        assert m.worst_case_throughput == pytest.approx(2 / 7)

    def test_missing_inputs_raise(self, dor8):
        m = evaluate_algorithm(dor8)
        with pytest.raises(ValueError):
            _ = m.worst_case_vs_capacity
        with pytest.raises(ValueError):
            _ = m.average_case_throughput
        with pytest.raises(ValueError):
            _ = m.average_case_vs_capacity

    def test_general_path_for_mesh(self):
        from repro.topology import Mesh
        from repro.routing.base import ObliviousRouting
        from repro.routing.paths import build_path

        class MeshXY(ObliviousRouting):
            """Minimal X-then-Y routing on a mesh (no wraparound)."""

            def path_distribution(self, s, d):
                if s == d:
                    return [((s,), 1.0)]
                m = self.network
                cs, cd = m.coords(s), m.coords(d)
                nodes = [s]
                cur = cs.copy()
                for dim in range(2):
                    step = 1 if cd[dim] > cur[dim] else -1
                    while cur[dim] != cd[dim]:
                        cur[dim] += step
                        nodes.append(m.node_at(cur))
                return [(tuple(nodes), 1.0)]

        mesh = Mesh(3, 2)
        alg = MeshXY(mesh, name="mesh-xy")
        m = evaluate_algorithm(alg)
        assert m.normalized_path_length == pytest.approx(1.0)
        assert m.worst_case_load > m.uniform_load
