"""Tests for the sampled worst-case lower bound (Appendix heuristic)."""

import numpy as np
import pytest

from repro.metrics import sampled_worst_case_load, worst_case_load
from repro.metrics.channel_load import canonical_max_load
from repro.routing import DimensionOrderRouting, VAL
from repro.topology import Torus, TranslationGroup


@pytest.fixture(scope="module")
def setup():
    t = Torus(5, 2)
    return t, TranslationGroup(t)


class TestSampledWorstCase:
    def test_lower_bounds_exact(self, setup):
        t, g = setup
        dor = DimensionOrderRouting(t)
        exact = worst_case_load(dor)
        est = sampled_worst_case_load(
            dor.canonical_flows, t, g, np.random.default_rng(0), 32
        )
        assert est.load <= exact.load + 1e-9

    def test_val_sampling_is_tight(self, setup):
        # VAL's load is the same under every derangement, so a single
        # sample already equals the exact worst case.
        t, g = setup
        val = VAL(t)
        exact = worst_case_load(val)
        est = sampled_worst_case_load(
            val.canonical_flows, t, g, np.random.default_rng(1), 1
        )
        assert est.load == pytest.approx(exact.load, rel=1e-9)

    def test_permutation_realizes_reported_load(self, setup):
        t, g = setup
        dor = DimensionOrderRouting(t)
        est = sampled_worst_case_load(
            dor.canonical_flows, t, g, np.random.default_rng(2), 16
        )
        realized = canonical_max_load(
            t, g, dor.canonical_flows, est.traffic_matrix()
        )
        assert realized == pytest.approx(est.load)

    def test_derangements_only(self, setup):
        t, g = setup
        dor = DimensionOrderRouting(t)
        est = sampled_worst_case_load(
            dor.canonical_flows, t, g, np.random.default_rng(3), 8
        )
        assert not np.any(est.permutation == np.arange(t.num_nodes))

    def test_more_samples_no_worse(self, setup):
        t, g = setup
        dor = DimensionOrderRouting(t)
        small = sampled_worst_case_load(
            dor.canonical_flows, t, g, np.random.default_rng(4), 4
        )
        # same stream, longer prefix contains the shorter one's draws
        big = sampled_worst_case_load(
            dor.canonical_flows, t, g, np.random.default_rng(4), 32
        )
        assert big.load >= small.load - 1e-12

    def test_zero_samples_rejected(self, setup):
        t, g = setup
        with pytest.raises(ValueError, match="at least one"):
            sampled_worst_case_load(
                np.zeros((t.num_nodes, t.num_channels)),
                t,
                g,
                np.random.default_rng(0),
                0,
            )

    def test_gets_close_to_exact_with_many_samples(self, setup):
        t, g = setup
        dor = DimensionOrderRouting(t)
        exact = worst_case_load(dor)
        est = sampled_worst_case_load(
            dor.canonical_flows, t, g, np.random.default_rng(5), 200
        )
        assert est.load >= 0.7 * exact.load
