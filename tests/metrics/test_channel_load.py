"""Unit tests for channel-load computation (paper eqs. 2-4)."""

import numpy as np
import pytest

from repro.metrics import (
    canonical_channel_loads,
    canonical_max_load,
    general_channel_loads,
    general_max_load,
    throughput,
)
from repro.routing import DimensionOrderRouting, VAL
from repro.topology import Torus, TranslationGroup
from repro.traffic import neighbor, tornado, uniform


@pytest.fixture(scope="module")
def t8():
    return Torus(8, 2)


@pytest.fixture(scope="module")
def g8(t8):
    return TranslationGroup(t8)


@pytest.fixture(scope="module")
def dor8(t8):
    return DimensionOrderRouting(t8)


class TestCanonicalLoads:
    def test_neighbor_traffic_loads_one_class(self, t8, g8, dor8):
        loads = canonical_channel_loads(g8, dor8.canonical_flows, neighbor(t8))
        plus_x = t8.class_members(0)
        assert np.allclose(loads[plus_x], 1.0)
        others = np.setdiff1d(np.arange(t8.num_channels), plus_x)
        assert np.allclose(loads[others], 0.0)

    def test_tornado_dor_load(self, t8, g8, dor8):
        # offset ceil(k/2)-1 = 3, all +x: each +x channel carries 3 flows
        loads = canonical_channel_loads(g8, dor8.canonical_flows, tornado(t8))
        assert loads.max() == pytest.approx(3.0)

    def test_uniform_dor_capacity(self, t8, g8, dor8):
        # classic result: DOR achieves max load k/8 = 1.0 under uniform
        assert canonical_max_load(
            t8, g8, dor8.canonical_flows, uniform(64)
        ) == pytest.approx(1.0)

    def test_total_load_equals_total_flow(self, t8, g8, dor8):
        # sum_c gamma_c = sum over pairs of expected path length
        loads = canonical_channel_loads(g8, dor8.canonical_flows, uniform(64))
        expected = dor8.canonical_flows.sum() * 64 / 64**2 * 64
        assert loads.sum() == pytest.approx(dor8.canonical_flows.sum())

    def test_matches_general_computation(self):
        t = Torus(4, 2)
        g = TranslationGroup(t)
        dor = DimensionOrderRouting(t)
        rng = np.random.default_rng(0)
        from repro.traffic import birkhoff_sample

        lam = birkhoff_sample(rng, t.num_nodes, 3)
        fast = canonical_channel_loads(g, dor.canonical_flows, lam)
        slow = general_channel_loads(dor.full_flows(), lam)
        assert np.allclose(fast, slow)

    def test_loads_scale_linearly_in_traffic(self, t8, g8, dor8):
        lam = tornado(t8)
        half = canonical_channel_loads(g8, dor8.canonical_flows, 0.5 * lam)
        full = canonical_channel_loads(g8, dor8.canonical_flows, lam)
        assert np.allclose(2 * half, full)


class TestGeneralLoads:
    def test_bandwidth_normalization(self):
        t = Torus(4, 2, bandwidth=2.0)
        dor = DimensionOrderRouting(t)
        lam = neighbor(t)
        assert general_max_load(t.bandwidth, dor.full_flows(), lam) == (
            pytest.approx(0.5)
        )

    def test_throughput_inverse(self):
        assert throughput(2.0) == pytest.approx(0.5)
        assert throughput(0.0) == float("inf")


class TestVALInvariance:
    def test_val_loads_independent_of_permutation(self, t8, g8):
        # VAL's loads depend only on the row/column sums of the traffic
        # matrix, hence are identical across (fixed-point-free) perms.
        from repro.traffic import random_permutation

        val = VAL(t8)
        flows = val.canonical_flows
        rng = np.random.default_rng(0)
        loads = [
            canonical_channel_loads(
                g8, flows, random_permutation(rng, 64, fixed_point_free=True)
            )
            for _ in range(3)
        ]
        assert np.allclose(loads[0], loads[1])
        assert np.allclose(loads[1], loads[2])
