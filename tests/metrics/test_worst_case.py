"""Tests for exact worst-case evaluation — reproduces the published
worst-case throughputs of the standard algorithms on the 8-ary 2-cube."""

import numpy as np
import pytest

from repro.metrics import worst_case_load, worst_case_permutation
from repro.metrics.channel_load import canonical_max_load
from repro.metrics.worst_case_eval import general_worst_case_load
from repro.routing import standard_algorithms
from repro.topology import Torus, TranslationGroup
from repro.traffic import random_permutation, validate_doubly_stochastic


@pytest.fixture(scope="module")
def t8():
    return Torus(8, 2)


@pytest.fixture(scope="module")
def algs8(t8):
    return standard_algorithms(t8)


class TestPublishedWorstCases:
    """Worst-case throughput (fraction of the 8-ary 2-cube capacity of
    1.0 packets/cycle/channel) for Table 1's algorithms, cross-checked
    against the values reported in the paper and in [18]/[21]."""

    def test_dor(self, algs8):
        assert worst_case_load(algs8["DOR"]).throughput == pytest.approx(
            2.0 / 7.0, rel=1e-6
        )

    def test_val_is_half_capacity(self, algs8):
        assert worst_case_load(algs8["VAL"]).load == pytest.approx(2.0)

    def test_romm(self, algs8):
        assert worst_case_load(algs8["ROMM"]).throughput == pytest.approx(
            0.2083, abs=2e-4
        )

    def test_rlb(self, algs8):
        assert worst_case_load(algs8["RLB"]).throughput == pytest.approx(
            0.311, abs=2e-3
        )

    def test_rlbth(self, algs8):
        assert worst_case_load(algs8["RLBth"]).throughput == pytest.approx(
            0.296, abs=2e-3
        )

    def test_ordering_matches_figure1(self, algs8):
        wc = {n: worst_case_load(a).throughput for n, a in algs8.items()}
        assert wc["ROMM"] < wc["DOR"] < wc["RLBth"] < wc["RLB"] < wc["VAL"]


class TestWorstCaseStructure:
    def test_upper_bounds_every_permutation(self, t8, algs8):
        g = TranslationGroup(t8)
        rng = np.random.default_rng(0)
        for alg in algs8.values():
            wc = worst_case_load(alg)
            for _ in range(3):
                lam = random_permutation(rng, t8.num_nodes)
                assert (
                    canonical_max_load(t8, g, alg.canonical_flows, lam)
                    <= wc.load + 1e-9
                )

    def test_adversary_achieves_load(self, t8, algs8):
        g = TranslationGroup(t8)
        for alg in algs8.values():
            wc = worst_case_load(alg)
            realized = canonical_max_load(
                t8, g, alg.canonical_flows, wc.traffic_matrix()
            )
            assert realized == pytest.approx(wc.load)

    def test_permutation_is_doubly_stochastic(self, algs8):
        validate_doubly_stochastic(worst_case_permutation(algs8["DOR"]))

    def test_general_agrees_with_canonical(self):
        t = Torus(4, 2)
        from repro.routing import DimensionOrderRouting

        dor = DimensionOrderRouting(t)
        fast = worst_case_load(dor)
        slow = general_worst_case_load(t, dor.full_flows())
        assert fast.load == pytest.approx(slow.load)

    def test_raw_flows_entrypoint(self, t8, algs8):
        g = TranslationGroup(t8)
        alg = algs8["DOR"]
        direct = worst_case_load(alg.canonical_flows, t8, g)
        assert direct.load == pytest.approx(worst_case_load(alg).load)

    def test_rejects_non_torus(self):
        from repro.topology import Mesh
        from repro.routing.base import ObliviousRouting

        class Dummy(ObliviousRouting):
            translation_invariant = True

            def path_distribution(self, s, d):  # pragma: no cover
                return [((s,), 1.0)]

        with pytest.raises(TypeError, match="torus"):
            worst_case_load(Dummy(Mesh(3, 2)))
