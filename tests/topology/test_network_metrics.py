"""Distance-metric regressions: the unreachable-pair sentinel and the
vectorized BFS kernel."""

import numpy as np
import pytest

from repro.faults import FaultSet, degrade
from repro.topology import Mesh, Network, SparsePillarTorus3D, Torus


class TestMeanMinDistanceUnreachable:
    """`mean_min_distance` used to average the ``-1`` unreachable
    sentinel straight into the metric, silently deflating H_min on any
    disconnected network."""

    def test_disconnected_degradation_raises(self):
        torus = Torus(4, 2)
        degraded = degrade(torus, FaultSet(nodes=(3,)))
        with pytest.raises(ValueError, match="unreachable"):
            degraded.mean_min_distance()

    def test_skip_unreachable_averages_reachable_pairs(self):
        torus = Torus(4, 2)
        degraded = degrade(torus, FaultSet(nodes=(3,)))
        got = degraded.mean_min_distance(skip_unreachable=True)
        dist = degraded.distance_matrix()
        expected = dist[dist >= 0].mean()
        assert got == pytest.approx(expected)
        # the sentinel would have dragged the mean below the true value
        assert got > dist.mean()

    def test_connected_network_unaffected(self):
        torus = Torus(4, 2)
        assert torus.mean_min_distance() == pytest.approx(
            torus.mean_min_distance(skip_unreachable=True)
        )

    def test_error_counts_pairs(self):
        net = Network(2, [(0, 1)])  # 1 -> 0 is unreachable
        with pytest.raises(ValueError, match="1 unreachable"):
            net.mean_min_distance()


class TestVectorizedBfs:
    """The masked-frontier BFS must agree exactly with the scalar-loop
    oracle it replaced."""

    @pytest.mark.parametrize(
        "net",
        [
            Torus(5, 2),
            Mesh(3, 3),
            SparsePillarTorus3D(3, pillar_spacing=2),
            Network(2, [(0, 1)]),  # not strongly connected
        ],
        ids=["torus", "mesh", "pillar", "line"],
    )
    def test_matches_reference(self, net):
        for source in range(net.num_nodes):
            fast = net._bfs(source)
            slow = net._bfs_reference(source)
            np.testing.assert_array_equal(fast, slow)

    def test_matches_reference_on_degraded_network(self):
        degraded = degrade(Torus(4, 2), FaultSet(nodes=(3,), channels=(7,)))
        for source in range(degraded.num_nodes):
            np.testing.assert_array_equal(
                degraded._bfs(source), degraded._bfs_reference(source)
            )

    def test_distance_matrix_agrees_with_torus_closed_form(self):
        # Torus overrides distance_matrix with the ring metric; the BFS
        # path (generic Network) must land on the same distances.
        torus = Torus(4, 3)
        generic = Network(
            torus.num_nodes,
            [(ch.src, ch.dst, ch.bandwidth) for ch in torus.channels()],
        )
        np.testing.assert_array_equal(
            generic.distance_matrix(), torus.distance_matrix()
        )
