"""Unit tests for translation/point-symmetry machinery."""

import numpy as np
import pytest

from repro.topology import Torus, TranslationGroup, stabilizer_maps
from repro.topology.symmetry import symmetrize_canonical_flows


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="module")
def g4(t4):
    return TranslationGroup(t4)


class TestTranslationGroup:
    def test_node_sum_matches_add(self, t4, g4):
        rng = np.random.default_rng(0)
        a = rng.integers(0, t4.num_nodes, 30)
        b = rng.integers(0, t4.num_nodes, 30)
        assert np.array_equal(g4.node_sum[a, b], t4.add_nodes(a, b))

    def test_node_diff_matches_sub(self, t4, g4):
        rng = np.random.default_rng(1)
        a = rng.integers(0, t4.num_nodes, 30)
        b = rng.integers(0, t4.num_nodes, 30)
        assert np.array_equal(g4.node_diff[a, b], t4.sub_nodes(a, b))

    def test_chan_shift_matches_translate(self, t4, g4):
        for c in range(0, t4.num_channels, 7):
            for s in range(0, t4.num_nodes, 5):
                assert g4.chan_shift[c, s] == t4.translate_channels(c, s)

    def test_untranslate_inverts(self, t4, g4):
        chans = np.arange(t4.num_channels)
        for s in (0, 3, 9):
            shifted = g4.chan_shift[chans, s]
            assert np.array_equal(g4.untranslate_channels(shifted, s), chans)

    def test_commodity_flow_translation(self, t4, g4):
        rng = np.random.default_rng(2)
        x = rng.random((t4.num_nodes, t4.num_channels))
        s, d = 5, 11
        f = g4.commodity_flow(x, s, d)
        t = int(t4.sub_nodes(d, s))
        for c in range(0, t4.num_channels, 5):
            c_canon = int(g4.untranslate_channels(c, s))
            assert f[c] == x[t, c_canon]

    def test_commodity_flow_identity_source(self, t4, g4):
        rng = np.random.default_rng(3)
        x = rng.random((t4.num_nodes, t4.num_channels))
        assert np.array_equal(g4.commodity_flow(x, 0, 7), x[7])


class TestStabilizer:
    def test_group_order(self, t4):
        maps = stabilizer_maps(t4)
        assert len(maps) == 8  # 2^2 * 2! for n = 2

    def test_fixes_origin(self, t4):
        for g in stabilizer_maps(t4):
            assert g.node_map[0] == 0

    def test_node_maps_are_permutations(self, t4):
        for g in stabilizer_maps(t4):
            assert sorted(g.node_map) == list(range(t4.num_nodes))
            assert sorted(g.channel_map) == list(range(t4.num_channels))

    def test_channel_map_is_graph_automorphism(self, t4):
        for g in stabilizer_maps(t4):
            src_img = g.node_map[t4.channel_src]
            dst_img = g.node_map[t4.channel_dst]
            assert np.array_equal(src_img, t4.channel_src[g.channel_map])
            assert np.array_equal(dst_img, t4.channel_dst[g.channel_map])

    def test_identity_present(self, t4):
        maps = stabilizer_maps(t4)
        assert any(
            np.array_equal(g.node_map, np.arange(t4.num_nodes)) for g in maps
        )


class TestSymmetrize:
    def test_preserves_row_sums(self, t4):
        rng = np.random.default_rng(4)
        flows = rng.random((t4.num_nodes, t4.num_channels))
        sym = symmetrize_canonical_flows(t4, flows)
        # total flow per destination-orbit is preserved on average
        assert sym.sum() == pytest.approx(flows.sum())

    def test_fixed_point(self, t4):
        # A constant table is invariant under every automorphism.
        flows = np.ones((t4.num_nodes, t4.num_channels))
        sym = symmetrize_canonical_flows(t4, flows)
        assert np.allclose(sym, flows)

    def test_idempotent(self, t4):
        rng = np.random.default_rng(5)
        flows = rng.random((t4.num_nodes, t4.num_channels))
        once = symmetrize_canonical_flows(t4, flows)
        twice = symmetrize_canonical_flows(t4, once)
        assert np.allclose(once, twice)
