"""Unit tests for the generic directed-graph network model."""

import numpy as np
import pytest

from repro.topology import Network


def ring(n):
    return Network(n, [(i, (i + 1) % n) for i in range(n)], name="ring")


class TestConstruction:
    def test_basic_counts(self):
        net = ring(5)
        assert net.num_nodes == 5
        assert net.num_channels == 5

    def test_channel_record(self):
        net = ring(4)
        ch = net.channel(2)
        assert (ch.index, ch.src, ch.dst, ch.bandwidth) == (2, 2, 3, 1.0)

    def test_channels_iterates_in_order(self):
        net = ring(4)
        assert [c.index for c in net.channels()] == [0, 1, 2, 3]

    def test_custom_bandwidth(self):
        net = Network(2, [(0, 1, 2.5), (1, 0)])
        assert net.bandwidth[0] == 2.5
        assert net.bandwidth[1] == 1.0

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            Network(2, [(0, 0)])

    def test_rejects_duplicate_channel(self):
        with pytest.raises(ValueError, match="duplicate"):
            Network(2, [(0, 1), (0, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of node range"):
            Network(2, [(0, 2)])

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            Network(2, [(0, 1, 0.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one channel"):
            Network(3, [])

    def test_rejects_bad_node_count(self):
        with pytest.raises(ValueError, match="num_nodes"):
            Network(0, [(0, 1)])

    def test_rejects_bad_spec_arity(self):
        with pytest.raises(ValueError, match="2 or 3 fields"):
            Network(2, [(0, 1, 1.0, 9)])


class TestAdjacency:
    def test_channel_index_roundtrip(self):
        net = ring(6)
        for c in net.channels():
            assert net.channel_index(c.src, c.dst) == c.index

    def test_has_channel(self):
        net = ring(3)
        assert net.has_channel(0, 1)
        assert not net.has_channel(1, 0)

    def test_out_in_channels(self):
        net = ring(4)
        assert list(net.out_channels(1)) == [1]
        assert list(net.in_channels(1)) == [0]

    def test_neighbors(self):
        net = ring(4)
        assert list(net.neighbors(3)) == [0]

    def test_missing_channel_raises(self):
        net = ring(3)
        with pytest.raises(KeyError):
            net.channel_index(0, 2)


class TestDistances:
    def test_ring_distances(self):
        net = ring(5)
        d = net.distance_matrix()
        assert d[0, 0] == 0
        assert d[0, 1] == 1
        assert d[0, 4] == 4  # directed ring: must go the long way
        assert d[4, 0] == 1

    def test_min_distance(self):
        net = ring(4)
        assert net.min_distance(1, 3) == 2

    def test_mean_min_distance(self):
        net = ring(3)
        # distances: 0,1,2 from each node -> mean 1.0
        assert net.mean_min_distance() == pytest.approx(1.0)

    def test_unreachable_flagged(self):
        net = Network(3, [(0, 1), (1, 0)])
        assert net.min_distance(0, 2) == -1
        with pytest.raises(ValueError, match="strongly connected"):
            net.validate_connected()

    def test_connected_ok(self):
        ring(4).validate_connected()


class TestInterop:
    def test_to_networkx(self):
        net = ring(4)
        g = net.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 4
        assert g[0][1]["index"] == 0
        assert g[0][1]["bandwidth"] == 1.0

    def test_distance_cache_is_reused(self):
        net = ring(4)
        assert net.distance_matrix() is net.distance_matrix()
