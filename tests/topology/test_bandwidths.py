"""Per-dimension (heterogeneous) bandwidths across the topology layer."""

import numpy as np
import pytest

from repro.topology import Hypercube, Mesh, SparsePillarTorus3D, Torus
from repro.topology.network import normalize_bandwidths


class TestNormalizeBandwidths:
    def test_default_is_unit(self):
        assert normalize_bandwidths(None, 1.0, 3) == (1.0, 1.0, 1.0)

    def test_scalar_broadcasts(self):
        assert normalize_bandwidths(None, 2.5, 2) == (2.5, 2.5)

    def test_vector_passthrough(self):
        assert normalize_bandwidths((1, 1, 0.5), 1.0, 3) == (1.0, 1.0, 0.5)

    def test_rejects_both(self):
        with pytest.raises(ValueError, match="not both"):
            normalize_bandwidths((1.0, 1.0), 2.0, 2)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="3"):
            normalize_bandwidths((1.0, 0.5), 1.0, 3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            normalize_bandwidths((1.0, 0.0, 1.0), 1.0, 3)


class TestTorusBandwidths:
    def test_per_dimension_assignment(self):
        t = Torus(4, 3, bandwidths=(1.0, 2.0, 0.5))
        for c in range(t.num_channels):
            dim = t.channel_dim(c)
            assert t.bandwidth[c] == (1.0, 2.0, 0.5)[dim]

    def test_classes_stay_bandwidth_uniform(self):
        t = Torus(4, 3, bandwidths=(1.0, 1.0, 0.5))
        for cls in range(t.num_classes):
            members = t.class_members(cls)
            assert len(set(t.bandwidth[members])) == 1

    def test_uniform_scalar_still_works(self):
        t = Torus(4, 2, bandwidth=3.0)
        assert t.bandwidths == (3.0, 3.0)
        assert (t.bandwidth == 3.0).all()

    def test_heterogeneous_name_suffix(self):
        assert "b=1,1,0.5" in Torus(4, 3, bandwidths=(1, 1, 0.5)).name
        assert "b=" not in Torus(4, 3).name
        # uniform non-unit vectors don't pretend to be heterogeneous
        assert "b=" not in Torus(4, 2, bandwidths=(2.0, 2.0)).name

    def test_rejects_mixed_scalar_and_vector(self):
        with pytest.raises(ValueError, match="not both"):
            Torus(4, 2, bandwidth=2.0, bandwidths=(1.0, 1.0))


@pytest.mark.parametrize(
    "factory",
    [
        lambda bw: Mesh(3, 3, bandwidths=bw),
        lambda bw: SparsePillarTorus3D(3, pillar_spacing=2, bandwidths=bw),
    ],
    ids=["mesh", "pillar"],
)
def test_general_topologies_take_bandwidth_vectors(factory):
    net = factory((1.0, 1.0, 0.5))
    assert net.bandwidths == (1.0, 1.0, 0.5)
    assert set(np.unique(net.bandwidth)) <= {0.5, 1.0}
    assert (net.bandwidth == 0.5).any()


def test_hypercube_bandwidth_vector():
    h = Hypercube(3, bandwidths=(1.0, 1.0, 0.5))
    assert h.bandwidths == (1.0, 1.0, 0.5)
    assert (h.bandwidth == 0.5).sum() > 0
