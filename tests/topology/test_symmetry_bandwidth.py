"""Bandwidth-preserving stabilizer filtering on heterogeneous tori.

A dimension-permuting signed coordinate map is a *graph* automorphism
of any k-ary n-cube, but on a torus with per-axis bandwidths it is only
a *network* automorphism when it maps every channel to one of equal
bandwidth.  Averaging canonical flows over a non-preserving map shifts
load between fast and slow axes, silently invalidating every load
figure computed from the symmetrized table — so the stabilizer must be
filtered before symmetrization.
"""

import numpy as np
import pytest

from repro.metrics.worst_case_eval import worst_case_load
from repro.routing import IVAL
from repro.topology import Torus, stabilizer_maps
from repro.topology.symmetry import symmetrize_canonical_flows


@pytest.fixture(scope="module")
def hetero():
    """3-D torus with a half-speed Z axis: X and Y stay interchangeable."""
    return Torus(3, 3, bandwidths=(1.0, 1.0, 0.5))


class TestStabilizerFilter:
    def test_homogeneous_keeps_full_point_group(self):
        maps = stabilizer_maps(Torus(3, 3))
        assert len(maps) == 2**3 * 6  # 2^n * n!

    def test_heterogeneous_drops_axis_swaps(self, hetero):
        maps = stabilizer_maps(hetero)
        # X<->Y swaps survive (2 perms), Z must stay fixed; all 2^3
        # sign flips survive: 2 * 8 = 16 of the raw 48.
        assert len(maps) == 16

    def test_raw_group_available_on_request(self, hetero):
        raw = stabilizer_maps(hetero, bandwidth_preserving=False)
        assert len(raw) == 48

    def test_kept_maps_preserve_bandwidth(self, hetero):
        bw = hetero.bandwidth
        for g in stabilizer_maps(hetero):
            np.testing.assert_array_equal(bw[g.channel_map], bw)

    def test_dropped_maps_do_not_preserve_bandwidth(self, hetero):
        bw = hetero.bandwidth
        kept = {g.channel_map.tobytes() for g in stabilizer_maps(hetero)}
        dropped = [
            g
            for g in stabilizer_maps(hetero, bandwidth_preserving=False)
            if g.channel_map.tobytes() not in kept
        ]
        assert len(dropped) == 32
        for g in dropped:
            assert not np.array_equal(bw[g.channel_map], bw)


class TestSymmetrizedFlowsStayValid:
    def test_row_sums_preserved(self, hetero):
        flows = IVAL(hetero).canonical_flows
        sym = symmetrize_canonical_flows(hetero, flows)
        np.testing.assert_allclose(
            sym.sum(axis=1).sum(), flows.sum(axis=1).sum(), rtol=1e-12
        )

    def test_worst_case_load_not_degraded(self, hetero):
        """Averaging over true network automorphisms can only help the
        worst case (convexity); with the unfiltered group the average
        pushes flow onto the slow Z axis and the guarantee collapses."""
        flows = IVAL(hetero).canonical_flows
        before = worst_case_load(flows, hetero).load
        after = worst_case_load(
            symmetrize_canonical_flows(hetero, flows), hetero
        ).load
        assert after <= before + 1e-9


class TestDesignCertificatesOnHeterogeneous3D:
    def test_worst_case_design_certifies(self, hetero):
        from repro.core.worst_case import design_worst_case
        from repro.verify.certificates import collect_certificates

        with collect_certificates() as collector:
            design = design_worst_case(hetero)
        assert collector.certificates
        assert collector.all_valid
        # optimum matches the exact assignment evaluator on its flows
        exact = worst_case_load(design.flows, hetero).load
        assert design.worst_case_load == pytest.approx(exact, abs=1e-6)
