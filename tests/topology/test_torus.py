"""Unit tests for the k-ary n-cube topology."""

import numpy as np
import pytest

from repro.topology import Torus


class TestConstruction:
    @pytest.mark.parametrize("k,n", [(3, 1), (3, 2), (4, 2), (8, 2), (3, 3)])
    def test_counts(self, k, n):
        t = Torus(k, n)
        assert t.num_nodes == k**n
        assert t.num_channels == 2 * n * k**n

    def test_rejects_small_radix(self):
        with pytest.raises(ValueError, match="k >= 3"):
            Torus(2)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError, match="n >= 1"):
            Torus(4, 0)

    def test_connected(self):
        Torus(4, 2).validate_connected()

    def test_name(self):
        assert Torus(8, 2).name == "8-ary 2-cube"


class TestCoordinates:
    def test_roundtrip(self):
        t = Torus(5, 2)
        for v in range(t.num_nodes):
            assert t.node_at(t.coords(v)) == v

    def test_dimension_zero_fastest(self):
        t = Torus(4, 2)
        assert list(t.coords(1)) == [1, 0]
        assert list(t.coords(4)) == [0, 1]

    def test_node_at_wraps(self):
        t = Torus(4, 2)
        assert t.node_at([5, -1]) == t.node_at([1, 3])


class TestChannels:
    def test_channel_at_matches_edges(self):
        t = Torus(4, 2)
        v = t.node_at([1, 2])
        c = t.channel_at(v, 0, +1)
        assert t.channel_src[c] == v
        assert t.channel_dst[c] == t.node_at([2, 2])
        c = t.channel_at(v, 1, -1)
        assert t.channel_dst[c] == t.node_at([1, 1])

    def test_channel_at_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            Torus(4).channel_at(0, 0, 2)

    def test_class_decomposition(self):
        t = Torus(4, 2)
        for c in range(t.num_channels):
            node = int(t.channel_node(c))
            dim = int(t.channel_dim(c))
            direction = int(t.channel_direction(c))
            assert t.channel_at(node, dim, direction) == c

    def test_class_representatives(self):
        t = Torus(5, 2)
        reps = t.class_representatives()
        assert list(t.channel_class(reps)) == [0, 1, 2, 3]
        assert all(t.channel_node(r) == 0 for r in reps)

    def test_class_members_partition(self):
        t = Torus(3, 2)
        all_members = np.concatenate(
            [t.class_members(c) for c in range(t.num_classes)]
        )
        assert sorted(all_members) == list(range(t.num_channels))


class TestGroupOps:
    def test_add_sub_inverse(self):
        t = Torus(5, 2)
        rng = np.random.default_rng(0)
        a = rng.integers(0, t.num_nodes, 20)
        b = rng.integers(0, t.num_nodes, 20)
        assert np.array_equal(t.sub_nodes(t.add_nodes(a, b), b), a)

    def test_identity(self):
        t = Torus(4, 2)
        nodes = np.arange(t.num_nodes)
        assert np.array_equal(t.add_nodes(nodes, 0), nodes)

    def test_translate_channels_preserves_structure(self):
        t = Torus(4, 2)
        rng = np.random.default_rng(1)
        for _ in range(10):
            c = int(rng.integers(t.num_channels))
            s = int(rng.integers(t.num_nodes))
            c2 = int(t.translate_channels(c, s))
            # endpoints translate consistently
            assert t.channel_src[c2] == t.add_nodes(int(t.channel_src[c]), s)
            assert t.channel_dst[c2] == t.add_nodes(int(t.channel_dst[c]), s)
            assert t.channel_class(c2) == t.channel_class(c)


class TestDistances:
    def test_matches_bfs(self):
        t = Torus(5, 2)
        closed_form = t.distance_matrix()
        bfs = np.vstack([t._bfs(s) for s in range(t.num_nodes)])
        assert np.array_equal(closed_form, bfs)

    def test_odd_radix_mean(self):
        # mean ring distance for odd k over all pairs incl. self: (k^2-1)/(4k)
        t = Torus(5, 1)
        assert t.mean_min_distance() == pytest.approx((25 - 1) / 20)

    def test_even_radix_mean(self):
        # even k ring: mean over all pairs incl. self = k/4
        t = Torus(4, 1)
        assert t.mean_min_distance() == pytest.approx(1.0)

    def test_2cube_mean_is_twice_ring(self):
        ring = Torus(6, 1).mean_min_distance()
        assert Torus(6, 2).mean_min_distance() == pytest.approx(2 * ring)


class TestMinimalDirections:
    def test_zero_offset(self):
        t = Torus(4, 2)
        assert t.minimal_directions(0, 0) == [(), ()]

    def test_unique_minimal(self):
        t = Torus(8, 2)
        s, d = t.node_at([0, 0]), t.node_at([2, 7])
        assert t.minimal_directions(s, d) == [(+1,), (-1,)]

    def test_tie_at_half_k(self):
        t = Torus(8, 2)
        s, d = t.node_at([0, 0]), t.node_at([4, 0])
        assert t.minimal_directions(s, d) == [(+1, -1), ()]

    def test_odd_radix_never_ties(self):
        t = Torus(5, 2)
        for d in range(t.num_nodes):
            for dirs in t.minimal_directions(0, d):
                assert len(dirs) <= 1

    def test_hops(self):
        t = Torus(8, 2)
        assert t.hops(3, +1) == 3
        assert t.hops(3, -1) == 5
        assert t.hops(0, +1) == 0
        assert t.hops(0, -1) == 0
