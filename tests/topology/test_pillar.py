"""SparsePillarTorus3D: vertical links only at pillar columns."""

import numpy as np
import pytest

from repro.topology import SparsePillarTorus3D, Torus


@pytest.fixture(scope="module")
def pillar():
    return SparsePillarTorus3D(4, pillar_spacing=2)


class TestStructure:
    def test_counts(self, pillar):
        assert pillar.num_nodes == 64
        # 64 nodes * 4 X/Y channels + 16 pillar nodes * 2 Z channels
        assert pillar.num_channels == 64 * 4 + 16 * 2

    def test_pillar_nodes(self, pillar):
        nodes = pillar.pillar_nodes
        assert len(nodes) == 16  # (4/2)^2 columns * 4 layers
        for v in nodes:
            x, y, _ = pillar.coords(int(v))
            assert x % 2 == 0 and y % 2 == 0

    def test_z_links_only_on_pillars(self, pillar):
        pillars = set(int(v) for v in pillar.pillar_nodes)
        for ch in pillar.channels():
            src_c, dst_c = pillar.coords(ch.src), pillar.coords(ch.dst)
            if src_c[2] != dst_c[2]:  # a Z hop
                assert ch.src in pillars and ch.dst in pillars

    def test_strongly_connected(self, pillar):
        pillar.validate_connected()

    def test_spacing_one_recovers_full_torus_links(self):
        dense = SparsePillarTorus3D(3, pillar_spacing=1)
        torus = Torus(3, 3)
        assert dense.num_channels == torus.num_channels
        dense_links = {(ch.src, ch.dst) for ch in dense.channels()}
        torus_links = {(ch.src, ch.dst) for ch in torus.channels()}
        assert dense_links == torus_links

    def test_degree_profile(self, pillar):
        pillars = set(int(v) for v in pillar.pillar_nodes)
        for v in range(pillar.num_nodes):
            degree = len(pillar.out_channels(v))
            assert degree == (6 if v in pillars else 4)


class TestCoordinates:
    def test_node_at_roundtrip(self, pillar):
        for v in range(pillar.num_nodes):
            assert pillar.node_at(pillar.coords(v)) == v

    def test_node_at_wraps(self, pillar):
        assert pillar.node_at((4, -1, 5)) == pillar.node_at((0, 3, 1))

    def test_matches_torus_layout(self):
        sparse = SparsePillarTorus3D(4, pillar_spacing=2)
        torus = Torus(4, 3)
        for v in range(torus.num_nodes):
            assert (sparse.coords(v) == torus.coords(v)).all()


class TestValidation:
    def test_rejects_small_radix(self):
        with pytest.raises(ValueError, match="k >= 3"):
            SparsePillarTorus3D(2)

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError, match="pillar_spacing"):
            SparsePillarTorus3D(4, pillar_spacing=0)
        with pytest.raises(ValueError, match="pillar_spacing"):
            SparsePillarTorus3D(4, pillar_spacing=5)

    def test_z_bandwidth_applies_to_pillar_links(self):
        net = SparsePillarTorus3D(4, pillar_spacing=2, bandwidths=(1, 1, 0.5))
        z_channels = [
            ch
            for ch in net.channels()
            if net.coords(ch.src)[2] != net.coords(ch.dst)[2]
        ]
        assert z_channels
        assert all(ch.bandwidth == 0.5 for ch in z_channels)
        xy = net.num_channels - len(z_channels)
        assert int((net.bandwidth == 1.0).sum()) == xy

    def test_longer_distances_than_torus(self):
        sparse = SparsePillarTorus3D(4, pillar_spacing=2)
        torus = Torus(4, 3)
        d_sparse = sparse.distance_matrix()
        d_torus = torus.distance_matrix()
        assert (d_sparse >= d_torus).all()
        assert (d_sparse > d_torus).any()
