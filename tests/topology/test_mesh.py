"""Unit tests for the mesh topology."""

import numpy as np
import pytest

from repro.topology import Mesh


class TestMesh:
    def test_counts(self):
        m = Mesh(3, 2)
        assert m.num_nodes == 9
        # interior/edge accounting: 2*n*k^(n-1)*(k-1) directed channels
        assert m.num_channels == 2 * 2 * 3 * 2

    def test_no_wraparound(self):
        m = Mesh(4, 2)
        right_edge = m.node_at([3, 0])
        assert not m.has_channel(right_edge, m.node_at([0, 0]))

    def test_connected(self):
        Mesh(3, 2).validate_connected()

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            Mesh(1)
        with pytest.raises(ValueError):
            Mesh(3, 0)

    def test_distance_is_manhattan(self):
        m = Mesh(4, 2)
        s, d = m.node_at([0, 0]), m.node_at([3, 2])
        assert m.min_distance(s, d) == 5

    def test_distance_matches_bfs(self):
        m = Mesh(3, 2)
        bfs = np.vstack([m._bfs(s) for s in range(m.num_nodes)])
        assert np.array_equal(m.distance_matrix(), bfs)

    def test_node_at_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside mesh"):
            Mesh(3, 2).node_at([3, 0])

    def test_coords_roundtrip(self):
        m = Mesh(4, 2)
        for v in range(m.num_nodes):
            assert m.node_at(m.coords(v)) == v
