"""Hypercube topology and Cayley-generalization tests."""

import numpy as np
import pytest

from repro.topology import CayleyTopology, Hypercube, Torus, TranslationGroup


@pytest.fixture(scope="module")
def h3():
    return Hypercube(3)


class TestHypercubeStructure:
    def test_counts(self, h3):
        assert h3.num_nodes == 8
        assert h3.num_channels == 24
        assert h3.num_classes == 3

    def test_is_cayley(self, h3):
        assert isinstance(h3, CayleyTopology)
        assert isinstance(Torus(4, 2), CayleyTopology)

    def test_channel_layout(self, h3):
        c = h3.channel_at(5, 1)
        assert h3.channel_src[c] == 5
        assert h3.channel_dst[c] == 5 ^ 2

    def test_channel_at_validates(self, h3):
        with pytest.raises(ValueError, match="dimension"):
            h3.channel_at(0, 3)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError, match="n >= 1"):
            Hypercube(0)

    def test_connected(self, h3):
        h3.validate_connected()

    def test_distances_are_hamming(self, h3):
        d = h3.distance_matrix()
        assert d[0, 7] == 3
        assert d[5, 6] == 2
        bfs = np.vstack([h3._bfs(s) for s in range(8)])
        assert np.array_equal(d, bfs)

    def test_mean_distance(self, h3):
        # mean Hamming distance incl. self pairs: n/2
        assert h3.mean_min_distance() == pytest.approx(1.5)


class TestGroupStructure:
    def test_xor_group(self, h3):
        assert h3.add_nodes(5, 3) == 6
        assert h3.sub_nodes(6, 3) == 5  # XOR is self-inverse

    def test_vectorized(self, h3):
        a = np.arange(8)
        assert np.array_equal(h3.add_nodes(a, 7), a ^ 7)

    def test_translate_channels_is_automorphism(self, h3):
        for c in range(h3.num_channels):
            for s in (1, 5):
                c2 = int(h3.translate_channels(c, s))
                assert h3.channel_src[c2] == h3.channel_src[c] ^ s
                assert h3.channel_dst[c2] == h3.channel_dst[c] ^ s

    def test_translation_group_tables(self, h3):
        g = TranslationGroup(h3)
        assert np.array_equal(g.node_sum, g.node_diff)  # XOR group
        assert g.chan_shift.shape == (24, 8)

    def test_class_members_partition(self, h3):
        members = np.concatenate(
            [h3.class_members(c) for c in range(h3.num_classes)]
        )
        assert sorted(members) == list(range(h3.num_channels))
