"""Tests for the Cayley-topology abstraction shared by torus/hypercube."""

import numpy as np
import pytest

from repro.topology import CayleyTopology, Hypercube, Torus, TranslationGroup


@pytest.mark.parametrize(
    "topology", [Torus(4, 2), Torus(3, 3), Hypercube(3)], ids=lambda t: t.name
)
class TestCayleyContract:
    def test_channel_layout(self, topology):
        for c in range(topology.num_channels):
            node = int(topology.channel_node(c))
            cls = int(topology.channel_class(c))
            assert c == node * topology.num_classes + cls
            assert topology.channel_src[c] == node

    def test_group_axioms_sampled(self, topology):
        rng = np.random.default_rng(0)
        n = topology.num_nodes
        a = rng.integers(0, n, 30)
        b = rng.integers(0, n, 30)
        c = rng.integers(0, n, 30)
        # identity, inverse, associativity
        assert np.array_equal(topology.add_nodes(a, 0), a)
        assert np.array_equal(topology.sub_nodes(topology.add_nodes(a, b), b), a)
        lhs = topology.add_nodes(topology.add_nodes(a, b), c)
        rhs = topology.add_nodes(a, topology.add_nodes(b, c))
        assert np.array_equal(lhs, rhs)

    def test_translation_is_graph_automorphism(self, topology):
        rng = np.random.default_rng(1)
        for _ in range(20):
            ch = int(rng.integers(topology.num_channels))
            s = int(rng.integers(topology.num_nodes))
            moved = int(topology.translate_channels(ch, s))
            assert topology.channel_src[moved] == topology.add_nodes(
                int(topology.channel_src[ch]), s
            )
            assert topology.channel_dst[moved] == topology.add_nodes(
                int(topology.channel_dst[ch]), s
            )

    def test_translation_group_consistent(self, topology):
        g = TranslationGroup(topology)
        rng = np.random.default_rng(2)
        a = rng.integers(0, topology.num_nodes, 10)
        b = rng.integers(0, topology.num_nodes, 10)
        assert np.array_equal(g.node_sum[a, b], topology.add_nodes(a, b))
        assert np.array_equal(g.node_diff[a, b], topology.sub_nodes(a, b))

    def test_class_members_cover_channels(self, topology):
        members = np.concatenate(
            [topology.class_members(c) for c in range(topology.num_classes)]
        )
        assert sorted(members) == list(range(topology.num_channels))

    def test_representatives_at_origin(self, topology):
        reps = topology.class_representatives()
        assert all(topology.channel_node(r) == 0 for r in reps)
        assert len(reps) == topology.num_classes


class TestCayleyDesignEquivalence:
    """The symmetric design machinery must agree with the general
    formulation on every Cayley topology, not just the torus."""

    def test_hypercube_capacity_cross_check(self):
        from repro.core import solve_capacity
        from repro.core.general import solve_general_capacity

        cube = Hypercube(3)
        sym = solve_capacity(cube)
        gen = solve_general_capacity(cube)
        assert sym.load == pytest.approx(gen.objective_load, rel=1e-5)

    def test_hypercube_worst_case_cross_check(self):
        from repro.core import design_worst_case
        from repro.core.general import design_general_worst_case

        cube = Hypercube(3)
        sym = design_worst_case(cube)
        gen = design_general_worst_case(cube)
        assert sym.worst_case_load == pytest.approx(
            gen.objective_load, rel=1e-4
        )
