"""Property-based invariants of the n-dimensional torus (n up to 3).

The 2-D-era test suite exercised these only at ``n = 2``; the 3-D
generalization promotes them to parameterized Hypothesis properties
(run under the deterministic ``ci`` profile in CI).
"""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.topology import Torus

#: (k, n) instances covering odd/even radix at every supported dimension.
INSTANCES = [(5, 1), (4, 2), (5, 2), (3, 3), (4, 3)]


@pytest.fixture(scope="module")
def tori():
    return {(k, n): Torus(k, n) for k, n in INSTANCES}


@pytest.mark.parametrize("k,n", INSTANCES)
@given(data=st.data())
def test_node_at_wraps(tori, k, n, data):
    torus = tori[(k, n)]
    coords = data.draw(
        st.lists(st.integers(-2 * k, 3 * k), min_size=n, max_size=n)
    )
    v = torus.node_at(coords)
    assert 0 <= v < torus.num_nodes
    assert (torus.coords(v) == np.mod(coords, k)).all()


@pytest.mark.parametrize("k,n", INSTANCES)
@given(data=st.data())
def test_translate_channels_roundtrip(tori, k, n, data):
    torus = tori[(k, n)]
    channel = data.draw(st.integers(0, torus.num_channels - 1))
    shift = data.draw(st.integers(0, torus.num_nodes - 1))
    moved = torus.translate_channels(channel, shift)
    back = torus.translate_channels(moved, torus.neg_node(shift))
    assert back == channel
    # translation preserves the direction class
    assert torus.channel_class(int(moved)) == torus.channel_class(channel)


@pytest.mark.parametrize("k,n", INSTANCES)
@given(data=st.data())
def test_minimal_directions_consistent(tori, k, n, data):
    torus = tori[(k, n)]
    src = data.draw(st.integers(0, torus.num_nodes - 1))
    dst = data.draw(st.integers(0, torus.num_nodes - 1))
    dirs = torus.minimal_directions(src, dst)
    delta = torus.ring_delta(src, dst)
    assert len(dirs) == n
    hops = 0
    for dim, choices in enumerate(dirs):
        d = int(delta[dim])
        if d == 0:
            assert choices == ()
            continue
        # every offered direction covers the offset in minimal hops
        per_dir = {dirn: torus.hops(d, dirn) for dirn in choices}
        assert all(h <= k // 2 for h in per_dir.values())
        # a tie is offered exactly at the even-radix midpoint
        if 2 * d == k:
            assert choices == (+1, -1)
            assert per_dir[+1] == per_dir[-1] == k // 2
        else:
            assert len(choices) == 1
        hops += min(per_dir.values())
    assert hops == torus.min_distance(src, dst)


@pytest.mark.parametrize("k,n", INSTANCES)
def test_class_partition_completeness(tori, k, n):
    torus = tori[(k, n)]
    reps = torus.class_representatives()
    assert len(reps) == torus.num_classes == 2 * n
    seen = np.concatenate(
        [torus.class_members(int(cls)) for cls in range(torus.num_classes)]
    )
    # the classes tile the channel set exactly: a disjoint cover
    assert len(seen) == torus.num_channels
    assert len(np.unique(seen)) == torus.num_channels
    for cls in range(torus.num_classes):
        members = torus.class_members(cls)
        assert (torus.channel_class(members) == cls).all()


@pytest.mark.parametrize("k,n", INSTANCES)
@given(data=st.data())
def test_group_operations_invert(tori, k, n, data):
    torus = tori[(k, n)]
    a = data.draw(st.integers(0, torus.num_nodes - 1))
    b = data.draw(st.integers(0, torus.num_nodes - 1))
    assert torus.sub_nodes(torus.add_nodes(a, b), b) == a
    assert torus.add_nodes(a, torus.neg_node(a)) == 0
