"""Scalar-in/scalar-out contract of the channel accessors.

`CayleyTopology.channel_node`/`channel_class` and the `Torus` channel
accessors used to return 0-d ndarrays for Python-int input, which broke
``dict`` keys, ``==`` chains against tuples, and JSON serialization
downstream.  Scalar input must yield a plain ``int``; array input must
keep yielding arrays.
"""

import numpy as np
import pytest

from repro.topology import Hypercube, Torus
from repro.topology.cayley import scalar_or_array


class TestScalarOrArray:
    def test_zero_d_becomes_int(self):
        out = scalar_or_array(np.asarray(7))
        assert type(out) is int
        assert out == 7

    def test_array_stays_array(self):
        out = scalar_or_array(np.asarray([1, 2]))
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.int64


class TestTorusAccessors:
    @pytest.fixture(scope="class")
    def torus(self):
        return Torus(4, 3)

    @pytest.mark.parametrize(
        "accessor", ["channel_node", "channel_class", "channel_dim", "channel_direction"]
    )
    def test_scalar_input_returns_int(self, torus, accessor):
        out = getattr(torus, accessor)(13)
        assert type(out) is int

    @pytest.mark.parametrize(
        "accessor", ["channel_node", "channel_class", "channel_dim", "channel_direction"]
    )
    def test_array_input_returns_array(self, torus, accessor):
        out = getattr(torus, accessor)(np.array([0, 13, 17]))
        assert isinstance(out, np.ndarray)
        assert out.shape == (3,)

    def test_values_decode_channel_at(self, torus):
        for node, dim, direction in [(0, 0, +1), (5, 2, -1), (63, 1, +1)]:
            c = torus.channel_at(node, dim, direction)
            assert torus.channel_node(c) == node
            assert torus.channel_dim(c) == dim
            assert torus.channel_direction(c) == direction
            assert torus.channel_class(c) == dim * 2 + (0 if direction == 1 else 1)

    def test_scalar_and_array_paths_agree(self, torus):
        channels = np.arange(torus.num_channels)
        nodes = torus.channel_node(channels)
        classes = torus.channel_class(channels)
        dims = torus.channel_dim(channels)
        dirs = torus.channel_direction(channels)
        for c in range(0, torus.num_channels, 7):
            assert torus.channel_node(c) == nodes[c]
            assert torus.channel_class(c) == classes[c]
            assert torus.channel_dim(c) == dims[c]
            assert torus.channel_direction(c) == dirs[c]

    def test_usable_as_dict_key_and_json(self, torus):
        import json

        table = {torus.channel_node(9): "src"}
        assert json.dumps(table) == '{"1": "src"}'


class TestCayleyAccessors:
    """The generic CayleyTopology path (hypercube) honors the same
    contract as the torus overrides."""

    @pytest.fixture(scope="class")
    def cube(self):
        return Hypercube(3)

    def test_scalar_input_returns_int(self, cube):
        assert type(cube.channel_node(5)) is int
        assert type(cube.channel_class(5)) is int

    def test_array_input_returns_array(self, cube):
        channels = np.arange(cube.num_channels)
        assert isinstance(cube.channel_node(channels), np.ndarray)
        assert isinstance(cube.channel_class(channels), np.ndarray)

    def test_decomposition_roundtrip(self, cube):
        for c in range(cube.num_channels):
            v = cube.channel_node(c)
            cls = cube.channel_class(c)
            assert v * cube.num_classes + cls == c
