"""Periodic worst-case evaluator: static reduction, certificates, and
the small-k brute-force oracle (ISSUE acceptance: exact on k=3)."""

import dataclasses

import numpy as np
import pytest

from repro.metrics.worst_case_eval import general_worst_case_load
from repro.rotor import (
    ORNRouting,
    RotorSchedule,
    VLBOnRotor,
    certify_periodic_worst_case,
    periodic_worst_case_load,
)
from repro.verify import brute_force_periodic_worst_case


@pytest.fixture(scope="module")
def sched2():
    return RotorSchedule.round_robin(9, 2)


@pytest.fixture(scope="module")
def vlb_flows(sched2):
    return VLBOnRotor(sched2.base).full_flows()


class TestEvaluator:
    def test_static_single_phase_equals_general(self, sched2, vlb_flows):
        static = RotorSchedule.static(sched2.base)
        periodic = periodic_worst_case_load(static, vlb_flows)
        general = general_worst_case_load(sched2.base, vlb_flows)
        assert periodic.num_phases == 1
        assert periodic.load == general.load
        assert periodic.phase_results[0].channel == general.channel

    def test_uniform_duty_scales_static_dual(self, sched2, vlb_flows):
        # VLB is perfectly balanced, so with uniform duty 1/P every
        # phase's worst channel load is P times the static one and the
        # average equals P * static exactly.
        static = periodic_worst_case_load(
            RotorSchedule.static(sched2.base), vlb_flows
        )
        periodic = periodic_worst_case_load(sched2, vlb_flows)
        assert periodic.load == pytest.approx(2.0 * static.load, rel=1e-12)

    def test_throughput_is_inverse_load(self, sched2, vlb_flows):
        res = periodic_worst_case_load(sched2, vlb_flows)
        assert res.throughput == 1.0 / res.load

    def test_shape_mismatch_rejected(self, sched2):
        with pytest.raises(ValueError, match="does not match"):
            periodic_worst_case_load(sched2, np.zeros((9, 9, 5)))

    def test_weights_uniform(self, sched2, vlb_flows):
        res = periodic_worst_case_load(sched2, vlb_flows)
        assert res.weights == (0.5, 0.5)


class TestCertificates:
    def test_honest_result_passes(self, sched2, vlb_flows):
        res = periodic_worst_case_load(sched2, vlb_flows)
        report = certify_periodic_worst_case(sched2, vlb_flows, res)
        assert report.passed, report.render()

    def test_tampered_phase_load_fails_witness_check(
        self, sched2, vlb_flows
    ):
        res = periodic_worst_case_load(sched2, vlb_flows)
        bad_phase = dataclasses.replace(
            res.phase_results[0], load=res.phase_results[0].load * 1.01
        )
        tampered = dataclasses.replace(
            res, phase_results=(bad_phase,) + res.phase_results[1:]
        )
        report = certify_periodic_worst_case(sched2, vlb_flows, tampered)
        failed = {c.name for c in report.failures()}
        assert "phase0_witness_load" in failed

    def test_inactive_bottleneck_fails_membership_check(
        self, sched2, vlb_flows
    ):
        res = periodic_worst_case_load(sched2, vlb_flows)
        foreign = sched2.phases[1][0]  # not active in phase 0
        bad_phase = dataclasses.replace(
            res.phase_results[0], channel=int(foreign)
        )
        tampered = dataclasses.replace(
            res, phase_results=(bad_phase,) + res.phase_results[1:]
        )
        report = certify_periodic_worst_case(sched2, vlb_flows, tampered)
        failed = {c.name for c in report.failures()}
        assert "phase0_bottleneck_active" in failed

    def test_broken_weights_fail_sum_check(self, sched2, vlb_flows):
        res = periodic_worst_case_load(sched2, vlb_flows)
        tampered = dataclasses.replace(res, weights=(0.5, 0.6))
        report = certify_periodic_worst_case(sched2, vlb_flows, tampered)
        failed = {c.name for c in report.failures()}
        assert "weights_sum" in failed

    def test_perturbed_average_fails_averaged_dual(self, sched2, vlb_flows):
        res = periodic_worst_case_load(sched2, vlb_flows)
        tampered = dataclasses.replace(res, load=res.load + 1e-6)
        report = certify_periodic_worst_case(sched2, vlb_flows, tampered)
        failed = {c.name for c in report.failures()}
        assert "averaged_dual" in failed


class TestBruteForceOracle:
    """ISSUE acceptance: the averaged-dual evaluator matches the
    brute-force oracle *exactly* on k=3 (n=9 nodes — enumeration
    territory for the assignment oracle)."""

    @pytest.mark.parametrize("phases", [1, 2, 4])
    @pytest.mark.parametrize("scheme", ["VLBR", "ORN"])
    def test_exact_on_k3(self, phases, scheme):
        sched = RotorSchedule.round_robin(9, phases)
        alg = (
            VLBOnRotor(sched.base)
            if scheme == "VLBR"
            else ORNRouting(sched.base, k=3)
        )
        flows = alg.full_flows()
        fast = periodic_worst_case_load(sched, flows)
        slow = brute_force_periodic_worst_case(sched, flows)
        assert fast.load == pytest.approx(slow.load, abs=0.0)
        assert fast.weights == slow.weights
        for f, (a, b) in enumerate(
            zip(fast.phase_results, slow.phase_results)
        ):
            assert a.load == pytest.approx(b.load, abs=0.0), f"phase {f}"

    def test_oracle_result_passes_certification(self):
        sched = RotorSchedule.round_robin(9, 3)
        flows = ORNRouting(sched.base, k=3).full_flows()
        slow = brute_force_periodic_worst_case(sched, flows)
        report = certify_periodic_worst_case(sched, flows, slow)
        assert report.passed, report.render()
