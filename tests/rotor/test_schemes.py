"""VLB-on-rotor and ORN schemes: distributions, paths, flows."""

import numpy as np
import pytest

from repro.rotor import ORNRouting, RotorSchedule, VLBOnRotor, complete_network


@pytest.fixture(scope="module")
def k9():
    return complete_network(9)


@pytest.fixture(scope="module")
def vlb9(k9):
    return VLBOnRotor(k9)


@pytest.fixture(scope="module")
def orn9(k9):
    return ORNRouting(k9, k=3)


class TestVLBOnRotor:
    def test_validates_as_oblivious_routing(self, vlb9):
        vlb9.validate()

    def test_direct_path_mass(self, vlb9):
        # intermediates mid == src and mid == dst both collapse to the
        # direct hop: probability 2/n on (src, dst)
        dist = dict(vlb9.path_distribution(0, 5))
        assert dist[(0, 5)] == pytest.approx(2.0 / 9.0)
        assert all(len(p) <= 3 for p in dist)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_average_path_length(self, vlb9):
        # (n-1)/n pairs need routing; each is 2 hops w.p. (n-2)/n
        n = 9
        expected = (n - 1) / n * (1 * 2 / n + 2 * (n - 2) / n)
        assert vlb9.average_path_length() == pytest.approx(expected)

    def test_flows_perfectly_balanced(self, vlb9, k9):
        # every channel carries identical expected load under full flows
        loads = vlb9.full_flows().sum(axis=(0, 1))
        assert loads.shape == (k9.num_channels,)
        assert np.allclose(loads, loads[0])


class TestORN:
    def test_validates_as_oblivious_routing(self, orn9):
        orn9.validate()

    def test_deterministic_single_path(self, orn9):
        for dst in range(1, 9):
            dist = orn9.path_distribution(0, dst)
            assert len(dist) == 1
            assert dist[0][1] == 1.0

    def test_digit_decomposition(self, orn9):
        # delta = 5 = 2 + 1*3: hop +2 then +3
        (path, _), = orn9.path_distribution(0, 5)
        assert path == (0, 2, 5)
        # delta = 2 = 2 + 0*3: single hop
        (path, _), = orn9.path_distribution(0, 2)
        assert path == (0, 2)
        # delta = 6 = 0 + 2*3: single hop
        (path, _), = orn9.path_distribution(0, 6)
        assert path == (0, 6)

    def test_wraparound(self, orn9):
        (path, _), = orn9.path_distribution(7, 3)
        # delta = (3 - 7) % 9 = 5 = 2 + 1*3
        assert path == (7, 0, 3)

    def test_offsets_limited_to_digit_classes(self, orn9, k9):
        # ORN only ever uses offsets {1, 2} (d0) and {3, 6} (d1*k)
        used = set()
        for s in range(9):
            for d in range(9):
                if s == d:
                    continue
                (path, _), = orn9.path_distribution(s, d)
                for a, b in zip(path, path[1:]):
                    used.add((b - a) % 9)
        assert used == {1, 2, 3, 6}

    def test_wrong_node_count_rejected(self):
        with pytest.raises(ValueError, match="needs n="):
            ORNRouting(complete_network(8), k=3)

    def test_k_too_small_rejected(self, k9):
        with pytest.raises(ValueError, match="k >= 2"):
            ORNRouting(k9, k=1)


class TestOnRotorSchedule:
    def test_flows_cover_only_active_offsets(self):
        # round-robin phases partition channels by offset, so ORN flow
        # is confined to the digit-class offsets in every phase
        sched = RotorSchedule.round_robin(9, 2)
        orn = ORNRouting(sched.base, k=3)
        loads = orn.full_flows().sum(axis=(0, 1))
        base = sched.base
        for c in range(base.num_channels):
            offset = (int(base.channel_dst[c]) - int(base.channel_src[c])) % 9
            if offset not in {1, 2, 3, 6}:
                assert loads[c] == 0.0
            else:
                assert loads[c] > 0.0
