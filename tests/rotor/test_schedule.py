"""RotorSchedule: validation, phase arithmetic, digests, link events."""

import pytest

from repro.rotor import RotorSchedule, complete_network
from repro.sim.network_sim import normalize_link_schedule, validate_channel_events
from repro.topology import Torus


@pytest.fixture(scope="module")
def k9():
    return complete_network(9)


class TestConstruction:
    def test_complete_network_channel_count(self, k9):
        assert k9.num_nodes == 9
        assert k9.num_channels == 9 * 8

    def test_complete_network_too_small(self):
        with pytest.raises(ValueError, match="at least 2"):
            complete_network(1)

    def test_phases_normalized_sorted_unique(self, k9):
        sched = RotorSchedule(
            base=k9,
            phases=([5, 3, 5] + list(range(6, 72)), list(range(6)) + [71]),
        )
        assert sched.phases[0][:3] == (3, 5, 6)
        assert sched.phases[0] == tuple(sorted(set(sched.phases[0])))

    def test_empty_phase_list_rejected(self, k9):
        with pytest.raises(ValueError, match="at least one phase"):
            RotorSchedule(base=k9, phases=())

    def test_empty_phase_rejected(self, k9):
        with pytest.raises(ValueError, match="enables no channels"):
            RotorSchedule(base=k9, phases=(tuple(range(72)), ()))

    def test_out_of_range_channel_rejected(self, k9):
        with pytest.raises(ValueError, match="outside"):
            RotorSchedule(base=k9, phases=((0, 72),) + (tuple(range(72)),))

    def test_idle_channel_rejected(self, k9):
        # every base channel must recur in some phase
        with pytest.raises(ValueError, match="active in no phase"):
            RotorSchedule(base=k9, phases=(tuple(range(71)),))

    def test_bad_phase_length_rejected(self, k9):
        with pytest.raises(ValueError, match="phase_length"):
            RotorSchedule(
                base=k9, phases=(tuple(range(72)),), phase_length=0
            )

    def test_negative_start_rejected(self, k9):
        with pytest.raises(ValueError, match="start"):
            RotorSchedule(base=k9, phases=(tuple(range(72)),), start=-1)


class TestPhaseArithmetic:
    def test_period_and_phase_at(self):
        sched = RotorSchedule.round_robin(9, 4, phase_length=3)
        assert sched.num_phases == 4
        assert sched.period == 12
        assert [sched.phase_at(c) for c in range(7)] == [0, 0, 0, 1, 1, 1, 2]
        assert sched.phase_at(12) == sched.phase_at(0)

    def test_start_offsets_the_counter(self):
        base = RotorSchedule.round_robin(9, 3, phase_length=2)
        shifted = RotorSchedule(
            base=base.base,
            phases=base.phases,
            phase_length=2,
            start=2,
        )
        assert shifted.phase_at(0) == base.phase_at(2)

    def test_round_robin_partitions_channels(self):
        sched = RotorSchedule.round_robin(9, 3)
        seen = [c for phase in sched.phases for c in phase]
        assert sorted(seen) == list(range(sched.base.num_channels))
        assert len(seen) == len(set(seen))

    def test_round_robin_too_many_phases(self):
        with pytest.raises(ValueError, match="at most"):
            RotorSchedule.round_robin(4, 4)

    def test_active_fraction_uniform_for_round_robin(self):
        sched = RotorSchedule.round_robin(9, 4)
        duty = sched.active_fraction()
        assert duty.shape == (sched.base.num_channels,)
        assert set(duty.tolist()) == {0.25}

    def test_static_schedule_always_up(self):
        torus = Torus(4, 2)
        sched = RotorSchedule.static(torus)
        assert sched.num_phases == 1
        assert set(sched.active_fraction().tolist()) == {1.0}
        assert sched.link_events(500) == ()


class TestPhaseNetwork:
    def test_masks_inactive_channels(self):
        sched = RotorSchedule.round_robin(9, 2)
        net = sched.phase_network(0)
        assert net.num_nodes == 9
        assert net.num_channels == len(sched.phases[0])
        assert tuple(net.original_channel.tolist()) == sched.phases[0]

    def test_cached_per_phase(self):
        sched = RotorSchedule.round_robin(9, 2)
        assert sched.phase_network(1) is sched.phase_network(1)


class TestDigest:
    def test_stable_and_distinct(self):
        a = RotorSchedule.round_robin(9, 2)
        b = RotorSchedule.round_robin(9, 2)
        c = RotorSchedule.round_robin(9, 3)
        d = RotorSchedule.round_robin(9, 2, phase_length=2)
        assert a.digest() == b.digest()
        assert len({a.digest(), c.digest(), d.digest()}) == 3

    def test_start_enters_digest_modulo_period(self):
        a = RotorSchedule.round_robin(9, 2)
        shifted = RotorSchedule(
            base=a.base, phases=a.phases, phase_length=1, start=2
        )
        assert shifted.digest() == a.digest()
        odd = RotorSchedule(
            base=a.base, phases=a.phases, phase_length=1, start=1
        )
        assert odd.digest() != a.digest()


class TestLinkEvents:
    def test_initial_phase_downs_at_cycle_zero(self):
        sched = RotorSchedule.round_robin(9, 2, phase_length=5)
        events = sched.link_events(5)
        # only one phase fits in 5 cycles: just the initial downs
        assert all(cycle == 0 and action == "down" for cycle, _, action in events)
        downed = {ch for _, ch, _ in events}
        assert downed == set(range(72)) - set(sched.phases[0])

    def test_boundaries_diff_consecutive_phases(self):
        sched = RotorSchedule.round_robin(9, 3, phase_length=2)
        events = sched.link_events(6)
        boundary_cycles = {cycle for cycle, _, _ in events}
        assert boundary_cycles == {0, 2, 4}
        at2 = {(ch, act) for cyc, ch, act in events if cyc == 2}
        ups = {ch for ch, act in at2 if act == "up"}
        downs = {ch for ch, act in at2 if act == "down"}
        assert ups == set(sched.phases[1])
        assert downs == set(sched.phases[0])

    def test_events_always_pass_sim_validation(self):
        sched = RotorSchedule.round_robin(9, 4, phase_length=3)
        for cycles in (1, 2, 3, 12, 13, 100):
            events = sched.link_events(cycles)
            normalized = normalize_link_schedule(events)
            validate_channel_events(
                (), normalized, cycles, sched.base.num_channels
            )

    def test_start_mid_phase_shifts_first_boundary(self):
        sched = RotorSchedule.round_robin(9, 2, phase_length=4)
        shifted = RotorSchedule(
            base=sched.base, phases=sched.phases, phase_length=4, start=3
        )
        cycles = {c for c, _, _ in shifted.link_events(10)}
        # boundaries at 1, 5, 9 (start=3 leaves one cycle of phase 0)
        assert cycles == {0, 1, 5, 9}

    def test_cycles_must_be_positive(self):
        sched = RotorSchedule.round_robin(9, 2)
        with pytest.raises(ValueError, match="positive"):
            sched.link_events(0)
