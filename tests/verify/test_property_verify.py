"""Property-based verification: random radices, seeds and algorithms.

Hypothesis drives the invariant battery across the design space instead
of a handful of pinned cases; run under ``--hypothesis-profile=ci`` for
the bounded, derandomized CI configuration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import DISTRIBUTION_ATOL
from repro.routing import IVAL, standard_algorithms
from repro.topology import Torus
from repro.traffic.doubly_stochastic import sample_traffic_set
from repro.traffic.permutations import random_permutation
from repro.verify import (
    check_doubly_stochastic,
    check_flow_conservation,
    check_nonnegative_flows,
    check_permutation_matrix,
    verify_algorithm,
)

_DEADLOCK_COVERED = {"DOR", "IVAL"}

radices = st.integers(3, 5)
seeds = st.integers(0, 2**32 - 1)
algorithm_names = st.sampled_from(["DOR", "VAL", "IVAL"])


def _build(name, k):
    torus = Torus(k, 2)
    if name == "IVAL":
        return IVAL(torus)
    return standard_algorithms(torus)[name]


@given(radices, algorithm_names)
@settings(max_examples=15, deadline=None)
def test_random_algorithm_passes_battery(k, name):
    report = verify_algorithm(_build(name, k), deadlock=name in _DEADLOCK_COVERED)
    assert report.passed, report.render()


@given(radices, seeds)
@settings(max_examples=20, deadline=None)
def test_sampled_traffic_is_doubly_stochastic(k, seed):
    rng = np.random.default_rng(seed)
    n = k * k
    for mat in sample_traffic_set(rng, n, 3, num_permutations=2):
        result = check_doubly_stochastic(mat)
        assert result.passed, result


@given(seeds, st.integers(2, 30))
@settings(max_examples=25, deadline=None)
def test_random_permutation_is_exact(seed, n):
    mat = random_permutation(np.random.default_rng(seed), n)
    assert check_permutation_matrix(mat).passed


@given(radices, seeds, st.floats(1e-3, 1.0))
@settings(max_examples=20, deadline=None)
def test_random_conservation_corruption_is_caught(k, seed, eps):
    torus = Torus(k, 2)
    flows = standard_algorithms(torus)["DOR"].canonical_flows.copy()
    rng = np.random.default_rng(seed)
    t = int(rng.integers(1, torus.num_nodes))
    c = int(rng.integers(torus.num_channels))
    flows[t, c] += eps
    result = check_flow_conservation(torus, flows)
    assert not result.passed
    assert result.violation == pytest.approx(eps, rel=1e-6)


@given(radices, seeds)
@settings(max_examples=15, deadline=None)
def test_random_sign_flip_is_caught(k, seed):
    torus = Torus(k, 2)
    flows = standard_algorithms(torus)["DOR"].canonical_flows.copy()
    rng = np.random.default_rng(seed)
    # flip the largest entry of a random commodity: always > tolerance
    t = int(rng.integers(1, torus.num_nodes))
    c = int(np.argmax(flows[t]))
    assert flows[t, c] > DISTRIBUTION_ATOL
    flows[t, c] = -flows[t, c]
    assert not check_nonnegative_flows(flows).passed
