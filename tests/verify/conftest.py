"""Shared fixtures for the certification-subsystem tests."""

import pytest

from repro.routing import DimensionOrderRouting
from repro.topology import Torus, TranslationGroup


@pytest.fixture(scope="session")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="session")
def g4(t4):
    return TranslationGroup(t4)


@pytest.fixture(scope="session")
def dor4(t4):
    return DimensionOrderRouting(t4)


@pytest.fixture(scope="session")
def twoturn4(t4, g4):
    """One 2TURN design shared by the whole verify suite (LP solve)."""
    from repro.routing.twoturn import design_2turn

    return design_2turn(t4, g4)
