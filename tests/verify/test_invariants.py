"""Tests for the invariant checkers: they pass on correct inputs and,
crucially, *fail* on corrupted ones — a checker that cannot reject a
broken design certifies nothing."""

import numpy as np
import pytest

from repro.constants import DISTRIBUTION_ATOL, FEASIBILITY_ATOL
from repro.deadlock import single_vc_scheme
from repro.traffic.doubly_stochastic import sample_traffic_set
from repro.traffic.permutations import random_permutation
from repro.verify import (
    check_channel_load_symmetry,
    check_deadlock_freedom,
    check_distribution,
    check_doubly_stochastic,
    check_flow_conservation,
    check_nonnegative_flows,
    check_permutation_matrix,
    verify_algorithm,
    verify_flows,
)


class TestFlowCheckers:
    def test_dor_flows_pass(self, t4, g4, dor4):
        flows = dor4.canonical_flows
        assert check_nonnegative_flows(flows).passed
        assert check_flow_conservation(t4, flows).passed
        assert check_channel_load_symmetry(t4, g4, flows).passed

    def test_negative_flow_rejected(self, t4, dor4):
        flows = dor4.canonical_flows.copy()
        flows[1, 0] = -1e-3
        result = check_nonnegative_flows(flows)
        assert not result.passed
        assert result.violation == pytest.approx(1e-3)

    def test_broken_conservation_rejected(self, t4, dor4):
        flows = dor4.canonical_flows.copy()
        flows[3, 5] += 0.25  # inject flow out of thin air
        result = check_flow_conservation(t4, flows)
        assert not result.passed
        assert result.violation >= 0.25 - FEASIBILITY_ATOL

    def test_wrong_shape_rejected(self, t4):
        result = check_flow_conservation(t4, np.zeros((3, 3)))
        assert not result.passed
        assert "shape" in result.detail

    def test_broken_translation_invariance_rejected(self, t4, g4, dor4):
        # An algorithm whose per-pair distributions are all valid but
        # whose tie-breaking depends on the source is not translation
        # invariant: the direct uniform-traffic loads disagree with the
        # canonical-table loads.
        class Lopsided(type(dor4)):
            def path_distribution(self, src, dst):
                dist = super().path_distribution(src, dst)
                if src == 1 and len(dist) > 1:
                    paths = [p for p, _ in dist]
                    return [(paths[0], 0.9), (paths[1], 0.1)] + [
                        (p, 0.0) for p in paths[2:]
                    ]
                return dist

        bad = Lopsided(t4)
        result = check_channel_load_symmetry(
            t4, g4, dor4.canonical_flows, algorithm=bad
        )
        assert not result.passed

    def test_symmetry_expansion_matches_canonical(self, t4, g4, dor4):
        # flows-only path: the commodity-by-commodity expansion must
        # agree with the vectorized canonical computation
        assert check_channel_load_symmetry(t4, g4, dor4.canonical_flows).passed

    def test_verify_flows_battery(self, t4, dor4):
        report = verify_flows(t4, dor4.canonical_flows, subject="DOR")
        assert report.passed
        assert report.subject == "DOR"
        assert {c.name for c in report.checks} == {
            "nonnegative_flows",
            "flow_conservation",
            "channel_load_symmetry",
        }

    def test_report_render_lists_failures(self, t4, dor4):
        flows = -dor4.canonical_flows
        report = verify_flows(t4, flows)
        assert not report.passed
        assert report.failures()
        assert "FAIL" in report.render()


class TestTrafficCheckers:
    def test_sampled_traffic_passes(self):
        rng = np.random.default_rng(11)
        for mat in sample_traffic_set(rng, 16, 4, num_permutations=2):
            assert check_doubly_stochastic(mat).passed

    def test_uniform_passes(self):
        assert check_doubly_stochastic(np.full((8, 8), 1.0 / 8)).passed

    def test_bad_row_sum_rejected(self):
        mat = np.full((8, 8), 1.0 / 8)
        mat[0, 0] += 0.01
        result = check_doubly_stochastic(mat)
        assert not result.passed
        assert result.violation == pytest.approx(0.01, abs=DISTRIBUTION_ATOL)

    def test_negative_entry_rejected(self):
        mat = np.full((4, 4), 0.25)
        mat[0, 0] = -0.25
        mat[0, 1] = 0.75
        mat[1, 0] = 0.75
        mat[1, 1] = -0.25
        assert not check_doubly_stochastic(mat).passed

    def test_non_square_rejected(self):
        assert not check_doubly_stochastic(np.ones((2, 3))).passed

    def test_permutation_matrix_passes(self):
        rng = np.random.default_rng(5)
        assert check_permutation_matrix(random_permutation(rng, 9)).passed

    def test_fractional_matrix_rejected(self):
        assert not check_permutation_matrix(np.full((4, 4), 0.25)).passed

    def test_doubled_column_rejected(self):
        mat = np.eye(4)
        mat[:, 0] = mat[:, 1]
        assert not check_permutation_matrix(mat).passed


class TestDistributionAndDeadlock:
    def test_dor_distribution(self, dor4):
        assert check_distribution(dor4).passed

    def test_invalid_distribution_rejected(self, t4, dor4):
        class Broken(type(dor4)):
            def path_distribution(self, src, dst):
                return [(p, w * 0.5) for p, w in super().path_distribution(src, dst)]

        result = check_distribution(Broken(t4))
        assert not result.passed
        assert result.detail  # carries the validate() error message

    def test_dor_deadlock_free_default_scheme(self, dor4):
        result = check_deadlock_freedom(dor4)
        assert result.passed
        assert "2 VCs" in result.detail

    def test_single_vc_negative_control(self, dor4):
        # DOR on a single VC deadlocks around the rings — the checker
        # must say so, not paper over it.
        result = check_deadlock_freedom(dor4, scheme=single_vc_scheme)
        assert not result.passed
        assert "cycle" in result.detail


class TestVerifyAlgorithm:
    def test_dor_full_battery(self, dor4):
        report = verify_algorithm(dor4)
        assert report.passed
        names = [c.name for c in report.checks]
        assert names == [
            "distribution",
            "nonnegative_flows",
            "flow_conservation",
            "channel_load_symmetry",
            "deadlock_freedom",
        ]

    def test_deadlock_opt_out(self, dor4):
        report = verify_algorithm(dor4, deadlock=False)
        assert "deadlock_freedom" not in {c.name for c in report.checks}

    def test_2turn_battery(self, twoturn4):
        assert verify_algorithm(twoturn4.routing).passed
