"""Tests for LP duality certificates and cached-design re-certification."""

import dataclasses
import json

import pytest

from repro.constants import DUALITY_GAP_TOL
from repro.experiments.engine import DesignTask, solve_task
from repro.lp import LinearModel
from repro.lp.model import set_solve_observer
from repro.verify import (
    Certificate,
    CertificationError,
    certify_solution,
    collect_certificates,
    recheck_cached_doc,
)


def _tiny_lp():
    """min x0 + 2 x1  s.t.  x0 + x1 >= 1, x >= 0  (optimum 1 at (1, 0))."""
    m = LinearModel("tiny")
    x = m.add_variables("x", 2)
    m.add_ge(x.indices(), [1.0, 1.0], 1.0)
    m.set_objective(x.indices(), [1.0, 2.0])
    return m


def _bounded_lp():
    """max x (as min -x) with 0 <= x <= 3: optimum at the upper bound,
    exercising the finite-upper-bound term of the dual objective."""
    m = LinearModel("bounded")
    x = m.add_variables("x", 1, ub=3.0)
    m.set_objective(x.indices(), [-1.0])
    return m


def _eq_lp():
    """Equality constraints and a free variable: min y s.t. y == 5."""
    m = LinearModel("eq")
    y = m.add_variables("y", 1, lb=-float("inf"))
    m.add_eq(y.indices(), [1.0], 5.0)
    m.set_objective(y.indices(), [1.0])
    return m


class TestCertifySolution:
    @pytest.mark.parametrize("build", [_tiny_lp, _bounded_lp, _eq_lp])
    def test_solves_certify(self, build):
        model = build()
        with collect_certificates() as collector:
            solution = model.solve()
        (cert,) = collector.certificates
        assert cert.valid
        assert cert.model == model.name
        assert cert.objective == pytest.approx(solution.objective)
        assert cert.recomputed_gap <= DUALITY_GAP_TOL

    def test_dual_objective_matches_primal(self):
        model = _tiny_lp()
        with collect_certificates() as collector:
            model.solve()
        cert = collector.certificates[0]
        assert cert.objective == pytest.approx(1.0)
        assert cert.dual_objective == pytest.approx(1.0)

    def test_tampered_objective_invalidates(self):
        model = _tiny_lp()
        with collect_certificates() as collector:
            model.solve()
        cert = dataclasses.replace(collector.certificates[0], objective=0.5)
        assert not cert.valid
        with pytest.raises(CertificationError, match="REFUTED"):
            cert.require()

    def test_tampered_duals_fail_certification(self):
        model = _tiny_lp()
        captured = {}

        def hook(m, sol, assembled):
            captured["args"] = (m, sol, assembled)

        previous = set_solve_observer(hook)
        try:
            solution = model.solve()
        finally:
            set_solve_observer(previous)
        m, sol, assembled = captured["args"]
        # shrinking y_ub keeps dual feasibility but opens a duality gap
        sol.ub_duals = sol.ub_duals * 0.5
        cert = certify_solution(m, sol, assembled)
        assert not cert.valid
        assert cert.recomputed_gap > DUALITY_GAP_TOL
        # flipping its sign violates dual feasibility outright
        sol.ub_duals = -sol.ub_duals
        cert = certify_solution(m, sol, assembled)
        assert not cert.valid
        assert cert.dual_residual > DUALITY_GAP_TOL

    def test_doc_roundtrip(self):
        model = _tiny_lp()
        with collect_certificates() as collector:
            model.solve()
        cert = collector.certificates[0]
        restored = Certificate.from_doc(json.loads(json.dumps(cert.to_doc())))
        assert restored == cert
        assert restored.valid

    def test_from_doc_rejects_bad_format(self):
        with pytest.raises(CertificationError, match="format"):
            Certificate.from_doc({"format": 99})

    def test_from_doc_rejects_missing_fields(self):
        with pytest.raises(CertificationError, match="malformed"):
            Certificate.from_doc({"format": 1, "model": "x"})


class TestCollector:
    def test_observer_restored_after_block(self):
        sentinel = []

        def outer(m, sol, assembled):
            sentinel.append(m.name)

        previous = set_solve_observer(outer)
        try:
            with collect_certificates() as collector:
                _tiny_lp().solve()
            assert len(collector.certificates) == 1
            # outer observer chained during the block...
            assert sentinel == ["tiny"]
            # ...and restored after it
            _tiny_lp().solve()
            assert sentinel == ["tiny", "tiny"]
        finally:
            set_solve_observer(previous)

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with collect_certificates():
                raise RuntimeError("boom")
        sentinel = []
        previous = set_solve_observer(lambda m, s, a: sentinel.append(1))
        try:
            _tiny_lp().solve()
        finally:
            set_solve_observer(previous)
        assert sentinel == [1]

    def test_multiple_solves_collected(self):
        with collect_certificates() as collector:
            _tiny_lp().solve()
            _bounded_lp().solve()
        assert [c.model for c in collector.certificates] == ["tiny", "bounded"]
        assert collector.all_valid
        assert collector.failures() == []

    def test_strict_mode_raises_inside_solve(self):
        # an unsatisfiable tolerance turns every solve into an error
        # (tol=0 can legitimately pass: tiny LPs certify exactly)
        with pytest.raises(CertificationError):
            with collect_certificates(tol=-1.0, strict=True):
                _bounded_lp().solve()


class TestRecheckCachedDoc:
    @pytest.fixture(scope="class")
    def wc_doc(self):
        doc = solve_task(
            DesignTask(kind="wc_point", k=4, ratio=1.0), certify=True
        )
        doc.pop("obs_events", None)
        return doc

    @pytest.fixture(scope="class")
    def twoturn_doc(self):
        doc = solve_task(DesignTask(kind="twoturn", k=4), certify=True)
        doc.pop("obs_events", None)
        return doc

    def test_flow_entry_passes(self, wc_doc):
        report = recheck_cached_doc(wc_doc)
        assert report.passed
        names = {c.name for c in report.checks}
        assert "flow_conservation" in names
        assert "load_recheck" in names
        assert any(n.startswith("certificate[") for n in names)

    def test_routing_entry_passes(self, twoturn_doc):
        report = recheck_cached_doc(twoturn_doc)
        assert report.passed
        assert {c.name for c in report.checks} >= {"distribution", "load_recheck"}

    def test_corrupted_flows_rejected(self, wc_doc):
        doc = json.loads(json.dumps(wc_doc))
        doc["flows"]["flows"][3][7] += 0.5
        report = recheck_cached_doc(doc)
        assert not report.passed
        assert any(
            c.name == "flow_conservation" for c in report.failures()
        )

    def test_tampered_load_rejected(self, twoturn_doc):
        doc = json.loads(json.dumps(twoturn_doc))
        doc["load"] *= 0.5
        report = recheck_cached_doc(doc)
        assert not report.passed
        assert any(c.name == "load_recheck" for c in report.failures())

    def test_tampered_certificate_rejected(self, wc_doc):
        doc = json.loads(json.dumps(wc_doc))
        doc["certificates"][0]["dual_objective"] += 1.0
        report = recheck_cached_doc(doc)
        assert not report.passed

    def test_malformed_certificate_rejected(self, wc_doc):
        doc = json.loads(json.dumps(wc_doc))
        doc["certificates"][0] = {"format": 1}
        report = recheck_cached_doc(doc)
        assert not report.passed

    def test_entry_without_design_rejected(self):
        report = recheck_cached_doc({"payload": {"kind": "wc_point"}, "load": 1.0})
        assert not report.passed
        assert any(c.name == "design_payload" for c in report.failures())

    def test_uncertified_entry_still_checked(self, wc_doc):
        # entries written without --certify have no certificates but
        # their flows and load are still independently verifiable
        doc = json.loads(json.dumps(wc_doc))
        doc.pop("certificates")
        report = recheck_cached_doc(doc)
        assert report.passed
        assert any(c.name == "load_recheck" for c in report.checks)
