"""CLI wiring for ``repro-experiments verify`` and ``run --certify``.

Exit-code contract: 0 when every check passes, 1 when any subject fails
(including a corrupted cache entry), 2 on usage errors such as an
unknown algorithm name.
"""

import json

import pytest

from repro.cli import main
from repro.routing import DimensionOrderRouting
from repro.routing.base import TableRouting
from repro.routing.serialize import dump_routing, flows_to_doc
from repro.topology import Torus


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_FAST", "1")
    monkeypatch.setenv("REPRO_JOBS", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


def _warm_cache():
    assert main(["run", "fig4", "--k", "3", "--certify"]) == 0


class TestVerifyAlgorithms:
    def test_battery_passes(self, capsys):
        assert main(["verify", "--k", "3", "--algorithms", "DOR,VAL"]) == 0
        out = capsys.readouterr().out
        assert "DOR: PASS" in out
        assert "VAL: PASS" in out
        assert "0 failed" in out

    def test_unknown_algorithm_is_usage_error(self, capsys):
        assert main(["verify", "--k", "3", "--algorithms", "NOPE"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_no_differential_flag(self, capsys):
        assert main(
            ["verify", "--k", "3", "--algorithms", "DOR", "--no-differential"]
        ) == 0
        assert "differential_worst_case" not in capsys.readouterr().out


class TestVerifyCached:
    def test_certified_cache_passes(self, cache_dir, capsys):
        _warm_cache()
        capsys.readouterr()
        assert main(["verify", "--cached"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out
        assert "PASS" in out

    def test_corrupted_entry_rejected(self, cache_dir, capsys):
        _warm_cache()
        capsys.readouterr()
        entries = sorted(cache_dir.glob("*.json"))
        assert entries
        doc = json.loads(entries[0].read_text())
        doc["load"] = doc.get("load", 1.0) * 0.5
        entries[0].write_text(json.dumps(doc))
        assert main(["verify", "--cached"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unparseable_entry_rejected(self, cache_dir, capsys):
        _warm_cache()
        capsys.readouterr()
        entry = sorted(cache_dir.glob("*.json"))[0]
        entry.write_text("{not json")
        assert main(["verify", "--cached"]) == 1
        assert "entry_readable" in capsys.readouterr().out

    def test_explicit_cache_dir_flag(self, cache_dir, capsys):
        _warm_cache()
        capsys.readouterr()
        assert main(["verify", "--cached", "--cache-dir", str(cache_dir)]) == 0

    def test_empty_cache_is_trivially_ok(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        assert main(["verify", "--cached", "--cache-dir", str(empty)]) == 0
        assert "0 subjects" in capsys.readouterr().out


class TestVerifyDesignFile:
    def test_flows_document(self, tmp_path, capsys):
        torus = Torus(4, 2)
        doc = flows_to_doc(DimensionOrderRouting(torus).canonical_flows, torus)
        path = tmp_path / "dor_flows.json"
        path.write_text(json.dumps(doc))
        assert main(["verify", "--design", str(path)]) == 0
        assert "dor_flows.json: PASS" in capsys.readouterr().out

    def test_routing_document(self, tmp_path):
        torus = Torus(3, 2)
        dor = DimensionOrderRouting(torus)
        table = {
            d: dor.path_distribution(0, d) for d in range(1, torus.num_nodes)
        }
        path = tmp_path / "dor_table.json"
        dump_routing(TableRouting(torus, table, name="DOR-table"), path)
        assert main(["verify", "--design", str(path)]) == 0

    def test_corrupted_flows_document_rejected(self, tmp_path, capsys):
        torus = Torus(4, 2)
        doc = flows_to_doc(DimensionOrderRouting(torus).canonical_flows, torus)
        doc["flows"][2][5] += 0.3
        path = tmp_path / "bad_flows.json"
        path.write_text(json.dumps(doc))
        assert main(["verify", "--design", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_file_rejected(self, tmp_path, capsys):
        assert main(["verify", "--design", str(tmp_path / "absent.json")]) == 1
        assert "file_readable" in capsys.readouterr().out

    def test_unrecognized_shape_rejected(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"something": "else"}))
        assert main(["verify", "--design", str(path)]) == 1


class TestRunCertify:
    def test_certified_run_then_warm_recheck(self, cache_dir):
        _warm_cache()
        # warm re-run with --certify re-checks cache hits
        assert main(["run", "fig4", "--k", "3", "--certify"]) == 0

    def test_corrupted_cache_fails_certified_run(self, cache_dir, capsys):
        _warm_cache()
        entries = sorted(cache_dir.glob("*.json"))
        tampered = False
        for entry in entries:
            doc = json.loads(entry.read_text())
            if "load" in doc:
                doc["load"] *= 0.5
                entry.write_text(json.dumps(doc))
                tampered = True
        assert tampered
        capsys.readouterr()
        assert main(["run", "fig4", "--k", "3", "--certify"]) == 1
        assert "certification failed" in capsys.readouterr().err

    def test_uncertified_run_ignores_corruption(self, cache_dir):
        # without --certify the engine trusts the cache — that's the
        # documented trade-off the flag exists to close
        _warm_cache()
        entry = sorted(cache_dir.glob("*.json"))[0]
        doc = json.loads(entry.read_text())
        doc["load"] = doc.get("load", 1.0) * 0.5
        entry.write_text(json.dumps(doc))
        assert main(["run", "fig4", "--k", "3"]) == 0


def test_design_flag_focuses_verification(tmp_path, capsys):
    # an explicit --design target suppresses the default battery: the
    # user asked about one file, not about the k=4 algorithm set
    torus = Torus(3, 2)
    doc = flows_to_doc(DimensionOrderRouting(torus).canonical_flows, torus)
    path = tmp_path / "flows.json"
    path.write_text(json.dumps(doc))
    assert main(["verify", "--design", str(path)]) == 0
    out = capsys.readouterr().out
    assert "flows.json: PASS" in out
    assert "1 subjects" in out
    assert "DOR: PASS" not in out
