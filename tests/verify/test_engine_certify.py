"""Engine-level certification: ``Engine(certify=True)`` attaches LP
certificates to fresh solves, re-checks cache hits, and never perturbs
the cache key — certified and uncertified runs share entries."""

import json

import pytest

from repro.cache import DesignCache, cache_key
from repro.experiments.engine import DesignTask, Engine
from repro.verify import Certificate, CertificationError


@pytest.fixture(autouse=True)
def _fast(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")
    monkeypatch.setenv("REPRO_JOBS", "1")


@pytest.fixture
def cache(tmp_path):
    return DesignCache(tmp_path / "designs")


def _task(**overrides):
    spec = {"kind": "twoturn", "k": 3, "label": "certify-test"}
    spec.update(overrides)
    return DesignTask(**spec)


class TestCertifiedSolve:
    def test_fresh_solve_attaches_certificates(self, cache):
        result = Engine(jobs=1, cache=cache, certify=True).run_one(_task())
        assert not result.cache_hit
        certs = result.doc["certificates"]
        assert certs  # 2TURN is a two-stage lexicographic design
        for doc in certs:
            assert Certificate.from_doc(doc).valid

    def test_uncertified_solve_has_no_certificates(self, cache):
        result = Engine(jobs=1, cache=cache, certify=False).run_one(_task())
        assert "certificates" not in result.doc

    def test_certify_not_in_cache_key(self, cache):
        # certified then uncertified: second run must hit the same entry
        Engine(jobs=1, cache=cache, certify=True).run_one(_task())
        result = Engine(jobs=1, cache=cache, certify=False).run_one(_task())
        assert result.cache_hit
        # ...and the entry still carries its certificates
        assert result.doc["certificates"]

    def test_uncertified_entry_upgradeable(self, cache):
        # uncertified first: a later certified run re-checks the entry's
        # flows/load (no certificates to validate) and accepts it
        Engine(jobs=1, cache=cache, certify=False).run_one(_task())
        result = Engine(jobs=1, cache=cache, certify=True).run_one(_task())
        assert result.cache_hit

    def test_warm_certified_hit_passes(self, cache):
        engine = Engine(jobs=1, cache=cache, certify=True)
        engine.run_one(_task())
        result = engine.run_one(_task())
        assert result.cache_hit


class TestCorruptedCache:
    def _corrupt(self, cache, task, mutate):
        key = cache_key(task.cache_payload())
        path = cache._path(key)
        doc = json.loads(path.read_text())
        mutate(doc)
        path.write_text(json.dumps(doc))

    def test_tampered_load_raises(self, cache):
        task = _task()
        Engine(jobs=1, cache=cache, certify=True).run_one(task)

        def halve_load(doc):
            doc["load"] *= 0.5

        self._corrupt(cache, task, halve_load)
        with pytest.raises(CertificationError, match="re-certification"):
            Engine(jobs=1, cache=cache, certify=True).run_one(task)

    def test_tampered_certificate_raises(self, cache):
        task = _task()
        Engine(jobs=1, cache=cache, certify=True).run_one(task)

        def bump_dual(doc):
            doc["certificates"][0]["dual_objective"] += 1.0

        self._corrupt(cache, task, bump_dual)
        with pytest.raises(CertificationError):
            Engine(jobs=1, cache=cache, certify=True).run_one(task)

    def test_uncertified_engine_trusts_cache(self, cache):
        task = _task()
        Engine(jobs=1, cache=cache, certify=True).run_one(task)

        def halve_load(doc):
            doc["load"] *= 0.5

        self._corrupt(cache, task, halve_load)
        result = Engine(jobs=1, cache=cache, certify=False).run_one(task)
        assert result.cache_hit  # documented trade-off: no recheck


class TestPoolPath:
    def test_certified_pool_solves(self, cache):
        # two distinct tasks through the process pool, certify threaded
        # into the workers via functools.partial
        tasks = [
            _task(label="a"),
            DesignTask(kind="wc_point", k=3, ratio=1.0, label="b"),
        ]
        results = Engine(jobs=2, cache=cache, certify=True).run(tasks)
        assert [r.cache_hit for r in results] == [False, False]
        for result in results:
            for doc in result.doc["certificates"]:
                assert Certificate.from_doc(doc).valid
