"""Golden-data regression tests and comparator unit tests.

``results/golden/`` pins the headline metrics of the paper's k=3 and
k=4 algorithm set; the comparator flags drift beyond ``GOLDEN_RTOL``
while tolerating last-digit float noise (LP solver version changes,
BLAS summation order).
"""

from pathlib import Path

from repro.metrics import worst_case_load
from repro.routing import IVAL, standard_algorithms
from repro.topology import Torus
from repro.verify import compare_golden, load_golden, write_golden

GOLDEN_DIR = Path(__file__).resolve().parents[2] / "results" / "golden"


def headline_doc(k, twoturn=None):
    """Recompute the golden headline metrics for a k-ary 2-cube."""
    torus = Torus(k, 2)
    algs = {
        "DOR": standard_algorithms(torus)["DOR"],
        "VAL": standard_algorithms(torus)["VAL"],
        "IVAL": IVAL(torus),
    }
    if twoturn is not None:
        algs["2TURN"] = twoturn
    doc = {"topology": {"kind": "torus", "k": k, "n": 2}, "algorithms": {}}
    for name, alg in algs.items():
        wc = worst_case_load(alg)
        doc["algorithms"][name] = {
            "worst_case_load": wc.load,
            "worst_case_throughput": wc.throughput,
            "avg_path_length": alg.average_path_length(),
            "normalized_path_length": alg.normalized_path_length(),
        }
    return doc


class TestComparator:
    def test_equal_docs(self):
        doc = {"a": 1.0, "b": {"c": [1, 2, 3]}}
        assert compare_golden(doc, doc) == []

    def test_within_tolerance(self):
        assert compare_golden({"x": 1.0}, {"x": 1.0 + 1e-9}) == []

    def test_beyond_tolerance(self):
        diffs = compare_golden({"x": 1.0}, {"x": 1.01})
        assert len(diffs) == 1
        assert "relative error" in diffs[0]

    def test_missing_key(self):
        diffs = compare_golden({"x": 1.0, "y": 2.0}, {"x": 1.0})
        assert diffs == ["y: missing (golden has 2.0)"]

    def test_unexpected_key(self):
        (diff,) = compare_golden({"x": 1.0}, {"x": 1.0, "z": 3.0})
        assert diff.startswith("z: unexpected")

    def test_nested_path_reported(self):
        (diff,) = compare_golden({"a": {"b": [0.0, 1.0]}}, {"a": {"b": [0.0, 2.0]}})
        assert diff.startswith("a.b[1]:")

    def test_length_mismatch(self):
        (diff,) = compare_golden([1, 2], [1, 2, 3])
        assert "length" in diff

    def test_string_mismatch(self):
        (diff,) = compare_golden({"name": "DOR"}, {"name": "VAL"})
        assert "'VAL'" in diff

    def test_bool_compared_exactly(self):
        # bools are ints in Python; they must not be tolerance-compared
        assert compare_golden({"ok": True}, {"ok": True}) == []
        assert compare_golden({"ok": True}, {"ok": False})

    def test_custom_rtol(self):
        assert compare_golden({"x": 1.0}, {"x": 1.05}, rtol=0.1) == []


class TestRoundtrip:
    def test_write_load_roundtrip(self, tmp_path):
        doc = {"metrics": {"load": 1.5}, "labels": ["a", "b"]}
        write_golden(tmp_path / "sub" / "g.json", doc)  # creates parents
        assert load_golden(tmp_path / "sub" / "g.json") == doc
        assert compare_golden(doc, load_golden(tmp_path / "sub" / "g.json")) == []


class TestGoldenRegression:
    def test_golden_files_exist(self):
        assert (GOLDEN_DIR / "k3_headline.json").is_file()
        assert (GOLDEN_DIR / "k4_headline.json").is_file()

    def test_k3_headline_matches(self):
        golden = load_golden(GOLDEN_DIR / "k3_headline.json")
        actual = headline_doc(3)
        # 2TURN needs an LP solve; the k=4 test covers it via the
        # session fixture — drop it from the cheap k=3 comparison
        golden = {
            "topology": golden["topology"],
            "algorithms": {
                n: m for n, m in golden["algorithms"].items() if n != "2TURN"
            },
        }
        assert compare_golden(golden, actual) == []

    def test_k4_headline_matches(self, twoturn4):
        golden = load_golden(GOLDEN_DIR / "k4_headline.json")
        actual = headline_doc(4, twoturn=twoturn4.routing)
        diffs = compare_golden(golden, actual)
        assert diffs == [], "\n".join(diffs)

    def test_drift_is_reported(self):
        golden = load_golden(GOLDEN_DIR / "k4_headline.json")
        drifted = load_golden(GOLDEN_DIR / "k4_headline.json")
        drifted["algorithms"]["DOR"]["worst_case_load"] = 1.4
        diffs = compare_golden(golden, drifted)
        assert any("DOR.worst_case_load" in d for d in diffs)
