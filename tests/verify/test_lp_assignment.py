"""The Birkhoff-polytope LP assignment oracle (N <= 64).

The subset-DP oracle tops out at N = 20, far short of the 27 nodes of a
3-ary 3-cube.  The LP oracle maximizes over the Birkhoff polytope with
a simplex method; by Birkhoff-von Neumann the optimal vertex is a
permutation matrix, giving an exact oracle independent of
``linear_sum_assignment`` (simplex pivoting vs. Hungarian augmenting
paths) up to N = 64.
"""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.routing import IVAL, VAL, DimensionOrderRouting
from repro.topology import Torus
from repro.verify.harness import (
    _assignment_by_lp,
    _assignment_by_subset_dp,
    brute_force_assignment,
    brute_force_worst_case,
)
from repro.metrics.worst_case_eval import worst_case_load


class TestLpOracle:
    @pytest.mark.parametrize("n", [2, 5, 12, 20])
    def test_matches_subset_dp(self, n):
        rng = np.random.default_rng(n)
        w = rng.random((n, n))
        v_lp, p_lp = _assignment_by_lp(w)
        v_dp, _ = _assignment_by_subset_dp(w)
        assert v_lp == pytest.approx(v_dp, abs=1e-9)
        assert sorted(p_lp.tolist()) == list(range(n))
        assert float(w[np.arange(n), p_lp].sum()) == pytest.approx(v_lp)

    @pytest.mark.parametrize("n", [27, 40, 64])
    def test_matches_hungarian_beyond_dp_range(self, n):
        rng = np.random.default_rng(1000 + n)
        w = rng.normal(size=(n, n))
        v_lp, p_lp = _assignment_by_lp(w)
        rows, cols = linear_sum_assignment(w, maximize=True)
        assert v_lp == pytest.approx(float(w[rows, cols].sum()), abs=1e-8)
        assert sorted(p_lp.tolist()) == list(range(n))

    def test_dispatch_uses_lp_above_dp_limit(self):
        rng = np.random.default_rng(7)
        w = rng.random((27, 27))
        value, perm = brute_force_assignment(w)
        rows, cols = linear_sum_assignment(w, maximize=True)
        assert value == pytest.approx(float(w[rows, cols].sum()), abs=1e-8)
        assert sorted(perm.tolist()) == list(range(27))


class TestBruteForceWorstCase3D:
    """Acceptance check: the Hungarian evaluator is confirmed exact on a
    small 3-D instance by the independent brute-force oracle."""

    @pytest.mark.parametrize(
        "make_alg", [DimensionOrderRouting, VAL, IVAL], ids=["DOR", "VAL", "IVAL"]
    )
    def test_agrees_with_hungarian_on_3ary_3cube(self, make_alg):
        torus = Torus(3, 3)
        alg = make_alg(torus)
        exact = worst_case_load(alg)
        brute = brute_force_worst_case(alg)
        assert brute.load == pytest.approx(exact.load, abs=1e-8)

    def test_heterogeneous_bandwidths_divide_loads(self):
        torus = Torus(3, 3, bandwidths=(1.0, 1.0, 0.5))
        alg = DimensionOrderRouting(torus)
        exact = worst_case_load(alg)
        brute = brute_force_worst_case(alg)
        assert brute.load == pytest.approx(exact.load, abs=1e-8)
        # slowing the Z links can only worsen the guarantee
        homo = worst_case_load(DimensionOrderRouting(Torus(3, 3)))
        assert exact.load >= homo.load - 1e-12
