"""Differential tests: brute-force oracles vs. the Hungarian worst case.

The acceptance bar of this subsystem: for every registered algorithm on
k ∈ {3, 4} tori, exhaustive enumeration / subset DP over adversarial
permutations must agree with ``metrics.worst_case`` exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.metrics import worst_case_load
from repro.routing import IVAL, standard_algorithms
from repro.topology import Torus
from repro.verify import (
    brute_force_assignment,
    brute_force_worst_case,
    differential_worst_case_check,
)
from repro.verify.harness import (
    _assignment_by_enumeration,
    _assignment_by_subset_dp,
)


def _algorithms(k):
    torus = Torus(k, 2)
    algs = dict(standard_algorithms(torus))
    algs["IVAL"] = IVAL(torus)
    return algs


class TestBruteForceAssignment:
    def test_trivial(self):
        value, perm = brute_force_assignment(np.array([[2.0]]))
        assert value == 2.0
        assert perm.tolist() == [0]

    def test_known_matrix(self):
        w = np.array([[1.0, 9.0], [9.0, 1.0]])
        value, perm = brute_force_assignment(w)
        assert value == 18.0
        assert perm.tolist() == [1, 0]

    @pytest.mark.parametrize("n", [2, 5, 9, 10, 12])
    def test_matches_hungarian(self, n):
        rng = np.random.default_rng(n)
        w = rng.random((n, n))
        value, perm = brute_force_assignment(w)
        rows, cols = linear_sum_assignment(w, maximize=True)
        assert value == pytest.approx(float(w[rows, cols].sum()), abs=1e-12)
        assert sorted(perm.tolist()) == list(range(n))  # a permutation
        assert float(w[np.arange(n), perm].sum()) == pytest.approx(value)

    @pytest.mark.parametrize("n", [6, 8, 9])
    def test_dp_matches_enumeration(self, n):
        # the two oracles overlap for N <= 9: they must agree with each
        # other, not just with the implementation under test
        rng = np.random.default_rng(100 + n)
        w = rng.random((n, n))
        v_enum, _ = _assignment_by_enumeration(w)
        v_dp, p_dp = _assignment_by_subset_dp(w)
        assert v_dp == pytest.approx(v_enum, abs=1e-12)
        assert float(w[np.arange(n), p_dp].sum()) == pytest.approx(v_dp)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="N <= 64"):
            brute_force_assignment(np.zeros((65, 65)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            brute_force_assignment(np.zeros((3, 4)))

    @given(st.integers(0, 2**32 - 1), st.integers(2, 7))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_hungarian(self, seed, n):
        w = np.random.default_rng(seed).normal(size=(n, n))
        value, _ = brute_force_assignment(w)
        rows, cols = linear_sum_assignment(w, maximize=True)
        assert value == pytest.approx(float(w[rows, cols].sum()), abs=1e-9)


class TestDifferentialWorstCase:
    @pytest.mark.parametrize("k", [3, 4])
    def test_all_registered_algorithms_agree(self, k):
        for name, alg in _algorithms(k).items():
            result = differential_worst_case_check(alg)
            assert result.passed, f"{name} on k={k}: {result}"

    @pytest.mark.parametrize("k", [3, 4])
    def test_loads_match_exactly(self, k):
        for name, alg in _algorithms(k).items():
            hungarian = worst_case_load(alg)
            brute = brute_force_worst_case(alg)
            assert brute.load == pytest.approx(hungarian.load, abs=1e-9), name
            # the brute-force witness permutation really attains its load
            assert sorted(brute.permutation.tolist()) == list(
                range(alg.network.num_nodes)
            )

    def test_2turn_agrees(self, twoturn4):
        assert differential_worst_case_check(twoturn4.routing).passed

    def test_known_dor_worst_case(self):
        # DOR on a 4-ary 2-cube: gamma_wc = k^2/8 + k/4 = 3 halves... the
        # seed's metric suite pins 1.5; the oracle must reproduce it.
        alg = _algorithms(4)["DOR"]
        assert brute_force_worst_case(alg).load == pytest.approx(1.5)

    def test_detects_an_injected_metric_bug(self, dor4):
        # If the Hungarian side under-reported (e.g. dropped a channel
        # class), the differential check would fail: simulate by
        # comparing against a deliberately-scaled load.
        brute = brute_force_worst_case(dor4)
        hungarian = worst_case_load(dor4)
        assert brute.load == pytest.approx(hungarian.load)
        assert brute.load != pytest.approx(hungarian.load * 0.9)

    def test_flows_entry_point(self, t4, g4, dor4):
        direct = brute_force_worst_case(dor4.canonical_flows, t4, g4)
        assert direct.load == pytest.approx(brute_force_worst_case(dor4).load)
