"""One constant decides the default kernel: repro.constants.

Before the constant existed, ``simulate`` and the measurement loops
each hard-coded their own default string — flipping one and not the
other silently benchmarked a backend against itself.  These tests pin
every entry point to :data:`repro.constants.DEFAULT_SIM_BACKEND`.
"""

import inspect

from repro.constants import DEFAULT_SIM_BACKEND
from repro.experiments import adaptive_compare, faults, sim_validation
from repro.sim import simulate
from repro.sim.measure import latency_load_curve, saturation_throughput


def test_constant_is_a_valid_backend():
    assert DEFAULT_SIM_BACKEND in ("vectorized", "reference")


def test_library_defaults_agree():
    for fn in (simulate, latency_load_curve, saturation_throughput):
        default = inspect.signature(fn).parameters["backend"].default
        assert default == DEFAULT_SIM_BACKEND, fn.__name__


def test_experiment_defaults_agree():
    for fn in (adaptive_compare.run, sim_validation.run, faults.run):
        default = inspect.signature(fn).parameters["sim_backend"].default
        assert default == DEFAULT_SIM_BACKEND, fn.__module__


def test_cli_defers_to_the_constant():
    # The CLI flag defaults to None and the runner only forwards an
    # explicit choice, so the library default (the constant) governs.
    from repro.cli import build_parser

    args = build_parser().parse_args(["run", "sim", "--k", "4"])
    assert args.sim_backend is None
