"""Fractional channel bandwidths in the packet simulator.

Heterogeneous tori (half-rate Z links) hand the simulator non-integer
bandwidths; both backends discretize them with the shared deterministic
token bucket (:func:`repro.sim.network_sim.service_budgets`) so they
stay draw-for-draw identical.
"""

import numpy as np
import pytest

from repro.routing import IVAL, DimensionOrderRouting
from repro.sim import SimulationConfig, simulate
from repro.sim.network_sim import service_budgets
from repro.topology import Torus
from repro.traffic import uniform


class TestServiceBudgets:
    @pytest.mark.parametrize("b", [1.0, 2.0, 0.5, 0.75, 0.1, 1.5])
    def test_window_totals_track_fluid_rate(self, b):
        budgets = np.array(
            [service_budgets(np.array([b]), cycle)[0] for cycle in range(1000)]
        )
        totals = np.cumsum(budgets)
        cycles = np.arange(1, 1001)
        # every prefix window serves within one packet of T * b
        assert (np.abs(totals - cycles * b) <= 1.0).all()

    def test_integer_bandwidth_unchanged(self):
        for cycle in range(50):
            assert (
                service_budgets(np.array([1.0, 2.0, 3.0]), cycle)
                == np.array([1, 2, 3])
            ).all()

    def test_half_rate_alternates(self):
        budgets = [
            int(service_budgets(np.array([0.5]), cycle)[0]) for cycle in range(6)
        ]
        assert budgets == [0, 1, 0, 1, 0, 1]

    def test_deterministic(self):
        b = np.array([0.3, 0.7])
        for cycle in (0, 17, 999):
            np.testing.assert_array_equal(
                service_budgets(b, cycle), service_budgets(b, cycle)
            )


class TestBackendsAgreeOnFractionalBandwidths:
    @pytest.fixture(scope="class")
    def hetero(self):
        return Torus(3, 3, bandwidths=(1.0, 1.0, 0.5))

    @pytest.mark.parametrize("make_alg", [DimensionOrderRouting, IVAL])
    def test_identical_results(self, hetero, make_alg):
        alg = make_alg(hetero)
        lam = uniform(hetero.num_nodes)
        cfg = SimulationConfig(cycles=300, warmup=100, injection_rate=0.2, seed=7)
        ref = simulate(alg, lam, cfg, backend="reference")
        vec = simulate(alg, lam, cfg, backend="vectorized")
        assert ref.delivered == vec.delivered
        assert ref.dropped == vec.dropped
        assert ref.backlog == vec.backlog
        assert ref.accepted_rate == pytest.approx(vec.accepted_rate)
        assert ref.mean_latency == pytest.approx(vec.mean_latency)

    def test_slow_axis_congests_first(self, hetero):
        """Pushing rate toward the Z bottleneck grows backlog faster on
        the heterogeneous torus than on its homogeneous twin."""
        homo = Torus(3, 3)
        lam = uniform(homo.num_nodes)
        cfg = SimulationConfig(cycles=500, warmup=100, injection_rate=0.9, seed=3)
        slow = simulate(DimensionOrderRouting(hetero), lam, cfg)
        fast = simulate(DimensionOrderRouting(homo), lam, cfg)
        assert slow.backlog > fast.backlog
