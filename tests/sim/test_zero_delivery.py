"""Regression: zero-delivery measurement windows must degrade cleanly.

A run at a rate far above saturation (or with a window too short for
any packet to cross the network) can deliver *zero* packets during the
measurement window.  ``np.percentile`` on an empty array raises, so a
naive stats tail crashes exactly on the sweeps most worth plotting —
the unstable side of the saturation point.  The shared
:func:`repro.sim.stats.latency_stats` helper pins the contract for both
backends: NaN statistics, never an exception, and ``obs-report``
renders such rate rows with ``-`` latency cells.
"""

import math

import numpy as np
import pytest

from repro import obs
from repro.routing import DimensionOrderRouting
from repro.sim import (
    SimulationConfig,
    latency_stats,
    simulate,
    simulate_vectorized,
)
from repro.topology import Torus
from repro.traffic import tornado, uniform
from tests.sim.conftest import assert_counts_equal

#: DOR under 8-ary tornado needs 3 hops; a 2-cycle measurement window
#: cannot contain any packet injected inside it, so the window measures
#: zero deliveries even though the network is busy.
_BUSY_ZERO = SimulationConfig(cycles=60, warmup=58, injection_rate=1.0, seed=3)


def _zero_window_case():
    torus = Torus(8, 2)
    return DimensionOrderRouting(torus), tornado(torus)


class TestLatencyStatsHelper:
    def test_empty_window_is_nan_not_raise(self):
        stats = latency_stats([])
        assert math.isnan(stats.mean_latency)
        assert math.isnan(stats.p99_latency)
        assert math.isnan(stats.mean_hops)
        assert stats.count == 0

    def test_populated_window(self):
        stats = latency_stats([1, 2, 3, 4], hops=[1, 1, 2, 2])
        assert stats.mean_latency == pytest.approx(2.5)
        assert stats.p99_latency == pytest.approx(np.percentile([1, 2, 3, 4], 99))
        assert stats.mean_hops == pytest.approx(1.5)
        assert stats.count == 4

    def test_hops_optional(self):
        assert math.isnan(latency_stats([5.0]).mean_hops)
        assert latency_stats([5.0]).mean_latency == 5.0


class TestZeroDeliveryRuns:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_busy_network_empty_window(self, backend):
        alg, traffic = _zero_window_case()
        result = simulate(alg, traffic, _BUSY_ZERO, backend=backend)
        assert result.accepted_rate == 0.0
        assert math.isnan(result.mean_latency)
        assert math.isnan(result.p99_latency)
        assert math.isnan(result.mean_hops)
        assert result.backlog > 0  # the network genuinely was busy

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_zero_rate_run(self, backend):
        torus = Torus(4, 2)
        result = simulate(
            DimensionOrderRouting(torus),
            uniform(torus.num_nodes),
            SimulationConfig(cycles=100, warmup=50, injection_rate=0.0, seed=0),
            backend=backend,
        )
        assert result.injected == result.delivered == 0
        assert math.isnan(result.mean_latency)

    def test_backends_agree_on_zero_delivery_counts(self):
        alg, traffic = _zero_window_case()
        ref = simulate(alg, traffic, _BUSY_ZERO, backend="reference")
        vec = simulate_vectorized(alg, traffic, _BUSY_ZERO)
        assert_counts_equal(ref, vec)


class TestObsReportRendering:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_rate_row_renders_without_latency(self, tmp_path, backend):
        alg, traffic = _zero_window_case()
        trace = tmp_path / "trace.jsonl"
        obs.configure(trace_path=str(trace))
        try:
            simulate(alg, traffic, _BUSY_ZERO, backend=backend)
        finally:
            obs.configure()  # restore a sink-less global tracer
        report = obs.report_from_file(str(trace))
        rendered = report.render()
        assert "Simulation (per rate point):" in rendered
        [row] = [
            line for line in rendered.splitlines() if line.startswith("  1.0000")
        ]
        assert " - " in row  # latency columns render as '-' placeholders

    def test_mixed_rows_keep_latency_for_delivering_rates(self, tmp_path):
        torus = Torus(4, 2)
        alg, traffic = DimensionOrderRouting(torus), uniform(torus.num_nodes)
        trace = tmp_path / "trace.jsonl"
        obs.configure(trace_path=str(trace))
        try:
            simulate(
                alg,
                traffic,
                SimulationConfig(cycles=400, warmup=100, injection_rate=0.3, seed=2),
                backend="vectorized",
            )
        finally:
            obs.configure()
        rendered = obs.report_from_file(str(trace)).render()
        [row] = [
            line for line in rendered.splitlines() if line.startswith("  0.3000")
        ]
        assert " - " not in row
