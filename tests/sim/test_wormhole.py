"""Wormhole/VC simulator tests: dynamic deadlock and the 60-75% claim.

These tests make the static CDG analysis of :mod:`repro.deadlock`
observable in a running router: the single-VC torus genuinely wedges,
the paper's dateline/turn scheme does not, and a buffer-constrained
router reaches only a fraction of the ideal Section 2.1 bound.
"""

import numpy as np
import pytest

from repro.deadlock import single_vc_scheme, turn_increment_scheme
from repro.routing import DimensionOrderRouting, IVAL
from repro.sim import WormholeConfig, simulate_wormhole
from repro.topology import Torus
from repro.traffic import tornado, uniform


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="module")
def dor4(t4):
    return DimensionOrderRouting(t4)


class TestConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="injection_rate"):
            WormholeConfig(injection_rate=-0.1)

    def test_flits_must_fit_buffer(self):
        with pytest.raises(ValueError, match="fit one buffer"):
            WormholeConfig(num_flits=8, buffer_flits=4)

    def test_positive_counts(self):
        with pytest.raises(ValueError, match=">= 1"):
            WormholeConfig(num_vcs=0)

    def test_warmup(self):
        with pytest.raises(ValueError, match="warmup"):
            WormholeConfig(cycles=10, warmup=10)


class TestBasicOperation:
    def test_low_load_delivers(self, t4, dor4):
        res = simulate_wormhole(
            dor4,
            uniform(16),
            turn_increment_scheme,
            WormholeConfig(
                cycles=1500, warmup=400, injection_rate=0.15, num_vcs=2, seed=0
            ),
        )
        assert not res.deadlocked
        assert res.stable
        assert res.delivered > 100
        assert res.mean_latency >= 1.0

    def test_multiflit_packets(self, t4, dor4):
        res = simulate_wormhole(
            dor4,
            uniform(16),
            turn_increment_scheme,
            WormholeConfig(
                cycles=1500,
                warmup=400,
                injection_rate=0.05,
                num_vcs=2,
                num_flits=3,
                buffer_flits=4,
                seed=1,
            ),
        )
        assert not res.deadlocked
        assert res.delivered > 20
        # serialization: a 3-flit packet takes at least hops + 2 cycles
        assert res.mean_latency >= 3.0

    def test_deterministic(self, t4, dor4):
        cfg = WormholeConfig(
            cycles=800, warmup=200, injection_rate=0.2, num_vcs=2, seed=9
        )
        a = simulate_wormhole(dor4, uniform(16), turn_increment_scheme, cfg)
        b = simulate_wormhole(dor4, uniform(16), turn_increment_scheme, cfg)
        assert a == b

    def test_requires_torus(self):
        from repro.topology import Mesh
        from repro.routing.base import ObliviousRouting

        class Dummy(ObliviousRouting):
            def path_distribution(self, s, d):  # pragma: no cover
                return [((s,), 1.0)]

        with pytest.raises(TypeError, match="tori"):
            simulate_wormhole(
                Dummy(Mesh(3, 2)), np.eye(9), single_vc_scheme
            )


class TestDynamicDeadlock:
    """The paper's deadlock claims, observed in a running router."""

    def test_single_vc_ring_deadlocks(self):
        # multi-hop wrap-around ring traffic (tornado offset 2 on a
        # 5-ary torus), one VC, shallow buffers: the classic cyclic-wait
        # wedge the Dally-Seitz analysis predicts
        t5 = Torus(5, 2)
        res = simulate_wormhole(
            DimensionOrderRouting(t5),
            tornado(t5),
            single_vc_scheme,
            WormholeConfig(
                cycles=2000,
                warmup=500,
                injection_rate=0.9,
                num_vcs=1,
                buffer_flits=1,
                seed=2,
            ),
        )
        assert res.deadlocked
        assert res.backlog_packets > 0

    def test_dateline_breaks_the_deadlock(self):
        t5 = Torus(5, 2)
        res = simulate_wormhole(
            DimensionOrderRouting(t5),
            tornado(t5),
            turn_increment_scheme,
            WormholeConfig(
                cycles=2000,
                warmup=500,
                injection_rate=0.9,
                num_vcs=2,
                buffer_flits=1,
                seed=2,
            ),
        )
        assert not res.deadlocked

    def test_ival_with_four_vcs_no_deadlock(self, t4):
        ival = IVAL(t4)
        res = simulate_wormhole(
            ival,
            tornado(t4),
            turn_increment_scheme,
            WormholeConfig(
                cycles=1500,
                warmup=400,
                injection_rate=0.5,
                num_vcs=4,
                buffer_flits=2,
                seed=3,
            ),
        )
        assert not res.deadlocked

    def test_ival_collapsed_vcs_can_wedge(self, t4):
        # folding IVAL's 4 VCs onto a single one reintroduces the cycle
        ival = IVAL(t4)
        res = simulate_wormhole(
            ival,
            tornado(t4),
            single_vc_scheme,
            WormholeConfig(
                cycles=2000,
                warmup=500,
                injection_rate=0.9,
                num_vcs=1,
                buffer_flits=1,
                seed=4,
            ),
        )
        assert res.deadlocked


class TestIdealBoundFraction:
    def test_practical_router_reaches_fraction_of_ideal(self, t4, dor4):
        """Section 2.1: the ideal edge-congestion bound is an upper
        bound; 'practical systems can typically reach 60-75%' of it.
        Our constrained wormhole router must land below the bound but
        well above zero."""
        # ideal saturation for DOR/uniform on the 4-ary 2-cube is 1.0
        # (injection-limited); drive at full rate and measure.
        res = simulate_wormhole(
            dor4,
            uniform(16),
            turn_increment_scheme,
            WormholeConfig(
                cycles=4000,
                warmup=1000,
                injection_rate=1.0,
                num_vcs=2,
                buffer_flits=2,
                seed=5,
            ),
        )
        fraction = res.accepted_rate / (1.0 * 15 / 16)
        assert 0.4 < fraction < 1.0
        assert not res.deadlocked
