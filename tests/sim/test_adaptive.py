"""Adaptive (GOAL-style) routing tests — paper Section 5.5."""

import pytest

from repro.routing import RLB
from repro.sim import SimulationConfig, adaptive_expected_locality, simulate_adaptive
from repro.sim.adaptive import adaptive_saturation
from repro.topology import Torus


class TestLocality:
    def test_matches_rlb_direction_rule(self, t4):
        # the GOAL direction distribution is RLB's, so the closed-form
        # locality equals RLB's measured locality
        assert adaptive_expected_locality(t4) == pytest.approx(
            RLB(t4).normalized_path_length(), rel=1e-9
        )

    def test_paper_value_k8(self):
        # paper Section 5.5: GOAL's average path length ~1.3x minimal
        assert adaptive_expected_locality(Torus(8, 2)) == pytest.approx(
            1.31, abs=0.01
        )

    def test_simulated_hops_match_expectation(self, t4, uniform4):
        res = simulate_adaptive(
            t4,
            uniform4,
            SimulationConfig(cycles=2000, warmup=400, injection_rate=0.3, seed=0),
        )
        expected_hops = adaptive_expected_locality(t4) * t4.mean_min_distance()
        # conditioned on off-diagonal pairs: scale by N/(N-1)
        expected_hops *= 16 / 15
        assert res.mean_hops == pytest.approx(expected_hops, rel=0.05)


class TestStability:
    def test_low_load_stable(self, t4, uniform4):
        res = simulate_adaptive(
            t4,
            uniform4,
            SimulationConfig(cycles=1200, warmup=300, injection_rate=0.2, seed=1),
        )
        assert res.stable
        assert res.dropped == 0

    def test_deterministic(self, t4, uniform4):
        cfg = SimulationConfig(cycles=800, warmup=200, injection_rate=0.3, seed=5)
        assert simulate_adaptive(t4, uniform4, cfg) == simulate_adaptive(
            t4, uniform4, cfg
        )

    def test_finite_queue_drops(self, t4, tornado4):
        res = simulate_adaptive(
            t4,
            tornado4,
            SimulationConfig(
                cycles=1200,
                warmup=300,
                injection_rate=1.0,
                seed=2,
                queue_capacity=2,
            ),
        )
        assert res.backlog <= 2 * t4.num_channels

    def test_adaptivity_beats_oblivious_rlb_on_rlbs_adversary(self):
        """Section 5.5's point: adaptive routing shares RLB's direction
        rule (hence locality) but dodges its worst case by steering
        around congestion.  Under RLB's own worst-case permutation, the
        adaptive router sustains a clearly higher load than RLB's
        analytic saturation."""
        from repro.metrics import worst_case_load

        t6 = Torus(6, 2)
        wc = worst_case_load(RLB(t6))
        adversary = wc.traffic_matrix()
        est = adaptive_saturation(
            t6, adversary, cycles=1500, warmup=500, iterations=4
        )
        assert est.lower > wc.throughput + 0.05
