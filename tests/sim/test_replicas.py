"""Differential equivalence for replica-batched launches.

The batched kernel's correctness spine: a batch of mixed
``(injection_rate, seed, fault_schedule, link_schedule)`` replicas must
be draw-for-draw identical to running each replica as an individual
``simulate`` call — every packet count exactly, latency within float
summation tolerance.  The ``compiled`` backend routes the per-cycle
rankings through :mod:`repro.sim.kernel` (NumPy twins when numba is
missing) and must match bit-for-bit too.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.sim import Replica, SimulationConfig, replica_grid, simulate, simulate_replicas
from repro.sim.kernel import HAVE_NUMBA, compiled_available
from repro.sim.vectorized import simulate_vectorized
from tests.sim.conftest import assert_counts_equal, assert_latency_close

#: A deliberately heterogeneous batch: rates below/above saturation,
#: distinct seeds, one replica with mid-run channel kills and one with a
#: link-down window — nothing shared but the algorithm and traffic.
MIXED = [
    Replica(0.2, seed=3),
    Replica(0.8, seed=3),
    Replica(0.2, seed=11),
    Replica(0.6, seed=5, fault_schedule=((0, 1), (120, 7))),
    Replica(0.5, seed=7, link_schedule=((50, 2, "down"), (150, 2, "up"))),
    Replica(0.9, seed=2, fault_schedule=((80, 4),),
            link_schedule=((40, 9, "down"), (90, 9, "up"))),
]


class TestReplica:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="injection_rate"):
            Replica(1.5)
        with pytest.raises(ValueError, match="injection_rate"):
            Replica(-0.1)

    def test_schedules_normalized(self):
        rep = Replica(0.5, fault_schedule=[(9, 2), (3, 1), (9, 2)],
                      link_schedule=[(5, 0, "down")])
        assert rep.fault_schedule == ((3, 1), (9, 2))
        assert rep.link_schedule == ((5, 0, "down"),)

    def test_config_roundtrip(self):
        config = SimulationConfig(
            cycles=500, warmup=100, injection_rate=0.4, seed=9,
            queue_capacity=3, fault_schedule=((10, 1),),
            link_schedule=((20, 2, "down"),),
        )
        rep = Replica.from_config(config)
        assert rep.to_config(500, 100, queue_capacity=3) == config

    def test_grid_is_rate_major(self):
        grid = replica_grid([0.1, 0.2], [4, 5], fault_schedule=((0, 1),))
        assert [(r.injection_rate, r.seed) for r in grid] == [
            (0.1, 4), (0.1, 5), (0.2, 4), (0.2, 5)
        ]
        assert all(r.fault_schedule == ((0, 1),) for r in grid)

    def test_raw_tuples_accepted(self, make_sim_case):
        _, alg, traffic = make_sim_case(3, "DOR", "uniform")
        a = simulate_replicas(alg, traffic, [(0.3, 5)], cycles=200, warmup=50)
        b = simulate_replicas(
            alg, traffic, [Replica(0.3, 5)], cycles=200, warmup=50
        )
        assert a == b


class TestBatchedDifferential:
    @pytest.mark.parametrize("backend", ["vectorized", "compiled"])
    def test_mixed_batch_matches_individual_reference_runs(
        self, make_sim_case, backend
    ):
        _, alg, traffic = make_sim_case(4, "IVAL", "uniform")
        batched = simulate_replicas(
            alg, traffic, MIXED, cycles=300, warmup=100, backend=backend
        )
        for rep, got in zip(MIXED, batched):
            ref = simulate(
                alg, traffic, rep.to_config(300, 100), backend="reference"
            )
            assert_counts_equal(ref, got)
            assert_latency_close(ref, got)
            if rep.fault_schedule:
                assert got.lost > 0  # the fault replicas must exercise loss

    def test_reference_backend_is_the_oracle_loop(self, make_sim_case):
        _, alg, traffic = make_sim_case(3, "DOR", "tornado")
        reps = MIXED[:3]
        via_batch_api = simulate_replicas(
            alg, traffic, reps, cycles=250, warmup=80, backend="reference"
        )
        direct = [
            simulate(alg, traffic, r.to_config(250, 80), backend="reference")
            for r in reps
        ]
        assert via_batch_api == direct

    def test_finite_capacity_batch_matches(self, make_sim_case):
        _, alg, traffic = make_sim_case(4, "VAL", "tornado")
        reps = [Replica(1.0, 1), Replica(1.0, 2), Replica(0.7, 3)]
        batched = simulate_replicas(
            alg, traffic, reps, cycles=300, warmup=100, queue_capacity=2
        )
        assert any(r.dropped > 0 for r in batched)
        for rep, got in zip(reps, batched):
            ref = simulate(
                alg,
                traffic,
                rep.to_config(300, 100, queue_capacity=2),
                backend="reference",
            )
            assert_counts_equal(ref, got)

    def test_batch_order_does_not_matter(self, make_sim_case):
        _, alg, traffic = make_sim_case(3, "RLB", "uniform")
        fwd = simulate_replicas(alg, traffic, MIXED, cycles=250, warmup=80)
        rev = simulate_replicas(alg, traffic, MIXED[::-1], cycles=250, warmup=80)
        assert fwd == rev[::-1]

    def test_batch_emits_span_and_metrics(self, make_sim_case):
        _, alg, traffic = make_sim_case(3, "DOR", "uniform")
        tracer = obs.get_tracer()
        mark = tracer.mark()
        simulate_replicas(alg, traffic, MIXED[:4], cycles=200, warmup=60)
        events = tracer.events_since(mark)
        (batch,) = [
            e for e in events if e["ev"] == "span" and e["name"] == "sim.batch"
        ]
        assert batch["attrs"]["replicas"] == 4
        assert batch["attrs"]["backend"] == "vectorized"
        runs = [
            e for e in events if e["ev"] == "span" and e["name"] == "sim.run"
        ]
        assert len(runs) == 4


class TestCompiledBackend:
    def test_compiled_flag_reflects_numba(self):
        # The container has no numba; either way the flag and the probe
        # must agree, and the seam below must be count-identical.
        assert compiled_available() == HAVE_NUMBA

    def test_simulate_dispatches_compiled(self, make_sim_case):
        _, alg, traffic = make_sim_case(4, "IVAL", "tornado")
        config = SimulationConfig(
            cycles=300, warmup=100, injection_rate=0.9, seed=13,
            queue_capacity=2,
        )
        via_simulate = simulate(alg, traffic, config, backend="compiled")
        vec = simulate_vectorized(alg, traffic, config)
        assert via_simulate == vec


class TestReplicaProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.integers(min_value=0, max_value=2**31),
                st.booleans(),  # carry a fault kill?
                st.booleans(),  # carry a link-down window?
            ),
            min_size=1,
            max_size=5,
        ),
        backend=st.sampled_from(["vectorized", "compiled"]),
    )
    def test_batch_equals_individual_runs(self, make_sim_case, data, backend):
        _, alg, traffic = make_sim_case(3, "DOR", "uniform")
        reps = [
            Replica(
                rate,
                seed,
                fault_schedule=((30, (seed % 5) + 1),) if faulty else (),
                link_schedule=(
                    ((10, seed % 4, "down"), (60, seed % 4, "up"))
                    if flaky
                    else ()
                ),
            )
            for rate, seed, faulty, flaky in data
        ]
        batched = simulate_replicas(
            alg, traffic, reps, cycles=150, warmup=50, backend=backend
        )
        for rep, got in zip(reps, batched):
            solo = simulate_vectorized(alg, traffic, rep.to_config(150, 50))
            assert_counts_equal(solo, got)
            assert_latency_close(solo, got)
