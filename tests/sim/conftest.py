"""Shared fixtures and helpers for the simulator test suite.

The small-torus topology/algorithm/traffic fixtures used to be
duplicated across ``test_simulator.py``, ``test_adaptive.py`` and
``test_measure.py``; they live here now, together with the case factory
and the equality helpers the differential and property suites are built
on.  Algorithms are cached per (radix, name) so the vectorized backend's
compiled path tables are reused across tests.
"""

import math

import numpy as np
import pytest

from repro.routing import IVAL, VAL, DimensionOrderRouting, RLB
from repro.topology import Torus
from repro.traffic import tornado, uniform

#: Algorithm factories available to the sim suites, by CLI-style name.
SIM_ALGORITHMS = {
    "DOR": DimensionOrderRouting,
    "VAL": VAL,
    "IVAL": IVAL,
    "RLB": RLB,
}


@pytest.fixture(scope="session")
def make_sim_case():
    """Factory: ``(k, alg_name, traffic_name) -> (torus, alg, traffic)``.

    Instances are cached for the whole session — a ``Torus`` is
    immutable, and reusing the algorithm objects lets the vectorized
    backend's per-algorithm compiled tables amortize across tests.
    """
    tori: dict[int, Torus] = {}
    algs: dict[tuple[int, str], object] = {}

    def _make(k: int, alg_name: str, traffic_name: str = "uniform"):
        torus = tori.setdefault(k, Torus(k, 2))
        key = (k, alg_name)
        if key not in algs:
            algs[key] = SIM_ALGORITHMS[alg_name](torus)
        traffic = {
            "uniform": lambda: uniform(torus.num_nodes),
            "tornado": lambda: tornado(torus),
        }[traffic_name]()
        return torus, algs[key], traffic

    return _make


@pytest.fixture(scope="module")
def t4():
    return Torus(4, 2)


@pytest.fixture(scope="module")
def dor4(t4):
    return DimensionOrderRouting(t4)


@pytest.fixture(scope="module")
def uniform4(t4):
    return uniform(t4.num_nodes)


@pytest.fixture(scope="module")
def tornado4(t4):
    return tornado(t4)


def assert_results_identical(a, b):
    """Field-by-field identity, treating NaN as equal to NaN.

    Plain dataclass ``==`` is false for any result with an empty
    measurement window (``nan != nan``), so determinism checks that
    must hold at *every* rate — including zero and far past
    saturation — compare through this helper instead.
    """
    import dataclasses

    for field in dataclasses.fields(a):
        x = getattr(a, field.name)
        y = getattr(b, field.name)
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y), field.name
        else:
            assert x == y, (field.name, x, y)


def assert_counts_equal(a, b):
    """Exact agreement on every packet count and derived count ratio.

    This is the hard differential bar: the two backends consume the
    same RNG stream, so delivered/injected/dropped/backlog/queue-peak
    and the accepted rate must match exactly, not approximately.
    """
    assert a.injected == b.injected
    assert a.delivered == b.delivered
    assert a.dropped == b.dropped
    assert a.lost == b.lost
    assert a.backlog == b.backlog
    assert a.backlog_growth == b.backlog_growth
    assert a.queue_peak == b.queue_peak
    assert a.accepted_rate == b.accepted_rate
    assert a.measurement_cycles == b.measurement_cycles
    assert a.stable == b.stable


def assert_latency_close(a, b, rel=1e-9):
    """Latency statistics agree within ``rel`` (or are both NaN).

    The backends deliver the *same packets at the same cycles*, so the
    latency samples are identical; only floating-point summation order
    may differ, hence a tight relative tolerance rather than equality.
    """
    for field in ("mean_latency", "p99_latency", "mean_hops"):
        x, y = getattr(a, field), getattr(b, field)
        if math.isnan(x) or math.isnan(y):
            assert math.isnan(x) and math.isnan(y), (field, x, y)
        else:
            assert x == pytest.approx(y, rel=rel), field


def assert_conservation(result):
    """Every injected packet is delivered, queued, dropped, or lost."""
    assert (
        result.injected
        == result.delivered + result.backlog + result.dropped + result.lost
    )


def relabel_traffic(traffic: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Apply a node relabeling to a traffic matrix."""
    return traffic[np.ix_(perm, perm)]
