"""Simulator tests: the output-queued model must reproduce the paper's
analytic saturation throughput (Section 2.1)."""

import numpy as np
import pytest

from repro.routing import DimensionOrderRouting, VAL
from repro.sim import (
    SimulationConfig,
    latency_load_curve,
    saturation_throughput,
    simulate,
)
from repro.topology import Torus
from repro.traffic import neighbor, tornado, uniform


class TestConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="injection_rate"):
            SimulationConfig(injection_rate=1.5)

    def test_warmup_validation(self):
        with pytest.raises(ValueError, match="warmup"):
            SimulationConfig(cycles=100, warmup=100)


class TestBasicRuns:
    def test_low_load_is_stable(self, dor4, uniform4):
        res = simulate(
            dor4,
            uniform4,
            SimulationConfig(cycles=1500, warmup=300, injection_rate=0.2, seed=1),
        )
        assert res.stable
        assert res.backlog < 30
        assert res.dropped == 0

    def test_latency_at_least_distance(self, dor4, uniform4):
        res = simulate(
            dor4,
            uniform4,
            SimulationConfig(cycles=1500, warmup=300, injection_rate=0.1, seed=2),
        )
        # latency >= path hops; mean hops ~ mean distance over off-diagonal
        assert res.mean_latency >= res.mean_hops >= 1.0

    def test_overload_is_unstable(self):
        # DOR under 8-ary tornado saturates analytically at 1/3 (every
        # +x channel carries 3 flows); offering 0.8 must blow up queues.
        t8 = Torus(8, 2)
        dor8 = DimensionOrderRouting(t8)
        res = simulate(
            dor8,
            tornado(t8),
            SimulationConfig(cycles=2000, warmup=500, injection_rate=0.8, seed=3),
        )
        assert not res.stable
        assert res.backlog > 100

    def test_deterministic_given_seed(self, dor4, uniform4):
        cfg = SimulationConfig(cycles=800, warmup=200, injection_rate=0.3, seed=7)
        a = simulate(dor4, uniform4, cfg)
        b = simulate(dor4, uniform4, cfg)
        assert a == b

    def test_finite_queues_drop(self, t4, tornado4):
        val = VAL(t4)
        res = simulate(
            val,
            tornado4,
            SimulationConfig(
                cycles=1500, warmup=300, injection_rate=0.9, seed=4,
                queue_capacity=4,
            ),
        )
        assert res.dropped > 0
        assert res.backlog <= 4 * t4.num_channels

    def test_neighbor_traffic_all_single_hop(self, t4, dor4):
        res = simulate(
            dor4,
            neighbor(t4),
            SimulationConfig(cycles=1000, warmup=200, injection_rate=0.5, seed=5),
        )
        assert res.mean_hops == pytest.approx(1.0)
        # single hop, no contention below rate 1: latency exactly 1
        assert res.mean_latency == pytest.approx(1.0)

    def test_fractional_bandwidth_supported(self):
        # non-integer bandwidths are discretized by the deterministic
        # token bucket (tests/sim/test_fractional_bandwidth.py)
        t = Torus(4, 2, bandwidth=1.5)
        dor = DimensionOrderRouting(t)
        res = simulate(
            dor, uniform(16), SimulationConfig(cycles=600, warmup=100, seed=1)
        )
        assert res.delivered > 0
        assert res.injected == res.delivered + res.backlog + res.dropped


class TestSaturation:
    def test_dor_uniform_saturation_matches_analytic(self, dor4, uniform4):
        # analytic: gamma_U(DOR, 4-ary) = 0.5 -> saturation at effective
        # offered load 1/0.5 = 2.0, unreachable (injection <= 1): stable
        # at every rate.
        est = saturation_throughput(dor4, uniform4, cycles=1500, warmup=400)
        assert est.lower == pytest.approx(1.0)

    def test_dor_tornado_saturation_matches_analytic(self, dor4, tornado4):
        # tornado on 4-ary: offset 1, every packet one +x hop... tornado
        # offset = ceil(4/2)-1 = 1: single-hop traffic, saturates at 1.0.
        est = saturation_throughput(dor4, tornado4, cycles=1500, warmup=400)
        assert est.lower == pytest.approx(1.0)

    def test_val_tornado_saturation_near_half(self, t4, tornado4):
        # VAL worst/every-case load = 2 * capacity load = 1.0 at k = 4;
        # Theta(VAL) = 1.0... use k=4 numbers: gamma(VAL) = 2 * (k/8) = 1.0
        # -> saturation 1.0. Hmm — instead verify against the analytic
        # value computed by the metrics layer, whatever it is.
        from repro.metrics.channel_load import canonical_max_load
        from repro.topology import TranslationGroup

        val = VAL(t4)
        lam = tornado4
        analytic = 1.0 / canonical_max_load(
            t4, TranslationGroup(t4), val.canonical_flows, lam
        )
        est = saturation_throughput(val, lam, cycles=2500, warmup=800)
        if analytic >= 1.0:
            assert est.lower >= 0.9
        else:
            assert est.lower <= analytic + 0.1
            assert est.upper >= analytic - 0.1


class TestLatencyLoadCurve:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_monotone_latency(self, dor4, uniform4, backend):
        curve = latency_load_curve(
            dor4,
            uniform4,
            [0.1, 0.5, 0.9],
            cycles=1200,
            warmup=300,
            backend=backend,
        )
        lats = [r.mean_latency for r in curve]
        assert lats[0] <= lats[1] <= lats[2]

    def test_offered_rate_accounts_for_diagonal(self, dor4, uniform4):
        (res,) = latency_load_curve(
            dor4, uniform4, [0.4], cycles=800, warmup=200
        )
        assert res.offered_rate == pytest.approx(0.4 * 15 / 16)

    def test_unknown_backend_rejected(self, dor4, uniform4):
        with pytest.raises(ValueError, match="unknown sim backend"):
            latency_load_curve(dor4, uniform4, [0.4], backend="cuda")
        with pytest.raises(ValueError, match="unknown sim backend"):
            simulate(dor4, uniform4, SimulationConfig(), backend="cuda")
