"""Tests for the saturation-bisection harness.

The bracket-semantics regression tests pin the fix for the early-exit
branches: every endpoint of a returned :class:`SaturationEstimate` must
have been *probed*, never assumed.  The obs-trace test pins the
one-compile-per-bracket contract the ``saturation_throughput``
docstring promises.
"""

import pytest

from repro import obs
from repro.routing import DimensionOrderRouting
from repro.sim import (
    latency_load_curve,
    saturation_throughput,
    saturation_throughput_batch,
    simulate,
)
from repro.sim.measure import SaturationEstimate
from repro.topology import Torus
from repro.traffic import tornado, uniform


class TestSaturationEstimate:
    def test_midpoint(self):
        est = SaturationEstimate(lower=0.4, upper=0.6)
        assert est.midpoint == pytest.approx(0.5)


class TestBisection:
    def test_bracket_ordering(self, dor4, tornado4):
        est = saturation_throughput(
            dor4, tornado4, iterations=3, cycles=1200, warmup=400
        )
        assert 0.0 <= est.lower <= est.upper <= 1.0

    @pytest.mark.parametrize("backend", ["reference", "compiled"])
    def test_backends_bisect_identically(self, dor4, tornado4, backend):
        kwargs = dict(iterations=3, cycles=1000, warmup=300, seed=9)
        vec = saturation_throughput(dor4, tornado4, backend="vectorized", **kwargs)
        other = saturation_throughput(dor4, tornado4, backend=backend, **kwargs)
        assert vec == other

    def test_invalid_bounds_and_probe_counts_rejected(self, dor4, tornado4):
        with pytest.raises(ValueError, match="lo"):
            saturation_throughput(dor4, tornado4, lo=0.6, hi=0.5)
        with pytest.raises(ValueError, match="probes_per_launch"):
            saturation_throughput(dor4, tornado4, probes_per_launch=0)
        with pytest.raises(ValueError, match="seeds"):
            saturation_throughput(dor4, tornado4, seeds=())


class TestBracketSemantics:
    """Both early-exit branches must return *probed* endpoints."""

    def test_unstable_at_floor_probes_below_lo(self):
        # DOR under 8-ary tornado saturates at 1/3, so a floor of 0.5 is
        # already unstable.  The fixed prober re-anchors at a probed
        # rate-0 run and refines inside [0, lo] — the buggy early exit
        # returned (0.0, 0.5) with neither endpoint ever simulated.
        t8 = Torus(8, 2)
        dor = DimensionOrderRouting(t8)
        est = saturation_throughput(
            dor, tornado(t8), lo=0.5, hi=1.0, iterations=1,
            cycles=1500, warmup=500,
        )
        assert 0.0 < est.lower < est.upper < 0.5
        # the true saturation point stays inside the observed bracket
        assert est.lower <= 1.0 / 3.0 <= est.upper

    def test_stable_at_hi_probes_above_hi(self):
        # Stable at hi=0.2 (well under 1/3): the fixed prober probes
        # rate 1.0 and refines inside [hi, 1] instead of returning an
        # unprobed upper endpoint of 1.0.
        t8 = Torus(8, 2)
        dor = DimensionOrderRouting(t8)
        est = saturation_throughput(
            dor, tornado(t8), lo=0.05, hi=0.2, iterations=1,
            cycles=1500, warmup=500,
        )
        assert 0.2 <= est.lower < est.upper < 1.0
        assert est.lower <= 1.0 / 3.0 <= est.upper

    def test_stable_at_one_is_the_degenerate_probed_bracket(self, t4):
        # DOR/uniform on the 4-ary 2-cube sustains full injection over a
        # short run: rate 1.0 itself is probed stable, so no unstable
        # rate exists and the bracket degenerates to (1.0, 1.0).
        dor = DimensionOrderRouting(t4)
        est = saturation_throughput(
            dor, uniform(t4.num_nodes), iterations=2, cycles=600, warmup=200
        )
        assert est.lower == est.upper == 1.0


class TestObsContract:
    def test_one_compile_span_per_bracket(self, t4, tornado4):
        # A fresh algorithm (cold simulator cache) bisecting a full
        # bracket must compile its path tables exactly once — the whole
        # point of batching the probes (docstring contract).
        dor = DimensionOrderRouting(t4)
        tracer = obs.get_tracer()
        mark = tracer.mark()
        saturation_throughput(
            dor, tornado4, iterations=3, cycles=800, warmup=250
        )
        events = tracer.events_since(mark)
        compiles = [
            e
            for e in events
            if e["ev"] == "span" and e["name"] == "sim.compile"
        ]
        assert len(compiles) == 1
        (sat,) = [
            e
            for e in events
            if e["ev"] == "span" and e["name"] == "sim.saturation"
        ]
        assert sat["attrs"]["launches"] >= 1
        assert sat["attrs"]["probes"] >= 2  # endpoints at minimum
        assert sat["attrs"]["lower"] <= sat["attrs"]["upper"]


class TestBatchedCases:
    def test_batch_matches_per_case_brackets(self, dor4, tornado4):
        cases = [
            ((), ()),
            (((0, 1), (0, 2)), ()),
            ((), ((0, 3, "down"), (400, 3, "up"))),
        ]
        kwargs = dict(iterations=2, cycles=800, warmup=250, seed=4)
        batch = saturation_throughput_batch(dor4, tornado4, cases, **kwargs)
        assert len(batch) == len(cases)
        for (fs, ls), est in zip(cases, batch):
            solo = saturation_throughput(
                dor4, tornado4, fault_schedule=fs, link_schedule=ls, **kwargs
            )
            assert est == solo


class TestEnsemblesAndSchedules:
    def test_seed_ensemble_backend_independent(self, dor4, tornado4):
        kwargs = dict(
            iterations=2, cycles=800, warmup=250, seeds=(0, 1, 2)
        )
        vec = saturation_throughput(dor4, tornado4, backend="vectorized", **kwargs)
        ref = saturation_throughput(dor4, tornado4, backend="reference", **kwargs)
        assert vec == ref

    def test_curve_seed_ensemble_shape_and_identity(self, dor4, uniform4):
        rates = [0.2, 0.5]
        seeds = (3, 4, 5)
        nested = latency_load_curve(
            dor4, uniform4, rates, cycles=400, warmup=150, seeds=seeds
        )
        assert [len(row) for row in nested] == [3, 3]
        for i, rate in enumerate(rates):
            for j, seed in enumerate(seeds):
                assert nested[i][j].injection_rate == rate
                solo = latency_load_curve(
                    dor4, uniform4, [rate], cycles=400, warmup=150, seed=seed
                )
                assert nested[i][j] == solo[0]

    def test_curve_fault_schedule_reaches_every_replica(
        self, dor4, uniform4
    ):
        from repro.sim import SimulationConfig

        fs = ((0, 1), (100, 5))
        (result,) = latency_load_curve(
            dor4, uniform4, [0.6], cycles=400, warmup=150, seed=8,
            fault_schedule=fs,
        )
        assert result.lost > 0
        ref = simulate(
            dor4,
            uniform4,
            SimulationConfig(
                cycles=400, warmup=150, injection_rate=0.6, seed=8,
                fault_schedule=fs,
            ),
            backend="reference",
        )
        assert result == ref
