"""Tests for the saturation-bisection harness."""

import pytest

from repro.routing import DimensionOrderRouting
from repro.sim import saturation_throughput
from repro.sim.measure import SaturationEstimate
from repro.topology import Torus
from repro.traffic import tornado


class TestSaturationEstimate:
    def test_midpoint(self):
        est = SaturationEstimate(lower=0.4, upper=0.6)
        assert est.midpoint == pytest.approx(0.5)


class TestBisection:
    def test_unstable_at_floor_returns_zero_bracket(self):
        # DOR under 8-ary tornado saturates at 1/3; a floor of 0.5 is
        # already unstable, so the bracket collapses to [0, lo].
        t8 = Torus(8, 2)
        dor = DimensionOrderRouting(t8)
        est = saturation_throughput(
            dor, tornado(t8), lo=0.5, hi=1.0, iterations=1,
            cycles=1500, warmup=500,
        )
        assert est.lower == 0.0
        assert est.upper == 0.5

    def test_bracket_ordering(self, dor4, tornado4):
        est = saturation_throughput(
            dor4, tornado4, iterations=3, cycles=1200, warmup=400
        )
        assert 0.0 <= est.lower <= est.upper <= 1.0

    def test_backends_bisect_identically(self, dor4, tornado4):
        kwargs = dict(iterations=3, cycles=1000, warmup=300, seed=9)
        ref = saturation_throughput(dor4, tornado4, backend="reference", **kwargs)
        vec = saturation_throughput(dor4, tornado4, backend="vectorized", **kwargs)
        assert ref == vec
