"""Property tests for the vectorized simulation kernel.

Hypothesis drives radices, seeds, rates and capacities (bounded so the
``ci`` profile stays time-boxed) through three invariants:

* **Determinism** — the kernel's only entropy source is the seeded
  generator, so the same configuration twice yields an identical
  result document.
* **Translation invariance** — relabeling the nodes by a torus
  translation maps a translation-invariant routing algorithm onto
  itself, so accepted throughput on a relabeled pattern matches the
  original up to Bernoulli noise (the RNG-to-node assignment changes,
  so this is a statistical bound, not an exact one).
* **Conservation** — every packet that entered the network is, at any
  stopping point, delivered, still queued, or dropped.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import DimensionOrderRouting
from repro.sim import SimulationConfig, simulate, simulate_vectorized
from repro.topology import Torus
from repro.traffic import transpose, uniform
from tests.sim.conftest import (
    assert_conservation,
    assert_results_identical,
    relabel_traffic,
)

_tori = {k: Torus(k, 2) for k in (3, 4, 5)}
_algs = {k: DimensionOrderRouting(t) for k, t in _tori.items()}


def _config(seed, rate, capacity=None, cycles=300):
    return SimulationConfig(
        cycles=cycles,
        warmup=100,
        injection_rate=rate,
        seed=seed,
        queue_capacity=capacity,
    )


class TestDeterminism:
    @settings(max_examples=20)
    @given(
        k=st.sampled_from([3, 4, 5]),
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.0, max_value=1.0),
        capacity=st.sampled_from([None, 2]),
    )
    def test_same_seed_same_stats_doc(self, k, seed, rate, capacity):
        alg, traffic = _algs[k], uniform(_tori[k].num_nodes)
        config = _config(seed, rate, capacity)
        first = simulate_vectorized(alg, traffic, config)
        second = simulate_vectorized(alg, traffic, config)
        assert_results_identical(first, second)


class TestTranslationInvariance:
    @settings(max_examples=10)
    @given(
        k=st.sampled_from([3, 4]),
        shift=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_relabeled_pattern_same_throughput(self, k, shift, seed):
        # DOR is translation invariant and transpose traffic is not, so
        # relabeling by a torus translation permutes the pattern while
        # preserving the load every channel sees — accepted throughput
        # must agree up to injection noise.  The rate sits well below
        # saturation so both runs accept essentially all offered load.
        torus, alg = _tori[k], _algs[k]
        nodes = np.arange(torus.num_nodes)
        perm = torus.add_nodes(nodes, shift % torus.num_nodes)
        traffic = transpose(torus)
        relabeled = relabel_traffic(traffic, perm)
        a = simulate_vectorized(alg, traffic, _config(seed, 0.3))
        b = simulate_vectorized(alg, relabeled, _config(seed, 0.3))
        assert a.accepted_rate == pytest.approx(b.accepted_rate, abs=0.05)
        assert a.stable and b.stable

    def test_uniform_traffic_is_relabeling_fixed_point(self):
        # On uniform traffic relabeling is the identity on the matrix,
        # so invariance of the full result document is exact.
        torus, alg = _tori[4], _algs[4]
        traffic = uniform(torus.num_nodes)
        perm = torus.add_nodes(np.arange(torus.num_nodes), 5)
        relabeled = relabel_traffic(traffic, perm)
        a = simulate_vectorized(alg, traffic, _config(7, 0.4))
        b = simulate_vectorized(alg, relabeled, _config(7, 0.4))
        assert a == b


class TestConservation:
    @settings(max_examples=20)
    @given(
        k=st.sampled_from([3, 4, 5]),
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.05, max_value=1.0),
        capacity=st.sampled_from([None, 1, 3]),
    )
    def test_injected_accounted_for(self, k, seed, rate, capacity):
        alg, traffic = _algs[k], uniform(_tori[k].num_nodes)
        config = _config(seed, rate, capacity)
        assert_conservation(simulate_vectorized(alg, traffic, config))

    @settings(max_examples=5)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_reference_backend_conserves_too(self, seed):
        config = _config(seed, 0.8, capacity=2)
        assert_conservation(
            simulate(
                _algs[4],
                uniform(_tori[4].num_nodes),
                config,
                backend="reference",
            )
        )

    def test_drained_run_delivers_everything(self):
        # With injection only during warmup... not expressible directly;
        # instead: a stable low-rate run ends nearly drained, and the
        # identity still splits injected into the three sinks exactly.
        result = simulate_vectorized(
            _algs[3], uniform(_tori[3].num_nodes), _config(1, 0.1, cycles=600)
        )
        assert_conservation(result)
        assert result.delivered >= result.injected - result.backlog
