"""Draw-for-draw differential under periodic rotor schedules.

The same pinning discipline as ``test_faults.py``: link up/down events
are RNG-free (queues are preserved, service budgets masked), so the
reference and vectorized backends must report *exactly* identical
counts on any periodic schedule — k in {3, 4} x {VLB-on-rotor, ORN,
DOR-on-a-static-phase} x rates straddling saturation.

The Hypothesis classes add the rotor property obligations: extended
conservation under arbitrary appearing/disappearing schedules, and
period-shift invariance (rotating the schedule by a whole period is
the identity on every count).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rotor import ORNRouting, RotorSchedule, VLBOnRotor
from repro.sim import SimulationConfig, simulate, simulate_vectorized
from repro.traffic import uniform
from tests.sim.conftest import (
    assert_conservation,
    assert_counts_equal,
    assert_latency_close,
)

#: below and above the rotor fabrics' empirical saturation points
RATES = (0.4, 1.0)


def _rotor_case(k: int, scheme: str):
    """(algorithm, traffic, schedule) for one differential case."""
    sched = RotorSchedule.round_robin(k**2, 2, phase_length=3)
    if scheme == "VLBR":
        alg = VLBOnRotor(sched.base)
    else:
        alg = ORNRouting(sched.base, k=k)
    return alg, uniform(k**2), sched


def _config(rate: float, link_schedule=(), **kw):
    base = dict(
        cycles=300,
        warmup=100,
        injection_rate=rate,
        seed=17,
        link_schedule=link_schedule,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestRotorDifferential:
    @pytest.mark.parametrize("rate", RATES)
    @pytest.mark.parametrize("scheme", ["VLBR", "ORN"])
    @pytest.mark.parametrize("k", [3, 4])
    def test_backends_identical_on_rotor(self, k, scheme, rate):
        alg, traffic, sched = _rotor_case(k, scheme)
        config = _config(rate, link_schedule=sched.link_events(300))
        ref = simulate(alg, traffic, config, backend="reference")
        vec = simulate_vectorized(alg, traffic, config)
        assert ref.lost == 0  # rotor downs buffer, never destroy
        assert_counts_equal(ref, vec)
        assert_latency_close(ref, vec)

    @pytest.mark.parametrize("rate", RATES)
    @pytest.mark.parametrize("k", [3, 4])
    def test_backends_identical_dor_static_phase(self, k, rate, make_sim_case):
        # DOR on the torus under the degenerate static schedule: the
        # compiled link_schedule is empty and must change nothing.
        torus, alg, traffic = make_sim_case(k, "DOR")
        static = RotorSchedule.static(torus)
        assert static.link_events(300) == ()
        config = _config(rate, link_schedule=static.link_events(300))
        ref = simulate(alg, traffic, config, backend="reference")
        vec = simulate_vectorized(alg, traffic, config)
        assert_counts_equal(ref, vec)
        assert_latency_close(ref, vec)
        clean = simulate_vectorized(alg, traffic, _config(rate))
        assert_counts_equal(vec, clean)

    def test_rotor_and_faults_compose(self, make_sim_case):
        # a channel killed mid-run while the rotor cycles: kills win
        # (dead stays dead through later "up" events) in both backends
        torus, alg, traffic = make_sim_case(3, "DOR")
        sched = RotorSchedule(
            base=torus,
            phases=(
                tuple(range(torus.num_channels)),
                tuple(range(0, torus.num_channels, 2)) or (0,),
            ),
            phase_length=4,
        )
        config = _config(
            0.6,
            link_schedule=sched.link_events(300),
            fault_schedule=((60, 1),),
        )
        ref = simulate(alg, traffic, config, backend="reference")
        vec = simulate_vectorized(alg, traffic, config)
        assert ref.lost > 0
        assert_counts_equal(ref, vec)
        assert_latency_close(ref, vec)


class TestConservationUnderSchedules:
    """Extended conservation must survive *arbitrary* appear/disappear
    schedules — not just well-formed rotor rotations."""

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.sampled_from([3, 4]),
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.05, max_value=1.0),
        capacity=st.sampled_from([None, 2]),
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=299),
                st.integers(min_value=0, max_value=35),
                st.sampled_from(["down", "up"]),
            ),
            max_size=6,
            unique_by=lambda e: (e[0], e[1]),
        ),
    )
    def test_both_backends_conserve_identically(
        self, k, seed, rate, capacity, schedule, make_sim_case
    ):
        _, alg, traffic = make_sim_case(k, "DOR")
        num_channels = alg.network.num_channels
        config = SimulationConfig(
            cycles=300,
            warmup=100,
            injection_rate=rate,
            seed=seed,
            queue_capacity=capacity,
            link_schedule=tuple(
                (cyc, chan % num_channels, act) for cyc, chan, act in schedule
            ),
        )
        ref = simulate(alg, traffic, config, backend="reference")
        vec = simulate_vectorized(alg, traffic, config)
        assert ref.lost == 0  # no kills in play: downs are lossless
        assert_conservation(ref)
        assert_conservation(vec)
        assert_counts_equal(ref, vec)


class TestPeriodShiftInvariance:
    """Rotating the schedule by a whole period is the identity: the
    phase sequence, the compiled link events, and therefore every
    simulated count are unchanged."""

    @settings(max_examples=25, deadline=None)
    @given(
        phases=st.integers(min_value=1, max_value=4),
        phase_length=st.integers(min_value=1, max_value=5),
        start=st.integers(min_value=0, max_value=30),
        periods=st.integers(min_value=1, max_value=3),
    )
    def test_link_events_invariant(self, phases, phase_length, start, periods):
        sched = RotorSchedule.round_robin(9, phases, phase_length=phase_length)
        a = RotorSchedule(
            base=sched.base,
            phases=sched.phases,
            phase_length=phase_length,
            start=start,
        )
        b = RotorSchedule(
            base=sched.base,
            phases=sched.phases,
            phase_length=phase_length,
            start=start + periods * sched.period,
        )
        assert a.phase_at(0) == b.phase_at(0)
        assert a.link_events(120) == b.link_events(120)
        assert a.digest() == b.digest()

    @pytest.mark.parametrize("start", [0, 2])
    def test_simulated_counts_invariant(self, start):
        sched = RotorSchedule.round_robin(9, 3, phase_length=2)
        alg = VLBOnRotor(sched.base)
        traffic = uniform(9)
        results = []
        for s in (start, start + sched.period):
            shifted = RotorSchedule(
                base=sched.base,
                phases=sched.phases,
                phase_length=2,
                start=s,
            )
            config = _config(0.7, link_schedule=shifted.link_events(300))
            results.append(simulate_vectorized(alg, traffic, config))
        assert_counts_equal(results[0], results[1])
        assert_latency_close(results[0], results[1])
