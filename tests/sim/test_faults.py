"""Fault injection in the simulator: config surface, loss accounting,
and the reference/vectorized differential under channel kills.

The ordering contract both backends implement (and the differential
pins): kills happen at the start of the named cycle — packets queued on
a dying channel become ``lost`` immediately — and any packet injected
on, or forwarded onto, a dead channel is lost *before* it competes for
queue capacity.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SimulationConfig, simulate, simulate_vectorized
from repro.traffic import uniform
from tests.sim.conftest import (
    assert_conservation,
    assert_counts_equal,
    assert_latency_close,
)


def _config(**kw):
    base = dict(cycles=400, warmup=120, injection_rate=0.6, seed=9)
    base.update(kw)
    return SimulationConfig(**base)


class TestConfigSurface:
    def test_schedule_normalized_sorted_unique(self):
        config = _config(
            fault_schedule=[(50, 3), (10, 1), (50, 3), (20, 0)]
        )
        assert config.fault_schedule == ((10, 1), (20, 0), (50, 3))

    @pytest.mark.parametrize("entry", [(-1, 0), (5, -2)])
    def test_negative_entries_rejected(self, entry):
        with pytest.raises(ValueError, match="nonnegative"):
            _config(fault_schedule=(entry,))

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_out_of_range_channel_rejected(
        self, backend, make_sim_case
    ):
        torus, alg, traffic = make_sim_case(3, "DOR")
        config = _config(fault_schedule=((10, torus.num_channels),))
        with pytest.raises(ValueError, match="out of range"):
            simulate(alg, traffic, config, backend=backend)


class TestLossAccounting:
    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_kill_loses_packets_and_conserves(self, backend, make_sim_case):
        _, alg, traffic = make_sim_case(4, "DOR")
        config = _config(fault_schedule=((150, 0), (200, 5)))
        result = simulate(alg, traffic, config, backend=backend)
        assert result.lost > 0
        assert_conservation(result)

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_fault_at_or_past_end_rejected(self, backend, make_sim_case):
        # Regression: an event at or past ``cycles`` used to be a silent
        # no-op — the run quietly simulated the pristine network.
        _, alg, traffic = make_sim_case(3, "DOR")
        with pytest.raises(ValueError, match="at or past the end"):
            simulate(
                alg,
                traffic,
                _config(fault_schedule=((400, 0),)),
                backend=backend,
            )

    def test_late_event_error_identical_across_entry_points(
        self, make_sim_case
    ):
        # Config construction and the direct vectorized sweep path share
        # one validator, so the error text is character-identical.
        _, alg, traffic = make_sim_case(3, "DOR")
        from repro.sim.vectorized import sweep_vectorized

        with pytest.raises(ValueError) as via_config:
            _config(fault_schedule=((401, 0),))
        with pytest.raises(ValueError) as via_sweep:
            sweep_vectorized(
                alg,
                traffic,
                [0.6],
                cycles=400,
                warmup=120,
                fault_schedule=((401, 0),),
            )
        assert str(via_config.value) == str(via_sweep.value)

    def test_no_faults_means_no_losses(self, make_sim_case):
        _, alg, traffic = make_sim_case(4, "VAL")
        result = simulate_vectorized(alg, traffic, _config())
        assert result.lost == 0
        assert_conservation(result)

    def test_deterministic_under_faults(self, make_sim_case):
        _, alg, traffic = make_sim_case(4, "IVAL")
        config = _config(fault_schedule=((130, 2), (260, 9)))
        a = simulate_vectorized(alg, traffic, config)
        b = simulate_vectorized(alg, traffic, config)
        assert a == b


class TestDifferentialUnderFaults:
    """ISSUE.md part 3: the two backends must agree *exactly* under
    fault schedules — same lost counts, same everything."""

    @pytest.mark.parametrize("alg_name", ["DOR", "VAL", "IVAL"])
    def test_backends_identical(self, alg_name, make_sim_case):
        _, alg, traffic = make_sim_case(4, alg_name)
        config = _config(
            cycles=500,
            fault_schedule=((100, 0), (100, 7), (250, 3)),
        )
        ref = simulate(alg, traffic, config, backend="reference")
        vec = simulate_vectorized(alg, traffic, config)
        assert ref.lost > 0
        assert_counts_equal(ref, vec)
        assert_latency_close(ref, vec)

    def test_capacity_drops_and_faults_together(self, make_sim_case):
        _, alg, traffic = make_sim_case(4, "DOR")
        config = _config(
            injection_rate=0.9,
            queue_capacity=2,
            fault_schedule=((150, 4), (300, 11)),
        )
        ref = simulate(alg, traffic, config, backend="reference")
        vec = simulate_vectorized(alg, traffic, config)
        assert ref.dropped > 0 and ref.lost > 0
        assert_counts_equal(ref, vec)
        assert_latency_close(ref, vec)

    def test_kill_during_warmup(self, make_sim_case):
        _, alg, traffic = make_sim_case(3, "DOR")
        config = _config(fault_schedule=((40, 1),))
        ref = simulate(alg, traffic, config, backend="reference")
        vec = simulate_vectorized(alg, traffic, config)
        assert_counts_equal(ref, vec)
        assert_latency_close(ref, vec)


class TestConservationProperty:
    """ISSUE.md acceptance: the extended conservation invariant
    ``injected == delivered + backlog + dropped + lost`` holds as a
    Hypothesis property in both backends, with identical per-run
    counts."""

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.sampled_from([3, 4]),
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.05, max_value=1.0),
        capacity=st.sampled_from([None, 2]),
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=299),
                st.integers(min_value=0, max_value=35),
            ),
            max_size=4,
        ),
    )
    def test_both_backends_conserve_identically(
        self, k, seed, rate, capacity, schedule, make_sim_case
    ):
        _, alg, traffic = make_sim_case(k, "DOR")
        num_channels = alg.network.num_channels
        config = SimulationConfig(
            cycles=300,
            warmup=100,
            injection_rate=rate,
            seed=seed,
            queue_capacity=capacity,
            fault_schedule=tuple(
                (cyc, chan % num_channels) for cyc, chan in schedule
            ),
        )
        ref = simulate(alg, traffic, config, backend="reference")
        vec = simulate_vectorized(alg, traffic, config)
        assert_conservation(ref)
        assert_conservation(vec)
        assert_counts_equal(ref, vec)


class TestResultSurface:
    def test_lost_field_defaults_to_zero(self):
        from repro.sim import SimulationResult

        fields = {f.name for f in dataclasses.fields(SimulationResult)}
        assert "lost" in fields
