"""Differential equivalence: vectorized kernel vs. reference simulator.

The vectorized backend replays the reference's exact stochastic process
(same seeded RNG stream, same deterministic arbitration), so for any
seed/topology/traffic/rate the two must agree *exactly* on every packet
count and accepted-throughput ratio; latency statistics are compared
within a tight relative tolerance (the delivered packets — and hence
the latency samples — are identical, only float summation order may
differ).  Cases span k in {3, 4}, all four oblivious algorithms, and
rates below and above saturation.
"""

import pytest

from repro.sim import SimulationConfig, simulate, simulate_vectorized
from repro.sim.vectorized import sweep_vectorized
from tests.sim.conftest import (
    SIM_ALGORITHMS,
    assert_counts_equal,
    assert_latency_close,
)

#: Rates straddling saturation for the adversarial patterns (tornado
#: saturates DOR at 1/3 on larger tori; 0.9 overloads every algorithm
#: somewhere in the case grid).
RATES = (0.15, 0.9)


def _run_both(alg, traffic, rate, seed, cycles=400, warmup=150, capacity=None):
    config = SimulationConfig(
        cycles=cycles,
        warmup=warmup,
        injection_rate=rate,
        seed=seed,
        queue_capacity=capacity,
    )
    ref = simulate(alg, traffic, config, backend="reference")
    vec = simulate_vectorized(alg, traffic, config)
    return ref, vec


class TestBackendEquivalence:
    @pytest.mark.parametrize("k", [3, 4])
    @pytest.mark.parametrize("alg_name", sorted(SIM_ALGORITHMS))
    @pytest.mark.parametrize("traffic_name", ["uniform", "tornado"])
    @pytest.mark.parametrize("rate", RATES)
    def test_counts_exact_and_latency_close(
        self, make_sim_case, k, alg_name, traffic_name, rate
    ):
        _, alg, traffic = make_sim_case(k, alg_name, traffic_name)
        ref, vec = _run_both(alg, traffic, rate, seed=17)
        assert_counts_equal(ref, vec)
        assert_latency_close(ref, vec)

    def test_full_result_equality_below_saturation(self, make_sim_case):
        # Below saturation with a single-path algorithm the results are
        # equal as dataclasses, not merely field-by-field close.
        _, alg, traffic = make_sim_case(4, "DOR", "uniform")
        ref, vec = _run_both(alg, traffic, 0.3, seed=23, cycles=800, warmup=200)
        assert ref == vec

    @pytest.mark.parametrize("capacity", [1, 3])
    def test_finite_queue_drops_match(self, make_sim_case, capacity):
        _, alg, traffic = make_sim_case(4, "IVAL", "tornado")
        ref, vec = _run_both(
            alg, traffic, 1.0, seed=29, capacity=capacity
        )
        assert ref.dropped > 0  # the case must actually exercise drops
        assert_counts_equal(ref, vec)
        assert_latency_close(ref, vec)

    @pytest.mark.parametrize("seed", [0, 1, 2003])
    def test_seed_sensitivity_tracks(self, make_sim_case, seed):
        _, alg, traffic = make_sim_case(3, "VAL", "tornado")
        ref, vec = _run_both(alg, traffic, 0.5, seed=seed)
        assert_counts_equal(ref, vec)
        assert_latency_close(ref, vec)


class TestBatchedSweep:
    def test_sweep_matches_individual_runs(self, make_sim_case):
        # The batched multi-rate loop must be a pure repackaging: each
        # rate's replica consumes its own RNG stream exactly as a
        # standalone run does.
        _, alg, traffic = make_sim_case(4, "IVAL", "uniform")
        rates = [0.1, 0.4, 0.7, 1.0]
        batched = sweep_vectorized(
            alg, traffic, rates, cycles=400, warmup=150, seed=11
        )
        for rate, got in zip(rates, batched):
            ref = simulate(
                alg,
                traffic,
                SimulationConfig(
                    cycles=400, warmup=150, injection_rate=rate, seed=11
                ),
                backend="reference",
            )
            assert_counts_equal(ref, got)
            assert_latency_close(ref, got)

    def test_sweep_order_does_not_matter(self, make_sim_case):
        _, alg, traffic = make_sim_case(3, "RLB", "tornado")
        fwd = sweep_vectorized(
            alg, traffic, [0.2, 0.8], cycles=300, warmup=100, seed=5
        )
        rev = sweep_vectorized(
            alg, traffic, [0.8, 0.2], cycles=300, warmup=100, seed=5
        )
        assert fwd[0] == rev[1]
        assert fwd[1] == rev[0]
