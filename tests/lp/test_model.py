"""Unit tests for the LP modelling layer."""

import math

import numpy as np
import pytest

from repro.lp import LinearModel, LPError


class TestVariables:
    def test_block_indexing(self):
        m = LinearModel()
        x = m.add_variables("x", (3, 4))
        assert x.size == 12
        assert x.index(1, 2) == 6
        assert m.num_variables == 12

    def test_multiple_blocks_offset(self):
        m = LinearModel()
        x = m.add_variables("x", 5)
        y = m.add_variables("y", (2, 2))
        assert y.offset == 5
        assert y.index(1, 1) == 5 + 3

    def test_block_lookup(self):
        m = LinearModel()
        x = m.add_variables("x", 2)
        assert m.block("x") is x

    def test_duplicate_name_rejected(self):
        m = LinearModel()
        m.add_variables("x", 2)
        with pytest.raises(ValueError, match="already exists"):
            m.add_variables("x", 3)

    def test_bad_shape_rejected(self):
        m = LinearModel()
        with pytest.raises(ValueError, match="non-positive"):
            m.add_variables("x", (2, 0))

    def test_indices_shape(self):
        m = LinearModel()
        x = m.add_variables("x", (2, 3))
        assert x.indices().shape == (2, 3)
        assert x.indices()[1, 0] == 3


class TestSolve:
    def test_simple_min(self):
        # min x0 + 2 x1  s.t.  x0 + x1 >= 1, x >= 0
        m = LinearModel()
        x = m.add_variables("x", 2)
        m.add_ge(x.indices(), [1.0, 1.0], 1.0)
        m.set_objective(x.indices(), [1.0, 2.0])
        sol = m.solve()
        assert sol.objective == pytest.approx(1.0)
        assert sol[x][0] == pytest.approx(1.0)
        assert sol[x][1] == pytest.approx(0.0)

    def test_equality_constraint(self):
        m = LinearModel()
        x = m.add_variables("x", 2)
        m.add_eq(x.indices(), [1.0, 1.0], 2.0)
        m.set_objective(x.indices(), [3.0, 1.0])
        sol = m.solve()
        assert sol.objective == pytest.approx(2.0)
        assert sol[x][1] == pytest.approx(2.0)

    def test_le_constraint_and_maximization_via_negation(self):
        # max x  s.t. x <= 4  ==  min -x
        m = LinearModel()
        x = m.add_variables("x", 1)
        m.add_le(x.indices(), [1.0], 4.0)
        m.set_objective(x.indices(), [-1.0])
        sol = m.solve()
        assert sol[x][0] == pytest.approx(4.0)

    def test_free_variables(self):
        m = LinearModel()
        x = m.add_variables("x", 1, lb=-math.inf)
        m.add_ge(x.indices(), [1.0], -5.0)
        m.set_objective(x.indices(), [1.0])
        sol = m.solve()
        assert sol[x][0] == pytest.approx(-5.0)

    def test_infeasible_raises(self):
        m = LinearModel()
        x = m.add_variables("x", 1)
        m.add_le(x.indices(), [1.0], -1.0)  # x <= -1 with x >= 0
        m.set_objective(x.indices(), [1.0])
        with pytest.raises(LPError) as err:
            m.solve()
        assert err.value.status == 2

    def test_unbounded_raises(self):
        m = LinearModel()
        x = m.add_variables("x", 1)
        m.set_objective(x.indices(), [-1.0])
        with pytest.raises(LPError):
            m.solve()

    def test_batch_rows(self):
        # x_i >= i for i in 0..3, min sum x
        m = LinearModel()
        x = m.add_variables("x", 4)
        rows = np.arange(4)
        m.add_ge_batch(rows, x.indices(), np.ones(4), np.arange(4, dtype=float))
        m.set_objective(x.indices(), np.ones(4))
        sol = m.solve()
        assert np.allclose(sol[x], [0, 1, 2, 3])

    def test_eq_batch(self):
        m = LinearModel()
        x = m.add_variables("x", (2, 2))
        # row sums equal 1
        rows = np.repeat(np.arange(2), 2)
        cols = x.indices().ravel()
        m.add_eq_batch(rows, cols, np.ones(4), np.ones(2))
        m.set_objective(cols, [1.0, 2.0, 2.0, 1.0])
        sol = m.solve()
        assert sol.objective == pytest.approx(2.0)
        assert sol[x].sum(axis=1) == pytest.approx([1.0, 1.0])

    def test_fix_variables(self):
        m = LinearModel()
        x = m.add_variables("x", 2)
        m.fix_variables(x.index(0), 3.0)
        m.add_ge(x.indices(), [1.0, 1.0], 5.0)
        m.set_objective(x.indices(), [1.0, 1.0])
        sol = m.solve()
        assert sol[x][0] == pytest.approx(3.0)
        assert sol[x][1] == pytest.approx(2.0)

    def test_set_bounds(self):
        m = LinearModel()
        x = m.add_variables("x", 2)
        m.set_bounds(x, lb=1.0, ub=2.0)
        m.set_objective(x.indices(), [1.0, 1.0])
        sol = m.solve()
        assert np.allclose(sol[x], [1.0, 1.0])

    def test_duals_of_tight_constraint(self):
        # min x s.t. x >= 3: dual of the (converted <=) row is -1.
        m = LinearModel()
        x = m.add_variables("x", 1)
        m.add_ge(x.indices(), [1.0], 3.0)
        m.set_objective(x.indices(), [1.0])
        sol = m.solve()
        assert sol.ub_duals is not None
        assert sol.ub_duals[0] == pytest.approx(-1.0)

    def test_value_helper(self):
        m = LinearModel()
        x = m.add_variables("x", 2)
        m.add_eq(x.indices(), [1.0, 1.0], 3.0)
        m.set_objective(x.indices(), [1.0, 2.0])
        sol = m.solve()
        assert sol.value(x.indices(), [1.0, 1.0]) == pytest.approx(3.0)


class TestValidation:
    def test_column_out_of_range(self):
        m = LinearModel()
        m.add_variables("x", 2)
        with pytest.raises(ValueError, match="out of range"):
            m.add_le([5], [1.0], 1.0)

    def test_shape_mismatch(self):
        m = LinearModel()
        x = m.add_variables("x", 3)
        with pytest.raises(ValueError, match="mismatch"):
            m.add_le(x.indices(), [1.0, 2.0], 1.0)

    def test_batch_row_out_of_range(self):
        m = LinearModel()
        x = m.add_variables("x", 2)
        with pytest.raises(ValueError, match="row index"):
            m.add_le_batch([0, 3], x.indices(), [1.0, 1.0], [1.0])

    def test_scalar_val_broadcast(self):
        m = LinearModel()
        x = m.add_variables("x", 3)
        m.add_eq(x.indices(), [1.0], 6.0)  # broadcasts to all-ones row
        m.set_objective(x.indices(), [1.0])
        sol = m.solve()
        assert sol.objective == pytest.approx(6.0)

    def test_stats(self):
        m = LinearModel("demo")
        x = m.add_variables("x", 3)
        m.add_eq(x.indices(), np.ones(3), 1.0)
        m.add_le(x.indices()[:2], np.ones(2), 1.0)
        s = m.stats()
        assert s == {
            "name": "demo",
            "variables": 3,
            "eq_rows": 1,
            "ub_rows": 1,
            "nonzeros": 5,
        }
