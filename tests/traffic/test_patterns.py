"""Unit tests for classic traffic patterns."""

import numpy as np
import pytest

from repro.topology import Torus
from repro.traffic import (
    bit_reverse,
    complement,
    named_patterns,
    neighbor,
    permutation_matrix,
    shuffle,
    tornado,
    transpose,
    uniform,
    validate_doubly_stochastic,
)


@pytest.fixture(scope="module")
def t8():
    return Torus(8, 2)


class TestUniform:
    def test_doubly_stochastic(self):
        validate_doubly_stochastic(uniform(16))

    def test_entries(self):
        u = uniform(4)
        assert np.allclose(u, 0.25)


class TestPermutationMatrix:
    def test_valid(self):
        m = permutation_matrix([1, 2, 0])
        validate_doubly_stochastic(m)
        assert m[0, 1] == 1.0

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="not a permutation"):
            permutation_matrix([0, 0, 1])


class TestCoordinatePatterns:
    def test_transpose_mapping(self, t8):
        m = transpose(t8)
        s = t8.node_at([2, 5])
        d = t8.node_at([5, 2])
        assert m[s, d] == 1.0
        validate_doubly_stochastic(m)

    def test_transpose_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            transpose(Torus(4, 1))

    def test_tornado_offset(self, t8):
        m = tornado(t8)
        s = t8.node_at([1, 3])
        d = t8.node_at([(1 + 3) % 8, 3])  # ceil(8/2)-1 = 3 hops in x
        assert m[s, d] == 1.0

    def test_tornado_odd_radix(self):
        t = Torus(5, 2)
        m = tornado(t)
        d = t.node_at([2, 0])  # ceil(5/2)-1 = 2
        assert m[0, d] == 1.0

    def test_complement(self, t8):
        m = complement(t8)
        s = t8.node_at([0, 0])
        d = t8.node_at([7, 7])
        assert m[s, d] == 1.0

    def test_neighbor(self, t8):
        m = neighbor(t8, dim=1)
        s = t8.node_at([3, 7])
        d = t8.node_at([3, 0])
        assert m[s, d] == 1.0

    @pytest.mark.parametrize(
        "pattern", [transpose, tornado, complement, neighbor]
    )
    def test_all_doubly_stochastic(self, t8, pattern):
        validate_doubly_stochastic(pattern(t8))


class TestBitPatterns:
    def test_bit_reverse(self):
        m = bit_reverse(8)
        assert m[1, 4] == 1.0  # 001 -> 100
        assert m[3, 6] == 1.0  # 011 -> 110
        validate_doubly_stochastic(m)

    def test_bit_reverse_involution(self):
        m = bit_reverse(16)
        assert np.allclose(m @ m, np.eye(16))

    def test_shuffle(self):
        m = shuffle(8)
        assert m[1, 2] == 1.0  # 001 -> 010
        assert m[4, 1] == 1.0  # 100 -> 001
        validate_doubly_stochastic(m)

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power of 2"):
            bit_reverse(12)
        with pytest.raises(ValueError, match="power of 2"):
            shuffle(9)


class TestNamedSuite:
    def test_suite_for_8ary(self, t8):
        suite = named_patterns(t8)
        assert set(suite) == {
            "uniform",
            "transpose",
            "tornado",
            "complement",
            "neighbor",
            "bit_reverse",
            "shuffle",
        }
        for mat in suite.values():
            validate_doubly_stochastic(mat)

    def test_suite_without_pow2(self):
        suite = named_patterns(Torus(5, 2))
        assert "bit_reverse" not in suite
        assert "uniform" in suite
