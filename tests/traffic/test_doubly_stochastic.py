"""Unit and property-based tests for doubly-stochastic samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    birkhoff_sample,
    random_permutation,
    random_permutations,
    sample_traffic_set,
    sinkhorn_sample,
    validate_doubly_stochastic,
)


class TestValidation:
    def test_accepts_identity(self):
        validate_doubly_stochastic(np.eye(5))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            validate_doubly_stochastic(np.ones((2, 3)) / 3)

    def test_rejects_negative(self):
        m = np.eye(3)
        m[0, 0] = -0.5
        m[0, 1] = 1.5
        with pytest.raises(ValueError, match="negative"):
            validate_doubly_stochastic(m)

    def test_rejects_bad_row_sum(self):
        with pytest.raises(ValueError, match="row sums"):
            validate_doubly_stochastic(np.ones((3, 3)))

    def test_rejects_bad_col_sum(self):
        m = np.zeros((2, 2))
        m[0] = [0.5, 0.5]
        m[1] = [0.9, 0.1]
        with pytest.raises(ValueError, match="column sums"):
            validate_doubly_stochastic(m)


class TestBirkhoff:
    @given(st.integers(min_value=2, max_value=20), st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_always_doubly_stochastic(self, n, r):
        rng = np.random.default_rng(n * 100 + r)
        validate_doubly_stochastic(birkhoff_sample(rng, n, r))

    def test_sparsity_bound(self):
        rng = np.random.default_rng(0)
        m = birkhoff_sample(rng, 32, num_permutations=4)
        assert np.count_nonzero(m) <= 4 * 32

    def test_single_permutation_is_permutation(self):
        rng = np.random.default_rng(1)
        m = birkhoff_sample(rng, 10, num_permutations=1)
        assert set(np.unique(m)) <= {0.0, 1.0}

    def test_rejects_zero_permutations(self):
        with pytest.raises(ValueError):
            birkhoff_sample(np.random.default_rng(0), 4, 0)

    def test_reproducible(self):
        a = birkhoff_sample(np.random.default_rng(7), 8, 3)
        b = birkhoff_sample(np.random.default_rng(7), 8, 3)
        assert np.array_equal(a, b)


class TestSinkhorn:
    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_always_doubly_stochastic(self, n):
        rng = np.random.default_rng(n)
        validate_doubly_stochastic(sinkhorn_sample(rng, n), tol=1e-6)

    def test_dense(self):
        m = sinkhorn_sample(np.random.default_rng(0), 16)
        assert (m > 0).all()

    def test_column_sums_regression(self):
        # Seed 498 at n=2 converges slowly: the pre-fix implementation
        # (row-residual check only, plus an unconditional final row
        # normalize) returned a matrix whose column sums were off by
        # ~1.6e-5 — six orders of magnitude past its own tolerance.
        m = sinkhorn_sample(np.random.default_rng(498), 2)
        validate_doubly_stochastic(m, tol=1e-9)
        assert np.abs(m.sum(axis=0) - 1.0).max() < 1e-9
        assert np.abs(m.sum(axis=1) - 1.0).max() < 1e-9

    def test_both_axes_balanced_tightly(self):
        for seed in (0, 7, 112, 178):
            m = sinkhorn_sample(np.random.default_rng(seed), 8)
            assert np.abs(m.sum(axis=0) - 1.0).max() < 1e-9
            assert np.abs(m.sum(axis=1) - 1.0).max() < 1e-9

    def test_raises_when_not_converged(self):
        with pytest.raises(RuntimeError, match="did not reach"):
            sinkhorn_sample(np.random.default_rng(498), 2, iterations=3)


class TestSampleSet:
    def test_count_and_validity(self):
        rng = np.random.default_rng(0)
        mats = sample_traffic_set(rng, 16, 5)
        assert len(mats) == 5
        for m in mats:
            validate_doubly_stochastic(m)

    def test_sinkhorn_method(self):
        mats = sample_traffic_set(np.random.default_rng(0), 8, 2, "sinkhorn")
        assert len(mats) == 2

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown sampling method"):
            sample_traffic_set(np.random.default_rng(0), 8, 2, "nope")

    def test_zero_count(self):
        with pytest.raises(ValueError, match="positive"):
            sample_traffic_set(np.random.default_rng(0), 8, 0)


class TestRandomPermutations:
    def test_permutation_is_valid(self):
        m = random_permutation(np.random.default_rng(0), 12)
        validate_doubly_stochastic(m)

    def test_fixed_point_free(self):
        for seed in range(10):
            m = random_permutation(
                np.random.default_rng(seed), 6, fixed_point_free=True
            )
            assert np.trace(m) == 0.0

    def test_batch(self):
        mats = random_permutations(np.random.default_rng(0), 8, 4)
        assert len(mats) == 4
