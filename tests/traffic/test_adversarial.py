"""Tests for adversarial permutation local search."""

import numpy as np
import pytest

from repro.metrics import worst_case_load
from repro.metrics.channel_load import canonical_max_load
from repro.routing import DimensionOrderRouting, VAL
from repro.topology import Torus, TranslationGroup
from repro.traffic.adversarial import adversarial_permutation_search


@pytest.fixture(scope="module")
def setup():
    t = Torus(4, 2)
    return t, TranslationGroup(t)


class TestAdversarialSearch:
    def test_lower_bounds_exact(self, setup):
        t, g = setup
        dor = DimensionOrderRouting(t)
        found = adversarial_permutation_search(
            dor.canonical_flows, t, g, np.random.default_rng(0), restarts=2
        )
        exact = worst_case_load(dor)
        assert found.load <= exact.load + 1e-9

    def test_reaches_exact_on_dor(self, setup):
        # hill climbing finds DOR's true worst case on the small torus
        t, g = setup
        dor = DimensionOrderRouting(t)
        found = adversarial_permutation_search(
            dor.canonical_flows, t, g, np.random.default_rng(1), restarts=6
        )
        exact = worst_case_load(dor)
        assert found.load == pytest.approx(exact.load, rel=0.02)

    def test_reported_load_is_realized(self, setup):
        t, g = setup
        dor = DimensionOrderRouting(t)
        found = adversarial_permutation_search(
            dor.canonical_flows, t, g, np.random.default_rng(2), restarts=2
        )
        realized = canonical_max_load(
            t, g, dor.canonical_flows, found.traffic_matrix()
        )
        assert realized == pytest.approx(found.load)

    def test_val_immediately_optimal(self, setup):
        # VAL's load is permutation-independent: one restart, no steps
        # of improvement possible beyond the derangement baseline.
        t, g = setup
        val = VAL(t)
        found = adversarial_permutation_search(
            val.canonical_flows, t, g, np.random.default_rng(3), restarts=1
        )
        exact = worst_case_load(val)
        # any fixed-point-free permutation achieves VAL's worst case
        assert found.load >= exact.load * 0.95

    def test_restart_validation(self, setup):
        t, g = setup
        with pytest.raises(ValueError, match="restart"):
            adversarial_permutation_search(
                np.zeros((t.num_nodes, t.num_channels)),
                t,
                g,
                np.random.default_rng(0),
                restarts=0,
            )

    def test_beats_or_matches_random_sampling(self, setup):
        from repro.metrics import sampled_worst_case_load

        t, g = setup
        dor = DimensionOrderRouting(t)
        rng = np.random.default_rng(4)
        sampled = sampled_worst_case_load(dor.canonical_flows, t, g, rng, 16)
        searched = adversarial_permutation_search(
            dor.canonical_flows, t, g, np.random.default_rng(4), restarts=3
        )
        assert searched.load >= sampled.load - 1e-9
