"""The LP design method on a hypercube (beyond the paper's torus).

The oblivious-routing lower-bound literature the paper builds on
([15]-[17]) lives on the hypercube; its future work proposes applying
the LP machinery to other topologies.  Because the library's symmetric
formulation only needs a Cayley-graph structure, the whole pipeline —
capacity, worst-case-optimal design, exact adversarial evaluation —
runs on the binary n-cube unchanged.

This script compares deterministic e-cube routing, Valiant's
randomization, and the LP-designed optimum on a 4-cube.

Run:  python examples/hypercube_study.py
"""

from repro.core import design_worst_case, solve_capacity
from repro.core.recovery import routing_from_flows
from repro.metrics import evaluate_algorithm, worst_case_load
from repro.routing import ECube, HypercubeValiant
from repro.topology import Hypercube


def main() -> None:
    cube = Hypercube(4)
    cap = solve_capacity(cube)
    print(f"network: {cube.name}  (N={cube.num_nodes}, C={cube.num_channels})")
    print(f"capacity: {cap.throughput:.3f} injections/cycle (the classic 2.0)\n")

    design = design_worst_case(cube, minimize_locality=True)
    optimal = routing_from_flows(cube, design.flows, name="LP-OPT")

    header = f"{'algorithm':10s} {'H/Hmin':>8s} {'Theta_wc/cap':>13s}"
    print(header)
    print("-" * len(header))
    for alg in (ECube(cube), HypercubeValiant(cube), optimal):
        m = evaluate_algorithm(alg, capacity_load=cap.load)
        print(
            f"{alg.name:10s} {m.normalized_path_length:8.3f} "
            f"{m.worst_case_vs_capacity:13.3f}"
        )

    wc = worst_case_load(ECube(cube))
    print(
        f"\ne-cube's adversary (a bit-permutation-like pattern) drives one "
        f"channel to\nload {wc.load:.2f}; Valiant and the LP design both "
        f"guarantee half of capacity,\nbut the LP design needs only "
        f"{design.avg_path_length / cube.mean_min_distance():.2f}x minimal "
        f"paths instead of Valiant's ~2x —\nthe same story the paper tells "
        f"on the torus, on a new topology."
    )


if __name__ == "__main__":
    main()
