"""Beyond the torus: optimal oblivious routing for an on-chip mesh.

The paper's future work suggests applying the LP design method to other
topologies.  Meshes (the dominant network-on-chip topology) are not
vertex-transitive, so this uses the general all-commodity formulation:
compute the 4-ary 2-mesh's capacity, design the worst-case-optimal
oblivious algorithm, and compare it against minimal XY routing — the
mesh analogue of DOR.

Run:  python examples/onchip_mesh_study.py
"""

from repro import Mesh, ObliviousRouting
from repro.core.general import design_general_worst_case, solve_general_capacity
from repro.metrics.worst_case_eval import general_worst_case_load


class MeshXY(ObliviousRouting):
    """Deterministic minimal X-then-Y routing on a mesh."""

    def path_distribution(self, src, dst):
        if src == dst:
            return [((src,), 1.0)]
        mesh = self.network
        cur = mesh.coords(src).copy()
        target = mesh.coords(dst)
        nodes = [src]
        for dim in range(mesh.n):
            step = 1 if target[dim] > cur[dim] else -1
            while cur[dim] != target[dim]:
                cur[dim] += step
                nodes.append(mesh.node_at(cur))
        return [(tuple(nodes), 1.0)]


def main() -> None:
    mesh = Mesh(4, 2)
    print(f"network: {mesh.name}  (N={mesh.num_nodes}, C={mesh.num_channels})")

    cap = solve_general_capacity(mesh)
    print(
        f"capacity: {1 / cap.objective_load:.3f} of injection bandwidth "
        f"(uniform load {cap.objective_load:.3f}; the center bisection "
        f"binds)"
    )

    xy = MeshXY(mesh, name="XY")
    xy_wc = general_worst_case_load(mesh, xy.full_flows())
    print(
        f"\nXY routing:    H = {xy.normalized_path_length():.3f}x minimal, "
        f"worst case {cap.objective_load / xy_wc.load:.3f} of capacity"
    )

    design = design_general_worst_case(mesh, minimize_locality=True)
    exact = general_worst_case_load(mesh, design.flows)
    print(
        f"LP-optimal:    H = "
        f"{design.avg_path_length / mesh.mean_min_distance():.3f}x minimal, "
        f"worst case {cap.objective_load / exact.load:.3f} of capacity"
    )

    gain = xy_wc.load / exact.load
    print(
        f"\nthe optimal oblivious algorithm guarantees {gain:.2f}x the "
        f"worst-case\nthroughput of XY routing on this mesh — the same "
        f"LP method, new topology\n(paper Section 7, future work)."
    )


if __name__ == "__main__":
    main()
