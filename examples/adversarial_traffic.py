"""Packet-router scenario: surviving adversarial traffic.

The paper's motivating application (Section 1): an internet router's
fabric cannot control its incoming traffic, so the *worst-case*
throughput is the guarantee that matters.  This script plays the
adversary against dimension-order routing on a 6-ary 2-cube — finding
its worst permutation with the matching-based evaluator, then actually
injecting that traffic in the packet simulator — and shows how IVAL
holds its guaranteed 50%-of-capacity throughput under its own worst
case, at a fraction of VAL's latency cost.

Run:  python examples/adversarial_traffic.py
"""

from repro import (
    IVAL,
    DimensionOrderRouting,
    SimulationConfig,
    Torus,
    simulate,
    solve_capacity,
    worst_case_load,
)


def stress(algorithm, traffic, rate: float):
    """Simulate and summarize one offered load."""
    res = simulate(
        algorithm,
        traffic,
        SimulationConfig(cycles=3000, warmup=1000, injection_rate=rate, seed=1),
    )
    verdict = "stable" if res.stable else "UNSTABLE"
    latency = f"{res.mean_latency:6.1f}" if res.stable else "  inf "
    print(
        f"  offered {res.offered_rate:.2f} -> accepted {res.accepted_rate:.2f}  "
        f"latency {latency} cycles  backlog {res.backlog:5d}  [{verdict}]"
    )
    return res


def main() -> None:
    torus = Torus(6, 2)
    capacity = solve_capacity(torus)

    dor = DimensionOrderRouting(torus)
    ival = IVAL(torus)

    for alg in (dor, ival):
        wc = worst_case_load(alg)
        theta = wc.throughput
        print(
            f"\n{alg.name}: guaranteed throughput "
            f"{capacity.load / wc.load:.3f} of capacity "
            f"(saturates at injection rate {min(theta, 1.0):.2f} under its "
            f"worst permutation)"
        )
        adversary = wc.traffic_matrix()
        for rate in (0.8 * theta, min(1.2 * theta, 1.0)):
            stress(alg, adversary, round(float(rate), 2))

    print(
        "\nDOR collapses under its adversary well below half capacity, "
        "while IVAL\nsustains the optimal worst-case guarantee "
        "(paper Sections 5.1-5.2)."
    )


if __name__ == "__main__":
    main()
