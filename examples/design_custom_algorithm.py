"""Design a routing algorithm with the paper's LP machinery.

Scenario: you are building a 6-ary 2-cube interconnect and can afford
paths 25% longer than minimal on average.  What is the best worst-case
throughput any oblivious algorithm can guarantee under that budget —
and what does that algorithm look like?

The script (1) solves the locality-constrained worst-case LP (paper
problem (10)), (2) recovers an explicit, runnable path table from the
flow solution (Section 4), (3) verifies the LP bound with the exact
assignment-based evaluator, and (4) proves the recovered algorithm
deadlock-free under the 4-VC turn scheme.

Run:  python examples/design_custom_algorithm.py
"""

import numpy as np

from repro import (
    Torus,
    design_worst_case,
    routing_from_flows,
    solve_capacity,
    turn_increment_scheme,
    verify_deadlock_freedom,
    worst_case_load,
)


def main() -> None:
    torus = Torus(6, 2)
    capacity = solve_capacity(torus)
    budget = 1.25  # average path length allowance, x minimal

    design = design_worst_case(
        torus,
        locality_hops=budget * torus.mean_min_distance(),
        locality_sense="<=",
    )
    print(f"locality budget: {budget:.2f}x minimal")
    print(
        f"optimal guaranteed throughput: "
        f"{capacity.load / design.worst_case_load:.3f} of capacity "
        f"(worst-case channel load {design.worst_case_load:.3f})"
    )

    algorithm = routing_from_flows(torus, design.flows, name="budget-1.25x")
    algorithm.validate()

    exact = worst_case_load(algorithm)
    print(
        f"exact evaluation of the recovered table: "
        f"{capacity.load / exact.load:.3f} of capacity "
        f"(matches the LP bound)"
    )
    print(
        f"adversarial permutation found by the evaluator: node 0 -> "
        f"{int(exact.permutation[0])}, node 1 -> {int(exact.permutation[1])}, ..."
    )

    # what the designed algorithm actually does for one pair
    src, dst = 0, torus.node_at([3, 2])
    print(f"\npaths for {torus.coords(src).tolist()} -> {torus.coords(dst).tolist()}:")
    for path, prob in sorted(
        algorithm.path_distribution(src, dst), key=lambda e: -e[1]
    )[:6]:
        coords = " ".join(str(torus.coords(v).tolist()) for v in path)
        print(f"  p={prob:.3f}  {coords}")

    report = verify_deadlock_freedom(algorithm, turn_increment_scheme)
    status = "deadlock-free" if report.deadlock_free else "NOT deadlock-free"
    print(
        f"\nvirtual-channel analysis: {status} with {report.num_vcs} VCs "
        f"({report.num_dependencies} channel dependencies checked)"
    )
    if not report.deadlock_free:
        print(
            "  note: unconstrained LP designs may use paths outside the "
            "two-turn family; constrain the path set (see design_2turn) "
            "for a guaranteed VC bound."
        )

    # sample a few concrete routes as a router would at runtime
    rng = np.random.default_rng(0)
    picks = [algorithm.sample_path(rng, src, dst) for _ in range(3)]
    print(f"\nthree sampled routes: {[len(p) - 1 for p in picks]} hops each")


if __name__ == "__main__":
    main()
