"""Quickstart: compare classic oblivious routing algorithms on a torus.

Builds the paper's 8-ary 2-cube, evaluates every algorithm of Table 1
plus IVAL on locality, uniform throughput, and *exact* worst-case
throughput (a maximum-weight matching per channel class), and prints
the comparison — the numbers behind Figure 1's scatter points.

Run:  python examples/quickstart.py
"""

from repro import (
    IVAL,
    Torus,
    evaluate_algorithm,
    solve_capacity,
    standard_algorithms,
)


def main() -> None:
    torus = Torus(8, 2)
    capacity = solve_capacity(torus)
    print(f"network: {torus.name}  (N={torus.num_nodes}, C={torus.num_channels})")
    print(
        f"capacity: {capacity.throughput:.3f} of injection bandwidth "
        f"(optimal uniform channel load {capacity.load:.3f})\n"
    )

    algorithms = standard_algorithms(torus)
    algorithms["IVAL"] = IVAL(torus)

    header = f"{'algorithm':10s} {'H/Hmin':>8s} {'Theta_U/cap':>12s} {'Theta_wc/cap':>13s}"
    print(header)
    print("-" * len(header))
    for name, alg in algorithms.items():
        m = evaluate_algorithm(alg, capacity_load=capacity.load)
        print(
            f"{name:10s} {m.normalized_path_length:8.3f} "
            f"{capacity.load / m.uniform_load:12.3f} "
            f"{m.worst_case_vs_capacity:13.3f}"
        )

    print(
        "\nReading the table: VAL guarantees half of capacity under ANY "
        "traffic\nbut doubles path length; IVAL keeps the guarantee at "
        "1.61x minimal\n(paper Section 5.2)."
    )


if __name__ == "__main__":
    main()
