"""Exact worst-case throughput evaluation (paper Section 3.2, ref [11]).

The worst case over all doubly-stochastic traffic is attained at a
permutation matrix, and for a *fixed* channel the worst permutation is a
maximum-weight matching in the bipartite graph whose (s, d) edge weight
is the flow that commodity places on the channel.  Evaluating an
algorithm's :math:`\\gamma_{wc}` therefore reduces to one assignment
problem per channel, solved exactly with
``scipy.optimize.linear_sum_assignment`` (the Hungarian method, [12]).

For a translation-invariant algorithm on a torus, channels in the same
direction class have permutation-equivalent weight matrices, so one
assignment per class (4 on a 2-D torus) suffices.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.topology.cayley import CayleyTopology
from repro.topology.network import Network
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus


@dataclasses.dataclass(frozen=True)
class WorstCaseResult:
    """Worst-case load, the channel attaining it, and an adversarial
    permutation realizing it."""

    load: float
    channel: int
    permutation: np.ndarray  # perm[s] = d

    @property
    def throughput(self) -> float:
        return 1.0 / self.load

    def traffic_matrix(self) -> np.ndarray:
        """The adversarial permutation as a doubly-stochastic matrix."""
        n = self.permutation.shape[0]
        mat = np.zeros((n, n))
        mat[np.arange(n), self.permutation] = 1.0
        return mat


def _channel_weight_matrix(
    torus: Torus, group: TranslationGroup, flows: np.ndarray, channel: int
) -> np.ndarray:
    """``W[s, d]`` = flow of commodity ``(s, d)`` on ``channel``."""
    ncls = torus.num_classes
    node = channel // ncls
    cls = channel % ncls
    sources = np.arange(torus.num_nodes)
    # canonical channel seen by source s: (node - s, cls)
    chan_from_s = group.node_diff[node, sources] * ncls + cls
    # W[s, d] = flows[d - s, chan_from_s[s]]
    return flows[group.node_diff.T, chan_from_s[:, None]]


def worst_case_load(
    algorithm_or_flows,
    torus: Torus | None = None,
    group: TranslationGroup | None = None,
) -> WorstCaseResult:
    """Exact :math:`\\gamma_{wc}` of a translation-invariant algorithm.

    Accepts either an :class:`~repro.routing.base.ObliviousRouting` on a
    torus, or a raw ``(N, C)`` canonical flow table together with the
    ``torus`` and ``group`` arguments.
    """
    if torus is None:
        alg = algorithm_or_flows
        torus = alg.network
        if not isinstance(torus, CayleyTopology):
            raise TypeError("worst_case_load requires a torus; see general_worst_case_load")
        group = TranslationGroup(torus)
        flows = alg.canonical_flows
    else:
        flows = np.asarray(algorithm_or_flows)
        if group is None:
            group = TranslationGroup(torus)

    best: WorstCaseResult | None = None
    for channel in torus.class_representatives():
        weights = _channel_weight_matrix(torus, group, flows, int(channel))
        rows, cols = linear_sum_assignment(weights, maximize=True)
        load = float(weights[rows, cols].sum() / torus.bandwidth[channel])
        if best is None or load > best.load:
            perm = np.empty(torus.num_nodes, dtype=np.int64)
            perm[rows] = cols
            best = WorstCaseResult(load=load, channel=int(channel), permutation=perm)
    assert best is not None
    return best


def general_worst_case_load(
    network: Network, full_flows: np.ndarray
) -> WorstCaseResult:
    """Exact :math:`\\gamma_{wc}` from a full ``(N, N, C)`` flow tensor.

    Solves one assignment problem per channel — the general-topology
    version used for meshes and sanity cross-checks.
    """
    best: WorstCaseResult | None = None
    for channel in range(network.num_channels):
        weights = full_flows[:, :, channel]
        rows, cols = linear_sum_assignment(weights, maximize=True)
        load = float(
            weights[rows, cols].sum() / network.bandwidth[channel]
        )
        if best is None or load > best.load:
            perm = np.empty(network.num_nodes, dtype=np.int64)
            perm[rows] = cols
            best = WorstCaseResult(load=load, channel=channel, permutation=perm)
    assert best is not None
    return best


@dataclasses.dataclass(frozen=True)
class SeparationViolation:
    """One adversarial permutation whose load exceeds a claimed bound."""

    channel: int
    permutation: np.ndarray  # perm[s] = d
    load: float
    violation: float  # load - bound


@dataclasses.dataclass(frozen=True)
class SeparationResult:
    """Outcome of one separation pass over all channels (or classes).

    ``violations`` holds the most-violated permutation of every channel
    whose exact worst case exceeds ``bound`` beyond tolerance (empty at
    convergence); ``max_load`` / ``channel`` record the overall exact
    worst case regardless of violation — the certificate that the bound
    covers the *full* permutation constraint set.
    """

    violations: tuple[SeparationViolation, ...]
    max_load: float
    channel: int

    @property
    def satisfied(self) -> bool:
        return not self.violations


def _separation_threshold(bound: float, tol: float) -> float:
    return bound + tol * max(1.0, abs(bound))


def separate_worst_case(
    torus: Torus,
    group: TranslationGroup,
    flows: np.ndarray,
    bound: float,
    tol: float | None = None,
) -> SeparationResult:
    """Separation oracle for the worst-case design LP on a torus.

    For each direction-class representative, the most-violated
    adversarial permutation is the maximum-weight matching of the
    channel's (s, d) flow-weight matrix — exactly the Hungarian
    machinery :func:`worst_case_load` evaluates with.  A permutation is
    reported when its load exceeds ``bound`` by more than ``tol``
    (default :data:`repro.constants.COLGEN_VIOLATION_TOL`), relative to
    ``max(1, bound)``.
    """
    from repro.constants import COLGEN_VIOLATION_TOL

    tol = COLGEN_VIOLATION_TOL if tol is None else float(tol)
    threshold = _separation_threshold(bound, tol)
    violations = []
    max_load, max_channel = -np.inf, -1
    for channel in torus.class_representatives():
        channel = int(channel)
        weights = _channel_weight_matrix(torus, group, flows, channel)
        rows, cols = linear_sum_assignment(weights, maximize=True)
        load = float(weights[rows, cols].sum() / torus.bandwidth[channel])
        if load > max_load:
            max_load, max_channel = load, channel
        if load > threshold:
            perm = np.empty(torus.num_nodes, dtype=np.int64)
            perm[rows] = cols
            violations.append(
                SeparationViolation(
                    channel=channel,
                    permutation=perm,
                    load=load,
                    violation=load - bound,
                )
            )
    return SeparationResult(
        violations=tuple(violations), max_load=max_load, channel=max_channel
    )


def separate_general_worst_case(
    network: Network,
    full_flows: np.ndarray,
    bound: float,
    tol: float | None = None,
) -> SeparationResult:
    """Separation oracle over a full ``(N, N, C)`` flow tensor.

    Same contract as :func:`separate_worst_case`, but one assignment
    problem per *channel* (no symmetry classes — used for meshes and
    the sparse-pillar topologies).
    """
    from repro.constants import COLGEN_VIOLATION_TOL

    tol = COLGEN_VIOLATION_TOL if tol is None else float(tol)
    threshold = _separation_threshold(bound, tol)
    violations = []
    max_load, max_channel = -np.inf, -1
    for channel in range(network.num_channels):
        weights = full_flows[:, :, channel]
        rows, cols = linear_sum_assignment(weights, maximize=True)
        load = float(weights[rows, cols].sum() / network.bandwidth[channel])
        if load > max_load:
            max_load, max_channel = load, channel
        if load > threshold:
            perm = np.empty(network.num_nodes, dtype=np.int64)
            perm[rows] = cols
            violations.append(
                SeparationViolation(
                    channel=channel,
                    permutation=perm,
                    load=load,
                    violation=load - bound,
                )
            )
    return SeparationResult(
        violations=tuple(violations), max_load=max_load, channel=max_channel
    )


def worst_case_permutation(algorithm) -> np.ndarray:
    """Adversarial permutation matrix for a torus algorithm (the traffic
    a router must survive to meet its guaranteed throughput)."""
    return worst_case_load(algorithm).traffic_matrix()
