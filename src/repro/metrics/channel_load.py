"""Channel loads and throughput (paper eqs. 2-4).

The canonical-flow fast path turns the double sum of eq. (2) into one
``(N x N) @ (N x C)`` matrix product plus a scatter-add through the
translation table — the whole load map for an 8-ary 2-cube costs about a
megaflop, which is what makes the exact worst-case evaluator and the
sampled average-case metric cheap enough to sweep.
"""

from __future__ import annotations

import numpy as np

from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus


def canonical_channel_loads(
    group: TranslationGroup,
    canonical_flows: np.ndarray,
    traffic: np.ndarray,
) -> np.ndarray:
    """Loads :math:`\\gamma_c` for a translation-invariant algorithm.

    ``canonical_flows[t, c']`` is the flow of commodity ``(0, t)`` on
    channel ``c'``; commodity ``(s, s+t)`` then loads channel
    ``c' + s``.  Summing over all sources:

    .. math:: \\gamma_c = \\sum_s \\sum_t \\lambda_{s, s+t}\\, x_{t, c-s}

    Parameters
    ----------
    group:
        Translation tables of the torus.
    canonical_flows:
        ``(N, C)`` flow table.
    traffic:
        ``(N, N)`` doubly-stochastic matrix :math:`\\Lambda`.

    Returns
    -------
    ``(C,)`` array of expected crossings per cycle (not yet divided by
    bandwidth).
    """
    n = group.node_sum.shape[0]
    # lam_shift[s, t] = traffic[s, s + t]
    lam_shift = traffic[np.arange(n)[:, None], group.node_sum]
    # contrib[s, c'] = sum_t lam_shift[s, t] * flows[t, c']
    contrib = lam_shift @ canonical_flows
    loads = np.zeros(canonical_flows.shape[1])
    # channel c' observed from source s is network channel chan_shift[c', s]
    np.add.at(loads, group.chan_shift, contrib.T)
    return loads


def canonical_max_load(
    torus: Torus,
    group: TranslationGroup,
    canonical_flows: np.ndarray,
    traffic: np.ndarray,
) -> float:
    """Normalized maximum channel load :math:`\\gamma_{max}` (eq. 3)."""
    loads = canonical_channel_loads(group, canonical_flows, traffic)
    return float((loads / torus.bandwidth).max())


def general_channel_loads(full_flows: np.ndarray, traffic: np.ndarray) -> np.ndarray:
    """Loads from a full ``(N, N, C)`` flow tensor (any topology)."""
    return np.einsum("sd,sdc->c", traffic, full_flows)


def general_max_load(
    bandwidth: np.ndarray, full_flows: np.ndarray, traffic: np.ndarray
) -> float:
    """Normalized maximum channel load from a full flow tensor."""
    return float((general_channel_loads(full_flows, traffic) / bandwidth).max())


def throughput(max_load: float) -> float:
    """Saturation throughput :math:`\\Theta = \\gamma_{max}^{-1}` (eq. 4)."""
    if max_load <= 0:
        return float("inf")
    return 1.0 / max_load
