"""Algorithm-level throughput summaries.

:func:`evaluate_algorithm` bundles every number the paper plots for a
routing algorithm — locality, uniform load, exact worst-case load, and
sampled average-case load — normalized against a supplied network
capacity so the results land directly on the axes of Figures 1 and 6.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.metrics.channel_load import (
    canonical_max_load,
    general_max_load,
)
from repro.metrics.worst_case_eval import (
    general_worst_case_load,
    worst_case_load,
)
from repro.topology.symmetry import TranslationGroup
from repro.topology.cayley import CayleyTopology
from repro.traffic.patterns import uniform


@dataclasses.dataclass(frozen=True)
class AlgorithmMetrics:
    """Everything the paper reports about one routing algorithm.

    Loads are in packets/cycle on the worst channel; throughputs are
    fractions of node injection bandwidth; ``*_vs_capacity`` entries are
    normalized by the network capacity (the x-axes of Figs. 1 and 6).
    """

    name: str
    avg_path_length: float
    normalized_path_length: float
    uniform_load: float
    worst_case_load: float
    average_case_load: float | None
    capacity_load: float | None

    @property
    def uniform_throughput(self) -> float:
        return 1.0 / self.uniform_load

    @property
    def worst_case_throughput(self) -> float:
        return 1.0 / self.worst_case_load

    @property
    def worst_case_vs_capacity(self) -> float:
        """:math:`\\Theta_{wc} / \\Theta_{cap}` — Fig. 1's horizontal axis."""
        if self.capacity_load is None:
            raise ValueError("capacity_load was not supplied")
        return self.capacity_load / self.worst_case_load

    @property
    def average_case_throughput(self) -> float:
        if self.average_case_load is None:
            raise ValueError("no traffic sample was supplied")
        return 1.0 / self.average_case_load

    @property
    def average_case_vs_capacity(self) -> float:
        """:math:`\\Theta_{avg} / \\Theta_{cap}` — Fig. 6's horizontal axis."""
        if self.capacity_load is None or self.average_case_load is None:
            raise ValueError("needs both capacity_load and a traffic sample")
        return self.capacity_load / self.average_case_load


def uniform_load(algorithm) -> float:
    """:math:`\\gamma_{max}(R, U)` — max channel load under uniform traffic."""
    net = algorithm.network
    traffic = uniform(net.num_nodes)
    if algorithm.translation_invariant and isinstance(net, CayleyTopology):
        group = TranslationGroup(net)
        return canonical_max_load(net, group, algorithm.canonical_flows, traffic)
    return general_max_load(net.bandwidth, algorithm.full_flows(), traffic)


def average_case_load(algorithm, sample: Sequence[np.ndarray]) -> float:
    """Average of :math:`\\gamma_{max}` over a traffic sample (eq. 9)."""
    if len(sample) == 0:
        raise ValueError("traffic sample is empty")
    net = algorithm.network
    if algorithm.translation_invariant and isinstance(net, CayleyTopology):
        group = TranslationGroup(net)
        flows = algorithm.canonical_flows
        return float(
            np.mean(
                [canonical_max_load(net, group, flows, lam) for lam in sample]
            )
        )
    flows = algorithm.full_flows()
    return float(
        np.mean([general_max_load(net.bandwidth, flows, lam) for lam in sample])
    )


def evaluate_algorithm(
    algorithm,
    traffic_sample: Sequence[np.ndarray] | None = None,
    capacity_load: float | None = None,
) -> AlgorithmMetrics:
    """Full metric bundle for one algorithm.

    Parameters
    ----------
    algorithm:
        Any :class:`~repro.routing.base.ObliviousRouting`.
    traffic_sample:
        Optional set ``X`` of doubly-stochastic matrices for the
        average-case metric; all algorithms in one study should share it.
    capacity_load:
        The network's optimal uniform load (from
        :func:`repro.core.capacity.solve_capacity`), enabling the
        ``*_vs_capacity`` normalizations.
    """
    net = algorithm.network
    if algorithm.translation_invariant and isinstance(net, CayleyTopology):
        wc = worst_case_load(algorithm)
    else:
        wc = general_worst_case_load(net, algorithm.full_flows())
    return AlgorithmMetrics(
        name=algorithm.name,
        avg_path_length=algorithm.average_path_length(),
        normalized_path_length=algorithm.normalized_path_length(),
        uniform_load=uniform_load(algorithm),
        worst_case_load=wc.load,
        average_case_load=(
            average_case_load(algorithm, traffic_sample)
            if traffic_sample is not None
            else None
        ),
        capacity_load=capacity_load,
    )
