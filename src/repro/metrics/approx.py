"""Sampled (lower-bound) worst-case estimation.

The paper's Appendix notes that any heuristic for selecting adversarial
permutations yields an approximation to the worst-case problem: the
dual's ``A`` matrices are weighted sums of bad permutations.  This
module implements the simplest such heuristic — random permutation
sampling — as a cheap, always-valid *lower bound* on
:math:`\\gamma_{wc}`, useful for large networks where per-channel
Hungarian solves get expensive, and as an independent cross-check of the
exact evaluator.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.metrics.channel_load import canonical_max_load
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus
from repro.traffic.patterns import permutation_matrix


@dataclasses.dataclass(frozen=True)
class SampledWorstCase:
    """Best adversary found by sampling: a certified lower bound."""

    load: float
    permutation: np.ndarray
    samples: int

    def traffic_matrix(self) -> np.ndarray:
        return permutation_matrix(self.permutation)


def sampled_worst_case_load(
    flows: np.ndarray,
    torus: Torus,
    group: TranslationGroup,
    rng: np.random.Generator,
    num_permutations: int = 64,
) -> SampledWorstCase:
    """Maximize :math:`\\gamma_{max}` over random derangements.

    Always a lower bound on the exact worst case; with enough samples it
    typically finds loads within a few percent of it (the worst-case
    polytope vertex set is huge but flat for symmetric algorithms).
    """
    if num_permutations < 1:
        raise ValueError("need at least one sample")
    n = torus.num_nodes
    best_load = -np.inf
    best_perm: np.ndarray | None = None
    for _ in range(num_permutations):
        perm = rng.permutation(n)
        while np.any(perm == np.arange(n)):
            perm = rng.permutation(n)
        load = canonical_max_load(torus, group, flows, permutation_matrix(perm))
        if load > best_load:
            best_load, best_perm = load, perm
    assert best_perm is not None
    return SampledWorstCase(
        load=float(best_load), permutation=best_perm, samples=num_permutations
    )
