"""Performance metrics (paper Sections 2.3 and 3).

Channel loads :math:`\\gamma_c` (eq. 2), normalized maximum channel load
:math:`\\gamma_{max}` (eq. 3), throughput :math:`\\Theta` (eq. 4), exact
worst-case throughput over all permutations via maximum-weight matching
(Section 3.2 / [11]), sampled average-case throughput (eq. 9), and the
locality metric :math:`H_{avg}` (eq. 5).

Two families of entry points exist: the ``canonical_*`` functions take a
translation-invariant algorithm's ``(N, C)`` canonical flow table (the
compact torus representation of Section 4); the ``general_*`` functions
take a full ``(N, N, C)`` flow tensor and work on any topology.
"""

from repro.metrics.channel_load import (
    canonical_channel_loads,
    canonical_max_load,
    general_channel_loads,
    general_max_load,
    throughput,
)
from repro.metrics.worst_case_eval import (
    SeparationResult,
    SeparationViolation,
    WorstCaseResult,
    general_worst_case_load,
    separate_general_worst_case,
    separate_worst_case,
    worst_case_load,
    worst_case_permutation,
)
from repro.metrics.summary import (
    AlgorithmMetrics,
    average_case_load,
    evaluate_algorithm,
    uniform_load,
)
from repro.metrics.approx import SampledWorstCase, sampled_worst_case_load

__all__ = [
    "SampledWorstCase",
    "sampled_worst_case_load",
    "canonical_channel_loads",
    "canonical_max_load",
    "general_channel_loads",
    "general_max_load",
    "throughput",
    "SeparationResult",
    "SeparationViolation",
    "WorstCaseResult",
    "general_worst_case_load",
    "separate_general_worst_case",
    "separate_worst_case",
    "worst_case_load",
    "worst_case_permutation",
    "AlgorithmMetrics",
    "average_case_load",
    "evaluate_algorithm",
    "uniform_load",
]
