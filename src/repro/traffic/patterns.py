"""Classic traffic patterns for torus networks.

Permutation patterns are returned as dense ``N x N`` doubly-stochastic
(0/1) matrices so they compose with the load machinery uniformly; the
sparse structure is recovered where it matters (LP assembly) via
``numpy.nonzero``.

Coordinate-based patterns (transpose, tornado, complement, neighbor)
are defined on a :class:`~repro.topology.torus.Torus`; bit-based patterns
(bit-reverse, shuffle) are defined on node ids and require ``N`` to be a
power of two, as is conventional.
"""

from __future__ import annotations

import numpy as np

from repro.topology.torus import Torus


def uniform(num_nodes: int) -> np.ndarray:
    """Uniform traffic ``U``: every source sends to every destination
    with probability :math:`1/N` (paper Section 3.1, footnote 3)."""
    return np.full((num_nodes, num_nodes), 1.0 / num_nodes)


def permutation_matrix(perm: np.ndarray) -> np.ndarray:
    """Doubly-stochastic 0/1 matrix for ``d = perm[s]``."""
    perm = np.asarray(perm, dtype=np.int64)
    n = perm.shape[0]
    if sorted(perm.tolist()) != list(range(n)):
        raise ValueError("perm is not a permutation of 0..N-1")
    mat = np.zeros((n, n))
    mat[np.arange(n), perm] = 1.0
    return mat


def _coord_permutation(torus: Torus, fn) -> np.ndarray:
    """Build a permutation matrix from a coordinate map ``fn(coords)->coords``."""
    perm = np.empty(torus.num_nodes, dtype=np.int64)
    for v in range(torus.num_nodes):
        perm[v] = torus.node_at(fn(torus.coords(v)))
    return permutation_matrix(perm)


def transpose(torus: Torus) -> np.ndarray:
    """Matrix-transpose traffic: ``(x, y) -> (y, x)`` (2-D tori only)."""
    _require_2d(torus, "transpose")
    return _coord_permutation(torus, lambda c: c[::-1])


def tornado(torus: Torus) -> np.ndarray:
    """Tornado traffic: each node sends ``ceil(k/2) - 1`` hops around
    dimension 0, the classic adversary for minimal routing on rings."""
    offset = -(-torus.k // 2) - 1
    if offset == 0:
        raise ValueError("tornado is degenerate (identity) for k <= 2")

    def fn(c):
        out = c.copy()
        out[0] = (out[0] + offset) % torus.k
        return out

    return _coord_permutation(torus, fn)


def complement(torus: Torus) -> np.ndarray:
    """Complement traffic: ``x_i -> k - 1 - x_i`` in every dimension
    (the coordinate analogue of bit-complement)."""
    return _coord_permutation(torus, lambda c: torus.k - 1 - c)


def neighbor(torus: Torus, dim: int = 0) -> np.ndarray:
    """Nearest-neighbour traffic: send one hop in ``+dim``."""

    def fn(c):
        out = c.copy()
        out[dim] = (out[dim] + 1) % torus.k
        return out

    return _coord_permutation(torus, fn)


def bit_reverse(num_nodes: int) -> np.ndarray:
    """Bit-reversal traffic on node-id bits; ``N`` must be a power of 2."""
    bits = _require_pow2(num_nodes, "bit_reverse")
    ids = np.arange(num_nodes)
    perm = np.zeros_like(ids)
    for b in range(bits):
        perm |= ((ids >> b) & 1) << (bits - 1 - b)
    return permutation_matrix(perm)


def shuffle(num_nodes: int) -> np.ndarray:
    """Perfect-shuffle traffic (rotate id bits left); ``N`` power of 2."""
    bits = _require_pow2(num_nodes, "shuffle")
    ids = np.arange(num_nodes)
    perm = ((ids << 1) | (ids >> (bits - 1))) & (num_nodes - 1)
    return permutation_matrix(perm)


def named_patterns(torus: Torus) -> dict[str, np.ndarray]:
    """The standard evaluation suite of patterns for a 2-D torus."""
    out = {
        "uniform": uniform(torus.num_nodes),
        "transpose": transpose(torus),
        "tornado": tornado(torus),
        "complement": complement(torus),
        "neighbor": neighbor(torus),
    }
    n = torus.num_nodes
    if n & (n - 1) == 0:
        out["bit_reverse"] = bit_reverse(n)
        out["shuffle"] = shuffle(n)
    return out


def _require_2d(torus: Torus, name: str) -> None:
    if torus.n != 2:
        raise ValueError(f"{name} traffic requires a 2-D torus, got n={torus.n}")


def _require_pow2(num_nodes: int, name: str) -> int:
    bits = int(num_nodes).bit_length() - 1
    if num_nodes <= 0 or (1 << bits) != num_nodes:
        raise ValueError(f"{name} traffic requires N to be a power of 2")
    return bits
