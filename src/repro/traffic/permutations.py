"""Random permutation traffic.

Worst-case throughput is attained on a permutation matrix (Section 3.2,
citing [11]), so random permutations are both a cheap probe of bad-case
behaviour and the building block of the sparse doubly-stochastic sampler
in :mod:`repro.traffic.doubly_stochastic`.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.patterns import permutation_matrix


def random_permutation(
    rng: np.random.Generator, num_nodes: int, fixed_point_free: bool = False
) -> np.ndarray:
    """One random permutation matrix.

    Parameters
    ----------
    rng:
        Seeded generator (all randomness in this library is injected).
    num_nodes:
        Matrix dimension ``N``.
    fixed_point_free:
        If set, resample until the permutation is a derangement, so every
        node sends real traffic (self-traffic loads no channel and only
        dilutes a pattern's adversarial pressure).
    """
    while True:
        perm = rng.permutation(num_nodes)
        if not fixed_point_free or not np.any(perm == np.arange(num_nodes)):
            return permutation_matrix(perm)


def random_permutations(
    rng: np.random.Generator,
    num_nodes: int,
    count: int,
    fixed_point_free: bool = False,
) -> list[np.ndarray]:
    """A list of ``count`` independent random permutation matrices."""
    return [
        random_permutation(rng, num_nodes, fixed_point_free) for _ in range(count)
    ]
