"""Random doubly-stochastic traffic matrices (paper Section 3.3).

The average-case cost function (9) averages the maximum channel load over
a random, finite subset ``X`` of the doubly-stochastic (Birkhoff)
polytope.  The paper does not pin down the sampling distribution — only
that |X| = 100 samples approximate the average well — so two samplers are
provided:

* :func:`birkhoff_sample` — a Dirichlet-weighted convex combination of a
  few random permutation matrices.  Samples are *sparse* (at most
  ``r * N`` nonzeros), which keeps the average-case LP rows sparse; this
  is the default used by the experiments.
* :func:`sinkhorn_sample` — iterative proportional fitting of a positive
  random matrix; produces dense interior points of the polytope.

Both samplers hit every face/interior region relevant to the paper's
qualitative results; EXPERIMENTS.md records which was used where.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FEASIBILITY_ATOL, SOLVER_DUST


def validate_doubly_stochastic(
    mat: np.ndarray, tol: float = FEASIBILITY_ATOL
) -> None:
    """Raise :class:`ValueError` unless ``mat`` is doubly-stochastic.

    Checks nonnegativity and unit row/column sums to tolerance ``tol``
    (the definition in paper Section 2.3).
    """
    mat = np.asarray(mat)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"traffic matrix must be square, got {mat.shape}")
    if (mat < -tol).any():
        raise ValueError("traffic matrix has negative entries")
    if not np.allclose(mat.sum(axis=1), 1.0, atol=tol):
        raise ValueError("traffic matrix row sums differ from 1")
    if not np.allclose(mat.sum(axis=0), 1.0, atol=tol):
        raise ValueError("traffic matrix column sums differ from 1")


def birkhoff_sample(
    rng: np.random.Generator,
    num_nodes: int,
    num_permutations: int = 8,
) -> np.ndarray:
    """Random convex combination of random permutation matrices.

    By Birkhoff's theorem (paper Appendix, [32]) every doubly-stochastic
    matrix is such a combination; sampling a few terms with
    Dirichlet(1, ..., 1) weights yields sparse random traffic.
    """
    if num_permutations < 1:
        raise ValueError("need at least one permutation")
    weights = rng.dirichlet(np.ones(num_permutations))
    mat = np.zeros((num_nodes, num_nodes))
    rows = np.arange(num_nodes)
    for w in weights:
        mat[rows, rng.permutation(num_nodes)] += w
    return mat


def sinkhorn_sample(
    rng: np.random.Generator,
    num_nodes: int,
    iterations: int = 1000,
    tol: float = SOLVER_DUST,
) -> np.ndarray:
    """Doubly-stochastic matrix via Sinkhorn-Knopp balancing.

    Starts from an i.i.d. exponential random matrix (strictly positive,
    so convergence is guaranteed) and alternately normalizes rows and
    columns until the worst residual over *both* axes is within ``tol``
    of one.  An earlier version checked only the row residual and then
    re-normalized rows after the loop, which silently re-broke the
    column sums; the result is now validated before it is returned, and
    failure to converge raises instead of returning an unbalanced
    matrix.
    """
    mat = rng.exponential(1.0, size=(num_nodes, num_nodes))
    for _ in range(iterations):
        mat /= mat.sum(axis=1, keepdims=True)
        mat /= mat.sum(axis=0, keepdims=True)
        residual = max(
            np.abs(mat.sum(axis=1) - 1.0).max(),
            np.abs(mat.sum(axis=0) - 1.0).max(),
        )
        if residual < tol:
            break
    else:
        raise RuntimeError(
            f"Sinkhorn balancing did not reach tol={tol:g} in "
            f"{iterations} iterations (residual {residual:g})"
        )
    validate_doubly_stochastic(mat, tol=max(tol, FEASIBILITY_ATOL))
    return mat


def sample_traffic_set(
    rng: np.random.Generator,
    num_nodes: int,
    count: int,
    method: str = "birkhoff",
    num_permutations: int = 8,
) -> list[np.ndarray]:
    """Sample the set ``X`` of traffic matrices for the average-case
    cost function (paper eq. 9; |X| = 100 in Section 5.4)."""
    if count < 1:
        raise ValueError("sample count must be positive")
    if method == "birkhoff":
        return [
            birkhoff_sample(rng, num_nodes, num_permutations) for _ in range(count)
        ]
    if method == "sinkhorn":
        return [sinkhorn_sample(rng, num_nodes) for _ in range(count)]
    raise ValueError(f"unknown sampling method {method!r}")
