"""Traffic patterns (paper Sections 2.3, 3.1, 3.3).

A traffic pattern :math:`\\Lambda` is a doubly-stochastic ``N x N``
matrix: entry :math:`\\lambda_{s,d}` is the fraction of source ``s``'s
unit injection bandwidth destined for node ``d``.  Worst-case analysis
only needs permutation matrices (by [11], cited in Section 3.2);
average-case analysis samples the doubly-stochastic (Birkhoff) polytope.

This package provides the uniform pattern, the classic permutations used
in the torus-routing literature, random permutations, and two samplers
for random doubly-stochastic matrices.
"""

from repro.traffic.patterns import (
    uniform,
    permutation_matrix,
    transpose,
    tornado,
    complement,
    bit_reverse,
    shuffle,
    neighbor,
    named_patterns,
)
from repro.traffic.doubly_stochastic import (
    birkhoff_sample,
    sinkhorn_sample,
    sample_traffic_set,
    validate_doubly_stochastic,
)
from repro.traffic.permutations import random_permutation, random_permutations

__all__ = [
    "uniform",
    "permutation_matrix",
    "transpose",
    "tornado",
    "complement",
    "bit_reverse",
    "shuffle",
    "neighbor",
    "named_patterns",
    "birkhoff_sample",
    "sinkhorn_sample",
    "sample_traffic_set",
    "validate_doubly_stochastic",
    "random_permutation",
    "random_permutations",
]
