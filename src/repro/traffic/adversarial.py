"""Adversarial permutation search by local improvement.

The Appendix observes that any heuristic for picking bad permutations
yields an approximation to the worst-case problem from the dual side.
Random sampling (:func:`repro.metrics.approx.sampled_worst_case_load`)
is the baseline; this module sharpens it with 2-swap hill climbing: for
a fixed channel's commodity-weight matrix, swapping two destinations of
a permutation changes the matching weight by a closed-form delta, so a
steepest-ascent pass over all pairs costs :math:`O(N^2)` per step.

For a *fixed* channel the exact optimum is an assignment problem (and
:func:`repro.metrics.worst_case_eval.worst_case_load` solves it), so
the value of the search is (a) pedagogical — it mirrors the paper's
suggested approximation route — and (b) practical for cost functions
where no polynomial oracle exists (e.g. maximizing the load of a whole
cut rather than one channel).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.constants import SOLVER_DUST
from repro.metrics.channel_load import canonical_channel_loads
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus
from repro.traffic.patterns import permutation_matrix


@dataclasses.dataclass(frozen=True)
class AdversarySearchResult:
    """Best permutation found and its induced maximum channel load."""

    load: float
    permutation: np.ndarray
    iterations: int

    def traffic_matrix(self) -> np.ndarray:
        return permutation_matrix(self.permutation)


def _max_load(torus, group, flows, perm) -> float:
    lam = permutation_matrix(perm)
    loads = canonical_channel_loads(group, flows, lam)
    return float((loads / torus.bandwidth).max())


def adversarial_permutation_search(
    flows: np.ndarray,
    torus: Torus,
    group: TranslationGroup,
    rng: np.random.Generator,
    restarts: int = 4,
    max_steps: int = 200,
) -> AdversarySearchResult:
    """Hill-climb permutations to maximize the max channel load.

    Each restart begins from a random derangement and greedily applies
    the best destination swap until no swap improves the (full, exact)
    maximum channel load.  The result is a lower bound on
    :math:`\\gamma_{wc}`; on the torus algorithms of the paper a handful
    of restarts typically reaches the exact worst case.
    """
    if restarts < 1:
        raise ValueError("need at least one restart")
    n = torus.num_nodes
    best_load = -np.inf
    best_perm: np.ndarray | None = None
    total_steps = 0
    for _ in range(restarts):
        perm = rng.permutation(n)
        load = _max_load(torus, group, flows, perm)
        for _ in range(max_steps):
            total_steps += 1
            improved = False
            # sampled steepest ascent: try a random batch of swaps and
            # take the best improving one (full O(N^2) scan per step is
            # exact but slow; a batch keeps the search brisk)
            batch = rng.integers(0, n, size=(4 * n, 2))
            best_delta_load, best_swap = load, None
            for i, j in batch:
                if i == j:
                    continue
                perm[[i, j]] = perm[[j, i]]
                cand = _max_load(torus, group, flows, perm)
                perm[[i, j]] = perm[[j, i]]
                if cand > best_delta_load + SOLVER_DUST:
                    best_delta_load, best_swap = cand, (int(i), int(j))
            if best_swap is not None:
                i, j = best_swap
                perm[[i, j]] = perm[[j, i]]
                load = best_delta_load
                improved = True
            if not improved:
                break
        if load > best_load:
            best_load, best_perm = load, perm.copy()
    assert best_perm is not None
    return AdversarySearchResult(
        load=float(best_load), permutation=best_perm, iterations=total_steps
    )
