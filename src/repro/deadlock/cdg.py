"""Extended channel-dependence graph construction and acyclicity check.

A packet holding (channel, VC) while requesting the next (channel, VC)
of its path creates a resource dependence; deadlock is possible iff the
union of these dependences over *all* allowed paths from *all* sources
contains a cycle (Dally-Seitz [20]).

Translation invariance makes every source's paths translates of the
canonical ones, but the VC schemes are position-dependent (the dateline
bit looks at absolute ring coordinates), so each translated path is
assigned its VCs independently.  Raw hop pairs are deduplicated as
integer codes with ``numpy.unique`` before touching networkx — millions
of raw pairs collapse to a few thousand distinct edges.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.routing.paths import path_channels
from repro.topology.torus import Torus

#: VC indices are packed into 6 bits when encoding dependence edges.
_MAX_VCS = 64


def dependency_graph(
    torus: Torus,
    paths,
    scheme,
    all_sources: bool = True,
) -> nx.DiGraph:
    """Build the extended channel-dependence graph of a path set.

    Parameters
    ----------
    torus:
        Topology.
    paths:
        Iterable of canonical-source paths (every path any packet may
        take from node 0; other sources are covered by translation when
        ``all_sources`` is set).
    scheme:
        VC assignment ``scheme(torus, path) -> [vc per hop]``.
    all_sources:
        If False, only the given paths contribute (useful for
        inspecting a single path's resource footprint).
    """
    edge_codes: list[np.ndarray] = []
    sources = range(torus.num_nodes) if all_sources else (0,)
    span = torus.num_channels * _MAX_VCS
    for path in paths:
        for s in sources:
            moved = (
                path
                if s == 0
                else tuple(int(v) for v in torus.add_nodes(np.asarray(path), s))
            )
            chans = np.asarray(path_channels(torus, moved), dtype=np.int64)
            if chans.size < 2:
                continue
            vcs = np.asarray(scheme(torus, moved), dtype=np.int64)
            if vcs.max() >= _MAX_VCS:
                raise ValueError(f"scheme used VC {vcs.max()} >= {_MAX_VCS}")
            head = chans[:-1] * _MAX_VCS + vcs[:-1]
            tail = chans[1:] * _MAX_VCS + vcs[1:]
            edge_codes.append(head * span + tail)

    graph = nx.DiGraph()
    if not edge_codes:
        return graph
    codes = np.unique(np.concatenate(edge_codes))
    heads, tails = codes // span, codes % span
    for h, t in zip(heads.tolist(), tails.tolist()):
        graph.add_edge(
            (h // _MAX_VCS, h % _MAX_VCS), (t // _MAX_VCS, t % _MAX_VCS)
        )
    return graph


def is_deadlock_free(graph: nx.DiGraph) -> bool:
    """Dally-Seitz criterion: acyclic dependence graph."""
    return nx.is_directed_acyclic_graph(graph)


def find_dependency_cycle(graph: nx.DiGraph):
    """A witness cycle of (channel, vc) resources, or None if acyclic."""
    try:
        return list(nx.find_cycle(graph))
    except nx.NetworkXNoCycle:
        return None
