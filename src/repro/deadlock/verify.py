"""High-level deadlock-freedom verification for routing algorithms."""

from __future__ import annotations

import dataclasses

from repro.constants import SOLVER_DUST
from repro.deadlock.cdg import (
    dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
)
from repro.deadlock.vc import vcs_used
from repro.routing.base import ObliviousRouting
from repro.topology.torus import Torus


@dataclasses.dataclass(frozen=True)
class DeadlockReport:
    """Outcome of a static deadlock-freedom check.

    ``num_vcs`` is the number of virtual channels the scheme actually
    used on this path set; ``cycle`` is a witness dependence cycle when
    the check fails.
    """

    deadlock_free: bool
    num_vcs: int
    num_dependencies: int
    cycle: list | None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.deadlock_free


def verify_deadlock_freedom(
    algorithm: ObliviousRouting,
    scheme,
    support_prune: float = SOLVER_DUST,
) -> DeadlockReport:
    """Check an algorithm's full path support under a VC scheme.

    Collects every path the algorithm can use from the canonical source
    (the support of its path distribution), extends to all sources by
    translation, builds the extended channel-dependence graph, and tests
    acyclicity.
    """
    torus = algorithm.network
    if not isinstance(torus, Torus) or not algorithm.translation_invariant:
        raise TypeError(
            "verification covers translation-invariant torus algorithms"
        )
    paths = []
    for d in range(1, torus.num_nodes):
        for path, prob in algorithm.path_distribution(0, d):
            if prob > support_prune:
                paths.append(path)
    graph = dependency_graph(torus, paths, scheme)
    free = is_deadlock_free(graph)
    return DeadlockReport(
        deadlock_free=free,
        num_vcs=vcs_used(torus, paths, scheme),
        num_dependencies=graph.number_of_edges(),
        cycle=None if free else find_dependency_cycle(graph),
    )
