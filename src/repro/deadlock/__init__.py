"""Deadlock analysis via channel-dependence graphs (paper Section 5.2).

The paper claims simple deadlock-free implementations for its
algorithms: DOR needs two virtual channels per physical channel on a
torus (the Dally-Seitz dateline scheme [20]), VAL/IVAL need four (one
dateline pair per phase), and 2TURN needs four (incrementing the VC set
after each Y-to-X turn; any two-turn path has at most one such turn).

This package verifies those claims statically: a routing algorithm plus
a virtual-channel assignment is deadlock-free iff its *extended channel
dependence graph* — nodes are (channel, VC) pairs, edges connect
consecutively held resources along any allowed path from any source —
is acyclic (Dally-Seitz).
"""

from repro.deadlock.cdg import (
    dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
)
from repro.deadlock.vc import (
    dateline_bits,
    single_vc_scheme,
    turn_increment_scheme,
    vcs_used,
)
from repro.deadlock.verify import DeadlockReport, verify_deadlock_freedom

__all__ = [
    "dependency_graph",
    "find_dependency_cycle",
    "is_deadlock_free",
    "dateline_bits",
    "single_vc_scheme",
    "turn_increment_scheme",
    "vcs_used",
    "DeadlockReport",
    "verify_deadlock_freedom",
]
