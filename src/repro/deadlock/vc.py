"""Virtual-channel assignment schemes.

A scheme maps a concrete path to the VC index its packet occupies on
each hop.  All schemes here compose two mechanisms the paper uses:

* the **dateline bit** within a monotone ring segment — a packet starts
  on the low VC of a ring and moves to the high VC after crossing the
  ring's wrap-around channel, breaking the intra-dimension cycle [20];
* the **set increment** between path phases/turns — DOR never
  increments (one set, 2 VCs), 2TURN increments after a Y-to-X turn
  (two sets, 4 VCs), and because every IVAL path is also a two-turn
  path, the same four VCs cover IVAL (matching the paper's count for
  its phase-based scheme).
"""

from __future__ import annotations

from repro.routing.paths import Path, hop_moves
from repro.topology.torus import Torus


def dateline_bits(torus: Torus, path: Path) -> list[int]:
    """Per-hop dateline bit.

    The dateline of every directed ring sits on its wrap-around channel
    (the hop where the coordinate wraps between ``k-1`` and ``0``).  The
    bit is 0 until the current contiguous same-dimension segment crosses
    the dateline, 1 afterwards; it resets when the path turns into the
    other dimension (a new segment is a new ring traversal).
    """
    moves = hop_moves(torus, path)
    coords = [torus.coords(v) for v in path]
    bits: list[int] = []
    bit = 0
    prev_dim: int | None = None
    for (dim, direction), start in zip(moves, coords[:-1]):
        if dim != prev_dim:
            bit = 0
            prev_dim = dim
        bits.append(bit)
        wraps = (direction == +1 and start[dim] == torus.k - 1) or (
            direction == -1 and start[dim] == 0
        )
        if wraps:
            bit = 1
    return bits


def turn_increment_scheme(torus: Torus, path: Path) -> list[int]:
    """The paper's 2TURN scheme: ``vc = 2 * set + dateline bit``.

    The VC set starts at 0 and increments after every turn from
    dimension 1 (Y) to dimension 0 (X).  Any at-most-two-turn path has
    at most one such turn, so two sets (four VCs) suffice; DOR's X-then-Y
    paths never increment and stay within the first two VCs.
    """
    moves = hop_moves(torus, path)
    bits = dateline_bits(torus, path)
    vcs: list[int] = []
    vc_set = 0
    prev_dim: int | None = None
    for (dim, _), bit in zip(moves, bits):
        if prev_dim == 1 and dim == 0:
            vc_set += 1
        prev_dim = dim
        vcs.append(2 * vc_set + bit)
    return vcs


def single_vc_scheme(torus: Torus, path: Path) -> list[int]:
    """Everything on one virtual channel — deadlocks on any ring with
    wrap-around traffic; used as the negative control in tests."""
    return [0] * (len(path) - 1)


def vcs_used(torus: Torus, paths, scheme) -> int:
    """Number of distinct virtual channels a scheme uses on a path set."""
    seen: set[int] = set()
    for p in paths:
        seen.update(scheme(torus, p))
    return len(seen)
