"""Sparse linear-programming substrate.

The paper solves its routing-design LPs with ILOG CPLEX (Section 5); this
package is the stand-in solver layer, built on SciPy's HiGHS backend
(``scipy.optimize.linprog``).  It provides

* :class:`~repro.lp.model.LinearModel` — an incremental model builder with
  named variable blocks and vectorized (COO triplet) constraint assembly,
  sized for the :math:`O(CN)`-variable problems of Section 4;
* :class:`~repro.lp.model.VariableBlock` — an index handle for an
  n-dimensional block of decision variables;
* :class:`~repro.lp.solve.LPSolution` — solved values, objective, duals;
* :class:`~repro.lp.solve.LPError` — raised on infeasible/unbounded/failed
  solves, carrying the solver status.

Both the bulk array API (used by the optimization core) and a small
expression sugar layer (used by tests and examples) are supported.
"""

from repro.lp.model import LinearModel, VariableBlock, set_solve_observer
from repro.lp.solve import LPError, LPSolution

__all__ = [
    "LinearModel",
    "VariableBlock",
    "LPError",
    "LPSolution",
    "set_solve_observer",
]
