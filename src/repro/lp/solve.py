"""Solution and error types for the LP layer."""

from __future__ import annotations

import dataclasses

import numpy as np


class LPError(RuntimeError):
    """Raised when an LP solve does not produce an optimal solution.

    Attributes
    ----------
    status:
        SciPy/HiGHS status code (0 optimal, 2 infeasible, 3 unbounded, ...).
    message:
        Solver message.
    model:
        Name of the :class:`~repro.lp.model.LinearModel` that failed.
    stats:
        The model's size stats (rows/cols/nonzeros) at solve time.
    """

    def __init__(
        self,
        status: int,
        message: str,
        model: str | None = None,
        stats: dict | None = None,
    ) -> None:
        text = f"LP solve failed (status {status}): {message}"
        if model is not None:
            text = f"LP solve of model {model!r} failed (status {status}): {message}"
        if stats:
            rows = int(stats.get("eq_rows", 0)) + int(stats.get("ub_rows", 0))
            text += (
                f" [LP: {rows} rows x {stats.get('variables', '?')} cols, "
                f"{stats.get('nonzeros', '?')} nnz]"
            )
        super().__init__(text)
        self.status = status
        self.message = message
        self.model = model
        self.stats = dict(stats) if stats else {}


@dataclasses.dataclass
class LPSolution:
    """Result of a successful LP solve.

    Use ``solution[block]`` to read a variable block's values with its
    original shape restored.
    """

    objective: float
    x: np.ndarray
    eq_duals: np.ndarray | None = None
    ub_duals: np.ndarray | None = None
    iterations: int = 0

    def __getitem__(self, block) -> np.ndarray:
        values = self.x[block.offset : block.offset + block.size]
        return values.reshape(block.shape)

    def value(self, cols: np.ndarray, vals: np.ndarray) -> float:
        """Evaluate a linear form ``sum(vals * x[cols])`` at the solution."""
        return float(np.dot(np.asarray(vals, float), self.x[np.asarray(cols)]))
