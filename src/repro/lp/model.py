"""Incremental sparse LP model builder.

Constraints accumulate as COO triplets in Python lists of NumPy arrays and
are concatenated once at solve time — the standard trick for assembling
large sparse systems without quadratic copying (see the HPC guide's advice
to vectorize and avoid per-element work).  The routing-design LPs of the
paper reach hundreds of thousands of rows and millions of nonzeros at
paper scale (Section 4 puts the practical CPLEX limit at "a few million
nonzero terms"); HiGHS handles the same sizes comfortably.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Sequence

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro import obs
from repro.lp.solve import LPError, LPSolution

#: Post-solve observer: called as ``hook(model, solution, assembled)``
#: after every successful solve, where ``assembled`` is the
#: ``(c, a_ub, b_ub, a_eq, b_eq, bounds)`` tuple the solver consumed.
#: Installed by :mod:`repro.verify.certificates` to extract optimality
#: certificates without this layer depending on the verifier.
_SOLVE_OBSERVER = None


def set_solve_observer(hook):
    """Install (or clear, with ``None``) the post-solve observer.

    Returns the previously installed observer so callers can restore it.
    """
    global _SOLVE_OBSERVER
    previous = _SOLVE_OBSERVER
    _SOLVE_OBSERVER = hook
    return previous


@dataclasses.dataclass(frozen=True)
class VariableBlock:
    """Handle to a contiguous block of decision variables.

    Blocks are n-dimensional: ``block[i, j]`` (via :meth:`index`) maps a
    multi-index to the flat column id used in constraints.
    """

    name: str
    offset: int
    shape: tuple[int, ...]

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    def indices(self) -> np.ndarray:
        """All flat column ids of the block, shaped like the block."""
        return np.arange(self.offset, self.offset + self.size).reshape(self.shape)

    def index(self, *multi_index) -> int | np.ndarray:
        """Flat column id(s) for a (possibly vectorized) multi-index."""
        return self.offset + np.ravel_multi_index(multi_index, self.shape)


class LinearModel:
    """A minimize-objective linear program under incremental construction.

    Examples
    --------
    >>> m = LinearModel()
    >>> x = m.add_variables("x", 2)
    >>> m.add_ge([x.index(0), x.index(1)], [1.0, 1.0], 1.0)   # x0 + x1 >= 1
    >>> m.set_objective([x.index(0), x.index(1)], [1.0, 2.0])
    >>> sol = m.solve()
    >>> float(sol.objective)
    1.0
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._num_vars = 0
        self._blocks: dict[str, VariableBlock] = {}
        self._lb = np.zeros(0, dtype=np.float64)
        self._ub = np.zeros(0, dtype=np.float64)
        # COO accumulators: (rows, cols, vals) per appended batch.
        self._eq_batches: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._eq_rhs: list[np.ndarray] = []
        self._num_eq_rows = 0
        self._ub_batches: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._ub_rhs: list[np.ndarray] = []
        self._num_ub_rows = 0
        self._obj_cols: list[np.ndarray] = []
        self._obj_vals: list[np.ndarray] = []
        # Incremental-assembly cache: stacked CSR + rhs per section, with
        # the batch/variable counts it covers.  Re-solving after appending
        # rows (column generation) only stacks the new batches.
        self._asm_cache: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return self._num_vars

    @property
    def num_constraints(self) -> int:
        return self._num_eq_rows + self._num_ub_rows

    def add_variables(
        self,
        name: str,
        shape: int | Sequence[int],
        lb: float = 0.0,
        ub: float = math.inf,
    ) -> VariableBlock:
        """Add a named block of variables with uniform bounds.

        The default bounds ``[0, inf)`` match the nonnegativity of path
        probabilities / flows; pass ``lb=-inf`` for free variables such as
        the matching potentials ``u`` and ``v`` of the worst-case LP (8).
        """
        if name in self._blocks:
            raise ValueError(f"variable block {name!r} already exists")
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ValueError(f"block {name!r} has non-positive dimension: {shape}")
        block = VariableBlock(name=name, offset=self._num_vars, shape=shape)
        self._num_vars += block.size
        self._blocks[name] = block
        self._lb = np.concatenate([self._lb, np.full(block.size, lb)])
        self._ub = np.concatenate([self._ub, np.full(block.size, ub)])
        return block

    def block(self, name: str) -> VariableBlock:
        """Look up a variable block by name."""
        return self._blocks[name]

    def set_bounds(self, block: VariableBlock, lb=None, ub=None) -> None:
        """Override bounds for an entire block (scalar or per-element)."""
        span = slice(block.offset, block.offset + block.size)
        if lb is not None:
            self._lb[span] = lb
        if ub is not None:
            self._ub[span] = ub

    def fix_variables(self, cols, values) -> None:
        """Pin individual variables to exact values via equal bounds."""
        cols = np.atleast_1d(np.asarray(cols, dtype=np.int64))
        values = np.broadcast_to(np.asarray(values, dtype=np.float64), cols.shape)
        self._lb[cols] = values
        self._ub[cols] = values

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    @staticmethod
    def _as_triplet(cols, vals):
        cols = np.atleast_1d(np.asarray(cols, dtype=np.int64))
        vals = np.atleast_1d(np.asarray(vals, dtype=np.float64))
        if vals.shape == (1,) and cols.shape != (1,):
            vals = np.broadcast_to(vals, cols.shape).copy()
        if cols.shape != vals.shape:
            raise ValueError(f"cols {cols.shape} and vals {vals.shape} mismatch")
        return cols, vals

    def add_eq(self, cols, vals, rhs: float) -> None:
        """Add a single equality row ``sum(vals * x[cols]) == rhs``."""
        cols, vals = self._as_triplet(cols, vals)
        rows = np.zeros(cols.shape[0], dtype=np.int64)
        self.add_eq_batch(rows, cols, vals, np.asarray([rhs], dtype=np.float64))

    def add_le(self, cols, vals, rhs: float) -> None:
        """Add a single row ``sum(vals * x[cols]) <= rhs``."""
        cols, vals = self._as_triplet(cols, vals)
        rows = np.zeros(cols.shape[0], dtype=np.int64)
        self.add_le_batch(rows, cols, vals, np.asarray([rhs], dtype=np.float64))

    def add_ge(self, cols, vals, rhs: float) -> None:
        """Add a single row ``sum(vals * x[cols]) >= rhs``."""
        cols, vals = self._as_triplet(cols, vals)
        self.add_le(cols, -vals, -float(rhs))

    def add_eq_batch(self, rows, cols, vals, rhs) -> None:
        """Bulk-add equality rows from COO triplets.

        ``rows`` are batch-local (0-based within this call); ``rhs`` has
        one entry per batch-local row.
        """
        rows, cols, vals, rhs = self._check_batch(rows, cols, vals, rhs)
        self._eq_batches.append((rows + self._num_eq_rows, cols, vals))
        self._eq_rhs.append(rhs)
        self._num_eq_rows += rhs.shape[0]

    def add_le_batch(self, rows, cols, vals, rhs) -> None:
        """Bulk-add ``<=`` rows from COO triplets (see :meth:`add_eq_batch`)."""
        rows, cols, vals, rhs = self._check_batch(rows, cols, vals, rhs)
        self._ub_batches.append((rows + self._num_ub_rows, cols, vals))
        self._ub_rhs.append(rhs)
        self._num_ub_rows += rhs.shape[0]

    def add_ge_batch(self, rows, cols, vals, rhs) -> None:
        """Bulk-add ``>=`` rows (negated into ``<=`` form)."""
        rows = np.asarray(rows, dtype=np.int64)
        vals = -np.asarray(vals, dtype=np.float64)
        rhs = -np.asarray(rhs, dtype=np.float64)
        self.add_le_batch(rows, cols, vals, rhs)

    def _check_batch(self, rows, cols, vals, rhs):
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        rhs = np.atleast_1d(np.asarray(rhs, dtype=np.float64))
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows/cols/vals must have identical shapes")
        if rows.size and (rows.min() < 0 or rows.max() >= rhs.shape[0]):
            raise ValueError("batch row index out of range of rhs")
        if cols.size and (cols.min() < 0 or cols.max() >= self._num_vars):
            raise ValueError("column index out of range; add variables first")
        return rows, cols, vals, rhs

    # ------------------------------------------------------------------
    # Objective and solve
    # ------------------------------------------------------------------
    def set_objective(self, cols, vals) -> None:
        """Set (replacing) the minimization objective ``sum(vals * x[cols])``."""
        cols, vals = self._as_triplet(cols, vals)
        self._obj_cols = [cols]
        self._obj_vals = [vals]

    def add_objective_terms(self, cols, vals) -> None:
        """Accumulate additional terms into the objective."""
        cols, vals = self._as_triplet(cols, vals)
        self._obj_cols.append(cols)
        self._obj_vals.append(vals)

    def _assemble(self):
        c = np.zeros(self._num_vars)
        if self._obj_cols:
            np.add.at(
                c, np.concatenate(self._obj_cols), np.concatenate(self._obj_vals)
            )

        def stack(key, batches, rhs_parts, nrows):
            if nrows == 0:
                return None, None
            cached = self._asm_cache.get(key)
            done = 0
            mat = rhs = None
            if cached is not None and cached[3] == self._num_vars:
                mat, rhs, done, _ = cached
            if done < len(batches):
                rows = np.concatenate([b[0] for b in batches[done:]])
                cols = np.concatenate([b[1] for b in batches[done:]])
                vals = np.concatenate([b[2] for b in batches[done:]])
                rows -= int(mat.shape[0]) if mat is not None else 0
                fresh = sp.csr_matrix(
                    (vals, (rows, cols)),
                    shape=(nrows - (mat.shape[0] if mat is not None else 0),
                           self._num_vars),
                )
                fresh_rhs = np.concatenate(rhs_parts[done:])
                if mat is None:
                    mat, rhs = fresh, fresh_rhs
                else:
                    mat = sp.vstack([mat, fresh], format="csr")
                    rhs = np.concatenate([rhs, fresh_rhs])
                self._asm_cache[key] = (mat, rhs, len(batches), self._num_vars)
            return mat, rhs

        a_eq, b_eq = stack("eq", self._eq_batches, self._eq_rhs, self._num_eq_rows)
        a_ub, b_ub = stack("ub", self._ub_batches, self._ub_rhs, self._num_ub_rows)
        return c, a_ub, b_ub, a_eq, b_eq, np.column_stack([self._lb, self._ub])

    def solve(self, method: str = "highs", attrs: dict | None = None) -> LPSolution:
        """Solve the model; raise :class:`LPError` unless optimal.

        ``attrs`` adds extra attributes to the ``lp.solve`` span —
        column generation tags every master re-solve with its iteration
        and generated-row count, so traces show the loop's shape.
        Re-solving after appending rows reuses the cached constraint
        assembly and only stacks the new batches (the warm-start path).
        """
        stats = self.stats()
        t0 = time.perf_counter()
        with obs.span(
            "lp.solve",
            model=self.name,
            method=method,
            rows=stats["eq_rows"] + stats["ub_rows"],
            cols=stats["variables"],
            nnz=stats["nonzeros"],
            **(attrs or {}),
        ) as sp_solve:
            c, a_ub, b_ub, a_eq, b_eq, bounds = self._assemble()
            res = linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method=method,
            )
            sp_solve.set(
                status=int(res.status), iterations=int(getattr(res, "nit", 0))
            )
        obs.metric_count("lp.solves", status=int(res.status))
        obs.metric_count("lp.iterations", int(getattr(res, "nit", 0)))
        obs.metric_observe("lp.nonzeros", stats["nonzeros"])
        obs.metric_observe(
            "lp.rows", stats["eq_rows"] + stats["ub_rows"]
        )
        obs.metric_observe(
            "lp.solve_seconds", time.perf_counter() - t0, volatile=True
        )
        if res.status != 0:
            raise LPError(res.status, res.message, model=self.name, stats=stats)
        solution = LPSolution(
            objective=float(res.fun),
            x=np.asarray(res.x, dtype=np.float64),
            eq_duals=(
                np.asarray(res.eqlin.marginals) if a_eq is not None else None
            ),
            ub_duals=(
                np.asarray(res.ineqlin.marginals) if a_ub is not None else None
            ),
            iterations=int(getattr(res, "nit", 0)),
        )
        if _SOLVE_OBSERVER is not None:
            _SOLVE_OBSERVER(self, solution, (c, a_ub, b_ub, a_eq, b_eq, bounds))
        return solution

    def stats(self) -> dict:
        """Model-size summary used in logs and reports."""
        nnz = sum(b[2].shape[0] for b in self._eq_batches) + sum(
            b[2].shape[0] for b in self._ub_batches
        )
        return {
            "name": self.name,
            "variables": self._num_vars,
            "eq_rows": self._num_eq_rows,
            "ub_rows": self._num_ub_rows,
            "nonzeros": nnz,
        }
