"""Fault model: failed channels/nodes and degraded networks.

The paper's guarantees are stated for a pristine torus; this layer asks
the production question instead — how much of the guarantee survives
link and router failures?  A :class:`FaultSet` names the dead channels
and nodes, and :func:`degrade` produces an ordinary
:class:`~repro.topology.network.Network` with the surviving channels
renumbered and the distance/incidence tables recomputed (BFS, since
failures break the torus' closed-form distances along with its
translation symmetry).  Everything downstream — the general worst-case
evaluator, the simulator, the verify invariants — runs on the degraded
instance unchanged.

Fault selection comes in two flavours: :func:`random_faults` (seeded,
connectivity-preserving rejection sampling) and :func:`adversarial_faults`
(greedy removal of the most-loaded channels of a concrete routing, the
worst link failures *for that algorithm*).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Iterable

import numpy as np

from repro import obs
from repro.topology.network import Network


class DisconnectedNetworkError(ValueError):
    """A fault set disconnects some surviving commodity."""


@dataclasses.dataclass(frozen=True)
class FaultSet:
    """An immutable set of failed channel indices and node ids.

    Channels are indices into the *original* network's channel arrays;
    nodes are original node ids.  A failed node implies every channel
    incident to it is dead (``degrade`` removes them), and the node
    neither injects nor receives traffic.
    """

    channels: tuple[int, ...] = ()
    nodes: tuple[int, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self, "channels", tuple(sorted({int(c) for c in self.channels}))
        )
        object.__setattr__(
            self, "nodes", tuple(sorted({int(v) for v in self.nodes}))
        )
        if self.channels and self.channels[0] < 0:
            raise ValueError("channel indices must be nonnegative")
        if self.nodes and self.nodes[0] < 0:
            raise ValueError("node ids must be nonnegative")

    def __bool__(self) -> bool:
        return bool(self.channels or self.nodes)

    @property
    def num_faults(self) -> int:
        return len(self.channels) + len(self.nodes)

    def digest(self) -> str:
        """Content hash — extends design-cache keys (see DESIGN.md)."""
        blob = json.dumps(
            {"channels": list(self.channels), "nodes": list(self.nodes)},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def describe(self) -> str:
        parts = []
        if self.channels:
            parts.append(f"{len(self.channels)} channel(s)")
        if self.nodes:
            parts.append(f"{len(self.nodes)} node(s)")
        return " + ".join(parts) if parts else "no faults"


class DegradedNetwork(Network):
    """A network with a :class:`FaultSet` applied.

    Surviving channels are renumbered densely (``0..C'-1``);
    :attr:`original_channel` maps new index -> original index and
    :attr:`channel_map` maps original -> new (``-1`` for dead channels).
    Node ids are preserved — a failed node stays in the id space with no
    incident channels, so traffic matrices and flow tensors keep their
    original shape.  Distances come from the base class' BFS, recomputed
    on the surviving graph.
    """

    def __init__(self, base: Network, faults: FaultSet) -> None:
        dead_nodes = set(faults.nodes)
        for v in dead_nodes:
            if v >= base.num_nodes:
                raise ValueError(f"failed node {v} not in {base!r}")
        for c in faults.channels:
            if c >= base.num_channels:
                raise ValueError(f"failed channel {c} not in {base!r}")
        dead_channels = set(faults.channels)
        for c in range(base.num_channels):
            if (
                int(base.channel_src[c]) in dead_nodes
                or int(base.channel_dst[c]) in dead_nodes
            ):
                dead_channels.add(c)

        surviving = [
            c for c in range(base.num_channels) if c not in dead_channels
        ]
        if not surviving:
            raise DisconnectedNetworkError(
                f"faults {faults.describe()} kill every channel of {base!r}"
            )
        specs = [
            (
                int(base.channel_src[c]),
                int(base.channel_dst[c]),
                float(base.bandwidth[c]),
            )
            for c in surviving
        ]
        super().__init__(
            base.num_nodes, specs, name=f"{base.name}-degraded"
        )
        self.base = base
        self.faults = faults
        self.original_channel = np.asarray(surviving, dtype=np.int64)
        channel_map = np.full(base.num_channels, -1, dtype=np.int64)
        channel_map[self.original_channel] = np.arange(len(surviving))
        self.channel_map = channel_map
        alive = np.ones(base.num_nodes, dtype=bool)
        alive[list(dead_nodes)] = False
        self.alive = alive

    @property
    def alive_nodes(self) -> np.ndarray:
        """Ids of nodes that survived the fault set."""
        return np.flatnonzero(self.alive)

    def validate_degraded_connected(self) -> None:
        """Raise unless every *surviving* ordered pair is reachable.

        The base :meth:`~repro.topology.network.Network.validate_connected`
        would reject any network with a failed node (it is unreachable by
        construction); this checks the pairs that still carry traffic.
        """
        dist = self.distance_matrix()
        sub = dist[np.ix_(self.alive, self.alive)]
        if (sub < 0).any():
            bad = np.argwhere(sub < 0)[0]
            nodes = self.alive_nodes
            raise DisconnectedNetworkError(
                f"faults {self.faults.describe()} disconnect "
                f"{int(nodes[bad[0]])} -> {int(nodes[bad[1]])}"
            )


def degrade(
    network: Network, faults: FaultSet, require_connected: bool = True
) -> DegradedNetwork:
    """Apply ``faults`` to ``network`` and return the masked network.

    With ``require_connected`` (the default) the result is checked to
    keep every surviving node pair mutually reachable, raising
    :class:`DisconnectedNetworkError` otherwise — the precondition for
    the ``detour`` reroute policy to exist at all.
    """
    degraded = DegradedNetwork(network, faults)
    obs.metric_count("faults.degrades")
    if require_connected:
        degraded.validate_degraded_connected()
    return degraded


def _keeps_connected(network: Network, channels: Iterable[int]) -> bool:
    try:
        degrade(network, FaultSet(channels=tuple(channels)))
    except DisconnectedNetworkError:
        return False
    return True


def random_faults(
    network: Network,
    rng: np.random.Generator,
    num_channels: int,
    require_connected: bool = True,
    max_tries: int = 200,
) -> FaultSet:
    """Sample ``num_channels`` failed channels uniformly at random.

    With ``require_connected`` the sample is drawn incrementally —
    each additional failure is rejected (and redrawn) if it would
    disconnect a surviving pair — so the returned prefix sequence is
    itself a valid degradation schedule.
    """
    if not 0 <= num_channels <= network.num_channels:
        raise ValueError(
            f"num_channels must be in [0, {network.num_channels}]"
        )
    chosen: list[int] = []
    for _ in range(num_channels):
        for _ in range(max_tries):
            candidate = int(rng.integers(network.num_channels))
            if candidate in chosen:
                continue
            if not require_connected or _keeps_connected(
                network, chosen + [candidate]
            ):
                chosen.append(candidate)
                break
        else:
            raise DisconnectedNetworkError(
                f"could not extend fault set past {len(chosen)} channels "
                f"without disconnecting {network!r}"
            )
    return FaultSet(channels=tuple(chosen))


def adversarial_faults(
    network: Network,
    full_flows: np.ndarray,
    num_channels: int,
    require_connected: bool = True,
) -> FaultSet:
    """Greedy worst link failures for a concrete routing.

    Ranks channels by the worst-case (assignment) load the routing
    places on them and kills the most-loaded ones first, skipping any
    kill that would disconnect the network.  This is the adversary the
    robustness sweep should be judged against: random failures mostly
    hit lightly-loaded links.
    """
    from scipy.optimize import linear_sum_assignment

    if not 0 <= num_channels <= network.num_channels:
        raise ValueError(
            f"num_channels must be in [0, {network.num_channels}]"
        )
    loads = np.empty(network.num_channels)
    for c in range(network.num_channels):
        weights = full_flows[:, :, c]
        rows, cols = linear_sum_assignment(weights, maximize=True)
        loads[c] = weights[rows, cols].sum() / float(network.bandwidth[c])
    ranked = np.argsort(-loads, kind="stable")
    chosen: list[int] = []
    for candidate in ranked:
        if len(chosen) == num_channels:
            break
        if not require_connected or _keeps_connected(
            network, chosen + [int(candidate)]
        ):
            chosen.append(int(candidate))
    if len(chosen) < num_channels:
        raise DisconnectedNetworkError(
            f"only {len(chosen)} of {num_channels} adversarial failures "
            f"possible without disconnecting {network!r}"
        )
    return FaultSet(channels=tuple(chosen))
