"""Fault injection and degraded-topology robustness (``repro.faults``).

Three layers (see DESIGN.md, "Fault tolerance"):

* the fault model — :class:`FaultSet`, :func:`degrade`, plus seeded
  random and adversarial fault pickers;
* reroute policies — :func:`degrade_routing` wraps a pristine-network
  algorithm as an ordinary :class:`~repro.routing.base.ObliviousRouting`
  on the degraded network (``renormalize`` or ``detour``);
* mid-run channel kills in the simulator live in :mod:`repro.sim`
  (``SimulationConfig.fault_schedule``), not here — this package is the
  static-topology half of the story.

The ``faults`` experiment (CLI: ``repro-experiments run faults``)
sweeps failure count against guaranteed and saturation throughput.
"""

from repro.faults.model import (
    DegradedNetwork,
    DisconnectedNetworkError,
    FaultSet,
    adversarial_faults,
    degrade,
    random_faults,
)
from repro.faults.reroute import (
    REROUTE_MODES,
    DegradedRouting,
    DisconnectedCommodityError,
    degrade_routing,
)

__all__ = [
    "REROUTE_MODES",
    "DegradedNetwork",
    "DegradedRouting",
    "DisconnectedCommodityError",
    "DisconnectedNetworkError",
    "FaultSet",
    "adversarial_faults",
    "degrade",
    "degrade_routing",
    "random_faults",
]
