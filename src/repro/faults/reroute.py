"""Routing degradation policies: renormalize and detour.

A :class:`DegradedRouting` adapts an oblivious routing algorithm that
was designed for the pristine network to a degraded one, and is itself
an ordinary :class:`~repro.routing.base.ObliviousRouting` — so the
general worst-case evaluator, the packet simulator and the
``repro.verify`` invariants all run on the degraded instance unchanged.

Two policies (paper-agnostic, standard practice in fault studies):

* ``renormalize`` — drop every path that crosses a failed channel or
  visits a failed node from the pair's distribution and renormalize the
  surviving probabilities.  Honest about coverage: a commodity whose
  whole distribution died raises :class:`DisconnectedCommodityError`
  (deterministic single-path algorithms like DOR lose commodities on
  the *first* link failure).
* ``detour`` — splice a deterministic shortest-path detour (BFS
  distances on the degraded network, smallest-node-id tie-break) around
  every failed hop, then remove the loops the splice may create
  (paper Figure 3 machinery).  Always yields a full distribution as
  long as the degraded network is connected.

Failures break translation invariance, so degraded routings always use
the general ``(N, N, C)`` flow representation.
"""

from __future__ import annotations

import numpy as np

from repro.faults.model import DegradedNetwork
from repro.routing import paths as pathmod
from repro.routing.base import ObliviousRouting
from repro.routing.paths import Path

#: Supported reroute policies (CLI ``--reroute`` choices).
REROUTE_MODES = ("renormalize", "detour")


class DisconnectedCommodityError(RuntimeError):
    """A commodity has no surviving path under the reroute policy."""


class DegradedRouting(ObliviousRouting):
    """An oblivious routing adapted to a degraded network.

    Parameters
    ----------
    base_routing:
        The algorithm designed for the pristine network; its path
        distributions are consulted lazily, per pair.
    degraded:
        The masked network produced by :func:`repro.faults.degrade`.
    mode:
        One of :data:`REROUTE_MODES`.
    """

    translation_invariant = False

    def __init__(
        self,
        base_routing: ObliviousRouting,
        degraded: DegradedNetwork,
        mode: str = "detour",
    ) -> None:
        if mode not in REROUTE_MODES:
            raise ValueError(
                f"unknown reroute mode {mode!r}; choose from {REROUTE_MODES}"
            )
        if degraded.base is not base_routing.network:
            raise ValueError(
                "degraded network was not derived from the base routing's "
                f"network ({degraded.base!r} vs {base_routing.network!r})"
            )
        super().__init__(degraded, name=f"{base_routing.name}+{mode}")
        self.base_routing = base_routing
        self.mode = mode
        self._degraded = degraded
        self._cache: dict[tuple[int, int], list[tuple[Path, float]]] = {}

    # ------------------------------------------------------------------
    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        net = self._degraded
        if not (net.alive[src] and net.alive[dst]):
            raise DisconnectedCommodityError(
                f"commodity ({src}, {dst}) has a failed endpoint"
            )
        key = (src, dst)
        if key not in self._cache:
            base = self.base_routing.path_distribution(src, dst)
            if self.mode == "renormalize":
                dist = self._renormalize(src, dst, base)
            else:
                dist = self._detour(src, dst, base)
            self._cache[key] = dist
        return list(self._cache[key])

    # ------------------------------------------------------------------
    def _renormalize(
        self, src: int, dst: int, base: list[tuple[Path, float]]
    ) -> list[tuple[Path, float]]:
        net = self._degraded
        kept = [
            (path, w)
            for path, w in base
            if all(
                net.has_channel(a, b) for a, b in zip(path[:-1], path[1:])
            )
        ]
        total = sum(w for _, w in kept)
        if not kept or total <= 0.0:
            raise DisconnectedCommodityError(
                f"{self.base_routing.name}: every path of commodity "
                f"({src}, {dst}) crosses a fault; renormalize cannot "
                "reroute it (try reroute='detour')"
            )
        return [(path, w / total) for path, w in kept]

    def _detour(
        self, src: int, dst: int, base: list[tuple[Path, float]]
    ) -> list[tuple[Path, float]]:
        net = self._degraded
        merged: dict[Path, float] = {}
        for path, w in base:
            # Surviving waypoints of the planned path; endpoints are
            # alive (checked by the caller), dead intermediates are
            # simply skipped and bridged by the same detour machinery.
            waypoints = [v for v in path if net.alive[v]]
            out = [src]
            for nxt in waypoints[1:]:
                cur = out[-1]
                if nxt == cur:
                    continue
                if net.has_channel(cur, nxt):
                    out.append(nxt)
                else:
                    out.extend(self._shortest_hops(cur, nxt))
            spliced = pathmod.remove_loops(tuple(out))
            merged[spliced] = merged.get(spliced, 0.0) + float(w)
        total = sum(merged.values())
        return [(path, w / total) for path, w in sorted(merged.items())]

    def _shortest_hops(self, src: int, dst: int) -> list[int]:
        """Nodes after ``src`` on the deterministic shortest detour.

        Follows BFS distances on the degraded network, breaking ties
        toward the smallest next-hop node id, so reroutes are
        reproducible across runs and backends.
        """
        net = self._degraded
        dist = net.distance_matrix()
        if dist[src, dst] < 0:
            raise DisconnectedCommodityError(
                f"no surviving route from {src} to {dst} "
                f"(faults: {net.faults.describe()})"
            )
        hops: list[int] = []
        cur = src
        while cur != dst:
            step = [
                int(v)
                for v in net.neighbors(cur)
                if dist[v, dst] == dist[cur, dst] - 1
            ]
            cur = min(step)
            hops.append(cur)
        return hops

    # ------------------------------------------------------------------
    def full_flows(self) -> np.ndarray:
        """``(N, N, C)`` flows over surviving commodities.

        Commodities with a failed endpoint carry no traffic and stay
        zero, so :func:`repro.metrics.general_worst_case_load` evaluates
        the degraded instance without modification.
        """
        net = self._degraded
        flows = np.zeros((net.num_nodes, net.num_nodes, net.num_channels))
        for s in net.alive_nodes:
            for d in net.alive_nodes:
                if s == d:
                    continue
                for path, prob in self.path_distribution(int(s), int(d)):
                    for c in pathmod.path_channels(net, path):
                        flows[s, d, c] += prob
        return flows

    def validate(self, pairs=None, tol=None) -> None:
        """Base-class validation restricted to surviving commodities."""
        if pairs is None:
            alive = [int(v) for v in self._degraded.alive_nodes]
            anchor = alive[0]
            pairs = [(anchor, d) for d in alive]
            n = len(alive)
            pairs += [(s, alive[(i * 2 + 1) % n]) for i, s in enumerate(alive)]
        if tol is None:
            super().validate(pairs)
        else:
            super().validate(pairs, tol)


def degrade_routing(
    base_routing: ObliviousRouting,
    degraded: DegradedNetwork,
    mode: str = "detour",
) -> DegradedRouting:
    """Adapt ``base_routing`` to ``degraded`` under reroute ``mode``."""
    return DegradedRouting(base_routing, degraded, mode)
