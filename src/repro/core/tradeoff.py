"""Locality-versus-throughput tradeoff sweeps (Figures 1, 4 and 6).

Each point of the paper's optimal tradeoff curves is one LP solve with a
pinned average path length; sweeping the pin traces the Pareto frontier
of feasible oblivious routing algorithms.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.average_case import design_average_case
from repro.core.worst_case import design_worst_case
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """One point of an optimal tradeoff curve.

    ``normalized_length`` is ``H_avg / H_min`` (vertical axis);
    ``load`` is the optimized cost (worst-case or sample-average max
    channel load), so ``1 / load`` is the throughput (horizontal axis
    after normalizing by capacity).
    """

    normalized_length: float
    load: float

    @property
    def throughput(self) -> float:
        return 1.0 / self.load


def worst_case_tradeoff(
    torus: Torus,
    normalized_lengths: Sequence[float],
    group: TranslationGroup | None = None,
    locality_sense: str = "==",
    method: str = "auto",
    solver: str | None = None,
) -> list[TradeoffPoint]:
    """Optimal worst-case throughput at each pinned locality (Fig. 1).

    ``normalized_lengths`` are multiples of the minimal average path
    length (e.g. ``numpy.linspace(1.0, 2.0, 21)``).  ``method`` picks
    the worst-case formulation (``"auto"``/``"full"``/``"colgen"``, see
    :func:`repro.core.worst_case.design_worst_case`); ``solver`` the LP
    backend.
    """
    if group is None:
        group = TranslationGroup(torus)
    h_min = torus.mean_min_distance()
    points = []
    for ratio in normalized_lengths:
        design = design_worst_case(
            torus,
            locality_hops=float(ratio) * h_min,
            locality_sense=locality_sense,
            group=group,
            method=method,
            solver=solver,
        )
        points.append(
            TradeoffPoint(normalized_length=float(ratio), load=design.worst_case_load)
        )
    return points


def average_case_tradeoff(
    torus: Torus,
    sample: Sequence[np.ndarray],
    normalized_lengths: Sequence[float],
    group: TranslationGroup | None = None,
    locality_sense: str = "==",
    method: str = "highs-ipm",
) -> list[TradeoffPoint]:
    """Optimal average-case throughput at each pinned locality (Fig. 6)."""
    if group is None:
        group = TranslationGroup(torus)
    h_min = torus.mean_min_distance()
    points = []
    for ratio in normalized_lengths:
        design = design_average_case(
            torus,
            sample,
            locality_hops=float(ratio) * h_min,
            locality_sense=locality_sense,
            group=group,
            method=method,
        )
        points.append(
            TradeoffPoint(normalized_length=float(ratio), load=design.average_load)
        )
    return points


def locality_range_at_worst_case(
    torus: Torus,
    worst_case_load_bound: float,
    group: TranslationGroup | None = None,
    solver: str = "highs-ipm",
) -> tuple[float, float]:
    """Locality span of the feasible region at a worst-case level.

    Figure 1 shades the set of *feasible* algorithms; at a given
    worst-case load bound the achievable normalized path lengths form an
    interval.  Both endpoints are LPs: minimize / maximize ``H_avg``
    subject to the worst-case constraints with ``w`` capped.
    """
    if group is None:
        group = TranslationGroup(torus)
    from repro.core.worst_case import _build

    h_min = torus.mean_min_distance()
    endpoints = []
    for sign in (+1.0, -1.0):
        prob, w = _build(torus, group, None, "==")
        prob.model.set_bounds(w, ub=float(worst_case_load_bound))
        cols, vals = prob.locality_terms()
        prob.model.set_objective(cols, sign * vals)
        sol = prob.model.solve(method=solver)
        endpoints.append(sign * sol.objective / h_min)
    return endpoints[0], endpoints[1]


def optimal_locality_at_max_worst_case(
    torus: Torus,
    group: TranslationGroup | None = None,
    method: str = "auto",
    solver: str | None = None,
) -> float:
    """Normalized locality of the best worst-case-optimal algorithm —
    the "optimal" series of Figure 4 (about 1.48 for the 8-ary 2-cube,
    Section 5.2)."""
    design = design_worst_case(
        torus, minimize_locality=True, group=group, method=method, solver=solver
    )
    return design.avg_path_length / torus.mean_min_distance()
