"""Canonical-source multicommodity-flow skeleton (paper Section 4).

Instead of a probability per path (exponentially many), the LP carries
one flow variable per (commodity, channel) pair, with flow conservation
at every node.  Vertex symmetry of the torus cuts the commodity space to
destinations of a single canonical source (node 0): ``x[t, c]`` is the
expected number of times a packet of the canonical commodity ``(0, t)``
crosses channel ``c``.  Commodity ``(s, s+t)`` then crosses channel
``c + s`` equally often, so every metric of every commodity is a lookup
into this one ``(N, C)`` table.

Restricting to translation-invariant algorithms loses nothing: all cost
functions in the paper are convex and translation-invariant, so
averaging any solution over the translation group preserves feasibility
and never increases cost (the symmetry argument of Section 4).
"""

from __future__ import annotations

import numpy as np

from repro.lp import LinearModel, VariableBlock
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus


class CanonicalFlowProblem:
    """LP skeleton shared by the capacity / worst-case / average-case
    design problems: flow variables plus conservation constraints.

    Parameters
    ----------
    torus:
        Vertex-transitive target topology.
    group:
        Precomputed translation tables (built on demand if omitted).
    name:
        Model name for diagnostics.
    """

    def __init__(
        self,
        torus: Torus,
        group: TranslationGroup | None = None,
        name: str = "routing-design",
    ) -> None:
        self.torus = torus
        self.group = group if group is not None else TranslationGroup(torus)
        self.model = LinearModel(name)
        n, c = torus.num_nodes, torus.num_channels
        #: flow variables x[t, c] for canonical commodities (0, t)
        self.x: VariableBlock = self.model.add_variables("flow", (n, c))
        # commodity 0 -> 0 carries no flow
        self.model.fix_variables(self.x.indices()[0], 0.0)
        self._add_conservation()

    # ------------------------------------------------------------------
    def _add_conservation(self) -> None:
        """Flow conservation: for every commodity ``t != 0`` and node
        ``v``, (flow out) - (flow in) = [v == 0] - [v == t]."""
        torus = self.torus
        n, c = torus.num_nodes, torus.num_channels
        dests = np.arange(1, n)

        # entries: (+1 at (t, src[ch]), -1 at (t, dst[ch])) for all t, ch
        ch = np.arange(c)
        t_grid = np.repeat(dests, c)  # (n-1)*c
        ch_grid = np.tile(ch, n - 1)
        cols = self.x.index(t_grid, ch_grid)
        rows_out = (t_grid - 1) * n + torus.channel_src[ch_grid]
        rows_in = (t_grid - 1) * n + torus.channel_dst[ch_grid]

        rhs = np.zeros((n - 1) * n)
        rhs[(dests - 1) * n + 0] = 1.0  # source emits one unit
        rhs[(dests - 1) * n + dests] = -1.0  # destination absorbs it

        self.model.add_eq_batch(
            np.concatenate([rows_out, rows_in]),
            np.concatenate([cols, cols]),
            np.concatenate([np.ones_like(cols, dtype=float), -np.ones_like(cols, dtype=float)]),
            rhs,
        )

    # ------------------------------------------------------------------
    # Reusable linear forms
    # ------------------------------------------------------------------
    def locality_terms(self) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of the average-path-length form (eq. 5).

        Every unit of flow is one expected hop, so
        ``H_avg = sum(x) / N``.
        """
        cols = self.x.indices().ravel()
        vals = np.full(cols.shape, 1.0 / self.torus.num_nodes)
        return cols, vals

    def add_locality_constraint(self, hops: float, sense: str = "==") -> None:
        """Constrain ``H_avg`` (in hops) — the side constraint of
        problems (10) and (15).  ``sense`` may be '==' or '<='."""
        cols, vals = self.locality_terms()
        if sense == "==":
            self.model.add_eq(cols, vals, float(hops))
        elif sense == "<=":
            self.model.add_le(cols, vals, float(hops))
        else:
            raise ValueError(f"sense must be '==' or '<=', got {sense!r}")

    def uniform_load_terms(self, cls: int) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of :math:`\\gamma_c(R, U)` for channels of
        direction class ``cls``.

        Under uniform traffic every channel of a class carries the same
        load: summing the canonical flows over the whole class and all
        destinations and dividing by N.
        """
        members = self.torus.class_members(cls)
        cols = self.x.indices()[:, members].ravel()
        vals = np.full(cols.shape, 1.0 / self.torus.num_nodes)
        return cols, vals

    def worst_case_constraints(self, bound_cols_val: tuple[int, float]) -> None:
        """Install the matching-dual worst-case constraints of LP (8).

        For each representative channel :math:`\\hat c` (one per
        direction class — translation invariance makes the classes
        equivalent), adds potentials ``u_s``, ``v_d`` with

        .. math:: x_{d-s, \\hat c - s} \\le v_d - u_s \\quad \\forall s, d

        and ties the potential gap to the bound variable:
        :math:`\\sum_d v_d - \\sum_s u_s = b_{\\hat c} \\, w`.

        Parameters
        ----------
        bound_cols_val:
            ``(column, coefficient)`` of the load-bound variable ``w``
            (coefficient lets callers scale, e.g. for interpolations).
        """
        torus, group, model = self.torus, self.group, self.model
        n = torus.num_nodes
        ncls = torus.num_classes
        w_col, w_coef = bound_cols_val
        for rep in torus.class_representatives():
            rep = int(rep)
            u = model.add_variables(f"u[{rep}]", n, lb=-np.inf)
            v = model.add_variables(f"v[{rep}]", n, lb=-np.inf)

            # constraint grid over (s, t): d = s + t
            s_grid = np.repeat(np.arange(n), n)
            t_grid = np.tile(np.arange(n), n)
            d_grid = group.node_sum[s_grid, t_grid]
            # canonical channel seen from source s: rep - s
            node = rep // ncls
            chan_from_s = group.node_diff[node, s_grid] * ncls + rep % ncls

            rows = np.arange(n * n)
            x_cols = self.x.index(t_grid, chan_from_s)
            v_cols = v.offset + d_grid
            u_cols = u.offset + s_grid
            model.add_le_batch(
                np.concatenate([rows, rows, rows]),
                np.concatenate([x_cols, v_cols, u_cols]),
                np.concatenate(
                    [np.ones(n * n), -np.ones(n * n), np.ones(n * n)]
                ),
                np.zeros(n * n),
            )
            # sum(v) - sum(u) - b*w = 0
            model.add_eq(
                np.concatenate([v.indices(), u.indices(), [w_col]]),
                np.concatenate(
                    [np.ones(n), -np.ones(n), [-torus.bandwidth[rep] * w_coef]]
                ),
                0.0,
            )

    def average_case_constraints(
        self, sample, bound_block: VariableBlock
    ) -> None:
        """Install the sampled average-case load constraints (eq. 9).

        For sample matrix :math:`\\Lambda_j` and every channel ``c``:

        .. math::
            \\sum_{s,d} \\lambda_{s,d}\\, x_{d-s, c-s} \\le b_c\\, m_j

        Rows stay sparse because the samplers produce sparse matrices
        (Birkhoff combinations of a few permutations).
        """
        torus, group, model = self.torus, self.group, self.model
        n, c = torus.num_nodes, torus.num_channels
        if bound_block.size != len(sample):
            raise ValueError("bound block must have one variable per sample")
        for j, lam in enumerate(sample):
            s_nz, d_nz = np.nonzero(lam)
            vals_nz = lam[s_nz, d_nz]
            t_nz = group.node_diff[d_nz, s_nz]
            # For every canonical channel c' and every nonzero (s, d):
            # network channel row = chan_shift[c', s], variable x[t, c'].
            cprime = np.arange(c)
            rows = group.chan_shift[:, s_nz]  # (c, nnz)
            cols = self.x.index(
                np.broadcast_to(t_nz, (c, t_nz.shape[0])),
                np.broadcast_to(cprime[:, None], (c, t_nz.shape[0])),
            )
            vals = np.broadcast_to(vals_nz, (c, vals_nz.shape[0]))
            # bound variable entries: row per channel
            m_rows = np.arange(c)
            m_cols = np.full(c, bound_block.offset + j)
            m_vals = -torus.bandwidth
            model.add_le_batch(
                np.concatenate([rows.ravel(), m_rows]),
                np.concatenate([cols.ravel(), m_cols]),
                np.concatenate([vals.ravel().astype(float), m_vals]),
                np.zeros(c),
            )

    # ------------------------------------------------------------------
    def flows_from(self, solution) -> np.ndarray:
        """Extract the ``(N, C)`` canonical flow table from a solution,
        clipping solver dust below zero."""
        return np.clip(solution[self.x], 0.0, None)
