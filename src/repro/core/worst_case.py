"""Worst-case-optimal routing design — LP (8), problem (10).

The worst-case channel load :math:`\\gamma_{wc}(R)` is the maximum,
over all permutations, of the maximum channel load.  The paper converts
the exponential number of permutation constraints into a polynomial LP
through the dual of the maximum-weight matching problem (Appendix):
per channel, potentials ``u_s`` / ``v_d`` upper-bound every commodity's
load contribution, and the total potential gap bounds the matching
weight.  Minimizing that bound designs the routing algorithm.

A second, lexicographic stage recovers maximum locality among the
worst-case-optimal algorithms — the designs whose existence motivates
IVAL and 2TURN (Section 5.2).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.constants import LEXICOGRAPHIC_SLACK, SOLVER_DUST
from repro.core.flows import CanonicalFlowProblem
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus

__all__ = ["LEXICOGRAPHIC_SLACK", "WorstCaseDesign", "design_worst_case"]


@dataclasses.dataclass(frozen=True)
class WorstCaseDesign:
    """A worst-case-optimal (optionally locality-constrained) design.

    ``worst_case_load`` is the worst-case load of the *returned* flows:
    the LP bound variable ``w`` for a single-stage solve, or the exact
    re-measured load of the stage-2 flows for a lexicographic solve (the
    stage-2 model only caps ``w``, so its own ``w`` value need not be
    tight).  ``avg_path_length`` is in hops.  Use
    :func:`repro.core.recovery.routing_from_flows` to materialize the
    flows as a runnable routing algorithm.
    """

    flows: np.ndarray
    worst_case_load: float
    avg_path_length: float
    model_stats: dict

    @property
    def worst_case_throughput(self) -> float:
        return 1.0 / self.worst_case_load


def _build(
    torus: Torus,
    group: TranslationGroup | None,
    locality_hops: float | None,
    locality_sense: str,
):
    prob = CanonicalFlowProblem(torus, group, name="worst-case-design")
    w = prob.model.add_variables("w", 1)
    prob.worst_case_constraints((int(w.indices()[0]), 1.0))
    if locality_hops is not None:
        prob.add_locality_constraint(locality_hops, locality_sense)
    return prob, w


def design_worst_case(
    torus: Torus,
    locality_hops: float | None = None,
    locality_sense: str = "==",
    minimize_locality: bool = False,
    group: TranslationGroup | None = None,
    method: str = "highs-ipm",
) -> WorstCaseDesign:
    """Design a routing algorithm minimizing worst-case channel load.

    Parameters
    ----------
    torus:
        Target topology.
    locality_hops:
        Optional average-path-length side constraint ``H_avg = L``
        (problem (10)); in hops, not normalized.
    locality_sense:
        ``'=='`` (the paper's formulation) or ``'<='``.
    minimize_locality:
        Run a second, lexicographic solve that minimizes ``H_avg``
        subject to the optimal ``w`` — the "optimal locality at maximum
        worst-case throughput" point of Figures 1 and 4.
    group:
        Reused translation tables (built on demand).
    """
    if group is None:
        group = TranslationGroup(torus)
    prob, w = _build(torus, group, locality_hops, locality_sense)
    prob.model.set_objective(w.indices(), [1.0])
    sol = prob.model.solve(method=method)
    wc_load = float(sol[w][0])

    if minimize_locality:
        prob, w = _build(torus, group, locality_hops, locality_sense)
        prob.model.set_bounds(
            w, ub=wc_load * (1 + LEXICOGRAPHIC_SLACK) + SOLVER_DUST
        )
        cols, vals = prob.locality_terms()
        prob.model.set_objective(cols, vals)
        sol = prob.model.solve(method=method)

    flows = prob.flows_from(sol)
    if minimize_locality:
        # Report the load actually achieved by the stage-2 flows, not
        # the stage-1 bound: the returned design must be self-consistent
        # (flows, load and model_stats all from the same solve).
        from repro.metrics.worst_case_eval import worst_case_load

        wc_load = worst_case_load(flows, torus, group).load
    return WorstCaseDesign(
        flows=flows,
        worst_case_load=wc_load,
        avg_path_length=float(flows.sum() / torus.num_nodes),
        model_stats=prob.model.stats(),
    )
