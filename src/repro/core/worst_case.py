"""Worst-case-optimal routing design — LP (8), problem (10).

The worst-case channel load :math:`\\gamma_{wc}(R)` is the maximum,
over all permutations, of the maximum channel load.  Two equivalent
formulations are implemented behind one entry point:

* ``method="full"`` — the paper's polynomial conversion: per channel,
  the dual of the maximum-weight matching problem (Appendix) bounds
  every permutation at once through potentials ``u_s`` / ``v_d``.
* ``method="colgen"`` — lazy constraint (column/row) generation over
  the *primal* permutation rows: a restricted master problem carries
  only flow conservation plus a small seed of permutation rows, and a
  separation oracle (one exact Hungarian assignment per direction
  class, :func:`repro.metrics.worst_case_eval.separate_worst_case`)
  appends the most-violated adversarial permutation until none exceeds
  :data:`repro.constants.COLGEN_VIOLATION_TOL`.  Because the master is
  a relaxation (fewer rows) and termination proves the returned flows
  feasible for the *full* constraint set, the converged bound equals
  the full LP's optimum — see :mod:`repro.verify.colgen` for the
  machine-checked version of that argument.

``method="auto"`` keeps the full formulation up to
:data:`repro.constants.COLGEN_AUTO_NODE_THRESHOLD` nodes (radix 10 on
the 2-D torus) and switches to column generation above it, where the
full LP's :math:`O(N^2)` rows per class stop fitting.

A second, lexicographic stage recovers maximum locality among the
worst-case-optimal algorithms — the designs whose existence motivates
IVAL and 2TURN (Section 5.2).  Under column generation the stage-2
solve reuses the stage-1 master — all generated rows, and the cached
constraint assembly, carry over — with ``w`` capped and the separation
loop kept running, so the lexicographic answer is certified against
the full permutation set too.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.constants import (
    COLGEN_AUTO_NODE_THRESHOLD,
    COLGEN_MAX_ITERATIONS,
    COLGEN_VIOLATION_TOL,
    LEXICOGRAPHIC_SLACK,
    SOLVER_DUST,
)
from repro.core.flows import CanonicalFlowProblem
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus

__all__ = [
    "LEXICOGRAPHIC_SLACK",
    "ColGenError",
    "ColGenStats",
    "DESIGN_METHODS",
    "RestrictedMasterProblem",
    "WorstCaseDesign",
    "design_worst_case",
    "resolve_design_method",
]

#: Strategies accepted by ``design_worst_case(method=...)``.
DESIGN_METHODS = ("auto", "full", "colgen")

#: Solver-name strings callers used to pass as ``method`` before the
#: parameter was split into strategy (``method``) and LP backend
#: (``solver``); caught with a pointed error instead of a KeyError.
_SOLVER_NAMES = ("highs", "highs-ds", "highs-ipm")


def resolve_design_method(method: str, num_nodes: int) -> str:
    """Resolve ``"auto"`` to ``"full"`` or ``"colgen"`` by instance size."""
    if method in _SOLVER_NAMES:
        raise ValueError(
            f"method={method!r} is an LP solver name; pass it as solver=... "
            f"(method selects the formulation: {DESIGN_METHODS})"
        )
    if method not in DESIGN_METHODS:
        raise ValueError(
            f"unknown design method {method!r}; choose from {DESIGN_METHODS}"
        )
    if method != "auto":
        return method
    return "colgen" if int(num_nodes) >= COLGEN_AUTO_NODE_THRESHOLD else "full"


class ColGenError(RuntimeError):
    """Column generation stopped before reaching a certified optimum.

    The partial state rides on the exception — ``flows``, the master
    bound ``w`` and the residual ``max_violation`` — so callers (and
    the adversarial certificate tests) can inspect exactly what an
    unconverged master would have claimed.
    """

    def __init__(
        self,
        reason: str,
        iterations: int,
        rows_generated: int,
        bound: float,
        flows: np.ndarray,
        max_violation: float,
    ) -> None:
        super().__init__(
            f"column generation failed after {iterations} iterations "
            f"({rows_generated} rows generated, bound {bound:.9g}, "
            f"max violation {max_violation:.3e}): {reason}"
        )
        self.iterations = iterations
        self.rows_generated = rows_generated
        self.bound = float(bound)
        self.flows = flows
        self.max_violation = float(max_violation)


@dataclasses.dataclass(frozen=True)
class ColGenStats:
    """Shape of one converged column-generation run.

    ``oracle_load`` is the exact Hungarian worst case of the returned
    flows (measured by the final separation pass) and ``lower_bound`` is
    the restricted master's optimum — a valid lower bound on the full
    LP because the master is a relaxation.  Their relative gap is at
    most :data:`repro.constants.COLGEN_VIOLATION_TOL`, which is the
    machine-checkable optimality certificate
    (:func:`repro.verify.colgen.certify_colgen_design` re-derives it).
    ``rows_generated`` counts only oracle-separated rows, excluding the
    ``seeded_rows`` cyclic-shift adversaries.  ``stage2_locality_bound``
    is the stage-2 master's locality lower bound when a lexicographic
    solve ran (``None`` otherwise).
    """

    iterations: int
    stage2_iterations: int
    rows_generated: int
    seeded_rows: int
    oracle_load: float
    lower_bound: float
    stage2_locality_bound: float | None = None
    converged: bool = True

    def to_doc(self) -> dict:
        return {
            "iterations": int(self.iterations),
            "stage2_iterations": int(self.stage2_iterations),
            "rows_generated": int(self.rows_generated),
            "seeded_rows": int(self.seeded_rows),
            "oracle_load": float(self.oracle_load),
            "lower_bound": float(self.lower_bound),
            "stage2_locality_bound": (
                None
                if self.stage2_locality_bound is None
                else float(self.stage2_locality_bound)
            ),
            "converged": bool(self.converged),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ColGenStats":
        return cls(
            iterations=int(doc["iterations"]),
            stage2_iterations=int(doc["stage2_iterations"]),
            rows_generated=int(doc["rows_generated"]),
            seeded_rows=int(doc["seeded_rows"]),
            oracle_load=float(doc["oracle_load"]),
            lower_bound=float(doc["lower_bound"]),
            stage2_locality_bound=(
                None
                if doc.get("stage2_locality_bound") is None
                else float(doc["stage2_locality_bound"])
            ),
            converged=bool(doc.get("converged", True)),
        )


@dataclasses.dataclass(frozen=True)
class WorstCaseDesign:
    """A worst-case-optimal (optionally locality-constrained) design.

    ``worst_case_load`` is the worst-case load of the *returned* flows:
    the LP bound variable ``w`` for a single-stage solve, or the exact
    re-measured load of the stage-2 flows for a lexicographic solve (the
    stage-2 model only caps ``w``, so its own ``w`` value need not be
    tight).  ``avg_path_length`` is in hops.  ``method`` records the
    formulation that produced the design (``"full"`` or ``"colgen"``);
    ``colgen`` carries the loop's :class:`ColGenStats` when lazy rows
    were used.  Use :func:`repro.core.recovery.routing_from_flows` to
    materialize the flows as a runnable routing algorithm.
    """

    flows: np.ndarray
    worst_case_load: float
    avg_path_length: float
    model_stats: dict
    method: str = "full"
    colgen: ColGenStats | None = None

    @property
    def worst_case_throughput(self) -> float:
        return 1.0 / self.worst_case_load


def _build(
    torus: Torus,
    group: TranslationGroup | None,
    locality_hops: float | None,
    locality_sense: str,
):
    prob = CanonicalFlowProblem(torus, group, name="worst-case-design")
    w = prob.model.add_variables("w", 1)
    prob.worst_case_constraints((int(w.indices()[0]), 1.0))
    if locality_hops is not None:
        prob.add_locality_constraint(locality_hops, locality_sense)
    return prob, w


class RestrictedMasterProblem:
    """Restricted master of the column-generation worst-case design.

    Flow conservation (and the optional locality pin) plus an explicit,
    growing set of permutation rows: for direction-class representative
    :math:`\\hat c` and permutation :math:`\\pi`,

    .. math:: \\sum_s x_{\\pi(s)-s,\\, \\hat c - s} \\le b_{\\hat c}\\, w.

    Translation invariance makes the same row bound every channel of
    the class (with :math:`\\pi` translated), so one row per class
    covers the whole orbit — the same reduction the full formulation
    uses.  ``seed_rows`` installs the ``n-1`` cyclic-shift permutations
    per class (the classic torus adversaries, tornado included), which
    cuts the loop's first iterations; rows are deduplicated so a
    re-separated permutation is never added twice.
    """

    def __init__(
        self,
        torus: Torus,
        group: TranslationGroup | None = None,
        locality_hops: float | None = None,
        locality_sense: str = "==",
        seed_rows: bool = True,
    ) -> None:
        self.torus = torus
        self.group = group if group is not None else TranslationGroup(torus)
        self.prob = CanonicalFlowProblem(
            torus, self.group, name="worst-case-colgen"
        )
        self.w = self.prob.model.add_variables("w", 1)
        self.w_col = int(self.w.indices()[0])
        if locality_hops is not None:
            self.prob.add_locality_constraint(locality_hops, locality_sense)
        self._keys: set[tuple[int, bytes]] = set()
        #: generated permutation rows, in insertion order
        self.rows: list[tuple[int, np.ndarray]] = []
        self.seeded_rows = self._seed() if seed_rows else 0

    @property
    def model(self):
        return self.prob.model

    def _seed(self) -> int:
        n = self.torus.num_nodes
        added = 0
        for rep in map(int, self.torus.class_representatives()):
            for t in range(1, n):
                added += self.add_row(rep, self.group.node_sum[:, t])
        return added

    def add_row(self, channel: int, permutation: np.ndarray) -> bool:
        """Append one permutation row; ``False`` if already present."""
        perm = np.asarray(permutation, dtype=np.int64)
        key = (int(channel), perm.tobytes())
        if key in self._keys:
            return False
        self._keys.add(key)
        torus, group = self.torus, self.group
        n, ncls = torus.num_nodes, torus.num_classes
        sources = np.arange(n)
        t = group.node_diff[perm, sources]  # commodity d - s per source
        node = int(channel) // ncls
        chan_from_s = group.node_diff[node, sources] * ncls + int(channel) % ncls
        cols = self.prob.x.index(t, chan_from_s)
        self.model.add_le(
            np.concatenate([cols, [self.w_col]]),
            np.concatenate(
                [np.ones(n), [-float(torus.bandwidth[int(channel)])]]
            ),
            0.0,
        )
        self.rows.append((int(channel), perm))
        return True

    def solve(self, solver: str = "highs-ds", attrs: dict | None = None):
        """Solve the current master; returns ``(solution, w, flows)``."""
        sol = self.model.solve(method=solver, attrs=attrs)
        return sol, float(sol[self.w][0]), self.prob.flows_from(sol)


def _heuristic_anchor_flows(
    torus: Torus, locality_hops: float | None, locality_sense: str
) -> list[np.ndarray]:
    """Closed-form warm-start flows for the column-generation loop.

    VAL (uniform-random-intermediate routing) attains the optimal
    worst-case throughput on uniform tori, so on the classic instances
    it closes the primal side of the loop outright; under a locality
    pin the VAL/DOR interpolation hitting the pinned ``H_avg`` plays
    the same role.  These are *heuristics only*: the loop measures each
    candidate with the exact oracle and keeps whatever the master plus
    separation can beat, so a useless anchor costs one Hungarian pass
    and changes nothing else.
    """
    from repro.routing.dor import DimensionOrderRouting
    from repro.routing.valiant import VAL

    try:
        val = np.asarray(VAL(torus).canonical_flows, dtype=np.float64)
    except Exception:  # non-toroidal or unroutable corner case
        return []
    if locality_hops is None:
        return [val]
    hops = float(locality_hops)
    n = torus.num_nodes
    h_val = float(val.sum() / n)
    if locality_sense == "<=" and h_val <= hops:
        return [val]
    dor = np.asarray(
        DimensionOrderRouting(torus).canonical_flows, dtype=np.float64
    )
    h_dor = float(dor.sum() / n)
    if h_dor != h_val and min(h_dor, h_val) <= hops <= max(h_dor, h_val):
        alpha = (hops - h_dor) / (h_val - h_dor)
        return [alpha * val + (1.0 - alpha) * dor]
    return []


def _stage_loop(
    master: RestrictedMasterProblem,
    solver: str,
    tol: float,
    limit: int,
    stage: int,
    anchor: tuple[np.ndarray, float] | None,
    sym_maps: list,
    cap: float | None = None,
):
    """One stabilized cutting-plane stage (Ben-Ameur/Neto in-out).

    The master is a relaxation, so its optimum is a valid lower bound
    on the stage objective (``w`` in stage 1, ``H_avg`` in stage 2).
    The primal side keeps an *anchor* ``(x̄, w̄)`` — flows paired with
    their exact oracle-measured worst-case load, hence feasible for the
    full constraint set by construction.  Each iteration separates the
    master vertex (a row already in the master cannot be violated
    there, so progress is guaranteed: either a genuinely new row is
    added or the vertex is proven feasible) and tries to improve the
    anchor with the stabilizer-symmetrized vertex and vertex/anchor
    midpoint (averaging over the point group never increases the
    worst-case load).  The stage ends when the anchor objective meets
    the master bound within ``tol`` or the vertex itself passes
    separation exactly.

    Returns ``(flows, load, objective_bound, iterations)``.
    """
    from repro.metrics.worst_case_eval import separate_worst_case
    from repro.topology.symmetry import symmetrize_canonical_flows

    torus, group = master.torus, master.group
    n = torus.num_nodes
    stage2 = cap is not None
    x_bar: np.ndarray | None = None
    w_bar = np.inf
    if anchor is not None:
        x_bar, w_bar = anchor
    iteration = 0
    obj_m = np.inf
    while iteration < limit:
        iteration += 1
        sol, w_m, _clipped = master.solve(
            solver,
            attrs={
                "colgen_stage": stage,
                "colgen_iteration": iteration,
                "rows_generated": len(master.rows) - master.seeded_rows,
            },
        )
        x_m = np.asarray(sol[master.prob.x])
        obj_m = float(sol.objective) if stage2 else w_m
        if x_bar is not None:
            obj_bar = float(x_bar.sum() / n) if stage2 else w_bar
            if obj_bar <= obj_m + tol * max(1.0, abs(obj_m)):
                return x_bar, w_bar, obj_m, iteration
        # Kelley cut at the master vertex; exact feasibility ends the
        # stage (the vertex then optimizes the full problem).
        sep_m = separate_worst_case(torus, group, x_m, w_m, tol)
        if sep_m.satisfied:
            return x_m, float(sep_m.max_load), obj_m, iteration
        added = sum(
            master.add_row(v.channel, v.permutation)
            for v in sep_m.violations
        )
        # Anchor candidates: symmetrized vertex, symmetrized midpoint.
        candidates = [symmetrize_canonical_flows(torus, x_m, sym_maps)]
        if x_bar is not None:
            candidates.append(
                symmetrize_canonical_flows(
                    torus, 0.5 * (x_m + x_bar), sym_maps
                )
            )
        for z in candidates:
            bound_z = cap if stage2 else min(w_bar, np.inf)
            sep_z = separate_worst_case(torus, group, z, bound_z, tol)
            load_z = float(sep_z.max_load)
            if stage2:
                # Anchor must respect the stage-2 load cap; among the
                # feasible candidates locality only ever improves
                # (midpoints average toward the master optimum).
                feasible = load_z <= cap + tol * max(1.0, cap)
                better = x_bar is None or z.sum() < x_bar.sum()
                if feasible and better:
                    x_bar, w_bar = z, load_z
            elif x_bar is None or load_z < w_bar:
                x_bar, w_bar = z, load_z
            for v in sep_z.violations:
                added += master.add_row(v.channel, v.permutation)
        if added == 0:
            # Cannot happen while the vertex fails separation (its
            # violated rows are provably absent from the master), so
            # reaching this means numerical contradiction — stop loudly
            # rather than loop forever.
            raise ColGenError(
                "separation re-proposed rows already in the master "
                "(numerical stall; try a tighter LP solver)",
                iterations=iteration,
                rows_generated=len(master.rows) - master.seeded_rows,
                bound=obj_m,
                flows=x_bar if x_bar is not None else x_m,
                max_violation=max(v.violation for v in sep_m.violations),
            )
    gap = (
        (float(x_bar.sum() / n) if stage2 else w_bar) - obj_m
        if x_bar is not None
        else np.inf
    )
    raise ColGenError(
        f"no convergence within {limit} iterations",
        iterations=iteration,
        rows_generated=len(master.rows) - master.seeded_rows,
        bound=obj_m,
        flows=x_bar if x_bar is not None else np.zeros_like(master.prob.x.indices(), dtype=float),
        max_violation=float(gap),
    )


def _design_colgen(
    torus: Torus,
    group: TranslationGroup,
    locality_hops: float | None,
    locality_sense: str,
    minimize_locality: bool,
    solver: str | None,
    tol: float,
    max_iterations: int | None,
) -> WorstCaseDesign:
    # Dual simplex by default: every master re-solve returns a vertex-
    # exact basic solution, so the oracle's termination test is clean
    # (IPM's 1e-8-feasible iterates can leave un-addable "violations").
    solver = "highs-ds" if solver is None else solver
    limit = COLGEN_MAX_ITERATIONS if max_iterations is None else int(max_iterations)
    if limit < 1:
        raise ValueError(f"max_iterations must be >= 1, got {limit}")
    from repro.metrics.worst_case_eval import separate_worst_case
    from repro.topology.symmetry import stabilizer_maps

    sym_maps = stabilizer_maps(torus)
    master = RestrictedMasterProblem(
        torus, group, locality_hops, locality_sense
    )
    master.model.set_objective(master.w.indices(), [1.0])
    with obs.span(
        "colgen.design",
        nodes=int(torus.num_nodes),
        classes=int(torus.num_classes),
        seeded_rows=master.seeded_rows,
    ) as sp:
        anchor = None
        for flows in _heuristic_anchor_flows(
            torus, locality_hops, locality_sense
        ):
            load = float(
                separate_worst_case(torus, group, flows, np.inf, tol).max_load
            )
            if anchor is None or load < anchor[1]:
                anchor = (flows, load)
        flows, wc_load, lower_bound, iters1 = _stage_loop(
            master, solver, tol, limit, stage=1, anchor=anchor,
            sym_maps=sym_maps,
        )
        iters2 = 0
        locality_bound = None
        if minimize_locality:
            cap = wc_load * (1 + LEXICOGRAPHIC_SLACK) + SOLVER_DUST
            master.model.set_bounds(master.w, ub=cap)
            cols, vals = master.prob.locality_terms()
            master.model.set_objective(cols, vals)
            flows, wc_load, locality_bound, iters2 = _stage_loop(
                master, solver, tol, limit, stage=2,
                anchor=(flows, wc_load), sym_maps=sym_maps, cap=cap,
            )
        # Return clipped flows with their exact oracle load so the
        # design is self-consistent (mirrors the full path's Hungarian
        # re-measurement after its lexicographic stage).
        flows = np.clip(flows, 0.0, None)
        wc_load = float(
            separate_worst_case(torus, group, flows, np.inf, tol).max_load
        )
        sp.set(
            iterations=iters1 + iters2,
            rows_generated=len(master.rows) - master.seeded_rows,
            bound=float(wc_load),
        )
    obs.metric_count("colgen.solves")
    obs.metric_count("colgen.iterations", iters1 + iters2)
    obs.metric_count(
        "colgen.rows_generated", len(master.rows) - master.seeded_rows
    )
    stats = ColGenStats(
        iterations=iters1,
        stage2_iterations=iters2,
        rows_generated=len(master.rows) - master.seeded_rows,
        seeded_rows=master.seeded_rows,
        oracle_load=float(wc_load),
        lower_bound=float(lower_bound),
        stage2_locality_bound=locality_bound,
    )
    return WorstCaseDesign(
        flows=flows,
        worst_case_load=float(wc_load),
        avg_path_length=float(flows.sum() / torus.num_nodes),
        model_stats=master.model.stats(),
        method="colgen",
        colgen=stats,
    )


def design_worst_case(
    torus: Torus,
    locality_hops: float | None = None,
    locality_sense: str = "==",
    minimize_locality: bool = False,
    group: TranslationGroup | None = None,
    method: str = "auto",
    solver: str | None = None,
    colgen_tol: float | None = None,
    max_iterations: int | None = None,
) -> WorstCaseDesign:
    """Design a routing algorithm minimizing worst-case channel load.

    Parameters
    ----------
    torus:
        Target topology.
    locality_hops:
        Optional average-path-length side constraint ``H_avg = L``
        (problem (10)); in hops, not normalized.
    locality_sense:
        ``'=='`` (the paper's formulation) or ``'<='``.
    minimize_locality:
        Run a second, lexicographic solve that minimizes ``H_avg``
        subject to the optimal ``w`` — the "optimal locality at maximum
        worst-case throughput" point of Figures 1 and 4.
    group:
        Reused translation tables (built on demand).
    method:
        ``"full"`` (matching-dual LP), ``"colgen"`` (lazy permutation
        rows + separation oracle), or ``"auto"`` (full below
        :data:`repro.constants.COLGEN_AUTO_NODE_THRESHOLD` nodes).
        Both formulations reach the same optimum; the differential
        suite pins them to each other at ``1e-9``.
    solver:
        SciPy ``linprog`` backend; defaults to ``"highs-ipm"`` for the
        full LP and ``"highs-ds"`` for column-generation masters.
    colgen_tol:
        Separation tolerance override
        (:data:`repro.constants.COLGEN_VIOLATION_TOL`).
    max_iterations:
        Column-generation iteration cap override
        (:data:`repro.constants.COLGEN_MAX_ITERATIONS`); exceeding it
        raises :class:`ColGenError` carrying the partial design.
    """
    if group is None:
        group = TranslationGroup(torus)
    resolved = resolve_design_method(method, torus.num_nodes)
    if resolved == "colgen":
        return _design_colgen(
            torus,
            group,
            locality_hops,
            locality_sense,
            minimize_locality,
            solver,
            COLGEN_VIOLATION_TOL if colgen_tol is None else float(colgen_tol),
            max_iterations,
        )

    solver = "highs-ipm" if solver is None else solver
    prob, w = _build(torus, group, locality_hops, locality_sense)
    prob.model.set_objective(w.indices(), [1.0])
    sol = prob.model.solve(method=solver)
    wc_load = float(sol[w][0])

    if minimize_locality:
        prob, w = _build(torus, group, locality_hops, locality_sense)
        prob.model.set_bounds(
            w, ub=wc_load * (1 + LEXICOGRAPHIC_SLACK) + SOLVER_DUST
        )
        cols, vals = prob.locality_terms()
        prob.model.set_objective(cols, vals)
        sol = prob.model.solve(method=solver)

    flows = prob.flows_from(sol)
    if minimize_locality:
        # Report the load actually achieved by the stage-2 flows, not
        # the stage-1 bound: the returned design must be self-consistent
        # (flows, load and model_stats all from the same solve).
        from repro.metrics.worst_case_eval import worst_case_load

        wc_load = worst_case_load(flows, torus, group).load
    return WorstCaseDesign(
        flows=flows,
        worst_case_load=wc_load,
        avg_path_length=float(flows.sum() / torus.num_nodes),
        model_stats=prob.model.stats(),
        method="full",
    )
