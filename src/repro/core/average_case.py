"""Average-case-optimal routing design — eq. (9), problem (15).

Averaging throughput over all doubly-stochastic matrices is intractable
(Section 3.3), so the paper (a) samples a finite random subset ``X`` and
(b) swaps the harmonic mean of throughputs for the arithmetic mean of
maximum channel loads, which is linear-programmable: one auxiliary
variable ``m_j`` per sample upper-bounds every channel's load under
:math:`\\Lambda_j`, and the objective is their mean.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.constants import LEXICOGRAPHIC_SLACK, SOLVER_DUST
from repro.core.flows import CanonicalFlowProblem
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus


@dataclasses.dataclass(frozen=True)
class AverageCaseDesign:
    """An average-case-optimal (optionally locality-constrained) design.

    ``average_load`` is the sample mean of :math:`\\gamma_{max}` under
    the *design* sample; evaluating on an independent sample (as the
    experiments do) is the honest measure of average-case throughput.
    """

    flows: np.ndarray
    average_load: float
    avg_path_length: float
    model_stats: dict

    @property
    def average_throughput(self) -> float:
        return 1.0 / self.average_load


def _build(
    torus: Torus,
    group: TranslationGroup | None,
    sample: Sequence[np.ndarray],
    locality_hops: float | None,
    locality_sense: str,
):
    prob = CanonicalFlowProblem(torus, group, name="average-case-design")
    bounds = prob.model.add_variables("m", len(sample))
    prob.average_case_constraints(sample, bounds)
    if locality_hops is not None:
        prob.add_locality_constraint(locality_hops, locality_sense)
    return prob, bounds


def design_average_case(
    torus: Torus,
    sample: Sequence[np.ndarray],
    locality_hops: float | None = None,
    locality_sense: str = "==",
    minimize_locality: bool = False,
    group: TranslationGroup | None = None,
    method: str = "highs-ipm",
) -> AverageCaseDesign:
    """Design a routing algorithm minimizing mean max channel load.

    Parameters
    ----------
    torus:
        Target topology.
    sample:
        The set ``X`` of doubly-stochastic matrices (|X| = 100 at paper
        scale; sparse Birkhoff samples keep the LP tractable).
    locality_hops, locality_sense:
        Optional ``H_avg`` side constraint as in problem (15).
    minimize_locality:
        Lexicographic stage 2: minimize ``H_avg`` subject to the optimal
        average load — the 2TURNA construction applies this over its
        restricted path set (Section 5.4).
    """
    if len(sample) == 0:
        raise ValueError("average-case design needs a nonempty sample")
    if group is None:
        group = TranslationGroup(torus)
    prob, bounds = _build(torus, group, sample, locality_hops, locality_sense)
    prob.model.set_objective(
        bounds.indices(), np.full(len(sample), 1.0 / len(sample))
    )
    sol = prob.model.solve(method=method)
    avg_load = float(sol.objective)

    if minimize_locality:
        prob, bounds = _build(
            torus, group, sample, locality_hops, locality_sense
        )
        prob.model.add_le(
            bounds.indices(),
            np.full(len(sample), 1.0 / len(sample)),
            avg_load * (1 + LEXICOGRAPHIC_SLACK) + SOLVER_DUST,
        )
        cols, vals = prob.locality_terms()
        prob.model.set_objective(cols, vals)
        sol = prob.model.solve(method=method)

    flows = prob.flows_from(sol)
    return AverageCaseDesign(
        flows=flows,
        average_load=avg_load,
        avg_path_length=float(flows.sum() / torus.num_nodes),
        model_stats=prob.model.stats(),
    )
