"""General-topology routing design (no symmetry reduction).

The paper's Section 4 formulation before symmetry is applied: one flow
variable per (commodity, channel) with a commodity per ordered node
pair — :math:`CN^2` variables and :math:`N^3` conservation constraints.
This is what the "future work" application to other topologies needs
(meshes are not vertex-transitive), and it doubles as an independent
cross-check of the symmetric machinery: on a torus, both formulations
must reach identical optima.

Problem sizes grow fast (the paper notes CPLEX topping out at a few
million nonzeros); keep networks small (N up to a few dozen).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.lp import LinearModel
from repro.topology.network import Network


class GeneralFlowProblem:
    """All-commodity flow LP skeleton for an arbitrary directed network."""

    def __init__(self, network: Network, name: str = "general-design") -> None:
        self.network = network
        self.model = LinearModel(name)
        n, c = network.num_nodes, network.num_channels
        #: x[s, d, ch] — expected crossings of channel ch by commodity (s, d)
        self.x = self.model.add_variables("flow", (n, n, c))
        diag = self.x.indices()[np.arange(n), np.arange(n), :]
        self.model.fix_variables(diag.ravel(), 0.0)
        self._add_conservation()

    def _add_conservation(self) -> None:
        net = self.network
        n, c = net.num_nodes, net.num_channels
        pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
        pair_row = {pair: i for i, pair in enumerate(pairs)}

        ch = np.arange(c)
        rows, cols, vals = [], [], []
        rhs = np.zeros(len(pairs) * n)
        for (s, d), base in pair_row.items():
            cols.append(self.x.index(s, d, ch))
            rows.append(base * n + net.channel_src[ch])
            vals.append(np.ones(c))
            cols.append(self.x.index(s, d, ch))
            rows.append(base * n + net.channel_dst[ch])
            vals.append(-np.ones(c))
            rhs[base * n + s] += 1.0
            rhs[base * n + d] -= 1.0
        self.model.add_eq_batch(
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
            rhs,
        )

    # ------------------------------------------------------------------
    def locality_terms(self) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of ``H_avg`` (eq. 5): total flow / N^2."""
        cols = self.x.indices().ravel()
        return cols, np.full(cols.shape, 1.0 / self.network.num_nodes**2)

    def add_uniform_load_constraints(self, gamma_col: int) -> None:
        """:math:`\\gamma_c(R, U) \\le b_c \\gamma` for every channel."""
        net = self.network
        n, c = net.num_nodes, net.num_channels
        rows = np.broadcast_to(
            np.arange(c), (n * n, c)
        ).T.ravel()
        cols = self.x.indices().reshape(n * n, c).T.ravel()
        vals = np.full(rows.shape, 1.0 / n)
        g_rows = np.arange(c)
        g_cols = np.full(c, gamma_col)
        g_vals = -net.bandwidth
        self.model.add_le_batch(
            np.concatenate([rows, g_rows]),
            np.concatenate([cols, g_cols]),
            np.concatenate([vals, g_vals]),
            np.zeros(c),
        )

    def add_worst_case_constraints(self, w_col: int) -> None:
        """Matching-dual worst-case constraints (LP (8)), per channel."""
        net, model = self.network, self.model
        n = net.num_nodes
        s_grid = np.repeat(np.arange(n), n)
        d_grid = np.tile(np.arange(n), n)
        pair_rows = np.arange(n * n)
        for ch in range(net.num_channels):
            u = model.add_variables(f"u[{ch}]", n, lb=-np.inf)
            v = model.add_variables(f"v[{ch}]", n, lb=-np.inf)
            x_cols = self.x.index(s_grid, d_grid, np.full(n * n, ch))
            model.add_le_batch(
                np.concatenate([pair_rows] * 3),
                np.concatenate([x_cols, v.offset + d_grid, u.offset + s_grid]),
                np.concatenate(
                    [np.ones(n * n), -np.ones(n * n), np.ones(n * n)]
                ),
                np.zeros(n * n),
            )
            model.add_eq(
                np.concatenate([v.indices(), u.indices(), [w_col]]),
                np.concatenate(
                    [np.ones(n), -np.ones(n), [-net.bandwidth[ch]]]
                ),
                0.0,
            )

    def flows_from(self, solution) -> np.ndarray:
        """Extract the ``(N, N, C)`` flow tensor, clipping solver dust."""
        return np.clip(solution[self.x], 0.0, None)


@dataclasses.dataclass(frozen=True)
class GeneralDesign:
    """Result of a general-topology design solve."""

    flows: np.ndarray
    objective_load: float
    avg_path_length: float


def solve_general_capacity(network: Network, method: str = "highs-ipm") -> GeneralDesign:
    """Capacity (problem (6)) on an arbitrary network."""
    prob = GeneralFlowProblem(network, name="general-capacity")
    gamma = prob.model.add_variables("gamma", 1)
    prob.add_uniform_load_constraints(int(gamma.indices()[0]))
    prob.model.set_objective(gamma.indices(), [1.0])
    sol = prob.model.solve(method=method)
    flows = prob.flows_from(sol)
    return GeneralDesign(
        flows=flows,
        objective_load=float(sol[gamma][0]),
        avg_path_length=float(flows.sum() / network.num_nodes**2),
    )


def design_general_worst_case(
    network: Network,
    locality_hops: float | None = None,
    minimize_locality: bool = False,
    method: str = "highs-ipm",
) -> GeneralDesign:
    """Worst-case-optimal design (LP (8)) on an arbitrary network."""

    def build():
        prob = GeneralFlowProblem(network, name="general-worst-case")
        w = prob.model.add_variables("w", 1)
        prob.add_worst_case_constraints(int(w.indices()[0]))
        if locality_hops is not None:
            cols, vals = prob.locality_terms()
            prob.model.add_eq(cols, vals, float(locality_hops))
        return prob, w

    prob, w = build()
    prob.model.set_objective(w.indices(), [1.0])
    sol = prob.model.solve(method=method)
    wc_load = float(sol[w][0])

    if minimize_locality:
        from repro.constants import LEXICOGRAPHIC_SLACK, SOLVER_DUST

        prob, w = build()
        prob.model.set_bounds(
            w, ub=wc_load * (1 + LEXICOGRAPHIC_SLACK) + SOLVER_DUST
        )
        cols, vals = prob.locality_terms()
        prob.model.set_objective(cols, vals)
        sol = prob.model.solve(method=method)

    flows = prob.flows_from(sol)
    return GeneralDesign(
        flows=flows,
        objective_load=wc_load,
        avg_path_length=float(flows.sum() / network.num_nodes**2),
    )
