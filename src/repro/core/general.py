"""General-topology routing design (no symmetry reduction).

The paper's Section 4 formulation before symmetry is applied: one flow
variable per (commodity, channel) with a commodity per ordered node
pair — :math:`CN^2` variables and :math:`N^3` conservation constraints.
This is what the "future work" application to other topologies needs
(meshes are not vertex-transitive), and it doubles as an independent
cross-check of the symmetric machinery: on a torus, both formulations
must reach identical optima.

Problem sizes grow fast (the paper notes CPLEX topping out at a few
million nonzeros); keep networks small (N up to a few dozen).  The
worst-case design additionally supports ``method="colgen"`` — the
lazy-constraint counterpart of :mod:`repro.core.worst_case`, generating
the matching-dual block of a channel only once the separation oracle
proves the channel can carry a worst-case-critical load (see
:class:`GeneralRestrictedMaster`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.constants import (
    COLGEN_GENERAL_VIOLATION_TOL,
    COLGEN_MAX_ITERATIONS,
    COLGEN_STAGE2_DUST,
    LEXICOGRAPHIC_SLACK,
    SOLVER_DUST,
)
from repro.core.worst_case import ColGenError, ColGenStats, resolve_design_method
from repro.lp import LinearModel
from repro.topology.network import Network


class GeneralFlowProblem:
    """All-commodity flow LP skeleton for an arbitrary directed network."""

    def __init__(self, network: Network, name: str = "general-design") -> None:
        self.network = network
        self.model = LinearModel(name)
        n, c = network.num_nodes, network.num_channels
        #: x[s, d, ch] — expected crossings of channel ch by commodity (s, d)
        self.x = self.model.add_variables("flow", (n, n, c))
        diag = self.x.indices()[np.arange(n), np.arange(n), :]
        self.model.fix_variables(diag.ravel(), 0.0)
        self._add_conservation()

    def _add_conservation(self) -> None:
        net = self.network
        n, c = net.num_nodes, net.num_channels
        pairs = [(s, d) for s in range(n) for d in range(n) if s != d]
        pair_row = {pair: i for i, pair in enumerate(pairs)}

        ch = np.arange(c)
        rows, cols, vals = [], [], []
        rhs = np.zeros(len(pairs) * n)
        for (s, d), base in pair_row.items():
            cols.append(self.x.index(s, d, ch))
            rows.append(base * n + net.channel_src[ch])
            vals.append(np.ones(c))
            cols.append(self.x.index(s, d, ch))
            rows.append(base * n + net.channel_dst[ch])
            vals.append(-np.ones(c))
            rhs[base * n + s] += 1.0
            rhs[base * n + d] -= 1.0
        self.model.add_eq_batch(
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
            rhs,
        )

    # ------------------------------------------------------------------
    def locality_terms(self) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of ``H_avg`` (eq. 5): total flow / N^2."""
        cols = self.x.indices().ravel()
        return cols, np.full(cols.shape, 1.0 / self.network.num_nodes**2)

    def add_uniform_load_constraints(self, gamma_col: int) -> None:
        """:math:`\\gamma_c(R, U) \\le b_c \\gamma` for every channel."""
        net = self.network
        n, c = net.num_nodes, net.num_channels
        rows = np.broadcast_to(
            np.arange(c), (n * n, c)
        ).T.ravel()
        cols = self.x.indices().reshape(n * n, c).T.ravel()
        vals = np.full(rows.shape, 1.0 / n)
        g_rows = np.arange(c)
        g_cols = np.full(c, gamma_col)
        g_vals = -net.bandwidth
        self.model.add_le_batch(
            np.concatenate([rows, g_rows]),
            np.concatenate([cols, g_cols]),
            np.concatenate([vals, g_vals]),
            np.zeros(c),
        )

    def add_channel_worst_case_block(self, channel: int, w_col: int) -> None:
        """Matching-dual worst-case block (LP (8)) for one channel.

        Potentials ``u_s`` / ``v_d`` with ``x_{s,d,c} <= v_d - u_s`` and
        the tie row ``sum(v) - sum(u) = b_c w`` bound *every* permutation
        load on the channel at once.
        """
        net, model = self.network, self.model
        n = net.num_nodes
        ch = int(channel)
        s_grid = np.repeat(np.arange(n), n)
        d_grid = np.tile(np.arange(n), n)
        pair_rows = np.arange(n * n)
        u = model.add_variables(f"u[{ch}]", n, lb=-np.inf)
        v = model.add_variables(f"v[{ch}]", n, lb=-np.inf)
        x_cols = self.x.index(s_grid, d_grid, np.full(n * n, ch))
        model.add_le_batch(
            np.concatenate([pair_rows] * 3),
            np.concatenate([x_cols, v.offset + d_grid, u.offset + s_grid]),
            np.concatenate(
                [np.ones(n * n), -np.ones(n * n), np.ones(n * n)]
            ),
            np.zeros(n * n),
        )
        model.add_eq(
            np.concatenate([v.indices(), u.indices(), [w_col]]),
            np.concatenate(
                [np.ones(n), -np.ones(n), [-net.bandwidth[ch]]]
            ),
            0.0,
        )

    def add_worst_case_constraints(self, w_col: int) -> None:
        """Matching-dual worst-case constraints (LP (8)), per channel."""
        for ch in range(self.network.num_channels):
            self.add_channel_worst_case_block(ch, w_col)

    def flows_from(self, solution) -> np.ndarray:
        """Extract the ``(N, N, C)`` flow tensor, clipping solver dust."""
        return np.clip(solution[self.x], 0.0, None)


@dataclasses.dataclass(frozen=True)
class GeneralDesign:
    """Result of a general-topology design solve.

    ``method`` records the formulation (``"full"`` or ``"colgen"``;
    capacity solves always report ``"full"``), and ``colgen`` carries
    the loop's :class:`repro.core.worst_case.ColGenStats` when lazy
    permutation rows were used.
    """

    flows: np.ndarray
    objective_load: float
    avg_path_length: float
    method: str = "full"
    colgen: ColGenStats | None = None


class GeneralRestrictedMaster:
    """Restricted master of the general-topology lazy worst-case LP.

    Without translation invariance there is no class structure to make
    individual permutation rows cheap (each cut names one channel, and
    pure Kelley cutting crawls — tens of expensive master re-solves on
    even a 4-ary 2-cube), so the general master generates constraints
    at *channel* granularity instead: when the separation oracle finds
    a channel whose exact worst-case load exceeds the master bound, the
    channel's complete matching-dual block (LP (8): potentials plus
    :math:`N^2` pair rows) is appended, bounding every permutation on
    that channel at once.  A covered channel can never be separated
    again, so the loop terminates after at most ``C`` block additions —
    in practice two or three master solves.  Channels that never carry
    a critical load never pay for their block, which is where the
    restricted master stays smaller than the full LP.
    """

    def __init__(
        self, network: Network, locality_hops: float | None = None
    ) -> None:
        self.network = network
        self.prob = GeneralFlowProblem(network, name="general-colgen")
        self.w = self.prob.model.add_variables("w", 1)
        self.w_col = int(self.w.indices()[0])
        if locality_hops is not None:
            cols, vals = self.prob.locality_terms()
            self.prob.model.add_eq(cols, vals, float(locality_hops))
        #: channels whose worst-case block has been generated, in order
        self.channels: list[int] = []
        self._covered: set[int] = set()
        self.seeded_blocks = 0

    @property
    def model(self) -> LinearModel:
        return self.prob.model

    def add_channel(self, channel: int) -> bool:
        """Generate one channel's dual block; ``False`` if present."""
        ch = int(channel)
        if ch in self._covered:
            return False
        self._covered.add(ch)
        self.prob.add_channel_worst_case_block(ch, self.w_col)
        self.channels.append(ch)
        return True

    def seed(self, tol: float) -> int:
        """Pre-generate blocks for every channel shortest paths load.

        Starting from an empty master costs one near-full-size re-solve
        per wave of discovered channels (the first vertex is arbitrary,
        so its violated set is arbitrary too).  A single Hungarian pass
        over deterministic shortest-path flows identifies every channel
        that realistically carries worst-case load, collapsing the loop
        to one or two master solves; channels the seed misses are still
        caught by the oracle afterwards, so this is purely a warm start.
        """
        from repro.metrics.worst_case_eval import separate_general_worst_case
        from repro.routing.shortest import ShortestPathRouting

        try:
            flows = ShortestPathRouting(self.network).full_flows()
        except Exception:  # disconnected or otherwise unroutable
            return 0
        sep = separate_general_worst_case(self.network, flows, 0.0, tol)
        added = sum(self.add_channel(v.channel) for v in sep.violations)
        self.seeded_blocks += added
        return added

    def solve(self, solver: str = "highs-ipm", attrs: dict | None = None):
        """Solve the current master; returns ``(solution, w, flows)``."""
        sol = self.model.solve(method=solver, attrs=attrs)
        return sol, float(sol[self.w][0]), self.prob.flows_from(sol)


def _general_stage_loop(
    master: GeneralRestrictedMaster,
    solver: str,
    tol: float,
    limit: int,
    stage: int,
    cap: float | None = None,
):
    """One lazy-constraint stage on an arbitrary network.

    Solve the restricted master, separate its exact worst case with
    :func:`repro.metrics.worst_case_eval.separate_general_worst_case`,
    and append the dual block of every violated channel.  The master is
    a relaxation (a subset of channels constrained), so on termination
    — no channel's exact Hungarian load exceeds the master's own bound
    beyond ``tol`` — the master optimum is simultaneously a lower bound
    and achieved by the returned flows: the full LP's optimum.

    Returns ``(flows, load, objective_bound, iterations)``.
    """
    from repro.metrics.worst_case_eval import separate_general_worst_case

    net = master.network
    stage2 = cap is not None
    iteration = 0
    obj_m = np.inf
    while iteration < limit:
        iteration += 1
        sol, w_m, _clipped = master.solve(
            solver,
            attrs={
                "colgen_stage": stage,
                "colgen_iteration": iteration,
                "rows_generated": len(master.channels)
                - master.seeded_blocks,
            },
        )
        x_m = np.asarray(sol[master.prob.x])
        obj_m = float(sol.objective) if stage2 else w_m
        sep = separate_general_worst_case(net, x_m, w_m, tol)
        if sep.satisfied:
            return x_m, float(sep.max_load), obj_m, iteration
        added = sum(master.add_channel(v.channel) for v in sep.violations)
        if added == 0:
            # Every violated channel already carries its exact block, so
            # its master load cannot exceed b_c * w beyond the solver's
            # own primal feasibility residual.  In stage 2 that residual
            # is structural — ``w`` sits at its slack cap while the
            # objective pulls on locality — so dust-level violations on
            # covered channels are accepted and the *exact* oracle
            # measurement is returned (the certificate widens its
            # lexicographic gap allowance by the same dust).  In stage 1
            # the bound is the objective itself, so a stall there means
            # the LP solution is looser than the separation tolerance:
            # stop loudly rather than loop forever.
            worst = max(v.violation for v in sep.violations)
            if stage2 and worst <= COLGEN_STAGE2_DUST * max(1.0, w_m):
                return x_m, float(sep.max_load), obj_m, iteration
            raise ColGenError(
                "separation flagged channels whose blocks are already "
                "in the master (solver tolerance looser than the "
                "separation tolerance; try solver='highs-ds')",
                iterations=iteration,
                rows_generated=len(master.channels) - master.seeded_blocks,
                bound=obj_m,
                flows=x_m,
                max_violation=max(v.violation for v in sep.violations),
            )
    raise ColGenError(
        f"no convergence within {limit} iterations",
        iterations=iteration,
        rows_generated=len(master.channels) - master.seeded_blocks,
        bound=obj_m,
        flows=np.zeros((net.num_nodes, net.num_nodes, net.num_channels)),
        max_violation=np.inf,
    )


def _design_general_colgen(
    network: Network,
    locality_hops: float | None,
    minimize_locality: bool,
    solver: str | None,
    tol: float,
    max_iterations: int | None,
) -> GeneralDesign:
    solver = "highs-ipm" if solver is None else solver
    limit = (
        COLGEN_MAX_ITERATIONS if max_iterations is None else int(max_iterations)
    )
    if limit < 1:
        raise ValueError(f"max_iterations must be >= 1, got {limit}")
    from repro.metrics.worst_case_eval import separate_general_worst_case

    master = GeneralRestrictedMaster(network, locality_hops)
    master.model.set_objective(master.w.indices(), [1.0])
    master.seed(tol)
    n = network.num_nodes
    with obs.span(
        "colgen.general",
        nodes=int(n),
        channels=int(network.num_channels),
        seeded_blocks=master.seeded_blocks,
    ) as sp:
        flows, wc_load, lower_bound, iters1 = _general_stage_loop(
            master, solver, tol, limit, stage=1
        )
        iters2 = 0
        locality_bound = None
        if minimize_locality:
            cap = wc_load * (1 + LEXICOGRAPHIC_SLACK) + SOLVER_DUST
            master.model.set_bounds(master.w, ub=cap)
            cols, vals = master.prob.locality_terms()
            master.model.set_objective(cols, vals)
            flows, wc_load, locality_bound, iters2 = _general_stage_loop(
                master, solver, tol, limit, stage=2, cap=cap
            )
        flows = np.clip(flows, 0.0, None)
        wc_load = float(
            separate_general_worst_case(network, flows, np.inf, tol).max_load
        )
        sp.set(
            iterations=iters1 + iters2,
            rows_generated=len(master.channels) - master.seeded_blocks,
            bound=float(wc_load),
        )
    obs.metric_count("colgen.general_solves")
    obs.metric_count("colgen.iterations", iters1 + iters2)
    obs.metric_count(
        "colgen.rows_generated", len(master.channels) - master.seeded_blocks
    )
    stats = ColGenStats(
        iterations=iters1,
        stage2_iterations=iters2,
        rows_generated=len(master.channels) - master.seeded_blocks,
        seeded_rows=master.seeded_blocks,
        oracle_load=float(wc_load),
        lower_bound=float(lower_bound),
        stage2_locality_bound=locality_bound,
    )
    return GeneralDesign(
        flows=flows,
        objective_load=float(wc_load),
        avg_path_length=float(flows.sum() / n**2),
        method="colgen",
        colgen=stats,
    )


def solve_general_capacity(network: Network, method: str = "highs-ipm") -> GeneralDesign:
    """Capacity (problem (6)) on an arbitrary network."""
    prob = GeneralFlowProblem(network, name="general-capacity")
    gamma = prob.model.add_variables("gamma", 1)
    prob.add_uniform_load_constraints(int(gamma.indices()[0]))
    prob.model.set_objective(gamma.indices(), [1.0])
    sol = prob.model.solve(method=method)
    flows = prob.flows_from(sol)
    return GeneralDesign(
        flows=flows,
        objective_load=float(sol[gamma][0]),
        avg_path_length=float(flows.sum() / network.num_nodes**2),
    )


def design_general_worst_case(
    network: Network,
    locality_hops: float | None = None,
    minimize_locality: bool = False,
    method: str = "auto",
    solver: str | None = None,
    colgen_tol: float | None = None,
    max_iterations: int | None = None,
) -> GeneralDesign:
    """Worst-case-optimal design (LP (8)) on an arbitrary network.

    ``method`` selects the formulation (``"full"``, ``"colgen"``, or
    ``"auto"``, mirroring :func:`repro.core.worst_case.design_worst_case`)
    and ``solver`` the SciPy ``linprog`` backend (``"highs-ipm"`` by
    default for both formulations; dual simplex is an order of magnitude
    slower on these CN^2-variable models).  ``colgen_tol`` /
    ``max_iterations`` override the loop's tolerance and iteration-cap
    constants.
    """
    resolved = resolve_design_method(method, network.num_nodes)
    if resolved == "colgen":
        return _design_general_colgen(
            network,
            locality_hops,
            minimize_locality,
            solver,
            COLGEN_GENERAL_VIOLATION_TOL
            if colgen_tol is None
            else float(colgen_tol),
            max_iterations,
        )
    solver = "highs-ipm" if solver is None else solver

    def build():
        prob = GeneralFlowProblem(network, name="general-worst-case")
        w = prob.model.add_variables("w", 1)
        prob.add_worst_case_constraints(int(w.indices()[0]))
        if locality_hops is not None:
            cols, vals = prob.locality_terms()
            prob.model.add_eq(cols, vals, float(locality_hops))
        return prob, w

    prob, w = build()
    prob.model.set_objective(w.indices(), [1.0])
    sol = prob.model.solve(method=solver)
    wc_load = float(sol[w][0])

    if minimize_locality:
        prob, w = build()
        prob.model.set_bounds(
            w, ub=wc_load * (1 + LEXICOGRAPHIC_SLACK) + SOLVER_DUST
        )
        cols, vals = prob.locality_terms()
        prob.model.set_objective(cols, vals)
        sol = prob.model.solve(method=solver)

    flows = prob.flows_from(sol)
    return GeneralDesign(
        flows=flows,
        objective_load=wc_load,
        avg_path_length=float(flows.sum() / network.num_nodes**2),
        method="full",
    )
