"""LPs over explicit, restricted path sets (paper Sections 5.2, 5.4).

2TURN abandons a closed-form *algorithm* description but keeps a
closed-form description of its allowed *paths*; the optimal weighting of
those paths is then just the basic routing-design LP (1) with
``R(q) = 0`` outside the set.  This module provides that machinery for
any canonical-source path family: per-destination probability variables,
the worst-case matching-dual constraints, the sampled average-case
constraints, and the locality form.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FEASIBILITY_ATOL
from repro.lp import LinearModel, VariableBlock
from repro.routing.paths import Path, path_channels
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus


class PathSetLP:
    """Routing-design LP restricted to an explicit path set.

    Parameters
    ----------
    torus:
        Vertex-transitive topology; paths are given for source node 0
        and extended to all sources by translation.
    paths_by_dest:
        ``{destination: [path, ...]}`` for every destination ``1..N-1``.
        Paths must start at node 0 and end at the destination.
    """

    def __init__(
        self,
        torus: Torus,
        paths_by_dest: dict[int, list[Path]],
        group: TranslationGroup | None = None,
        name: str = "path-design",
    ) -> None:
        self.torus = torus
        self.group = group if group is not None else TranslationGroup(torus)

        paths: list[Path] = []
        dests: list[int] = []
        for t in range(1, torus.num_nodes):
            plist = paths_by_dest.get(t, [])
            if not plist:
                raise ValueError(f"no candidate paths for destination {t}")
            for p in plist:
                if p[0] != 0 or p[-1] != t:
                    raise ValueError(f"path {p} is not a 0->{t} path")
                paths.append(tuple(p))
                dests.append(t)
        self.paths = paths
        self.dest = np.asarray(dests, dtype=np.int64)
        self.lengths = np.asarray([len(p) - 1 for p in paths], dtype=np.float64)

        # channel incidence: crossing list (path_id, channel) pairs, plus
        # groupings by channel and by destination for constraint assembly
        pid_list: list[int] = []
        chan_list: list[int] = []
        for pid, p in enumerate(paths):
            for c in path_channels(torus, p):
                pid_list.append(pid)
                chan_list.append(c)
        self._cross_pid = np.asarray(pid_list, dtype=np.int64)
        self._cross_chan = np.asarray(chan_list, dtype=np.int64)

        order = np.argsort(self._cross_chan, kind="stable")
        sorted_chan = self._cross_chan[order]
        starts = np.searchsorted(sorted_chan, np.arange(torus.num_channels))
        ends = np.searchsorted(
            sorted_chan, np.arange(torus.num_channels), side="right"
        )
        self._by_channel = [
            self._cross_pid[order[s:e]] for s, e in zip(starts, ends)
        ]

        by_dest: dict[int, tuple[list[int], list[int]]] = {}
        for pid, c in zip(pid_list, chan_list):
            t = int(self.dest[pid])
            by_dest.setdefault(t, ([], []))
            by_dest[t][0].append(pid)
            by_dest[t][1].append(c)
        self._by_dest = {
            t: (np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
            for t, (a, b) in by_dest.items()
        }

        self.model = LinearModel(name)
        self.weights: VariableBlock = self.model.add_variables(
            "R", len(paths)
        )
        # sum_{p in P_{0,t}} R(p) = 1 for every destination
        dest_row = {
            t: i for i, t in enumerate(sorted(set(self.dest.tolist())))
        }
        rows = np.asarray([dest_row[int(t)] for t in self.dest])
        self.model.add_eq_batch(
            rows,
            self.weights.indices(),
            np.ones(len(paths)),
            np.ones(len(dest_row)),
        )

    # ------------------------------------------------------------------
    @property
    def num_paths(self) -> int:
        return len(self.paths)

    def locality_terms(self) -> tuple[np.ndarray, np.ndarray]:
        """``(cols, vals)`` of the average-path-length form (eq. 5)."""
        return (
            self.weights.indices(),
            self.lengths / self.torus.num_nodes,
        )

    def add_locality_constraint(self, hops: float, sense: str = "==") -> None:
        """Pin or bound ``H_avg`` (in hops)."""
        cols, vals = self.locality_terms()
        if sense == "==":
            self.model.add_eq(cols, vals, float(hops))
        elif sense == "<=":
            self.model.add_le(cols, vals, float(hops))
        else:
            raise ValueError(f"sense must be '==' or '<=', got {sense!r}")

    # ------------------------------------------------------------------
    def add_worst_case(self, w_col: int) -> None:
        """Matching-dual worst-case constraints (LP (8)) over the path set.

        The flow of commodity ``(s, d)`` on representative channel
        :math:`\\hat c` is the total weight of destination-``(d-s)``
        paths crossing canonical channel :math:`\\hat c - s`.
        """
        torus, group, model = self.torus, self.group, self.model
        n = torus.num_nodes
        ncls = torus.num_classes
        for rep in torus.class_representatives():
            rep = int(rep)
            u = model.add_variables(f"u[{rep}]", n, lb=-np.inf)
            v = model.add_variables(f"v[{rep}]", n, lb=-np.inf)

            rows_parts, cols_parts, vals_parts = [], [], []
            rep_node, rep_cls = rep // ncls, rep % ncls
            for cprime in torus.class_members(rep_cls):
                pids = self._by_channel[int(cprime)]
                if pids.size == 0:
                    continue
                s = int(group.node_diff[rep_node, int(cprime) // ncls])
                d = group.node_sum[s, self.dest[pids]]
                rows_parts.append(s * n + d)
                cols_parts.append(self.weights.offset + pids)
                vals_parts.append(np.ones(pids.size))
            # potential terms for every (s, d) pair
            s_grid = np.repeat(np.arange(n), n)
            d_grid = np.tile(np.arange(n), n)
            pair_rows = np.arange(n * n)
            rows_parts += [pair_rows, pair_rows]
            cols_parts += [v.offset + d_grid, u.offset + s_grid]
            vals_parts += [-np.ones(n * n), np.ones(n * n)]

            model.add_le_batch(
                np.concatenate(rows_parts),
                np.concatenate(cols_parts),
                np.concatenate(vals_parts),
                np.zeros(n * n),
            )
            model.add_eq(
                np.concatenate([v.indices(), u.indices(), [w_col]]),
                np.concatenate(
                    [np.ones(n), -np.ones(n), [-torus.bandwidth[rep]]]
                ),
                0.0,
            )

    def add_average_case(self, sample, bound_block: VariableBlock) -> None:
        """Sampled average-case load constraints (eq. 9) over the path set."""
        torus, group, model = self.torus, self.group, self.model
        c = torus.num_channels
        if bound_block.size != len(sample):
            raise ValueError("bound block must have one variable per sample")
        for j, lam in enumerate(sample):
            s_nz, d_nz = np.nonzero(lam)
            vals_nz = lam[s_nz, d_nz]
            t_nz = group.node_diff[d_nz, s_nz]
            rows_parts, cols_parts, vals_parts = [], [], []
            for s, t, val in zip(s_nz, t_nz, vals_nz):
                if t == 0:
                    continue  # self-traffic loads nothing
                pids, chans = self._by_dest[int(t)]
                rows_parts.append(group.chan_shift[chans, s])
                cols_parts.append(self.weights.offset + pids)
                vals_parts.append(np.full(pids.size, val))
            rows_parts.append(np.arange(c))
            cols_parts.append(np.full(c, bound_block.offset + j))
            vals_parts.append(-torus.bandwidth)
            model.add_le_batch(
                np.concatenate(rows_parts),
                np.concatenate(cols_parts),
                np.concatenate(vals_parts),
                np.zeros(c),
            )

    # ------------------------------------------------------------------
    def table_from(
        self, solution, prune: float = FEASIBILITY_ATOL
    ) -> dict[int, list]:
        """Convert a solution into a ``{dest: [(path, prob), ...]}`` table."""
        weights = solution[self.weights]
        table: dict[int, list] = {}
        for pid, w in enumerate(weights):
            if w > prune:
                table.setdefault(int(self.dest[pid]), []).append(
                    (self.paths[pid], float(w))
                )
        return table
