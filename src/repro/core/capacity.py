"""Network capacity — problem (6) of the paper.

Capacity is the maximum throughput under uniform traffic, i.e. the
reciprocal of the minimum achievable :math:`\\gamma_{max}(R, U)` over
all oblivious routing algorithms.  Its value normalizes every
throughput the paper reports ("fraction of capacity").
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.flows import CanonicalFlowProblem
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus


@dataclasses.dataclass(frozen=True)
class CapacityResult:
    """Solution of the capacity problem.

    ``load`` is the optimal uniform channel load :math:`\\gamma^*_U`;
    ``throughput = 1 / load`` is the network capacity; ``flows`` is a
    canonical flow table of a capacity-achieving routing algorithm.
    """

    load: float
    flows: np.ndarray

    @property
    def throughput(self) -> float:
        return 1.0 / self.load


def solve_capacity(
    torus: Torus, group: TranslationGroup | None = None
) -> CapacityResult:
    """Solve problem (6): minimize :math:`\\gamma_{max}(R, U)`.

    On a k-ary n-cube the optimum is the classic :math:`k/8` per
    dimension for even radix and :math:`(k^2-1)/(8k)` for odd radix,
    both attained by minimal routing — used as cross-checks in the test
    suite.
    """
    prob = CanonicalFlowProblem(torus, group, name="capacity")
    gamma = prob.model.add_variables("gamma", 1)
    for cls in range(torus.num_classes):
        cols, vals = prob.uniform_load_terms(cls)
        rep_bandwidth = torus.bandwidth[torus.class_representatives()[cls]]
        prob.model.add_le(
            np.concatenate([cols, gamma.indices()]),
            np.concatenate([vals, [-rep_bandwidth]]),
            0.0,
        )
    prob.model.set_objective(gamma.indices(), [1.0])
    sol = prob.model.solve()
    return CapacityResult(load=float(sol[gamma][0]), flows=prob.flows_from(sol))


def torus_capacity_load(torus: Torus) -> float:
    """Closed-form optimal uniform load of a k-ary n-cube.

    Each of the ``2n`` direction classes carries, per ring, a mean
    minimal distance of ``k/4`` (even) or ``(k^2-1)/(4k)`` (odd) hops
    per node spread over ``2k`` directed ring channels — giving
    ``k/8`` resp. ``(k^2-1)/(8k)``.  Used to validate the LP.
    """
    k = torus.k
    if k % 2 == 0:
        return k / 8.0
    return (k * k - 1) / (8.0 * k)
