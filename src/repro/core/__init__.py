"""Routing-algorithm design as linear programming — the paper's core.

* :mod:`repro.core.flows` — canonical-source multicommodity-flow skeleton
  (the O(CN) symmetric formulation of Section 4).
* :mod:`repro.core.capacity` — network capacity, problem (6).
* :mod:`repro.core.worst_case` — worst-case-optimal design, LP (8), with
  the locality side constraint of problem (10).
* :mod:`repro.core.average_case` — average-case-optimal design, LP (15).
* :mod:`repro.core.recovery` — flow decomposition back into explicit
  path distributions ("paths can easily be recovered", Section 4).
* :mod:`repro.core.path_lp` — LPs over restricted explicit path sets
  (the 2TURN / 2TURNA construction of Sections 5.2 and 5.4).
* :mod:`repro.core.tradeoff` — the locality-versus-throughput sweeps
  behind Figures 1, 4 and 6.
* :mod:`repro.core.general` — the non-symmetric all-commodity
  formulation for arbitrary topologies (meshes etc.).

The centralized numerical tolerances of :mod:`repro.constants` are
re-exported here (``repro.core`` is the layer most callers already
import); see that module for the regime each constant covers.
"""

from repro.constants import (
    COLGEN_AUTO_NODE_THRESHOLD,
    COLGEN_GENERAL_VIOLATION_TOL,
    COLGEN_MAX_ITERATIONS,
    COLGEN_VIOLATION_TOL,
    DISTRIBUTION_ATOL,
    DUALITY_GAP_TOL,
    FEASIBILITY_ATOL,
    GOLDEN_RTOL,
    LEXICOGRAPHIC_SLACK,
    SOLVER_DUST,
)
from repro.core.capacity import CapacityResult, solve_capacity
from repro.core.flows import CanonicalFlowProblem
from repro.core.recovery import decompose_flows, routing_from_flows
from repro.core.worst_case import (
    DESIGN_METHODS,
    ColGenError,
    ColGenStats,
    RestrictedMasterProblem,
    WorstCaseDesign,
    design_worst_case,
    resolve_design_method,
)
from repro.core.average_case import AverageCaseDesign, design_average_case
from repro.core.tradeoff import (
    TradeoffPoint,
    average_case_tradeoff,
    locality_range_at_worst_case,
    optimal_locality_at_max_worst_case,
    worst_case_tradeoff,
)

__all__ = [
    "COLGEN_AUTO_NODE_THRESHOLD",
    "COLGEN_GENERAL_VIOLATION_TOL",
    "COLGEN_MAX_ITERATIONS",
    "COLGEN_VIOLATION_TOL",
    "DISTRIBUTION_ATOL",
    "DUALITY_GAP_TOL",
    "FEASIBILITY_ATOL",
    "GOLDEN_RTOL",
    "LEXICOGRAPHIC_SLACK",
    "SOLVER_DUST",
    "CapacityResult",
    "solve_capacity",
    "CanonicalFlowProblem",
    "decompose_flows",
    "routing_from_flows",
    "DESIGN_METHODS",
    "ColGenError",
    "ColGenStats",
    "RestrictedMasterProblem",
    "WorstCaseDesign",
    "design_worst_case",
    "resolve_design_method",
    "AverageCaseDesign",
    "design_average_case",
    "TradeoffPoint",
    "locality_range_at_worst_case",
    "average_case_tradeoff",
    "optimal_locality_at_max_worst_case",
    "worst_case_tradeoff",
]
