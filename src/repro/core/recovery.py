"""Recovering explicit paths from flow solutions (paper Section 4:
"given the flow variables from a solution of the reformulated problem,
paths can easily be recovered").

The classic flow-decomposition theorem: any unit s-t flow splits into at
most ``C`` path flows plus circulation on cycles.  Paths are peeled with
BFS (shortest surviving path first, which keeps the recovered
description compact); cycle circulation — possible when an equality
locality constraint forces wasted hops — is reported and discarded,
which can only shorten paths and lower loads.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.constants import FEASIBILITY_ATOL

from repro.routing.base import TableRouting
from repro.routing.paths import Path
from repro.topology.torus import Torus


def _bfs_path(torus: Torus, flow: np.ndarray, target: int, tol: float) -> Path | None:
    """Shortest path 0 -> target using only channels with flow > tol."""
    prev: dict[int, tuple[int, int]] = {}  # node -> (prev node, channel)
    seen = {0}
    queue: deque[int] = deque([0])
    while queue:
        v = queue.popleft()
        if v == target:
            nodes = [target]
            while nodes[-1] != 0:
                nodes.append(prev[nodes[-1]][0])
            return tuple(reversed(nodes))
        for c in torus.out_channels(v):
            if flow[c] > tol:
                w = int(torus.channel_dst[c])
                if w not in seen:
                    seen.add(w)
                    prev[w] = (v, int(c))
                    queue.append(w)
    return None


def decompose_single_commodity(
    torus: Torus, flow: np.ndarray, target: int, tol: float = FEASIBILITY_ATOL
) -> tuple[list[tuple[Path, float]], float]:
    """Decompose one commodity's channel flows into weighted paths.

    Returns ``(paths, residual)`` where ``residual`` is the circulation
    mass (total leftover flow) that belonged to cycles.
    """
    flow = np.asarray(flow, dtype=np.float64).copy()
    paths: list[tuple[Path, float]] = []
    remaining = 1.0
    while remaining > tol:
        path = _bfs_path(torus, flow, target, tol)
        if path is None:
            break
        chans = [
            torus.channel_index(a, b) for a, b in zip(path[:-1], path[1:])
        ]
        bottleneck = min(remaining, float(flow[chans].min()))
        flow[chans] -= bottleneck
        remaining -= bottleneck
        paths.append((path, bottleneck))
    total = sum(w for _, w in paths)
    if total <= 0:
        raise ValueError(f"no flow reaches destination {target}")
    paths = [(p, w / total) for p, w in paths]
    return paths, float(flow[flow > tol].sum())


def decompose_flows(
    torus: Torus, flows: np.ndarray, tol: float = FEASIBILITY_ATOL
) -> dict[int, list[tuple[Path, float]]]:
    """Decompose a canonical ``(N, C)`` flow table into a path table."""
    table: dict[int, list[tuple[Path, float]]] = {}
    for t in range(1, torus.num_nodes):
        table[t], _ = decompose_single_commodity(torus, flows[t], t, tol)
    return table


def routing_from_flows(
    torus: Torus, flows: np.ndarray, name: str = "recovered", tol: float = FEASIBILITY_ATOL
) -> TableRouting:
    """Materialize a flow solution as a runnable oblivious algorithm."""
    return TableRouting(torus, decompose_flows(torus, flows, tol), name=name)
