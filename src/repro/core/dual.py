"""The dual of the worst-case design problem (paper Appendix, eq. 19).

Where the primal picks paths and probabilities, the dual picks, for each
channel ``c``, a scaled doubly-stochastic traffic matrix ``A^c`` (a
weighted sum of adversarial permutations, by Birkhoff's theorem) with
row/column sums :math:`\\phi_c`, normalized so :math:`\\sum_c \\phi_c = 1`.
The dual objective is the total *unavoidable* congestion cost: for every
commodity, the shortest-path cost under the per-channel prices
:math:`a^c_{s,d} / b_c`; by LP duality this equals the optimal
worst-case channel load :math:`\\gamma^*_{wc}`.

The exponential per-path constraints of (19) are compressed with
shortest-path potentials: one potential per (commodity, node), with
``pi_w - pi_v <= a^c_{s,d} / b_c`` for every channel ``c = (v, w)``, and
the objective collects ``pi_d - pi_s`` (equivalently, eliminating the
``r`` variables of (19) at their optimal value).

This is implemented for general (small) networks and serves as an
independent strong-duality validation of the primal machinery; the
optimal ``A`` matrices are also the paper's suggested seed for
adversary-sampling approximation algorithms.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.constants import SOLVER_DUST
from repro.lp import LinearModel
from repro.topology.network import Network


@dataclasses.dataclass(frozen=True)
class DualWorstCase:
    """Solution of the dual worst-case problem.

    ``objective`` equals the primal optimal worst-case load;
    ``traffic`` has shape ``(C, N, N)`` — entry ``c`` is the adversarial
    matrix ``A^c`` with row/column sums ``phi[c]``.
    """

    objective: float
    traffic: np.ndarray
    phi: np.ndarray

    def adversary(self, channel: int) -> np.ndarray:
        """The normalized doubly-stochastic adversary of one channel
        (zero matrix if the channel's weight is negligible)."""
        if self.phi[channel] < SOLVER_DUST:
            return np.zeros(self.traffic.shape[1:])
        return self.traffic[channel] / self.phi[channel]


def solve_worst_case_dual(
    network: Network, method: str = "highs-ipm"
) -> DualWorstCase:
    """Solve the Appendix dual LP (19) on an arbitrary network.

    Problem size is :math:`O(CN^2 + N^3)` variables — keep networks
    small (it exists for validation and adversary extraction, not
    scale; the primal with symmetry is the scalable path).
    """
    n, c = network.num_nodes, network.num_channels
    model = LinearModel("worst-case-dual")
    # a[ch, s, d] >= 0 — per-channel adversarial traffic
    a = model.add_variables("a", (c, n, n))
    # phi[ch] — row/column sums of A^ch
    phi = model.add_variables("phi", c)
    # pi[s, d, v] — shortest-path potentials per commodity (free)
    pi = model.add_variables("pi", (n, n, n), lb=-np.inf)

    # potential feasibility: pi[s,d,dst(ch)] - pi[s,d,src(ch)]
    #                        - a[ch,s,d]/b_ch <= 0  for all s,d,ch
    ch_grid = np.tile(np.arange(c), n * n)
    s_grid = np.repeat(np.arange(n), n * c)
    d_grid = np.tile(np.repeat(np.arange(n), c), n)
    rows = np.arange(n * n * c)
    cols_w = pi.index(s_grid, d_grid, network.channel_dst[ch_grid])
    cols_v = pi.index(s_grid, d_grid, network.channel_src[ch_grid])
    cols_a = a.index(ch_grid, s_grid, d_grid)
    model.add_le_batch(
        np.concatenate([rows, rows, rows]),
        np.concatenate([cols_w, cols_v, cols_a]),
        np.concatenate(
            [
                np.ones(rows.size),
                -np.ones(rows.size),
                -1.0 / network.bandwidth[ch_grid],
            ]
        ),
        np.zeros(rows.size),
    )

    # Birkhoff scaling: rows and columns of A^ch sum to phi[ch]
    for axis in (1, 2):
        ch_idx = np.repeat(np.arange(c), n * n)
        if axis == 1:  # sum over s for each (ch, d)
            fixed = np.tile(np.repeat(np.arange(n), n), c)  # d
            free = np.tile(np.arange(n), c * n)  # s
            cols = a.index(ch_idx, free, fixed)
        else:  # sum over d for each (ch, s)
            fixed = np.tile(np.repeat(np.arange(n), n), c)  # s
            free = np.tile(np.arange(n), c * n)  # d
            cols = a.index(ch_idx, fixed, free)
        rows_sum = ch_idx * n + fixed
        phi_rows = np.arange(c * n)
        phi_cols = phi.offset + phi_rows // n
        model.add_eq_batch(
            np.concatenate([rows_sum, phi_rows]),
            np.concatenate([cols, phi_cols]),
            np.concatenate([np.ones(cols.size), -np.ones(c * n)]),
            np.zeros(c * n),
        )

    # normalization: sum_ch phi_ch = 1
    model.add_eq(phi.indices(), np.ones(c), 1.0)

    # maximize sum over commodities of (pi_d - pi_s); self-commodities
    # contribute zero by construction.
    s_all = np.repeat(np.arange(n), n)
    d_all = np.tile(np.arange(n), n)
    obj_cols = np.concatenate(
        [pi.index(s_all, d_all, d_all), pi.index(s_all, d_all, s_all)]
    )
    obj_vals = np.concatenate([-np.ones(n * n), np.ones(n * n)])
    model.set_objective(obj_cols, obj_vals)  # minimize the negative

    sol = model.solve(method=method)
    return DualWorstCase(
        objective=-float(sol.objective),
        traffic=np.clip(sol[a], 0.0, None),
        phi=np.clip(sol[phi], 0.0, None),
    )
