"""Optional compiled kernels for the vectorized cycle loop.

The replica-batched simulator spends most of each cycle in two integer
rankings: *pop selection* (which packets each queue forwards this
cycle, FIFO within a queue) and *arrival keep* (which forwarded packets
fit their next queue's remaining capacity, in arrival order).  This
module provides both as pure functions with two implementations —
NumPy (always available) and numba-jitted twins compiled lazily when
numba is importable.  The ``compiled`` sim backend routes through the
dispatchers below; when the jit toolchain is missing it silently falls
back to the NumPy twins, so the backend is selectable everywhere and
produces identical integer outputs either way (the differential suite
runs the NumPy path; the jit path mirrors it loop-for-loop).

Both functions require non-empty inputs — the cycle loop already skips
empty phases, and keeping the guard at the call site keeps the jitted
bodies branch-free.
"""

from __future__ import annotations

import numpy as np

from repro import obs

log = obs.get_logger(__name__)

#: Bits reserved for the enqueue sequence in the combined sort key.
#: Shared with :mod:`repro.sim.vectorized` — the sequence counter is
#: monotone per run and bounded by total enqueues, far below 2**40.
SEQ_BITS = 40

try:  # pragma: no cover - the container bakes in numpy only
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:
    _njit = None
    HAVE_NUMBA = False

_fallback_noted = False


def compiled_available() -> bool:
    """Whether the ``compiled`` backend runs jitted kernels (it is
    selectable regardless; without numba it uses the NumPy twins)."""
    return HAVE_NUMBA


def _note_fallback() -> None:
    global _fallback_noted
    if not _fallback_noted:
        log.debug(
            "numba not importable; 'compiled' backend uses NumPy kernels"
        )
        _fallback_noted = True


# ----------------------------------------------------------------------
# NumPy twins (the differential-tested reference implementations)
# ----------------------------------------------------------------------
def pop_selection_numpy(
    qkey: np.ndarray, seq: np.ndarray, budgets: np.ndarray
) -> np.ndarray:
    """Indices of the packets popped this cycle.

    One sort on the combined ``(queue, sequence)`` key, then each
    queue's first ``budgets[q]`` packets in FIFO order — the reference
    arbitration contract (channel-index order across queues, FIFO
    within).  Emission order is the sorted order, which callers rely on
    for deterministic downstream processing.
    """
    size = qkey.shape[0]
    order = np.argsort((qkey << SEQ_BITS) | seq)
    q_sorted = qkey[order]
    head = np.empty(size, dtype=bool)
    head[0] = True
    head[1:] = q_sorted[1:] != q_sorted[:-1]
    idx = np.arange(size)
    rank = idx - idx[head][np.cumsum(head) - 1]
    return order[rank < budgets[q_sorted]]


def arrival_keep_numpy(
    qkey: np.ndarray, occ: np.ndarray, cap: int
) -> np.ndarray:
    """Boolean mask of forwarded packets that fit their next queue.

    Arrival order per queue decides who fills the remaining
    ``cap - occ[q]`` slots, exactly as the reference's sequential
    appends do — hence the stable sort on the queue key alone.
    """
    size = qkey.shape[0]
    order = np.argsort(qkey, kind="stable")
    q_sorted = qkey[order]
    head = np.empty(size, dtype=bool)
    head[0] = True
    head[1:] = q_sorted[1:] != q_sorted[:-1]
    idx = np.arange(size)
    rank = idx - idx[head][np.cumsum(head) - 1]
    keep = np.empty(size, dtype=bool)
    keep[order] = rank < (cap - occ[q_sorted])
    return keep


# ----------------------------------------------------------------------
# Jitted twins (compiled on first use; loop-for-loop mirrors)
# ----------------------------------------------------------------------
if HAVE_NUMBA:  # pragma: no cover - exercised only where numba exists

    @_njit(cache=True)
    def _pop_selection_jit(qkey, seq, budgets):
        size = qkey.shape[0]
        key = np.empty(size, dtype=np.int64)
        for i in range(size):
            key[i] = (qkey[i] << SEQ_BITS) | seq[i]
        order = np.argsort(key)
        out = np.empty(size, dtype=np.int64)
        count = 0
        prev = np.int64(-1)
        rank = np.int64(0)
        for i in range(size):
            j = order[i]
            q = qkey[j]
            if q != prev:
                prev = q
                rank = 0
            if rank < budgets[q]:
                out[count] = j
                count += 1
            rank += 1
        return out[:count]

    @_njit(cache=True)
    def _arrival_keep_jit(qkey, occ, cap):
        size = qkey.shape[0]
        # Stable order by queue via a strictly monotone composite key.
        key = np.empty(size, dtype=np.int64)
        for i in range(size):
            key[i] = qkey[i] * size + i
        order = np.argsort(key)
        keep = np.empty(size, dtype=np.bool_)
        prev = np.int64(-1)
        rank = np.int64(0)
        for i in range(size):
            j = order[i]
            q = qkey[j]
            if q != prev:
                prev = q
                rank = 0
            keep[j] = rank < (cap - occ[q])
            rank += 1
        return keep


# ----------------------------------------------------------------------
# Dispatchers (the ``backend="compiled"`` seam)
# ----------------------------------------------------------------------
def pop_selection(
    qkey: np.ndarray,
    seq: np.ndarray,
    budgets: np.ndarray,
    compiled: bool = False,
) -> np.ndarray:
    if compiled:
        if HAVE_NUMBA:  # pragma: no cover - numba absent in CI image
            return _pop_selection_jit(
                np.ascontiguousarray(qkey),
                np.ascontiguousarray(seq),
                np.ascontiguousarray(budgets),
            )
        _note_fallback()
    return pop_selection_numpy(qkey, seq, budgets)


def arrival_keep(
    qkey: np.ndarray,
    occ: np.ndarray,
    cap: int,
    compiled: bool = False,
) -> np.ndarray:
    if compiled:
        if HAVE_NUMBA:  # pragma: no cover - numba absent in CI image
            return _arrival_keep_jit(
                np.ascontiguousarray(qkey),
                np.ascontiguousarray(occ),
                np.int64(cap),
            )
        _note_fallback()
    return arrival_keep_numpy(qkey, occ, cap)
