"""Flit-level wormhole router simulator with virtual channels.

The paper's throughput model is the ideal edge-congestion bound of
Section 2.1, which it notes practical routers reach "typically 60-75%"
of [6].  This module models such a practical router: input-queued,
wormhole flow control, per-channel virtual channels with credit-based
backpressure, and the VC selection driven by the same schemes the
static deadlock analysis uses (:mod:`repro.deadlock.vc`).  It serves
three purposes:

* demonstrate *dynamic* deadlock: DOR on a torus ring with a single VC
  wedges under load, while the dateline scheme does not;
* measure the fraction of the ideal bound a constrained router achieves
  (the 60-75% claim);
* exercise LP-designed routing tables under realistic flow control.

Model (one cycle):

1. **Injection** — as in the ideal simulator, but a packet becomes
   ``num_flits`` flits that must win resources hop by hop.
2. **VC allocation** — a packet whose head flit sits at the front of a
   VC buffer and needs its *next* channel requests the VC the scheme
   prescribes; the request succeeds only if that VC is currently
   unallocated and has a free buffer slot.
3. **Switch traversal** — each physical channel forwards at most one
   flit per cycle (bandwidth 1), chosen round-robin among its VCs whose
   downstream buffer has credit.
4. A VC is released when a packet's tail flit leaves it.

The model is deliberately compact — single-flit buffers degenerate to
store-and-forward — but it exhibits the phenomena that matter here:
cyclic VC dependence causes real deadlock, and turn/dateline schemes
remove it.
"""

from __future__ import annotations

import dataclasses
from collections import deque

import numpy as np

from repro.constants import DISTRIBUTION_ATOL
from repro.routing.base import ObliviousRouting
from repro.routing.paths import path_channels
from repro.sim.stats import latency_stats
from repro.topology.torus import Torus
from repro.traffic.doubly_stochastic import validate_doubly_stochastic


@dataclasses.dataclass(slots=True)
class _WormPacket:
    uid: int
    dst: int
    channels: tuple[int, ...]
    vcs: tuple[int, ...]
    inject_time: int
    flits: int
    hop: int = 0  # next channel index to acquire
    flits_sent: int = 0  # flits that have left the current VC


@dataclasses.dataclass(frozen=True)
class WormholeConfig:
    """Knobs of a wormhole simulation run."""

    cycles: int = 3000
    warmup: int = 1000
    injection_rate: float = 0.3
    num_vcs: int = 4
    buffer_flits: int = 4
    num_flits: int = 1
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError("injection_rate must be in [0, 1]")
        if self.num_vcs < 1 or self.buffer_flits < 1 or self.num_flits < 1:
            raise ValueError("num_vcs, buffer_flits, num_flits must be >= 1")
        if self.num_flits > self.buffer_flits:
            raise ValueError(
                "num_flits must fit one buffer (the source streams a "
                "whole packet into its first VC at allocation)"
            )
        if self.warmup >= self.cycles:
            raise ValueError("warmup must leave measurement cycles")


@dataclasses.dataclass(frozen=True)
class WormholeResult:
    """Measured behaviour of one wormhole run."""

    offered_rate: float
    accepted_rate: float
    mean_latency: float
    delivered: int
    backlog_packets: int
    deadlocked: bool
    progress_stall_cycles: int

    @property
    def stable(self) -> bool:
        return not self.deadlocked and self.accepted_rate >= 0.9 * self.offered_rate


class _VirtualChannel:
    __slots__ = ("buffer", "owner")

    def __init__(self) -> None:
        self.buffer: deque = deque()  # (packet, is_tail) flit records
        self.owner: _WormPacket | None = None


def simulate_wormhole(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    vc_scheme,
    config: WormholeConfig = WormholeConfig(),
) -> WormholeResult:
    """Run the wormhole model.

    Parameters
    ----------
    algorithm:
        Oblivious routing algorithm supplying the paths.
    traffic:
        Doubly-stochastic traffic matrix.
    vc_scheme:
        ``scheme(torus, path) -> [vc per hop]``; VC indices are taken
        modulo ``config.num_vcs``, so running the 4-VC turn scheme with
        ``num_vcs = 1`` deliberately collapses it (the deadlock demo).
    """
    torus = algorithm.network
    if not isinstance(torus, Torus):
        raise TypeError("the wormhole model is implemented for tori")
    validate_doubly_stochastic(traffic, tol=DISTRIBUTION_ATOL)
    rng = np.random.default_rng(config.seed)
    n = torus.num_nodes
    num_vcs = config.num_vcs

    vcs = [
        [_VirtualChannel() for _ in range(num_vcs)]
        for _ in range(torus.num_channels)
    ]
    inject_queues: list[deque[_WormPacket]] = [deque() for _ in range(n)]
    rr_state = np.zeros(torus.num_channels, dtype=np.int64)

    dist_cache: dict[tuple[int, int], list] = {}

    def routes(s: int, d: int):
        key = (s, d)
        if key not in dist_cache:
            dist = algorithm.path_distribution(s, d)
            entries = []
            for path, w in dist:
                chans = tuple(path_channels(torus, path))
                assigned = tuple(
                    v % num_vcs for v in vc_scheme(torus, path)
                )
                entries.append((chans, assigned, w))
            dist_cache[key] = entries
        return dist_cache[key]

    uid = 0
    delivered = 0
    latencies: list[int] = []
    measured_ejections = 0
    cum_traffic = np.cumsum(traffic, axis=1)
    last_progress_cycle = 0
    stall = 0

    for cycle in range(config.cycles):
        moved = False

        # 1. injection: new packets join per-node injection queues
        inject_mask = rng.random(n) < config.injection_rate
        for s in np.nonzero(inject_mask)[0]:
            d = int(np.searchsorted(cum_traffic[s], rng.random()))
            d = min(d, n - 1)
            if d == s:
                continue
            entries = routes(int(s), d)
            if len(entries) > 1:
                probs = np.asarray([w for _, _, w in entries])
                idx = rng.choice(len(entries), p=probs / probs.sum())
            else:
                idx = 0
            chans, assigned, _ = entries[idx]
            inject_queues[s].append(
                _WormPacket(
                    uid=uid,
                    dst=d,
                    channels=chans,
                    vcs=assigned,
                    inject_time=cycle,
                    flits=config.num_flits,
                )
            )
            uid += 1

        # 2. source VC allocation: the head of each injection queue
        # claims its first (channel, VC) and streams its flits in
        # (num_flits <= buffer_flits, enforced by the config)
        for s in range(n):
            if not inject_queues[s]:
                continue
            pkt = inject_queues[s][0]
            first_vc = vcs[pkt.channels[0]][pkt.vcs[0]]
            if first_vc.owner is None and not first_vc.buffer:
                first_vc.owner = pkt
                pkt.hop = 1
                inject_queues[s].popleft()
                for flit in range(pkt.flits):
                    first_vc.buffer.append((pkt, flit == pkt.flits - 1))
                moved = True

        # 3. switch traversal: each physical channel forwards one flit,
        # round-robin over its VCs
        for ch in range(torus.num_channels):
            start = rr_state[ch]
            for off in range(num_vcs):
                vc_idx = (start + off) % num_vcs
                vc = vcs[ch][vc_idx]
                if not vc.buffer:
                    continue
                pkt, is_tail = vc.buffer[0]
                this_hop = pkt.channels.index(ch)  # channels are unique
                if this_hop == len(pkt.channels) - 1:
                    # final hop: flit ejects at the destination
                    vc.buffer.popleft()
                    if is_tail:
                        vc.owner = None
                        delivered += 1
                        if pkt.inject_time >= config.warmup:
                            measured_ejections += 1
                            latencies.append(cycle - pkt.inject_time + 1)
                else:
                    nxt_vc = vcs[pkt.channels[this_hop + 1]][
                        pkt.vcs[this_hop + 1]
                    ]
                    if pkt.hop == this_hop + 1:
                        # head flit must win the downstream VC first
                        if nxt_vc.owner is not None or nxt_vc.buffer:
                            continue  # blocked: VC busy
                        nxt_vc.owner = pkt
                        pkt.hop = this_hop + 2
                    if len(nxt_vc.buffer) >= config.buffer_flits:
                        continue  # blocked: no credit downstream
                    vc.buffer.popleft()
                    nxt_vc.buffer.append((pkt, is_tail))
                    if is_tail:
                        vc.owner = None
                rr_state[ch] = (vc_idx + 1) % num_vcs
                moved = True
                break

        if moved:
            last_progress_cycle = cycle
        stall = cycle - last_progress_cycle

    in_flight = {
        id(rec[0])
        for chan_vcs in vcs
        for vc in chan_vcs
        for rec in vc.buffer
    }
    backlog = len(in_flight) + sum(len(q) for q in inject_queues)
    window = config.cycles - config.warmup
    effective = config.injection_rate * (1.0 - float(np.diag(traffic).mean()))
    # deadlock: flits were waiting but nothing moved for a long time
    deadlocked = backlog > 0 and stall > 50
    return WormholeResult(
        offered_rate=effective,
        accepted_rate=measured_ejections / (window * n),
        mean_latency=latency_stats(latencies).mean_latency,
        delivered=delivered,
        backlog_packets=backlog,
        deadlocked=deadlocked,
        progress_stall_cycles=stall,
    )
