"""Shared measurement-window statistics for the simulator backends.

Every backend (reference, vectorized, adaptive, wormhole) finishes a run
with the same bookkeeping: a list of inject-to-eject latencies and hop
counts for packets injected during the measurement window.  A run at a
rate far above saturation can legitimately deliver *zero* packets in
that window; the statistics must then degrade to well-defined NaNs
instead of raising (``np.percentile`` on an empty array raises), and the
same guard must hold in every backend — hence one shared helper instead
of four copies of the ``if lat.size`` dance.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """NaN-safe latency/hops summary of one measurement window."""

    mean_latency: float
    p99_latency: float
    mean_hops: float
    count: int


def latency_stats(latencies, hops=None) -> LatencyStats:
    """Summarize measured latencies (and optionally hop counts).

    Zero-delivery windows yield NaN for every statistic — the documented
    "no data" value rendered as ``-`` by ``obs-report`` — rather than
    raising, so sweeps that cross the saturation point never crash on
    their unstable tail.
    """
    lat = np.asarray(latencies, dtype=float)
    if lat.size:
        mean = float(lat.mean())
        p99 = float(np.percentile(lat, 99))
    else:
        mean = p99 = float("nan")
    if hops is None:
        mean_hops = float("nan")
    else:
        h = np.asarray(hops, dtype=float)
        mean_hops = float(h.mean()) if h.size else float("nan")
    return LatencyStats(
        mean_latency=mean,
        p99_latency=p99,
        mean_hops=mean_hops,
        count=int(lat.size),
    )
