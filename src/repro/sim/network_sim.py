"""Cycle-based output-queued simulation loop.

Every channel owns an output queue at its source node.  A cycle has two
phases:

1. **Injection** — each node injects a packet with probability equal to
   the offered load; the destination is drawn from the traffic matrix
   row and the full path is sampled from the oblivious routing
   algorithm.  Self-addressed draws complete immediately (they never
   enter the network — the traffic matrix diagonal loads no channel).
2. **Service** — every channel forwards up to ``bandwidth`` packets
   from its queue; a forwarded packet either joins the next channel's
   queue or ejects at its destination.

With unbounded queues this system is stable exactly when offered load
is below the analytic throughput :math:`\\Theta(R, \\Lambda)` — the
claim of paper Section 2.1 that the experiments verify.  A finite
``queue_capacity`` adds drop-at-enqueue semantics for burst studies.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque

import numpy as np

from repro import obs
from repro.constants import DEFAULT_SIM_BACKEND, DISTRIBUTION_ATOL
from repro.routing.base import ObliviousRouting
from repro.routing.paths import path_channels
from repro.sim.packets import Packet
from repro.sim.stats import latency_stats
from repro.traffic.doubly_stochastic import validate_doubly_stochastic

#: Simulation kernels selectable on the sim entry points (and via the
#: ``--sim-backend`` CLI flag).  ``reference`` is the per-packet loop in
#: this module; ``vectorized`` is the struct-of-arrays kernel in
#: :mod:`repro.sim.vectorized`, differentially tested to reproduce the
#: reference's packet counts exactly; ``compiled`` is the same kernel
#: with its per-cycle hot loops routed through :mod:`repro.sim.kernel`
#: (numba-jitted when importable, silently falling back to the NumPy
#: twins otherwise — identical counts either way).
BACKENDS = ("reference", "vectorized", "compiled")

#: Actions a ``link_schedule`` entry may carry.  ``"down"`` parks a
#: channel — it serves nothing but keeps its queue and accepts new
#: enqueues (the rotor-switch semantics: packets wait for the link to
#: come back) — and ``"up"`` restores it.  Contrast ``fault_schedule``,
#: whose kills are permanent and destroy queued packets.
LINK_ACTIONS = ("down", "up")


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown sim backend {backend!r}; expected one of {BACKENDS}"
        )


def normalize_fault_schedule(schedule) -> tuple[tuple[int, int], ...]:
    """Canonicalize ``(cycle, channel)`` kill events.

    Entries are sorted and deduplicated (killing an already-dead channel
    is a no-op); negative cycles or channels are rejected.  Shared by
    :class:`SimulationConfig` and the replica-batched kernel so the two
    paths agree on what a schedule means.
    """
    out = []
    for entry in schedule:
        cycle, channel = entry
        if int(cycle) < 0 or int(channel) < 0:
            raise ValueError(
                f"fault_schedule entry {entry!r} must be a "
                "(cycle, channel) pair of nonnegative ints"
            )
        out.append((int(cycle), int(channel)))
    return tuple(sorted(set(out)))


def normalize_link_schedule(schedule) -> tuple[tuple[int, int, str], ...]:
    """Canonicalize ``(cycle, channel, action)`` link events.

    Entries are sorted and exact duplicates collapse; two *different*
    actions for the same ``(cycle, channel)`` are contradictory and
    rejected, since applying them in either order changes the run.
    """
    out: dict[tuple[int, int], str] = {}
    for entry in schedule:
        cycle, channel, action = entry
        if action not in LINK_ACTIONS:
            raise ValueError(
                f"link_schedule action {action!r} must be one of {LINK_ACTIONS}"
            )
        if int(cycle) < 0 or int(channel) < 0:
            raise ValueError(
                f"link_schedule entry {entry!r} must be a "
                "(cycle, channel, action) triple of nonnegative ints"
            )
        key = (int(cycle), int(channel))
        if out.get(key, action) != action:
            raise ValueError(
                f"conflicting link_schedule events for channel {channel} "
                f"at cycle {cycle}"
            )
        out[key] = str(action)
    return tuple((c, ch, a) for (c, ch), a in sorted(out.items()))


def validate_channel_events(
    fault_schedule,
    link_schedule,
    cycles: int,
    num_channels: int | None = None,
) -> None:
    """Reject schedule events the run could never apply.

    An event at or past ``cycles`` used to be a silent no-op — a typo'd
    cycle count quietly simulated the pristine network instead.  Both
    backends call this (and :class:`SimulationConfig` calls it at
    construction), so the error is identical everywhere.  The channel
    range is only checked when ``num_channels`` is known.
    """
    for cycle, channel in fault_schedule:
        if cycle >= cycles:
            raise ValueError(
                f"fault_schedule event at cycle {cycle} is at or past the "
                f"end of the run ({cycles} cycles)"
            )
        if num_channels is not None and channel >= num_channels:
            raise ValueError(
                f"fault_schedule channel {channel} out of range "
                f"(network has {num_channels} channels)"
            )
    for cycle, channel, _action in link_schedule:
        if cycle >= cycles:
            raise ValueError(
                f"link_schedule event at cycle {cycle} is at or past the "
                f"end of the run ({cycles} cycles)"
            )
        if num_channels is not None and channel >= num_channels:
            raise ValueError(
                f"link_schedule channel {channel} out of range "
                f"(network has {num_channels} channels)"
            )


def service_budgets(bandwidth: np.ndarray, cycle: int) -> np.ndarray:
    """Per-cycle integer service budget for (possibly fractional) bandwidths.

    Deterministic token-bucket discretization: in ``cycle`` channel ``c``
    may forward ``floor((cycle+1) * b_c) - floor(cycle * b_c)`` packets,
    so any window of ``T`` cycles serves within one packet of
    ``T * b_c`` — the fluid semantics heterogeneous (e.g. half-rate TSV)
    links need.  Integer bandwidths get exactly ``b_c`` every cycle, so
    the historical behaviour is unchanged.  The schedule is a pure
    function of ``(bandwidth, cycle)`` and consumes no randomness, which
    is what lets both sim backends share it while staying draw-for-draw
    identical on the injection RNG stream.
    """
    b = np.asarray(bandwidth, dtype=np.float64)
    # The epsilon absorbs accumulated float error for non-dyadic rates
    # (e.g. 0.1): without it floor() can land one ulp under a boundary
    # and misplace a service slot by one cycle.
    eps = 1e-9
    later = np.floor((cycle + 1) * b + eps)
    now = np.floor(cycle * b + eps)
    return (later - now).astype(np.int64)


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run.

    ``warmup`` cycles are excluded from latency/throughput statistics;
    ``queue_capacity`` of ``None`` means unbounded (the paper's model).

    ``fault_schedule`` kills channels mid-run: each ``(cycle, channel)``
    entry marks ``channel`` dead at the *start* of ``cycle``.  Packets
    queued on a dying channel, and packets later routed onto a dead one,
    are counted in :attr:`SimulationResult.lost` — they leave the system
    without being delivered or dropped at a full queue.  Entries are
    normalized to a sorted, deduplicated tuple; killing an already-dead
    channel is a no-op.

    ``link_schedule`` makes channels *time-varying without loss*: each
    ``(cycle, channel, action)`` entry with action ``"down"`` parks the
    channel at the start of ``cycle`` (it serves no packets but keeps
    its queue and accepts enqueues) and ``"up"`` restores it — the
    periodic rotor-topology semantics (see :mod:`repro.rotor`).  A
    ``"down"`` never loses packets; kills always win over link state.

    Events scheduled at or past ``cycles`` are rejected up front (they
    used to be silent no-ops), as are contradictory link events for the
    same ``(cycle, channel)``.
    """

    cycles: int = 2000
    warmup: int = 500
    injection_rate: float = 0.4
    seed: int = 0
    queue_capacity: int | None = None
    fault_schedule: tuple[tuple[int, int], ...] = ()
    link_schedule: tuple[tuple[int, int, str], ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError("injection_rate must be in [0, 1]")
        if self.warmup >= self.cycles:
            raise ValueError("warmup must leave measurement cycles")
        object.__setattr__(
            self, "fault_schedule", normalize_fault_schedule(self.fault_schedule)
        )
        object.__setattr__(
            self, "link_schedule", normalize_link_schedule(self.link_schedule)
        )
        validate_channel_events(
            self.fault_schedule, self.link_schedule, self.cycles
        )


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Measured behaviour of one run.

    ``accepted_rate`` counts measured-window ejections per node per
    cycle; ``mean_latency`` averages inject-to-eject delay of packets
    injected during the measurement window; ``backlog`` is the number of
    packets still queued at the end — the stability signal.

    ``offered_rate`` is the *effective* offered load: the configured
    injection rate minus the traffic-matrix diagonal mass, since
    self-addressed packets never enter the network.
    """

    injection_rate: float
    offered_rate: float
    accepted_rate: float
    mean_latency: float
    p99_latency: float
    delivered: int
    dropped: int
    backlog: int
    backlog_growth: int
    measurement_cycles: int
    mean_hops: float
    num_nodes: int
    #: deepest output queue observed over the whole run
    queue_peak: int = 0
    #: packets that entered the network (excludes self-addressed draws);
    #: conservation: injected == delivered + backlog + dropped + lost
    injected: int = 0
    #: packets destroyed by channel faults (queued on a dying channel,
    #: or routed onto a dead one) — see ``SimulationConfig.fault_schedule``
    lost: int = 0

    @property
    def stable(self) -> bool:
        """Heuristic stability verdict.

        A tiny final backlog is always stable (robust to Bernoulli noise
        at low loads).  Otherwise instability is judged by *backlog
        growth* across the measurement window: an oversubscribed channel
        accumulates packets linearly, while a stable system's queues are
        stationary.  Growth-based detection catches adversarial patterns
        that overload a single channel, which barely dent the aggregate
        accepted/offered ratio.
        """
        if self.backlog <= 2 * self.num_nodes:
            return True
        threshold = max(2 * self.num_nodes, self.measurement_cycles // 50)
        return self.backlog_growth <= threshold


def simulate(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    config: SimulationConfig = SimulationConfig(),
    backend: str = DEFAULT_SIM_BACKEND,
) -> SimulationResult:
    """Run the output-queued model and measure throughput and latency.

    ``backend`` selects the kernel (see :data:`BACKENDS`, default
    :data:`repro.constants.DEFAULT_SIM_BACKEND`); both produce the same
    :class:`SimulationResult` schema and agree exactly on every packet
    count for the same seed.  Each run is one ``sim.run`` trace span
    carrying the measured cycles/deliveries/queue-peak/latency
    attributes (vectorized runs add ``backend="vectorized"``).
    """
    _check_backend(backend)
    if backend in ("vectorized", "compiled"):
        from repro.sim.vectorized import simulate_vectorized

        return simulate_vectorized(
            algorithm, traffic, config, compiled=backend == "compiled"
        )
    with obs.span(
        "sim.run",
        rate=float(config.injection_rate),
        cycles=int(config.cycles),
        seed=int(config.seed),
    ) as sp:
        t0 = time.perf_counter()
        result = _simulate(algorithm, traffic, config)
        elapsed = time.perf_counter() - t0
        sp.set(
            delivered=result.delivered,
            dropped=result.dropped,
            lost=result.lost,
            accepted_rate=result.accepted_rate,
            backlog=result.backlog,
            queue_peak=result.queue_peak,
            stable=result.stable,
        )
        if np.isfinite(result.mean_latency):  # NaN is not valid JSON
            sp.set(
                mean_latency=result.mean_latency,
                p99_latency=result.p99_latency,
            )
    _record_sim_metrics(result, config, elapsed, backend="reference")
    return result


def _record_sim_metrics(result, config, elapsed: float, backend: str) -> None:
    """Registry metrics for one simulator run (both backends call this)."""
    obs.metric_count("sim.runs", backend=backend)
    obs.metric_count("sim.delivered", result.delivered, backend=backend)
    obs.metric_count("sim.dropped", result.dropped, backend=backend)
    obs.metric_count("sim.lost", result.lost, backend=backend)
    obs.metric_observe("sim.queue_peak", result.queue_peak, backend=backend)
    if elapsed > 0:
        obs.metric_gauge(
            "sim.cycles_per_second",
            int(config.cycles) / elapsed,
            volatile=True,
            backend=backend,
        )


def _simulate(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    config: SimulationConfig,
) -> SimulationResult:
    net = algorithm.network
    validate_doubly_stochastic(traffic, tol=DISTRIBUTION_ATOL)
    rng = np.random.default_rng(config.seed)
    queues: list[deque[Packet]] = [deque() for _ in range(net.num_channels)]
    integral = np.allclose(np.round(net.bandwidth), net.bandwidth)
    bandwidth = net.bandwidth.round().astype(np.int64) if integral else None

    # Path cache: sampling a fresh path per packet through the full
    # distribution is the semantics; caching per-pair distributions keeps
    # it affordable.
    dist_cache: dict[tuple[int, int], tuple[list[tuple[int, ...]], np.ndarray]] = {}

    def sample_channels(s: int, d: int) -> tuple[int, ...]:
        key = (s, d)
        if key not in dist_cache:
            dist = algorithm.path_distribution(s, d)
            chans = [tuple(path_channels(net, p)) for p, _ in dist]
            probs = np.asarray([w for _, w in dist])
            dist_cache[key] = (chans, probs / probs.sum())
        chans, probs = dist_cache[key]
        idx = rng.choice(len(chans), p=probs) if len(chans) > 1 else 0
        return chans[idx]

    uid = 0
    delivered = 0
    dropped = 0
    lost = 0
    latencies: list[int] = []
    hops: list[int] = []
    measured_ejections = 0

    # Channel kills by cycle; a dead channel destroys its queue at the
    # kill instant and every packet routed onto it afterwards (counted
    # in ``lost``, keeping the conservation identity exact).  Link
    # events, by contrast, only toggle the per-channel service budget:
    # a down channel holds its queue until the matching "up".
    validate_channel_events(
        config.fault_schedule,
        config.link_schedule,
        config.cycles,
        net.num_channels,
    )
    fault_by_cycle: dict[int, list[int]] = {}
    for kill_cycle, channel in config.fault_schedule:
        fault_by_cycle.setdefault(kill_cycle, []).append(channel)
    link_by_cycle: dict[int, list[tuple[int, str]]] = {}
    for ev_cycle, channel, action in config.link_schedule:
        link_by_cycle.setdefault(ev_cycle, []).append((channel, action))
    dead = np.zeros(net.num_channels, dtype=bool)
    down = np.zeros(net.num_channels, dtype=bool)

    n = net.num_nodes
    cum_traffic = np.cumsum(traffic, axis=1)
    backlog_at_warmup = 0
    queue_peak = 0
    for cycle in range(config.cycles):
        for channel, action in link_by_cycle.get(cycle, ()):
            down[channel] = action == "down"
        for channel in fault_by_cycle.get(cycle, ()):
            if not dead[channel]:
                dead[channel] = True
                lost += len(queues[channel])
                queues[channel].clear()
        if cycle == config.warmup:
            backlog_at_warmup = sum(len(q) for q in queues)
        # 1. injection
        inject_mask = rng.random(n) < config.injection_rate
        for s in np.nonzero(inject_mask)[0]:
            d = int(np.searchsorted(cum_traffic[s], rng.random()))
            d = min(d, n - 1)
            if d == s:
                continue  # self-traffic never enters the network
            channels = sample_channels(int(s), d)
            pkt = Packet(
                uid=uid, src=int(s), dst=d, channels=channels, inject_time=cycle
            )
            uid += 1
            if dead[channels[0]]:
                lost += 1
            elif (
                config.queue_capacity is not None
                and len(queues[channels[0]]) >= config.queue_capacity
            ):
                dropped += 1
            else:
                queues[channels[0]].append(pkt)

        # 2. service
        budget = (
            bandwidth
            if integral
            else service_budgets(net.bandwidth, cycle)
        )
        if down.any():
            budget = np.where(down, 0, budget)
        arrivals: list[tuple[int, Packet]] = []
        for c, q in enumerate(queues):
            if len(q) > queue_peak:
                queue_peak = len(q)
            for _ in range(budget[c]):
                if not q:
                    break
                pkt = q.popleft()
                pkt.hop += 1
                if pkt.remaining == 0:
                    delivered += 1
                    if pkt.inject_time >= config.warmup:
                        measured_ejections += 1
                        latencies.append(cycle - pkt.inject_time + 1)
                        hops.append(len(pkt.channels))
                else:
                    arrivals.append((pkt.channels[pkt.hop], pkt))
        for c, pkt in arrivals:
            if dead[c]:
                lost += 1
            elif (
                config.queue_capacity is not None
                and len(queues[c]) >= config.queue_capacity
            ):
                dropped += 1
            else:
                queues[c].append(pkt)

    backlog = sum(len(q) for q in queues)
    window = config.cycles - config.warmup
    stats = latency_stats(latencies, hops)
    effective = config.injection_rate * (1.0 - float(np.diag(traffic).mean()))
    return SimulationResult(
        injection_rate=config.injection_rate,
        offered_rate=effective,
        accepted_rate=measured_ejections / (window * n),
        mean_latency=stats.mean_latency,
        p99_latency=stats.p99_latency,
        delivered=delivered,
        dropped=dropped,
        backlog=backlog,
        backlog_growth=backlog - backlog_at_warmup,
        measurement_cycles=window,
        mean_hops=stats.mean_hops,
        num_nodes=n,
        queue_peak=queue_peak,
        injected=uid,
        lost=lost,
    )
