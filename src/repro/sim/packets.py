"""Packet records for the simulator."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(slots=True)
class Packet:
    """A packet in flight.

    ``channels`` is the precomputed channel itinerary (oblivious routing
    fixes the whole path at injection time); ``hop`` indexes the next
    channel to traverse.
    """

    uid: int
    src: int
    dst: int
    channels: tuple[int, ...]
    inject_time: int
    hop: int = 0

    @property
    def remaining(self) -> int:
        return len(self.channels) - self.hop
