"""Packet-level network simulator.

The paper's throughput model is analytic: a network is stable as long as
every channel's expected load is below its bandwidth, a bound achievable
with output queuing, large queues and a simple scheduling protocol
(Section 2.1, citing [5]).  This package implements exactly that
idealized system — a cycle-based, output-queued, store-and-forward
simulator with oblivious path sampling — and is used to validate the
analytic saturation throughputs empirically: offered loads below
:math:`\\Theta(R, \\Lambda)` drain, loads above it grow queues without
bound.
"""

from repro.sim.packets import Packet
from repro.sim.network_sim import (
    BACKENDS,
    SimulationConfig,
    SimulationResult,
    simulate,
)
from repro.sim.measure import (
    SaturationEstimate,
    latency_load_curve,
    saturation_throughput,
    saturation_throughput_batch,
)
from repro.sim.stats import LatencyStats, latency_stats
from repro.sim.vectorized import (
    Replica,
    VectorizedSimulator,
    replica_grid,
    simulate_replicas,
    simulate_vectorized,
    sweep_vectorized,
)
from repro.sim.adaptive import (
    adaptive_expected_locality,
    adaptive_saturation,
    simulate_adaptive,
)
from repro.sim.wormhole import (
    WormholeConfig,
    WormholeResult,
    simulate_wormhole,
)

__all__ = [
    "adaptive_expected_locality",
    "adaptive_saturation",
    "simulate_adaptive",
    "WormholeConfig",
    "WormholeResult",
    "simulate_wormhole",
    "BACKENDS",
    "LatencyStats",
    "latency_stats",
    "Packet",
    "SimulationConfig",
    "SimulationResult",
    "simulate",
    "simulate_replicas",
    "simulate_vectorized",
    "sweep_vectorized",
    "Replica",
    "replica_grid",
    "VectorizedSimulator",
    "latency_load_curve",
    "SaturationEstimate",
    "saturation_throughput",
    "saturation_throughput_batch",
]
