"""Vectorized struct-of-arrays simulation kernel.

This backend replays the *exact* stochastic process of the reference
per-packet loop in :mod:`repro.sim.network_sim` — same seeded RNG
stream, same output-queued FIFO arbitration — but holds every in-flight
packet in flat NumPy arrays and advances the whole population one cycle
at a time with array-wide updates.  The batch axis is the **replica**:
each :class:`Replica` is an independent ``(injection_rate, seed,
fault_schedule, link_schedule)`` tuple, so a whole (rate × seed × fault)
grid runs as one call — the per-``(s, d)`` path tables are compiled
once and the per-cycle work for all replicas shares the same vector
operations.  Per-replica ``dead``/``down`` channel masks let replicas
in the same launch carry *different* fault and link schedules.

Equivalence contract (enforced by ``tests/sim/test_differential.py``
and ``tests/sim/test_replicas.py``):

* **Injection** draws are consumed in the reference's order — one
  uniform vector per cycle for the Bernoulli mask, then per injecting
  node (ascending id) one uniform for the destination and, iff the
  pair's path distribution has more than one entry, one uniform for the
  path choice.  The kernel reproduces this interleaved stream without a
  per-packet Python loop by over-drawing a scratch block from a saved
  bit-generator state, decoding destinations with a vectorized fixpoint
  (draw positions depend only on *predecessor* flags, so the iteration
  converges once the flags stabilize), and then rewinding the generator
  and advancing it by the exact number of consumed draws.
* **Arbitration** is deterministic: channels service their queues in
  channel-index order, FIFO within a queue, up to ``bandwidth`` packets
  per cycle; forwarded packets join their next queue in (forwarding
  channel, FIFO) order.  The kernel encodes this with a monotone
  enqueue-sequence number and one sort per cycle on the combined
  ``(queue, sequence)`` key — the tie-breaking contract documented in
  DESIGN.md ("Simulator backends").  The per-cycle rankings live in
  :mod:`repro.sim.kernel` behind the ``compiled`` seam (numba-jitted
  when importable, NumPy otherwise, identical counts either way).

Given the same replica tuple the batched and individual runs therefore
agree *exactly* on every packet count, and bit-for-bit on the latency
sample (the differential suite asserts counts exactly and latency
percentiles within a tolerance to stay robust to summation order).
"""

from __future__ import annotations

import dataclasses
import time
import weakref

import numpy as np

from repro import obs
from repro.constants import DEFAULT_SIM_BACKEND, DISTRIBUTION_ATOL
from repro.routing.base import ObliviousRouting
from repro.routing.paths import path_channels
from repro.sim.kernel import SEQ_BITS as _SEQ_BITS
from repro.sim.kernel import arrival_keep, pop_selection
from repro.sim.network_sim import (
    SimulationConfig,
    SimulationResult,
    _check_backend,
    _record_sim_metrics,
    normalize_fault_schedule,
    normalize_link_schedule,
    service_budgets,
    simulate,
    validate_channel_events,
)
from repro.sim.stats import latency_stats
from repro.traffic.doubly_stochastic import validate_doubly_stochastic

log = obs.get_logger(__name__)

#: Columns of the in-flight packet array (struct of arrays as one 2-D
#: int64 block: one row per packet, compacted every cycle).
_REP, _CHAN, _SEQ, _POS, _END, _ITIME, _PLEN = range(7)
_NUM_COLS = 7


@dataclasses.dataclass(frozen=True)
class Replica:
    """One independent simulation in a batched launch.

    A replica is the full stochastic identity of a run:
    ``(injection_rate, seed, fault_schedule, link_schedule)``.
    Replicas in one batch share the compiled path tables and the cycle
    loop but nothing stochastic — each owns a fresh
    ``default_rng(seed)`` and its own channel fault/link state — so its
    counts are draw-for-draw identical to an individual
    :func:`repro.sim.simulate` call with the same tuple.
    """

    injection_rate: float
    seed: int = 0
    fault_schedule: tuple[tuple[int, int], ...] = ()
    link_schedule: tuple[tuple[int, int, str], ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.injection_rate <= 1.0:
            raise ValueError("injection_rate must be in [0, 1]")
        object.__setattr__(self, "injection_rate", float(self.injection_rate))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(
            self, "fault_schedule", normalize_fault_schedule(self.fault_schedule)
        )
        object.__setattr__(
            self, "link_schedule", normalize_link_schedule(self.link_schedule)
        )

    @classmethod
    def from_config(cls, config: SimulationConfig) -> "Replica":
        return cls(
            injection_rate=config.injection_rate,
            seed=config.seed,
            fault_schedule=config.fault_schedule,
            link_schedule=config.link_schedule,
        )

    def to_config(
        self, cycles: int, warmup: int, queue_capacity: int | None = None
    ) -> SimulationConfig:
        return SimulationConfig(
            cycles=cycles,
            warmup=warmup,
            injection_rate=self.injection_rate,
            seed=self.seed,
            queue_capacity=queue_capacity,
            fault_schedule=self.fault_schedule,
            link_schedule=self.link_schedule,
        )


def replica_grid(
    rates, seeds, fault_schedule=(), link_schedule=()
) -> list[Replica]:
    """The (rate × seed) cross product as a rate-major replica list,
    every replica carrying the same schedules."""
    return [
        Replica(float(r), int(s), fault_schedule, link_schedule)
        for r in rates
        for s in seeds
    ]


def _as_replicas(replicas) -> list[Replica]:
    return [r if isinstance(r, Replica) else Replica(*r) for r in replicas]


class VectorizedSimulator:
    """Compiled simulator for one ``(algorithm, traffic)`` pair.

    Compilation materializes, for every drawable source/destination
    pair, the reference simulator's cached path distribution: the
    per-path channel itineraries (flattened into one array) and the
    choice CDF (replicating the exact float normalization the reference
    feeds to ``Generator.choice``).  The tables are reused across every
    :meth:`run`/:meth:`run_replicas` call, which is what amortizes setup
    over a rate sweep, a seed ensemble, or a saturation bisection.
    """

    def __init__(self, algorithm: ObliviousRouting, traffic: np.ndarray):
        net = algorithm.network
        validate_doubly_stochastic(traffic, tol=DISTRIBUTION_ATOL)
        self.algorithm = algorithm
        self.traffic = np.asarray(traffic, dtype=np.float64)
        self.num_nodes = int(net.num_nodes)
        self.num_channels = int(net.num_channels)
        # Integral bandwidths use a constant per-cycle budget; fractional
        # ones (heterogeneous Z-slowdown links) go through the shared
        # token-bucket schedule every cycle — see ``service_budgets``.
        self._bandwidth_exact = np.asarray(net.bandwidth, dtype=np.float64)
        self._integral_bandwidth = bool(
            np.allclose(np.round(self._bandwidth_exact), self._bandwidth_exact)
        )
        self._bandwidth = (
            self._bandwidth_exact.round().astype(np.int64)
            if self._integral_bandwidth
            else None
        )
        self._cum_traffic = np.cumsum(self.traffic, axis=1)
        self._diag_mean = float(np.diag(self.traffic).mean())

        n2 = self.num_nodes * self.num_nodes
        # -1 marks an uncompiled pair; self-pairs have the single
        # zero-hop path and never consume a path draw.
        self._npaths = np.full(n2, -1, dtype=np.int64)
        diag = np.arange(self.num_nodes) * (self.num_nodes + 1)
        self._npaths[diag] = 1
        self._pair_base = np.full(n2, -1, dtype=np.int64)
        self._path_start = np.zeros(0, dtype=np.int64)
        self._path_len = np.zeros(0, dtype=np.int64)
        self._chan_flat = np.zeros(0, dtype=np.int64)
        self._cdf = np.full((n2, 1), np.inf)

        support = np.argwhere(self.traffic > 0.0)
        pairs = [(int(s), int(d)) for s, d in support if s != d]
        with obs.span(
            "sim.compile", algorithm=algorithm.name, pairs=len(pairs)
        ) as sp:
            self._compile_pairs(pairs)
            sp.set(
                paths=int(self._path_len.size),
                channel_entries=int(self._chan_flat.size),
            )

    # ------------------------------------------------------------------
    # Path-table compilation
    # ------------------------------------------------------------------
    def _compile_pairs(self, pairs: list[tuple[int, int]]) -> None:
        """Build tables for ``pairs`` (skipping already-compiled ones)."""
        net = self.algorithm.network
        n = self.num_nodes
        todo = [
            (s, d) for s, d in pairs if self._npaths[s * n + d] < 0
        ]
        if not todo:
            return
        starts, lens, chan_blocks, cdfs = [], [], [], []
        next_start = int(self._chan_flat.size)
        next_base = int(self._path_len.size)
        bases, counts = [], []
        for s, d in todo:
            dist = self.algorithm.path_distribution(s, d)
            chans = [
                np.asarray(path_channels(net, p), dtype=np.int64)
                for p, _ in dist
            ]
            # Replicate the reference's normalization chain exactly:
            # dist_cache stores probs / probs.sum(); Generator.choice
            # then uses cdf = p.cumsum(); cdf /= cdf[-1].
            probs = np.asarray([w for _, w in dist])
            probs = probs / probs.sum()
            cdf = probs.cumsum()
            cdf /= cdf[-1]
            bases.append(next_base)
            counts.append(len(dist))
            next_base += len(dist)
            for arr in chans:
                starts.append(next_start)
                lens.append(arr.size)
                next_start += arr.size
            chan_blocks.extend(chans)
            cdfs.append(cdf)

        self._path_start = np.concatenate(
            [self._path_start, np.asarray(starts, dtype=np.int64)]
        )
        self._path_len = np.concatenate(
            [self._path_len, np.asarray(lens, dtype=np.int64)]
        )
        self._chan_flat = np.concatenate([self._chan_flat] + chan_blocks)
        width = max(self._cdf.shape[1], max(len(c) for c in cdfs))
        if width > self._cdf.shape[1]:
            grown = np.full((self._cdf.shape[0], width), np.inf)
            grown[:, : self._cdf.shape[1]] = self._cdf
            self._cdf = grown
        for (s, d), base, count, cdf in zip(todo, bases, counts, cdfs):
            key = s * n + d
            self._pair_base[key] = base
            self._npaths[key] = count
            self._cdf[key, :count] = cdf
            self._cdf[key, count:] = np.inf

    def _ensure_pairs(self, srcs: np.ndarray, dsts: np.ndarray) -> None:
        """Lazily compile pairs hit by a boundary draw (zero-traffic
        destinations are reachable only when a uniform lands exactly on
        a CDF step — measure zero, but the reference routes them)."""
        keys = srcs * self.num_nodes + dsts
        need = self._npaths[keys] < 0
        if need.any():
            pairs = sorted(
                {(int(s), int(d)) for s, d in zip(srcs[need], dsts[need])}
            )
            log.debug("lazy-compiling %d off-support pairs", len(pairs))
            self._compile_pairs(pairs)

    # ------------------------------------------------------------------
    # Injection decoding (exact RNG-stream replay)
    # ------------------------------------------------------------------
    def _decode_injections(self, rngs, injector_lists, cycle: int):
        """Consume the destination/path draws for this cycle's injectors.

        ``injector_lists[i]`` holds the injecting node ids (ascending)
        of active replica ``i``.  Returns per-packet arrays (replica
        index, source, destination, global path id) covering every
        decoded draw, including self-addressed ones (``dst == src``),
        which the caller filters out exactly like the reference's
        ``continue``.
        """
        # Replicas with no injector this cycle consume no draws; drop
        # them so segment bookkeeping never sees zero-length segments.
        active = [i for i, a in enumerate(injector_lists) if len(a)]
        if not active:
            return (np.zeros(0, np.int64),) * 4
        act_rngs = [rngs[i] for i in active]
        act_lists = [injector_lists[i] for i in active]
        m_list = np.asarray([len(a) for a in act_lists], dtype=np.int64)
        m_total = int(m_list.sum())
        srcs = np.concatenate(act_lists)
        seg_of = np.repeat(np.arange(len(m_list)), m_list)
        seg_id = np.asarray(active, dtype=np.int64)[seg_of]
        seg_start = np.concatenate(([0], np.cumsum(m_list)[:-1]))
        # Over-draw 2 uniforms per injector (the per-injector maximum)
        # from a saved state, decode, then rewind and advance exactly.
        states = [rng.bit_generator.state for rng in act_rngs]
        u_blocks = [rng.random(2 * m) for rng, m in zip(act_rngs, m_list)]
        u_all = np.concatenate(u_blocks)
        u_off = np.concatenate(([0], np.cumsum(2 * m_list)[:-1]))

        n = self.num_nodes
        cum_rows = self._cum_traffic[srcs]
        g = np.ones(m_total, dtype=np.int64)
        dsts = np.zeros(m_total, dtype=np.int64)
        p_local = np.zeros(m_total, dtype=np.int64)
        for _ in range(m_total + 1):
            p_excl = np.cumsum(g) - g
            p_local = p_excl - p_excl[seg_start][seg_of]
            u1 = u_all[u_off[seg_of] + p_local]
            dsts = np.minimum(
                (cum_rows < u1[:, None]).sum(axis=1), n - 1
            )
            self._ensure_pairs(srcs, dsts)
            keys = srcs * n + dsts
            g_new = 1 + ((dsts != srcs) & (self._npaths[keys] > 1))
            if np.array_equal(g_new, g):
                break
            g = g_new
        else:  # pragma: no cover - the fixpoint provably converges
            raise AssertionError("injection decode did not converge")

        # Path choice for multi-path pairs (one more uniform each).
        keys = srcs * n + dsts
        pidx = np.zeros(m_total, dtype=np.int64)
        multi = g == 2
        if multi.any():
            u2 = u_all[(u_off[seg_of] + p_local + 1)[multi]]
            pidx[multi] = (
                self._cdf[keys[multi]] <= u2[:, None]
            ).sum(axis=1)

        # Rewind each generator and consume exactly what the reference
        # would have: the next cycle's draws stay stream-aligned.
        consumed = np.add.reduceat(g, seg_start)
        for rng, state, used in zip(act_rngs, states, consumed):
            rng.bit_generator.state = state
            rng.random(int(used))

        gpid = np.where(
            dsts != srcs, self._pair_base[keys] + pidx, -1
        )
        return seg_id, srcs, dsts, gpid

    # ------------------------------------------------------------------
    # Batched cycle loop
    # ------------------------------------------------------------------
    def run_replicas(
        self,
        replicas,
        cycles: int = 2000,
        warmup: int = 500,
        queue_capacity: int | None = None,
        compiled: bool = False,
    ) -> list[SimulationResult]:
        """Run every replica in one batched cycle loop.

        Each replica is an independent copy of the reference process —
        fresh ``default_rng(seed)``, its own queues, and its *own*
        ``dead``/``down`` channel masks, so replicas may carry different
        fault and link schedules in the same launch.  The replicas
        share each cycle's vector operations, so the per-cycle cost is
        nearly flat in the batch size.  A replica's ``fault_schedule``
        kills channels mid-run in that replica only (the reference
        semantics: queued packets and later arrivals on a dead channel
        are counted in its ``lost``); its ``link_schedule`` toggles
        per-channel service on and off losslessly (the rotor semantics —
        down channels hold their queues).  Both are RNG-free, so the
        draw-for-draw contract with individual runs is untouched.

        ``compiled=True`` routes the per-cycle rankings through the
        jitted kernels in :mod:`repro.sim.kernel` (NumPy fallback when
        numba is missing; identical counts either way).
        """
        replicas = _as_replicas(replicas)
        if warmup >= cycles:
            raise ValueError("warmup must leave measurement cycles")
        num_reps = len(replicas)
        if num_reps == 0:
            return []

        n = self.num_nodes
        c = self.num_channels
        nq = num_reps * c
        cap = queue_capacity
        rngs = [np.random.default_rng(rep.seed) for rep in replicas]
        rate_arr = np.asarray([rep.injection_rate for rep in replicas])

        # Schedules index the *flattened* (replica, channel) queue space,
        # so one pair of masks carries every replica's channel state.
        fault_by_cycle: dict[int, list[int]] = {}
        link_by_cycle: dict[int, list[tuple[int, str]]] = {}
        for i, rep in enumerate(replicas):
            validate_channel_events(
                rep.fault_schedule, rep.link_schedule, cycles, c
            )
            for kill_cycle, channel in rep.fault_schedule:
                fault_by_cycle.setdefault(int(kill_cycle), []).append(
                    i * c + int(channel)
                )
            for ev_cycle, channel, action in rep.link_schedule:
                link_by_cycle.setdefault(int(ev_cycle), []).append(
                    (i * c + int(channel), action)
                )
        dead = np.zeros(nq, dtype=bool)
        down = np.zeros(nq, dtype=bool)
        any_down = False

        packets = np.zeros((0, _NUM_COLS), dtype=np.int64)
        occ = np.zeros(nq, dtype=np.int64)
        seq_counter = 0
        injected = np.zeros(num_reps, dtype=np.int64)
        delivered = np.zeros(num_reps, dtype=np.int64)
        measured = np.zeros(num_reps, dtype=np.int64)
        dropped = np.zeros(num_reps, dtype=np.int64)
        lost = np.zeros(num_reps, dtype=np.int64)
        backlog_at_warmup = np.zeros(num_reps, dtype=np.int64)
        queue_peak = np.zeros(num_reps, dtype=np.int64)
        lat_blocks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        if self._integral_bandwidth:
            bw_by_queue = np.tile(self._bandwidth, num_reps)

        for cycle in range(cycles):
            events = link_by_cycle.get(cycle)
            if events:
                for flat_key, action in events:
                    down[flat_key] = action == "down"
                any_down = bool(down.any())
            kills = fault_by_cycle.get(cycle)
            if kills:
                # Kill before the warmup snapshot, like the reference:
                # mark dead, destroy that replica's queued packets.
                dead[kills] = True
                if packets.shape[0]:
                    p_qkey = packets[:, _REP] * c + packets[:, _CHAN]
                    doomed = dead[p_qkey]
                    if doomed.any():
                        lost += np.bincount(
                            packets[doomed, _REP], minlength=num_reps
                        )
                        occ -= np.bincount(p_qkey[doomed], minlength=nq)
                        packets = packets[~doomed]
            if cycle == warmup:
                backlog_at_warmup = np.bincount(
                    packets[:, _REP], minlength=num_reps
                )

            # -- phase 1: injection -------------------------------------
            masks = [rng.random(n) for rng in rngs]
            injector_lists = [
                np.flatnonzero(u < r) for u, r in zip(masks, rate_arr)
            ]
            seg_id, srcs, dsts, gpid = self._decode_injections(
                rngs, injector_lists, cycle
            )
            sel = dsts != srcs
            if sel.any():
                p_rep = seg_id[sel]
                p_gpid = gpid[sel]
                injected += np.bincount(p_rep, minlength=num_reps)
                pos = self._path_start[p_gpid]
                plen = self._path_len[p_gpid]
                chan0 = self._chan_flat[pos]
                qkey = p_rep * c + chan0
                dead0 = dead[qkey]
                if dead0.any():
                    # Dead first hop loses the packet before any
                    # capacity check, as the reference does.
                    lost += np.bincount(
                        p_rep[dead0], minlength=num_reps
                    )
                    keep0 = ~dead0
                    p_rep, p_gpid = p_rep[keep0], p_gpid[keep0]
                    pos, plen = pos[keep0], plen[keep0]
                    chan0, qkey = chan0[keep0], qkey[keep0]
                if cap is not None:
                    full = occ[qkey] >= cap
                    if full.any():
                        dropped += np.bincount(
                            p_rep[full], minlength=num_reps
                        )
                        keep = ~full
                        p_rep, p_gpid = p_rep[keep], p_gpid[keep]
                        pos, plen = pos[keep], plen[keep]
                        chan0, qkey = chan0[keep], qkey[keep]
                count = p_rep.size
                if count:
                    block = np.empty((count, _NUM_COLS), dtype=np.int64)
                    block[:, _REP] = p_rep
                    block[:, _CHAN] = chan0
                    block[:, _SEQ] = seq_counter + np.arange(count)
                    seq_counter += count
                    block[:, _POS] = pos
                    block[:, _END] = pos + plen
                    block[:, _ITIME] = cycle
                    block[:, _PLEN] = plen
                    packets = np.concatenate([packets, block])
                    occ += np.bincount(qkey, minlength=nq)

            np.maximum(
                queue_peak,
                occ.reshape(num_reps, c).max(axis=1),
                out=queue_peak,
            )

            # -- phase 2: service ---------------------------------------
            size = packets.shape[0]
            if size == 0:
                continue
            if not self._integral_bandwidth:
                bw_by_queue = np.tile(
                    service_budgets(self._bandwidth_exact, cycle), num_reps
                )
            if any_down:
                # Down queues serve nothing this cycle; their packets
                # (and the replicas' RNG history) are untouched.
                bw_cycle = np.where(down, 0, bw_by_queue)
            else:
                bw_cycle = bw_by_queue
            qkey = packets[:, _REP] * c + packets[:, _CHAN]
            popped = pop_selection(
                qkey, packets[:, _SEQ], bw_cycle, compiled=compiled
            )
            if popped.size == 0:
                continue
            occ -= np.bincount(qkey[popped], minlength=nq)

            new_pos = packets[popped, _POS] + 1
            done = new_pos == packets[popped, _END]
            ejected = popped[done]
            if ejected.size:
                delivered += np.bincount(
                    packets[ejected, _REP], minlength=num_reps
                )
                in_window = packets[ejected, _ITIME] >= warmup
                hit = ejected[in_window]
                if hit.size:
                    measured += np.bincount(
                        packets[hit, _REP], minlength=num_reps
                    )
                    lat_blocks.append(
                        (
                            packets[hit, _REP].copy(),
                            cycle - packets[hit, _ITIME] + 1,
                            packets[hit, _PLEN].copy(),
                        )
                    )

            movers = popped[~done]
            drop_idx = np.zeros(0, dtype=np.int64)
            lost_idx = np.zeros(0, dtype=np.int64)
            if movers.size:
                packets[movers, _POS] = new_pos[~done]
                next_chan = self._chan_flat[packets[movers, _POS]]
                m_qkey = packets[movers, _REP] * c + next_chan
                m_dead = dead[m_qkey]
                if m_dead.any():
                    # Dead next hop loses the packet before the
                    # capacity ranking — it never contends for a slot.
                    lost_idx = movers[m_dead]
                    lost += np.bincount(
                        packets[lost_idx, _REP], minlength=num_reps
                    )
                    movers = movers[~m_dead]
                    next_chan = next_chan[~m_dead]
                    m_qkey = m_qkey[~m_dead]
                keep = np.ones(movers.size, dtype=bool)
                if cap is not None and movers.size:
                    # Arrival order per queue decides who fills the
                    # remaining capacity, exactly as the reference's
                    # sequential appends do.
                    keep = arrival_keep(
                        m_qkey, occ, cap, compiled=compiled
                    )
                    drop_idx = movers[~keep]
                    if drop_idx.size:
                        dropped += np.bincount(
                            packets[drop_idx, _REP], minlength=num_reps
                        )
                kept = movers[keep]
                if kept.size:
                    packets[kept, _CHAN] = next_chan[keep]
                    packets[kept, _SEQ] = seq_counter + np.arange(kept.size)
                    seq_counter += kept.size
                    occ += np.bincount(
                        m_qkey[keep], minlength=nq
                    )

            if ejected.size or drop_idx.size or lost_idx.size:
                keep_mask = np.ones(size, dtype=bool)
                keep_mask[ejected] = False
                keep_mask[drop_idx] = False
                keep_mask[lost_idx] = False
                packets = packets[keep_mask]

        # -- results --------------------------------------------------
        backlog = np.bincount(packets[:, _REP], minlength=num_reps)
        if lat_blocks:
            lat_rep = np.concatenate([b[0] for b in lat_blocks])
            lat_val = np.concatenate([b[1] for b in lat_blocks])
            lat_hops = np.concatenate([b[2] for b in lat_blocks])
        else:
            lat_rep = lat_val = lat_hops = np.zeros(0, dtype=np.int64)
        window = cycles - warmup
        results = []
        for i, rep in enumerate(replicas):
            mine = lat_rep == i
            stats = latency_stats(lat_val[mine], lat_hops[mine])
            results.append(
                SimulationResult(
                    injection_rate=rep.injection_rate,
                    offered_rate=rep.injection_rate * (1.0 - self._diag_mean),
                    accepted_rate=int(measured[i]) / (window * n),
                    mean_latency=stats.mean_latency,
                    p99_latency=stats.p99_latency,
                    delivered=int(delivered[i]),
                    dropped=int(dropped[i]),
                    backlog=int(backlog[i]),
                    backlog_growth=int(backlog[i] - backlog_at_warmup[i]),
                    measurement_cycles=window,
                    mean_hops=stats.mean_hops,
                    num_nodes=n,
                    queue_peak=int(queue_peak[i]),
                    injected=int(injected[i]),
                    lost=int(lost[i]),
                )
            )
        return results

    def sweep(
        self,
        rates,
        cycles: int = 2000,
        warmup: int = 500,
        seed: int = 0,
        queue_capacity: int | None = None,
        fault_schedule: tuple[tuple[int, int], ...] = (),
        link_schedule: tuple[tuple[int, int, str], ...] = (),
        compiled: bool = False,
    ) -> list[SimulationResult]:
        """Run every offered rate in one batched cycle loop.

        A rate sweep is the special case of :meth:`run_replicas` where
        every replica shares one seed and one pair of schedules.
        """
        return self.run_replicas(
            [
                Replica(float(r), seed, fault_schedule, link_schedule)
                for r in rates
            ],
            cycles=cycles,
            warmup=warmup,
            queue_capacity=queue_capacity,
            compiled=compiled,
        )

    def run(
        self,
        config: SimulationConfig = SimulationConfig(),
        compiled: bool = False,
    ) -> SimulationResult:
        """Run one rate point (a single-replica :meth:`run_replicas`)."""
        (result,) = self.run_replicas(
            [Replica.from_config(config)],
            cycles=config.cycles,
            warmup=config.warmup,
            queue_capacity=config.queue_capacity,
            compiled=compiled,
        )
        return result


# ----------------------------------------------------------------------
# Compiled-simulator cache and entry points
# ----------------------------------------------------------------------
#: algorithm -> {traffic digest -> VectorizedSimulator}; keyed weakly so
#: compiled tables die with their algorithm object.
_compiled: "weakref.WeakKeyDictionary[ObliviousRouting, dict]" = (
    weakref.WeakKeyDictionary()
)


def compiled_simulator(
    algorithm: ObliviousRouting, traffic: np.ndarray
) -> VectorizedSimulator:
    """Get (or build) the compiled simulator for ``(algorithm, traffic)``.

    The cache is what lets ``saturation_throughput`` reuse one set of
    path tables across every bisection probe.
    """
    per_alg = _compiled.setdefault(algorithm, {})
    digest = hash(np.asarray(traffic, dtype=np.float64).tobytes())
    sim = per_alg.get(digest)
    if sim is None:
        sim = VectorizedSimulator(algorithm, traffic)
        per_alg[digest] = sim
    return sim


def _span_attrs(result: SimulationResult) -> dict:
    attrs = dict(
        delivered=result.delivered,
        dropped=result.dropped,
        lost=result.lost,
        accepted_rate=result.accepted_rate,
        backlog=result.backlog,
        queue_peak=result.queue_peak,
        stable=result.stable,
    )
    if np.isfinite(result.mean_latency):  # NaN is not valid JSON
        attrs.update(
            mean_latency=result.mean_latency,
            p99_latency=result.p99_latency,
        )
    return attrs


def _backend_label(compiled: bool) -> str:
    return "compiled" if compiled else "vectorized"


def _emit_replica_spans(
    replicas, results, elapsed: float, cycles: int, warmup: int, backend: str
) -> None:
    """Per-replica ``sim.run`` spans and registry metrics for one batch.

    The batch's wall time is split evenly across replicas — the batched
    loop advances every replica in the same vector operations, so no
    truer per-replica attribution exists.
    """
    tracer = obs.get_tracer()
    share = elapsed / len(replicas) if replicas else 0.0
    for rep, result in zip(replicas, results):
        attrs = dict(
            rate=float(rep.injection_rate),
            cycles=int(cycles),
            seed=int(rep.seed),
            backend=backend,
        )
        attrs.update(_span_attrs(result))
        tracer.emit_span("sim.run", dur=share, attrs=attrs)
        _record_sim_metrics(
            result,
            SimulationConfig(
                injection_rate=rep.injection_rate,
                cycles=cycles,
                warmup=warmup,
                seed=rep.seed,
            ),
            share,
            backend=backend,
        )


def simulate_replicas(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    replicas,
    cycles: int = 2000,
    warmup: int = 500,
    queue_capacity: int | None = None,
    backend: str = DEFAULT_SIM_BACKEND,
) -> list[SimulationResult]:
    """Run an arbitrary replica batch — one kernel launch on the batched
    backends.

    ``replicas`` is a sequence of :class:`Replica` (or raw tuples fed to
    its constructor); results come back in the same order.  The
    ``vectorized`` and ``compiled`` backends share one compiled path
    table and one cycle loop for the whole batch and emit a ``sim.batch``
    span plus replica-count-labeled metrics; ``reference`` runs each
    replica as an individual per-packet ``simulate`` call — the
    differential oracle for the batched kernel.
    """
    _check_backend(backend)
    replicas = _as_replicas(replicas)
    if backend == "reference":
        return [
            simulate(
                algorithm,
                traffic,
                rep.to_config(cycles, warmup, queue_capacity),
                backend="reference",
            )
            for rep in replicas
        ]
    label = backend
    with obs.span(
        "sim.batch",
        replicas=len(replicas),
        cycles=int(cycles),
        backend=label,
    ):
        start = time.perf_counter()
        results = compiled_simulator(algorithm, traffic).run_replicas(
            replicas,
            cycles=cycles,
            warmup=warmup,
            queue_capacity=queue_capacity,
            compiled=backend == "compiled",
        )
        elapsed = time.perf_counter() - start
        _emit_replica_spans(replicas, results, elapsed, cycles, warmup, label)
    obs.metric_count("sim.batches", backend=label, replicas=len(replicas))
    obs.metric_count("sim.replicas", len(replicas), backend=label)
    return results


def simulate_vectorized(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    config: SimulationConfig = SimulationConfig(),
    compiled: bool = False,
) -> SimulationResult:
    """Vectorized-backend counterpart of :func:`repro.sim.simulate`.

    Emits the same ``sim.run`` span (plus ``backend=...``) so traces and
    ``obs-report`` rows keep one schema across backends.
    """
    label = _backend_label(compiled)
    with obs.span(
        "sim.run",
        rate=float(config.injection_rate),
        cycles=int(config.cycles),
        seed=int(config.seed),
        backend=label,
    ) as sp:
        t0 = time.perf_counter()
        result = compiled_simulator(algorithm, traffic).run(
            config, compiled=compiled
        )
        elapsed = time.perf_counter() - t0
        sp.set(**_span_attrs(result))
    _record_sim_metrics(result, config, elapsed, backend=label)
    return result


def sweep_vectorized(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    rates,
    cycles: int = 2000,
    warmup: int = 500,
    seed: int = 0,
    queue_capacity: int | None = None,
    fault_schedule: tuple[tuple[int, int], ...] = (),
    link_schedule: tuple[tuple[int, int, str], ...] = (),
    compiled: bool = False,
) -> list[SimulationResult]:
    """Batched offered-rate sweep (one compiled kernel, all rates).

    The rate axis is the degenerate replica batch where every replica
    shares one seed and one pair of schedules; see
    :func:`simulate_replicas` for the general (rate × seed × fault)
    grid.  Per-rate ``sim.run`` spans are emitted with the sweep's wall
    time split evenly across rates.
    """
    replicas = [
        Replica(float(r), seed, fault_schedule, link_schedule) for r in rates
    ]
    label = _backend_label(compiled)
    with obs.span(
        "sim.sweep",
        points=len(replicas),
        cycles=int(cycles),
        seed=int(seed),
        backend=label,
    ):
        start = time.perf_counter()
        results = compiled_simulator(algorithm, traffic).run_replicas(
            replicas,
            cycles=cycles,
            warmup=warmup,
            queue_capacity=queue_capacity,
            compiled=compiled,
        )
        elapsed = time.perf_counter() - start
        _emit_replica_spans(replicas, results, elapsed, cycles, warmup, label)
    return results
