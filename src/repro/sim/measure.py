"""Measurement harnesses over the simulator: latency-load curves and
empirical saturation throughput.

Both harnesses ride the replica-batched kernel: a latency/load curve
with a seed ensemble is one (rate × seed) launch, and the saturation
prober refines whole brackets — several interior rates per round, every
seed of the ensemble, and (via :func:`saturation_throughput_batch`)
several fault/link cases at once — per launch.  Probe *verdicts* are
computed the same way on every backend, so brackets are
backend-independent: the reference backend simply runs the same probes
as individual per-packet calls.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro import obs
from repro.constants import DEFAULT_SIM_BACKEND
from repro.routing.base import ObliviousRouting
from repro.sim.network_sim import _check_backend, simulate
from repro.sim.vectorized import Replica, replica_grid, simulate_replicas

#: Backends that run a whole replica batch in one kernel launch.
BATCHED_BACKENDS = ("vectorized", "compiled")

#: Interior probe rates per bracket-refinement launch.  Each launch
#: shrinks a bracket by ``probes + 1``×, so 3 probes quarter the bracket
#: per launch while still batching all of them (× seeds × cases) into
#: one kernel call.  ``probes_per_launch=1`` reproduces classic
#: one-midpoint bisection.
DEFAULT_PROBES_PER_LAUNCH = 3


def _seed_ensemble(seed, seeds) -> tuple[int, ...]:
    """The seeds a probe averages over (``seeds=None`` → just ``seed``)."""
    if seeds is None:
        return (int(seed),)
    ensemble = tuple(int(s) for s in seeds)
    if not ensemble:
        raise ValueError("seeds must name at least one seed")
    return ensemble


def latency_load_curve(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    rates: Sequence[float],
    cycles: int = 2000,
    warmup: int = 500,
    seed: int = 0,
    backend: str = DEFAULT_SIM_BACKEND,
    link_schedule: Sequence = (),
    fault_schedule: Sequence = (),
    seeds: Sequence[int] | None = None,
):
    """Simulate a sweep of offered loads (the classic latency/load plot).

    On the batched backends the whole sweep runs as one replica-batched
    kernel call — every (rate, seed) replica advances in the same array
    operations, so path-table setup and per-cycle costs amortize across
    the curve.  All backends return identical results for the same
    replica tuples.

    ``seeds`` adds a replica axis: every rate runs once per seed and the
    return value becomes a rate-major list of per-seed result lists
    (``seeds=None`` keeps the flat one-result-per-rate shape, seeded by
    ``seed``).  ``fault_schedule`` / ``link_schedule`` apply to every
    replica (see :class:`repro.sim.SimulationConfig` for their
    semantics).
    """
    rates = [float(r) for r in rates]
    _check_backend(backend)
    ensemble = _seed_ensemble(seed, seeds)
    fault_schedule = tuple(fault_schedule)
    link_schedule = tuple(link_schedule)
    with obs.span(
        "sim.curve",
        algorithm=algorithm.name,
        points=len(rates),
        seeds=len(ensemble),
        backend=backend,
    ):
        flat = simulate_replicas(
            algorithm,
            traffic,
            replica_grid(rates, ensemble, fault_schedule, link_schedule),
            cycles=cycles,
            warmup=warmup,
            backend=backend,
        )
    if seeds is None:
        return flat
    width = len(ensemble)
    return [flat[i * width : (i + 1) * width] for i in range(len(rates))]


@dataclasses.dataclass(frozen=True)
class SaturationEstimate:
    """Bisection bracket around the empirical saturation point.

    Both endpoints are *observed*: ``lower`` is a rate a probe judged
    stable and ``upper`` one judged unstable (with a seed ensemble, by
    majority verdict).  Two degenerate — but still probed — cases:
    ``lower == upper == 1.0`` means rate 1.0 itself ran stable, so no
    unstable rate exists to report; ``lower == upper == 0.0`` is the
    (pathological) converse.
    """

    lower: float  # highest injection rate observed stable
    upper: float  # lowest injection rate observed unstable

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)


#: Stages of one bracket's refinement (see :class:`_Bracket`).
_ENDPOINTS, _FLOOR, _CEIL, _REFINE, _DONE = (
    "endpoints",
    "floor",
    "ceil",
    "refine",
    "done",
)


class _Bracket:
    """Refinement state machine for one case's saturation bracket.

    Stages: ``endpoints`` probes ``lo`` and ``hi`` (the early-exit
    branches used to *assume* 0/1 verdicts here — the bracket-semantics
    bug); ``floor`` handles unstable-at-``lo`` by probing rate 0.0;
    ``ceil`` handles stable-at-``hi`` by probing rate 1.0; ``refine``
    shrinks the bracket with ``probes`` equally spaced interior rates
    per round until it is ``2**iterations`` times narrower than when
    refinement began.  Every returned endpoint was probed.
    """

    def __init__(self, lo, hi, fault_schedule, link_schedule, iterations, probes):
        self.lo = float(lo)
        self.hi = float(hi)
        self.fault_schedule = tuple(fault_schedule)
        self.link_schedule = tuple(link_schedule)
        self.iterations = int(iterations)
        self.probes = int(probes)
        self.stage = _ENDPOINTS
        self.target = 0.0
        self._pending: list[float] = []

    @property
    def done(self) -> bool:
        return self.stage == _DONE

    def _begin_refine(self) -> None:
        width = self.hi - self.lo
        self.target = width / (2.0**self.iterations)
        if self.iterations <= 0 or width <= self.target:
            self.stage = _DONE
        else:
            self.stage = _REFINE

    def wanted(self) -> list[float]:
        """Probe rates this round (must be answered via :meth:`update`)."""
        if self.stage == _ENDPOINTS:
            pts = [self.lo, self.hi]
        elif self.stage == _FLOOR:
            pts = [0.0]
        elif self.stage == _CEIL:
            pts = [1.0]
        elif self.stage == _REFINE:
            width = self.hi - self.lo
            pts = [
                self.lo + width * (j + 1) / (self.probes + 1)
                for j in range(self.probes)
            ]
        else:
            pts = []
        self._pending = pts
        return pts

    def update(self, verdicts: Sequence[bool]) -> None:
        """Advance the state machine with this round's stability verdicts."""
        pts = self._pending
        if self.stage == _ENDPOINTS:
            stable_lo, stable_hi = verdicts
            if not stable_lo:
                # Unstable already at the floor: lo becomes the lowest
                # observed unstable rate, and rate 0.0 gets probed (not
                # assumed stable) before the bracket refines.
                self.hi = self.lo
                self.lo = 0.0
                self.stage = _FLOOR
            elif stable_hi:
                if self.hi >= 1.0:
                    # Stable at rate 1.0: no unstable rate exists to
                    # report — degenerate observed bracket.
                    self.lo = self.hi
                    self.stage = _DONE
                else:
                    self.lo = self.hi
                    self.hi = 1.0
                    self.stage = _CEIL
            else:
                self._begin_refine()
        elif self.stage == _FLOOR:
            (stable_zero,) = verdicts
            if stable_zero:
                self._begin_refine()
            else:  # pragma: no cover - a rate-0 run injects nothing
                self.hi = 0.0
                self.stage = _DONE
        elif self.stage == _CEIL:
            (stable_one,) = verdicts
            if stable_one:
                self.lo = self.hi = 1.0
                self.stage = _DONE
            else:
                self.hi = 1.0
                self._begin_refine()
        elif self.stage == _REFINE:
            first_bad = next(
                (j for j, v in enumerate(verdicts) if not v), None
            )
            if first_bad is None:
                self.lo = pts[-1]
            else:
                if first_bad > 0:
                    self.lo = pts[first_bad - 1]
                self.hi = pts[first_bad]
            if self.hi - self.lo <= self.target:
                self.stage = _DONE

    @property
    def estimate(self) -> SaturationEstimate:
        return SaturationEstimate(lower=self.lo, upper=self.hi)


def _probe_verdicts(
    algorithm,
    traffic,
    probes,
    ensemble,
    cycles,
    warmup,
    backend,
    queue_capacity,
) -> list[bool]:
    """Majority stability verdict per ``(rate, fault, link)`` probe.

    All probes × all ensemble seeds run as one replica batch on the
    batched backends and as individual ``simulate`` calls on the
    reference — the verdicts (and therefore every bracket built from
    them) are identical either way.  Ensemble ties count as unstable:
    the bracket should not report a rate as sustained when half the
    seeds diverged.
    """
    replicas = [
        Replica(rate, s, fault_schedule, link_schedule)
        for rate, fault_schedule, link_schedule in probes
        for s in ensemble
    ]
    if backend in BATCHED_BACKENDS:
        results = simulate_replicas(
            algorithm,
            traffic,
            replicas,
            cycles=cycles,
            warmup=warmup,
            queue_capacity=queue_capacity,
            backend=backend,
        )
    else:
        results = [
            simulate(
                algorithm,
                traffic,
                rep.to_config(cycles, warmup, queue_capacity),
                backend=backend,
            )
            for rep in replicas
        ]
    width = len(ensemble)
    return [
        2 * sum(r.stable for r in results[i * width : (i + 1) * width]) > width
        for i in range(len(probes))
    ]


def saturation_throughput_batch(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    cases: Sequence[tuple[Sequence, Sequence]],
    *,
    lo: float = 0.05,
    hi: float = 1.0,
    iterations: int = 6,
    cycles: int = 3000,
    warmup: int = 1000,
    seed: int = 0,
    seeds: Sequence[int] | None = None,
    probes_per_launch: int = DEFAULT_PROBES_PER_LAUNCH,
    backend: str = DEFAULT_SIM_BACKEND,
    queue_capacity: int | None = None,
) -> list[SaturationEstimate]:
    """Refine one saturation bracket per case — all cases per launch.

    ``cases`` is a sequence of ``(fault_schedule, link_schedule)`` pairs
    sharing one algorithm and traffic matrix: the fault prefixes of a
    failure sweep, one link schedule per rotor phase count, and so on.
    Every refinement round pools the pending probe rates of *all*
    unfinished cases, crossed with the seed ensemble, into a single
    replica batch — one compiled path table and one kernel launch per
    round on the batched backends; sequential reference runs otherwise.
    Probe verdicts are pure functions of the replica tuples, so the
    returned brackets are backend-independent.

    ``seeds`` averages each probe over an ensemble (majority verdict,
    ties unstable); ``seeds=None`` probes with ``seed`` alone.
    """
    _check_backend(backend)
    if not 0.0 <= lo < hi <= 1.0:
        raise ValueError(f"need 0 <= lo < hi <= 1, got lo={lo}, hi={hi}")
    if probes_per_launch < 1:
        raise ValueError("probes_per_launch must be >= 1")
    ensemble = _seed_ensemble(seed, seeds)
    states = [
        _Bracket(lo, hi, fs, ls, iterations, probes_per_launch)
        for fs, ls in cases
    ]
    launches = probed = 0
    with obs.span(
        "sim.saturation",
        algorithm=algorithm.name,
        iterations=int(iterations),
        cases=len(states),
        seeds=len(ensemble),
        backend=backend,
    ) as sp:
        while True:
            active = [
                (i, st.wanted()) for i, st in enumerate(states) if not st.done
            ]
            if not active:
                break
            probes = [
                (rate, states[i].fault_schedule, states[i].link_schedule)
                for i, rates in active
                for rate in rates
            ]
            verdicts = _probe_verdicts(
                algorithm,
                traffic,
                probes,
                ensemble,
                cycles,
                warmup,
                backend,
                queue_capacity,
            )
            pos = 0
            for i, rates in active:
                states[i].update(verdicts[pos : pos + len(rates)])
                pos += len(rates)
            launches += 1
            probed += len(probes)
        sp.set(launches=launches, probes=probed)
        if len(states) == 1:
            sp.set(lower=states[0].lo, upper=states[0].hi)
    return [st.estimate for st in states]


def saturation_throughput(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    lo: float = 0.05,
    hi: float = 1.0,
    iterations: int = 6,
    cycles: int = 3000,
    warmup: int = 1000,
    seed: int = 0,
    backend: str = DEFAULT_SIM_BACKEND,
    link_schedule: Sequence = (),
    fault_schedule: Sequence = (),
    seeds: Sequence[int] | None = None,
    probes_per_launch: int = DEFAULT_PROBES_PER_LAUNCH,
) -> SaturationEstimate:
    """Bracket the injection rate for the onset of instability.

    The returned bracket should contain the analytic saturation
    throughput :math:`\\Theta(R, \\Lambda)` (paper eq. 4) up to
    finite-run noise — the empirical check of the Section 2.1 model.
    Both endpoints of the bracket were probed (see
    :class:`SaturationEstimate` for the degenerate all-stable /
    all-unstable cases).

    All backends refine through identical stability verdicts.  The
    batched ones compile their path tables once and reuse them across
    every probe of the bracket, running each refinement round — several
    interior rates × the seed ensemble — as a single kernel launch; the
    obs trace for one call therefore carries exactly one ``sim.compile``
    span (pinned by ``tests/sim/test_measure.py``).  ``fault_schedule``
    and ``link_schedule`` apply to every probe; ``seeds`` takes a
    majority verdict per probe over the ensemble.
    """
    (est,) = saturation_throughput_batch(
        algorithm,
        traffic,
        [(tuple(fault_schedule), tuple(link_schedule))],
        lo=lo,
        hi=hi,
        iterations=iterations,
        cycles=cycles,
        warmup=warmup,
        seed=seed,
        seeds=seeds,
        probes_per_launch=probes_per_launch,
        backend=backend,
    )
    return est
