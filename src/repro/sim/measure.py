"""Measurement harnesses over the simulator: latency-load curves and
empirical saturation throughput."""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro import obs
from repro.constants import DEFAULT_SIM_BACKEND
from repro.routing.base import ObliviousRouting
from repro.sim.network_sim import (
    SimulationConfig,
    SimulationResult,
    _check_backend,
    simulate,
)


def latency_load_curve(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    rates: Sequence[float],
    cycles: int = 2000,
    warmup: int = 500,
    seed: int = 0,
    backend: str = DEFAULT_SIM_BACKEND,
    link_schedule: Sequence = (),
) -> list[SimulationResult]:
    """Simulate a sweep of offered loads (the classic latency/load plot).

    With ``backend="vectorized"`` the whole sweep runs as one batched
    kernel call — every rate advances in the same array operations, so
    path-table setup and per-cycle costs amortize across the curve.
    Both backends return identical results for the same seed.
    """
    rates = [float(r) for r in rates]
    _check_backend(backend)
    with obs.span(
        "sim.curve",
        algorithm=algorithm.name,
        points=len(rates),
        backend=backend,
    ):
        if backend == "vectorized":
            from repro.sim.vectorized import sweep_vectorized

            return sweep_vectorized(
                algorithm,
                traffic,
                rates,
                cycles=cycles,
                warmup=warmup,
                seed=seed,
                link_schedule=link_schedule,
            )
        return [
            simulate(
                algorithm,
                traffic,
                SimulationConfig(
                    cycles=cycles,
                    warmup=warmup,
                    injection_rate=float(r),
                    seed=seed,
                    link_schedule=tuple(link_schedule),
                ),
                backend=backend,
            )
            for r in rates
        ]


@dataclasses.dataclass(frozen=True)
class SaturationEstimate:
    """Bisection bracket around the empirical saturation point."""

    lower: float  # highest injection rate observed stable
    upper: float  # lowest injection rate observed unstable

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)


def saturation_throughput(
    algorithm: ObliviousRouting,
    traffic: np.ndarray,
    lo: float = 0.05,
    hi: float = 1.0,
    iterations: int = 6,
    cycles: int = 3000,
    warmup: int = 1000,
    seed: int = 0,
    backend: str = DEFAULT_SIM_BACKEND,
    link_schedule: Sequence = (),
) -> SaturationEstimate:
    """Bisect the injection rate for the onset of instability.

    The returned bracket should contain the analytic saturation
    throughput :math:`\\Theta(R, \\Lambda)` (paper eq. 4) up to
    finite-run noise — the empirical check of the Section 2.1 model.
    The two backends bisect through identical stability verdicts; the
    vectorized one compiles its path tables once and reuses them across
    every probe of the bracket.
    """
    _check_backend(backend)

    def run(rate: float) -> bool:
        res = simulate(
            algorithm,
            traffic,
            SimulationConfig(
                cycles=cycles,
                warmup=warmup,
                injection_rate=rate,
                seed=seed,
                link_schedule=tuple(link_schedule),
            ),
            backend=backend,
        )
        return res.stable

    with obs.span(
        "sim.saturation",
        algorithm=algorithm.name,
        iterations=iterations,
        backend=backend,
    ) as sp:
        if not run(lo):
            est = SaturationEstimate(lower=0.0, upper=lo)
        elif run(hi):
            est = SaturationEstimate(lower=hi, upper=1.0)
        else:
            for _ in range(iterations):
                mid = 0.5 * (lo + hi)
                if run(mid):
                    lo = mid
                else:
                    hi = mid
            est = SaturationEstimate(lower=lo, upper=hi)
        sp.set(lower=est.lower, upper=est.upper)
    return est
