"""Minimal GOAL-style adaptive routing in the simulator (Section 5.5).

The paper's closing comparison: adaptivity cannot beat the oblivious
worst-case optimum of half capacity [21], but it buys *locality* — GOAL
routes with an average path length of about 1.3x minimal while keeping
an experimental worst case of half capacity.

This module implements the GOAL recipe on top of the output-queued
engine: the direction in each dimension is chosen at injection with
RLB's load-balancing probabilities (minimal with probability
``(k - m)/k``), and the *order* in which dimensions advance is decided
hop by hop, steering toward the shortest output queue.  Because the
direction choice matches RLB's, the expected path length is exactly
RLB's ~1.31x minimal on the 8-ary 2-cube; the queue-adaptive
interleaving is what recovers throughput that oblivious RLB gives up.

Adaptive routing is *not* an :class:`ObliviousRouting` — its paths
depend on network state — so it gets its own simulation loop and is
evaluated purely empirically, as in the paper ("there is no known
method for determining the exact worst-case throughput for a general
adaptive routing algorithm", footnote 6).
"""

from __future__ import annotations

import dataclasses
from collections import deque

import numpy as np

from repro import obs
from repro.constants import DISTRIBUTION_ATOL
from repro.sim.network_sim import SimulationConfig, SimulationResult
from repro.sim.stats import latency_stats
from repro.topology.torus import Torus
from repro.traffic.doubly_stochastic import validate_doubly_stochastic


@dataclasses.dataclass(slots=True)
class _AdaptivePacket:
    uid: int
    dst: int
    remaining: list[int]  # hops left per dimension
    direction: list[int]  # +1/-1 per dimension
    inject_time: int
    total_hops: int = 0


def _choose_directions(
    torus: Torus, rng: np.random.Generator, src: int, dst: int
) -> tuple[list[int], list[int]]:
    """GOAL/RLB direction choice: minimal with probability (k - m)/k."""
    k = torus.k
    remaining, direction = [], []
    for dim in range(torus.n):
        offset = int(torus.ring_delta(src, dst)[dim])
        if offset == 0:
            remaining.append(0)
            direction.append(+1)
            continue
        fwd, back = offset, k - offset
        p_fwd = (k - fwd) / k  # load-balancing weight of the + direction
        if rng.random() < p_fwd:
            remaining.append(fwd)
            direction.append(+1)
        else:
            remaining.append(back)
            direction.append(-1)
    return remaining, direction


def simulate_adaptive(
    torus: Torus,
    traffic: np.ndarray,
    config: SimulationConfig = SimulationConfig(),
) -> SimulationResult:
    """Run GOAL-style adaptive routing on the output-queued engine.

    Per hop, a packet picks — among dimensions with hops remaining — the
    output channel with the shortest queue (ties broken uniformly), in
    its pre-chosen direction for that dimension.

    Each run is one ``sim.adaptive`` trace span (same attributes as
    ``sim.run``).
    """
    with obs.span(
        "sim.adaptive",
        rate=float(config.injection_rate),
        cycles=int(config.cycles),
        seed=int(config.seed),
    ) as sp:
        result = _simulate_adaptive(torus, traffic, config)
        sp.set(
            delivered=result.delivered,
            dropped=result.dropped,
            accepted_rate=result.accepted_rate,
            backlog=result.backlog,
            queue_peak=result.queue_peak,
            stable=result.stable,
        )
        if np.isfinite(result.mean_latency):  # NaN is not valid JSON
            sp.set(
                mean_latency=result.mean_latency,
                p99_latency=result.p99_latency,
            )
    return result


def _simulate_adaptive(
    torus: Torus,
    traffic: np.ndarray,
    config: SimulationConfig,
) -> SimulationResult:
    validate_doubly_stochastic(traffic, tol=DISTRIBUTION_ATOL)
    rng = np.random.default_rng(config.seed)
    n = torus.num_nodes
    queues: list[deque] = [deque() for _ in range(torus.num_channels)]

    uid = 0
    delivered = 0
    dropped = 0
    latencies: list[int] = []
    hops_done: list[int] = []
    measured_ejections = 0
    cum_traffic = np.cumsum(traffic, axis=1)
    backlog_at_warmup = 0
    queue_peak = 0

    def route(pkt: _AdaptivePacket, node: int) -> int:
        """Choose the next channel for ``pkt`` standing at ``node``."""
        candidates = [
            torus.channel_at(node, dim, pkt.direction[dim])
            for dim in range(torus.n)
            if pkt.remaining[dim] > 0
        ]
        lengths = np.asarray([len(queues[c]) for c in candidates])
        best = np.flatnonzero(lengths == lengths.min())
        return candidates[int(rng.choice(best))]

    for cycle in range(config.cycles):
        if cycle == config.warmup:
            backlog_at_warmup = sum(len(q) for q in queues)

        # injection
        inject_mask = rng.random(n) < config.injection_rate
        for s in np.nonzero(inject_mask)[0]:
            d = int(np.searchsorted(cum_traffic[s], rng.random()))
            d = min(d, n - 1)
            if d == s:
                continue
            remaining, direction = _choose_directions(torus, rng, int(s), d)
            pkt = _AdaptivePacket(
                uid=uid,
                dst=d,
                remaining=remaining,
                direction=direction,
                inject_time=cycle,
                total_hops=sum(remaining),
            )
            uid += 1
            channel = route(pkt, int(s))
            if (
                config.queue_capacity is not None
                and len(queues[channel]) >= config.queue_capacity
            ):
                dropped += 1
            else:
                queues[channel].append(pkt)

        # service: one packet per channel per cycle
        arrivals: list[tuple[int, _AdaptivePacket]] = []
        for c, q in enumerate(queues):
            if len(q) > queue_peak:
                queue_peak = len(q)
            if not q:
                continue
            pkt = q.popleft()
            dim = int(torus.channel_dim(c))
            pkt.remaining[dim] -= 1
            node = int(torus.channel_dst[c])
            if not any(pkt.remaining):
                delivered += 1
                if pkt.inject_time >= config.warmup:
                    measured_ejections += 1
                    latencies.append(cycle - pkt.inject_time + 1)
                    hops_done.append(pkt.total_hops)
            else:
                arrivals.append((route(pkt, node), pkt))
        for c, pkt in arrivals:
            if (
                config.queue_capacity is not None
                and len(queues[c]) >= config.queue_capacity
            ):
                dropped += 1
            else:
                queues[c].append(pkt)

    backlog = sum(len(q) for q in queues)
    window = config.cycles - config.warmup
    stats = latency_stats(latencies, hops_done)
    effective = config.injection_rate * (1.0 - float(np.diag(traffic).mean()))
    return SimulationResult(
        injection_rate=config.injection_rate,
        offered_rate=effective,
        accepted_rate=measured_ejections / (window * n),
        mean_latency=stats.mean_latency,
        p99_latency=stats.p99_latency,
        delivered=delivered,
        dropped=dropped,
        backlog=backlog,
        backlog_growth=backlog - backlog_at_warmup,
        measurement_cycles=window,
        mean_hops=stats.mean_hops,
        num_nodes=n,
        queue_peak=queue_peak,
        injected=uid,
    )


def adaptive_expected_locality(torus: Torus) -> float:
    """Closed-form normalized path length of the GOAL direction rule.

    Expected hops per dimension for forward offset ``m``:
    ``m (k - m)/k + (k - m) m/k = 2 m (k - m) / k`` — identical to RLB,
    since the direction distribution is the same (about 1.31x minimal on
    the 8-ary 2-cube; the paper quotes ~1.3x for GOAL)."""
    k = torus.k
    total = 0.0
    for m in range(k):
        total += 2 * m * (k - m) / k
    per_dim = total / k
    mean_hops = torus.n * per_dim
    return mean_hops / torus.mean_min_distance()


def adaptive_saturation(
    torus: Torus,
    traffic: np.ndarray,
    lo: float = 0.05,
    hi: float = 1.0,
    iterations: int = 6,
    cycles: int = 3000,
    warmup: int = 1000,
    seed: int = 0,
):
    """Bisect the empirical saturation point of adaptive routing
    (mirrors :func:`repro.sim.measure.saturation_throughput`)."""
    from repro.sim.measure import SaturationEstimate

    def run(rate: float) -> bool:
        res = simulate_adaptive(
            torus,
            traffic,
            SimulationConfig(
                cycles=cycles, warmup=warmup, injection_rate=rate, seed=seed
            ),
        )
        return res.stable

    with obs.span(
        "sim.saturation", algorithm="GOAL-adaptive", iterations=iterations
    ) as sp:
        if not run(lo):
            est = SaturationEstimate(lower=0.0, upper=lo)
        elif run(hi):
            est = SaturationEstimate(lower=hi, upper=1.0)
        else:
            for _ in range(iterations):
                mid = 0.5 * (lo + hi)
                if run(mid):
                    lo = mid
                else:
                    hi = mid
            est = SaturationEstimate(lower=lo, upper=hi)
        sp.set(lower=est.lower, upper=est.upper)
    return est
