"""Path model: channels, turns, loops and loop removal (paper Fig. 3).

Paths are tuples of node ids (``(s, ..., d)``); a zero-hop path is the
1-tuple ``(s,)``.  The paper's path set excludes paths that revisit
channels; loop removal (cutting the cycle when a node repeats) is the key
idea behind IVAL — "removing the loop only reduces the channel loads,
therefore the worst-case throughput cannot drop" (Section 5.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.topology.network import Network
from repro.topology.torus import Torus

Path = tuple[int, ...]


def path_length(path: Path) -> int:
    """Hop count of a path."""
    return len(path) - 1


def path_channels(network: Network, path: Path) -> list[int]:
    """Channel indices traversed by ``path``.

    Raises :class:`KeyError` if consecutive nodes are not adjacent.
    """
    return [
        network.channel_index(a, b) for a, b in zip(path[:-1], path[1:])
    ]


def validate_path(network: Network, path: Path, src: int, dst: int) -> None:
    """Check that ``path`` is a valid src->dst route without channel revisits."""
    if len(path) == 0:
        raise ValueError("path is empty")
    if path[0] != src or path[-1] != dst:
        raise ValueError(f"path endpoints {path[0]}->{path[-1]} != {src}->{dst}")
    chans = path_channels(network, path)  # raises on non-adjacency
    if len(set(chans)) != len(chans):
        raise ValueError("path revisits a channel")


def remove_loops(path: Path) -> Path:
    """Remove every loop (node revisit) from a path, as in Figure 3.

    A single left-to-right pass with a node->position map suffices: when a
    node reappears, the intervening cycle is cut.  The result visits each
    node at most once, never lengthens the path, and preserves endpoints.
    """
    out: list[int] = []
    pos: dict[int, int] = {}
    for node in path:
        if node in pos:
            # cut the cycle: drop everything after the first visit
            cut = pos[node]
            for dropped in out[cut + 1 :]:
                del pos[dropped]
            del out[cut + 1 :]
        else:
            pos[node] = len(out)
            out.append(node)
    return tuple(out)


def concatenate(first: Path, second: Path) -> Path:
    """Join two paths sharing an endpoint (phase-1 + phase-2 of VAL/IVAL)."""
    if first[-1] != second[0]:
        raise ValueError(
            f"paths do not share an endpoint: ...{first[-1]} vs {second[0]}..."
        )
    return first + second[1:]


# ----------------------------------------------------------------------
# Torus-specific path structure
# ----------------------------------------------------------------------
def hop_moves(torus: Torus, path: Path) -> list[tuple[int, int]]:
    """Per-hop ``(dim, direction)`` moves of a torus path."""
    moves = []
    for a, b in zip(path[:-1], path[1:]):
        delta = torus.sub_nodes(b, a)
        coords = torus.coords(int(delta))
        nz = np.nonzero(coords)[0]
        if len(nz) != 1:
            raise ValueError(f"nodes {a}->{b} are not torus neighbours")
        dim = int(nz[0])
        step = int(coords[dim])
        direction = +1 if step == 1 else -1
        if step not in (1, torus.k - 1):
            raise ValueError(f"nodes {a}->{b} are not torus neighbours")
        moves.append((dim, direction))
    return moves


def count_turns(torus: Torus, path: Path) -> int:
    """Number of dimension changes along a torus path (Section 5.2:
    "a turn is defined as any change from routing in one dimension to
    the other")."""
    moves = hop_moves(torus, path)
    return sum(
        1 for (d1, _), (d2, _) in zip(moves[:-1], moves[1:]) if d1 != d2
    )


def has_dimension_reversal(torus: Torus, path: Path) -> bool:
    """Whether any dimension's travel direction reverses along the path.

    This is the "u-turns or changes of direction within dimensions"
    condition that 2TURN disallows (Section 5.2); it is checked across
    the whole path, not just between adjacent hops, so an X+ segment
    followed later by an X- segment counts as a reversal.
    """
    seen: dict[int, int] = {}
    for dim, direction in hop_moves(torus, path):
        if dim in seen and seen[dim] != direction:
            return True
        seen[dim] = direction
    return False


def build_path(torus: Torus, start: int, segments: Sequence[tuple[int, int, int]]) -> Path:
    """Construct a torus path from ``(dim, direction, hops)`` segments."""
    nodes = [start]
    cur = np.array(torus.coords(start))
    for dim, direction, hops in segments:
        for _ in range(hops):
            cur[dim] = (cur[dim] + direction) % torus.k
            nodes.append(torus.node_at(cur))
    return tuple(nodes)
