"""Oblivious routing algorithms (paper Table 1 and Section 5).

Existing algorithms: :class:`~repro.routing.dor.DimensionOrderRouting`
(DOR), :func:`~repro.routing.valiant.VAL`, :func:`~repro.routing.valiant.IVAL`,
:class:`~repro.routing.romm.ROMM`, :class:`~repro.routing.rlb.RLB` and
:func:`~repro.routing.rlb.RLBth`.

LP-designed algorithms: :func:`~repro.routing.twoturn.design_2turn`
(2TURN), :func:`~repro.routing.twoturn.design_2turn_average` (2TURNA)
and table-driven algorithms recovered from flow solutions
(:class:`~repro.routing.base.TableRouting`).

:class:`~repro.routing.interpolate.Interpolated` mixes any two
algorithms (Section 5.3).
"""

from repro.routing.base import ObliviousRouting, TableRouting
from repro.routing.dor import DimensionOrderRouting, minimal_direction_choices
from repro.routing.interpolate import Interpolated
from repro.routing.rlb import RLB, RLBth
from repro.routing.romm import ROMM
from repro.routing.registry import standard_algorithms
from repro.routing.valiant import IVAL, VAL, Valiant
from repro.routing.hypercube import ECube, HypercubeValiant
from repro.routing.shortest import ShortestPathRouting

# twoturn pulls in repro.core (for the path LP), which in turn imports
# repro.routing.base — keep this import after the ones above so the
# partially-initialized package already exposes everything core needs.
from repro.routing.twoturn import (  # noqa: E402
    TwoTurnDesign,
    design_2turn,
    design_2turn_average,
    two_turn_paths,
)

__all__ = [
    "ECube",
    "HypercubeValiant",
    "TwoTurnDesign",
    "design_2turn",
    "design_2turn_average",
    "two_turn_paths",
    "ObliviousRouting",
    "TableRouting",
    "DimensionOrderRouting",
    "minimal_direction_choices",
    "Interpolated",
    "RLB",
    "RLBth",
    "ROMM",
    "ShortestPathRouting",
    "standard_algorithms",
    "IVAL",
    "VAL",
    "Valiant",
]
