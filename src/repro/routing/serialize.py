"""Save/load routing tables as JSON.

LP-designed algorithms (2TURN, 2TURNA, recovered optima) are expensive
to re-derive; a deployed router would ship the solved table.  The format
stores the topology fingerprint, per-destination canonical paths and
probabilities, so a load re-validates against the network it is used on.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.routing.base import TableRouting
from repro.topology.torus import Torus

FORMAT_VERSION = 1


def dump_routing(algorithm: TableRouting, path: str | Path) -> None:
    """Serialize a table-driven algorithm to JSON."""
    torus = algorithm.network
    if not isinstance(torus, Torus):
        raise TypeError("serialization targets table routing on tori")
    table = {}
    for d in range(1, torus.num_nodes):
        table[str(d)] = [
            {"path": list(p), "prob": w}
            for p, w in algorithm.path_distribution(0, d)
        ]
    doc = {
        "format": FORMAT_VERSION,
        "name": algorithm.name,
        "topology": {"kind": "torus", "k": torus.k, "n": torus.n},
        "table": table,
    }
    Path(path).write_text(json.dumps(doc))


def load_routing(path: str | Path, torus: Torus | None = None) -> TableRouting:
    """Load a serialized routing table.

    If ``torus`` is given it must match the stored topology fingerprint;
    otherwise a matching torus is constructed.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported routing table format: {doc.get('format')}")
    topo = doc["topology"]
    if topo.get("kind") != "torus":
        raise ValueError(f"unsupported topology kind {topo.get('kind')!r}")
    if torus is None:
        torus = Torus(int(topo["k"]), int(topo["n"]))
    elif torus.k != topo["k"] or torus.n != topo["n"]:
        raise ValueError(
            f"topology mismatch: file is a {topo['k']}-ary {topo['n']}-cube, "
            f"got {torus.name}"
        )
    table = {
        int(d): [(tuple(e["path"]), float(e["prob"])) for e in entries]
        for d, entries in doc["table"].items()
    }
    return TableRouting(torus, table, name=doc.get("name", "loaded"))
