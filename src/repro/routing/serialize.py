"""Save/load routing tables and canonical flow arrays as JSON.

LP-designed algorithms (2TURN, 2TURNA, recovered optima) are expensive
to re-derive; a deployed router would ship the solved table.  The format
stores the topology fingerprint, per-destination canonical paths and
probabilities, so a load re-validates against the network it is used on.

Two payload families exist:

- *routing tables* (``dump_routing`` / ``load_routing`` and the
  in-memory ``routing_to_doc`` / ``routing_from_doc``) for path-based
  designs such as the 2TURN family;
- *canonical flow tables* (``flows_to_doc`` / ``flows_from_doc``) — the
  raw ``(N, C)`` arrays produced by the flow-LP designs, used by the
  experiment engine's design cache.

JSON floats round-trip ``float64`` exactly (shortest-repr encoding), so
a stored design is bit-identical when loaded back.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.routing.base import TableRouting
from repro.topology.torus import Torus

FORMAT_VERSION = 1


def _topology_doc(torus: Torus) -> dict:
    if not isinstance(torus, Torus):
        raise TypeError("serialization targets table routing on tori")
    doc = {"kind": "torus", "k": torus.k, "n": torus.n}
    if any(b != 1.0 for b in torus.bandwidths):
        # Non-unit bandwidths change every load figure a stored design
        # certifies, so they join the fingerprint; unit-bandwidth tori
        # omit the key, keeping pre-existing documents readable.
        doc["bandwidths"] = list(torus.bandwidths)
    return doc


def _check_topology(doc: dict, torus: Torus | None) -> Torus:
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported routing table format: {doc.get('format')}")
    topo = doc["topology"]
    if topo.get("kind") != "torus":
        raise ValueError(f"unsupported topology kind {topo.get('kind')!r}")
    stored_bw = tuple(float(b) for b in topo.get("bandwidths", ()))
    if torus is None:
        return Torus(int(topo["k"]), int(topo["n"]), bandwidths=stored_bw or None)
    file_bw = stored_bw or (1.0,) * int(topo["n"])
    if torus.k != topo["k"] or torus.n != topo["n"] or torus.bandwidths != file_bw:
        raise ValueError(
            f"topology mismatch: file is a {topo['k']}-ary {topo['n']}-cube "
            f"(bandwidths {file_bw}), got {torus.name}"
        )
    return torus


def routing_to_doc(algorithm: TableRouting) -> dict:
    """A table-driven algorithm as a JSON-serializable document."""
    torus = algorithm.network
    topology = _topology_doc(torus)
    table = {}
    for d in range(1, torus.num_nodes):
        table[str(d)] = [
            {"path": list(p), "prob": w}
            for p, w in algorithm.path_distribution(0, d)
        ]
    return {
        "format": FORMAT_VERSION,
        "name": algorithm.name,
        "topology": topology,
        "table": table,
    }


def routing_from_doc(doc: dict, torus: Torus | None = None) -> TableRouting:
    """Rebuild a table-driven algorithm from :func:`routing_to_doc`."""
    torus = _check_topology(doc, torus)
    table = {
        int(d): [(tuple(e["path"]), float(e["prob"])) for e in entries]
        for d, entries in doc["table"].items()
    }
    return TableRouting(torus, table, name=doc.get("name", "loaded"))


def flows_to_doc(flows: np.ndarray, torus: Torus, name: str = "flows") -> dict:
    """A canonical ``(N, C)`` flow table as a JSON-serializable document."""
    flows = np.asarray(flows, dtype=np.float64)
    expected = (torus.num_nodes, torus.num_channels)
    if flows.shape != expected:
        raise ValueError(
            f"flow table shape {flows.shape} does not match {torus.name} "
            f"(expected {expected})"
        )
    return {
        "format": FORMAT_VERSION,
        "name": name,
        "topology": _topology_doc(torus),
        "flows": [[float(v) for v in row] for row in flows],
    }


def flows_from_doc(doc: dict, torus: Torus | None = None) -> np.ndarray:
    """Rebuild a canonical flow table from :func:`flows_to_doc`."""
    torus = _check_topology(doc, torus)
    flows = np.asarray(doc["flows"], dtype=np.float64)
    expected = (torus.num_nodes, torus.num_channels)
    if flows.shape != expected:
        raise ValueError(
            f"stored flow table shape {flows.shape} does not match "
            f"{torus.name} (expected {expected})"
        )
    return flows


def dump_routing(algorithm: TableRouting, path: str | Path) -> None:
    """Serialize a table-driven algorithm to JSON."""
    Path(path).write_text(json.dumps(routing_to_doc(algorithm)))


def load_routing(path: str | Path, torus: Torus | None = None) -> TableRouting:
    """Load a serialized routing table.

    If ``torus`` is given it must match the stored topology fingerprint;
    otherwise a matching torus is constructed.
    """
    return routing_from_doc(json.loads(Path(path).read_text()), torus)
