"""Interpolated routing algorithms (paper Section 5.3, eqs. 11-14).

Because oblivious routing algorithms are probability distributions over
paths, any convex combination of two algorithms is again a valid
algorithm: route with :math:`R_1` with probability :math:`\\alpha`, else
with :math:`R_2`.  Path length interpolates linearly (eq. 12) while
worst-case channel load is bounded by the interpolation of the
endpoints' loads (eq. 13) — with equality whenever the endpoints share a
worst-case permutation, as DOR and IVAL do (footnote 5).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.routing.base import ObliviousRouting
from repro.routing.paths import Path


class Interpolated(ObliviousRouting):
    """Convex combination ``alpha * first + (1 - alpha) * second``."""

    def __init__(
        self,
        first: ObliviousRouting,
        second: ObliviousRouting,
        alpha: float,
        name: str | None = None,
    ) -> None:
        if first.network is not second.network:
            raise ValueError("interpolated algorithms must share a network")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must lie in [0, 1], got {alpha}")
        super().__init__(
            first.network,
            name or f"{first.name}~{second.name}@{alpha:.2f}",
        )
        self.first = first
        self.second = second
        self.alpha = float(alpha)
        self.translation_invariant = (
            first.translation_invariant and second.translation_invariant
        )

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        acc: dict[Path, float] = {}
        for path, prob in self.first.path_distribution(src, dst):
            acc[path] = acc.get(path, 0.0) + self.alpha * prob
        for path, prob in self.second.path_distribution(src, dst):
            acc[path] = acc.get(path, 0.0) + (1.0 - self.alpha) * prob
        return list(acc.items())

    @cached_property
    def canonical_flows(self) -> np.ndarray:
        # Flows are linear in the distribution, so interpolate directly
        # instead of re-walking every path (eq. 11 applied to loads).
        flows = (
            self.alpha * self.first.canonical_flows
            + (1.0 - self.alpha) * self.second.canonical_flows
        )
        flows.setflags(write=False)
        return flows


def sweep(
    first: ObliviousRouting,
    second: ObliviousRouting,
    alphas,
) -> list[Interpolated]:
    """The family of interpolations at each ``alpha`` (Figure 5's curves)."""
    return [Interpolated(first, second, float(a)) for a in alphas]
