"""Dimension-order routing (DOR) on tori (paper Table 1, ref [4]).

Packets route minimally one dimension at a time, dimension 0 (X) first
by default.  When the offset in a dimension is exactly ``k/2`` either
direction is minimal and routes are split evenly between the two — this
tie split is what makes DOR load-balanced enough to be the worst-case
optimal *minimal* algorithm on even-radix tori (Section 5.1).
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.routing.base import ObliviousRouting
from repro.routing.paths import Path, build_path
from repro.topology.torus import Torus


def minimal_direction_choices(
    torus: Torus, src: int, dst: int
) -> list[tuple[dict[int, int], float]]:
    """Enumerate minimal direction assignments and their probabilities.

    Returns ``[(dirs, prob), ...]`` where ``dirs`` maps each dimension
    with nonzero offset to +1 or -1.  Ties (offset ``k/2``) contribute a
    factor of one half per tied dimension.
    """
    options: list[list[tuple[int, float]]] = []
    dims: list[int] = []
    for dim, choices in enumerate(torus.minimal_directions(src, dst)):
        if not choices:
            continue
        dims.append(dim)
        options.append([(c, 1.0 / len(choices)) for c in choices])
    combos: list[tuple[dict[int, int], float]] = []
    for combo in itertools.product(*options):
        dirs = {dim: c for dim, (c, _) in zip(dims, combo)}
        prob = 1.0
        for _, p in combo:
            prob *= p
        combos.append((dirs, prob))
    return combos


class DimensionOrderRouting(ObliviousRouting):
    """Minimal dimension-order routing.

    Parameters
    ----------
    torus:
        Target torus.
    order:
        Dimension traversal order; default ascending (X first).  IVAL's
        second phase uses the reversed order (Section 5.2).
    """

    translation_invariant = True

    def __init__(
        self, torus: Torus, order: Sequence[int] | None = None, name: str = "DOR"
    ) -> None:
        super().__init__(torus, name)
        self.order = tuple(order) if order is not None else tuple(range(torus.n))
        if sorted(self.order) != list(range(torus.n)):
            raise ValueError(f"order {self.order} is not a permutation of dims")

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        torus: Torus = self.network  # type: ignore[assignment]
        delta = torus.ring_delta(src, dst)
        out = []
        for dirs, prob in minimal_direction_choices(torus, src, dst):
            segments = [
                (dim, dirs[dim], torus.hops(int(delta[dim]), dirs[dim]))
                for dim in self.order
                if dim in dirs
            ]
            out.append((build_path(torus, src, segments), prob))
        return out
