"""ROMM: randomized, oblivious, minimal routing (paper Table 1, ref [19]).

A two-phase algorithm like Valiant's, but the intermediate node is drawn
uniformly from the *minimal quadrant* — the rectangle of nodes spanned by
the minimal direction in each dimension — so every path stays minimal
and the normalized average path length is exactly one.
"""

from __future__ import annotations

from repro.routing.base import ObliviousRouting
from repro.routing.dor import minimal_direction_choices
from repro.routing.paths import Path, build_path
from repro.topology.torus import Torus


class ROMM(ObliviousRouting):
    """Two-phase minimal routing with a random quadrant intermediate.

    The implementation enumerates, for each minimal direction assignment
    (ties split evenly as in DOR), the quadrant offsets ``(a, b, ...)``
    of the intermediate and emits the concatenation of two X-first
    dimension-order phases.  Distinct intermediates can induce the same
    path (e.g. any intermediate on the initial straight run); duplicates
    are merged.
    """

    translation_invariant = True

    def __init__(self, torus: Torus, name: str = "ROMM") -> None:
        if torus.n != 2:
            raise ValueError("this ROMM implementation targets 2-D tori")
        super().__init__(torus, name)

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        torus: Torus = self.network  # type: ignore[assignment]
        delta = torus.ring_delta(src, dst)
        acc: dict[Path, float] = {}
        for dirs, dir_prob in minimal_direction_choices(torus, src, dst):
            mx = torus.hops(int(delta[0]), dirs[0]) if 0 in dirs else 0
            my = torus.hops(int(delta[1]), dirs[1]) if 1 in dirs else 0
            sx = dirs.get(0, +1)
            sy = dirs.get(1, +1)
            pick = dir_prob / ((mx + 1) * (my + 1))
            for a in range(mx + 1):
                for b in range(my + 1):
                    # phase 1 (X then Y) to the intermediate at offset
                    # (a, b); phase 2 (X then Y) covers the rest.
                    segments = [
                        (0, sx, a),
                        (1, sy, b),
                        (0, sx, mx - a),
                        (1, sy, my - b),
                    ]
                    path = build_path(torus, src, segments)
                    acc[path] = acc.get(path, 0.0) + pick
        return list(acc.items())
