"""Oblivious routing algorithms as path distributions (paper Section 2.2).

A randomized oblivious routing algorithm ``R`` assigns each
source-destination pair a probability distribution over paths:
``R(p) >= 0`` and ``sum_{p in P_{s,d}} R(p) = 1``.  Everything the
paper measures — channel loads, throughput, locality — is a function of
the induced *flows* (expected channel-crossing counts), so the base class
materializes flows once and caches them.

Algorithms on tori are *translation-invariant*: the distribution for
``(s, d)`` is the translate of the distribution for ``(0, d - s)``.
Such algorithms only describe canonical-source paths, and their flows
are an ``(N, C)`` table — the O(CN) representation of Section 4.
"""

from __future__ import annotations

import abc
from functools import cached_property

import numpy as np

from repro.constants import DISTRIBUTION_ATOL, FEASIBILITY_ATOL, SOLVER_DUST
from repro.routing import paths as pathmod
from repro.routing.paths import Path
from repro.topology.network import Network
from repro.topology.symmetry import TranslationGroup
from repro.topology.cayley import CayleyTopology
from repro.topology.torus import Torus


class ObliviousRouting(abc.ABC):
    """Abstract oblivious routing algorithm over a fixed network."""

    #: Whether ``path_distribution(s, d)`` is the translate of
    #: ``path_distribution(0, d - s)``.  Translation-invariant algorithms
    #: on a torus get the compact canonical-flow representation.
    translation_invariant: bool = False

    def __init__(self, network: Network, name: str | None = None) -> None:
        self._network = network
        self.name = name if name is not None else type(self).__name__

    @property
    def network(self) -> Network:
        return self._network

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        """Distribution over paths for one commodity.

        Returns ``[(path, probability), ...]`` with probabilities summing
        to one.  For ``src == dst`` the single zero-hop path ``(src,)``
        with probability one is returned.
        """

    def sample_path(self, rng: np.random.Generator, src: int, dst: int) -> Path:
        """Draw one path according to the distribution (used by the
        simulator, which is what makes the algorithm *randomized*)."""
        dist = self.path_distribution(src, dst)
        probs = np.asarray([p for _, p in dist])
        idx = rng.choice(len(dist), p=probs / probs.sum())
        return dist[idx][0]

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------
    @cached_property
    def canonical_flows(self) -> np.ndarray:
        """``(N, C)`` expected channel crossings for commodities ``(0, d)``.

        Only meaningful for translation-invariant algorithms on a torus;
        row ``d``, column ``c`` is the probability-weighted number of
        times a packet from node 0 to node ``d`` crosses channel ``c``.
        """
        if not self.translation_invariant:
            raise TypeError(
                f"{self.name} is not translation-invariant; use full_flows()"
            )
        net = self._network
        flows = np.zeros((net.num_nodes, net.num_channels))
        for d in range(net.num_nodes):
            for path, prob in self.path_distribution(0, d):
                for c in pathmod.path_channels(net, path):
                    flows[d, c] += prob
        flows.setflags(write=False)
        return flows

    def full_flows(self) -> np.ndarray:
        """``(N, N, C)`` flows for every commodity ``(s, d)``.

        Translation-invariant algorithms derive this from
        :attr:`canonical_flows`; others enumerate all pairs.
        """
        net = self._network
        if self.translation_invariant and isinstance(net, CayleyTopology):
            group = self._translation_group
            out = np.zeros((net.num_nodes, net.num_nodes, net.num_channels))
            for s in range(net.num_nodes):
                for d in range(net.num_nodes):
                    out[s, d] = group.commodity_flow(self.canonical_flows, s, d)
            return out
        flows = np.zeros((net.num_nodes, net.num_nodes, net.num_channels))
        for s in range(net.num_nodes):
            for d in range(net.num_nodes):
                for path, prob in self.path_distribution(s, d):
                    for c in pathmod.path_channels(net, path):
                        flows[s, d, c] += prob
        return flows

    @cached_property
    def _translation_group(self) -> TranslationGroup:
        if not isinstance(self._network, CayleyTopology):
            raise TypeError("translation group requires a Cayley-graph network")
        return TranslationGroup(self._network)

    # ------------------------------------------------------------------
    # Locality (paper eq. 5)
    # ------------------------------------------------------------------
    def average_path_length(self) -> float:
        """``H_avg``: mean hops over all ordered pairs (eq. 5)."""
        if self.translation_invariant:
            return float(self.canonical_flows.sum() / self._network.num_nodes)
        return float(self.full_flows().sum() / self._network.num_nodes**2)

    def normalized_path_length(self) -> float:
        """``H_avg`` as a multiple of the minimal average path length —
        the vertical axis of Figures 1, 4, 5 and 6."""
        return self.average_path_length() / self._network.mean_min_distance()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, pairs=None, tol: float = FEASIBILITY_ATOL) -> None:
        """Check the oblivious-routing constraints of eq. (1).

        Verifies, for each requested pair (default: all pairs from node
        0 plus a diagonal sample), that probabilities are nonnegative,
        sum to one, and that each path is a valid channel-simple route.
        """
        net = self._network
        if pairs is None:
            pairs = [(0, d) for d in range(net.num_nodes)]
            pairs += [(s, (s * 2 + 1) % net.num_nodes) for s in range(net.num_nodes)]
        for s, d in pairs:
            dist = self.path_distribution(s, d)
            total = 0.0
            for path, prob in dist:
                if prob < -tol:
                    raise ValueError(f"{self.name}: negative probability on {path}")
                if len(path) > 1:
                    pathmod.validate_path(net, path, s, d)
                elif path != (s,) or s != d:
                    raise ValueError(f"{self.name}: bad trivial path {path}")
                total += prob
            if abs(total - 1.0) > max(tol, DISTRIBUTION_ATOL):
                raise ValueError(
                    f"{self.name}: probabilities for ({s}, {d}) sum to {total}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, network={self._network!r})"


class TableRouting(ObliviousRouting):
    """Routing defined by an explicit canonical-source path table.

    This is how LP-designed algorithms (2TURN, 2TURNA, recovered optimal
    algorithms) are materialized: the solver produces path weights for
    source 0, and translation extends them to all sources.

    Parameters
    ----------
    torus:
        Underlying (vertex-transitive) torus.
    table:
        ``table[d]`` is a list of ``(path, probability)`` for the
        canonical commodity ``(0, d)``; entry 0 may be omitted.
    prune:
        Drop paths below this probability and renormalize — LP vertex
        solutions carry harmless ~1e-12 dust.
    """

    translation_invariant = True

    def __init__(
        self,
        torus: Torus,
        table: dict[int, list[tuple[Path, float]]],
        name: str = "table",
        prune: float = SOLVER_DUST,
    ) -> None:
        super().__init__(torus, name)
        self._table: dict[int, list[tuple[Path, float]]] = {}
        for d, entries in table.items():
            kept = [(tuple(p), float(w)) for p, w in entries if w > prune]
            total = sum(w for _, w in kept)
            if d != 0 and (not kept or total <= 0):
                raise ValueError(f"no paths with positive weight for destination {d}")
            if kept:
                self._table[d] = [(p, w / total) for p, w in kept]
        for d in range(1, torus.num_nodes):
            if d not in self._table:
                raise ValueError(f"table missing destination {d}")

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        torus: Torus = self._network  # type: ignore[assignment]
        t = int(torus.sub_nodes(dst, src))
        if src == 0:
            return list(self._table[t])
        return [
            (tuple(int(torus.add_nodes(v, src)) for v in path), w)
            for path, w in self._table[t]
        ]
