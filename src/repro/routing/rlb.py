"""RLB and RLBth: randomized local balance (paper Table 1, ref [18]).

RLB trades locality for worst-case throughput by sometimes routing the
long way around a dimension: the minimal direction in dimension X is
chosen with probability :math:`(k - \\Delta_X)/k` (and the non-minimal
direction with probability :math:`\\Delta_X / k`), which exactly
balances the expected load each pair places on the two directions of the
ring.  Given the directions, the packet routes through a uniformly
random intermediate inside the directed quadrant, X-first in both
phases, as in [18].

RLBth ("RLB threshold") restores locality for short hops: when
:math:`\\Delta_X < k/4` the packet always routes minimally in X
(similarly for Y).
"""

from __future__ import annotations

import itertools

from repro.routing.base import ObliviousRouting
from repro.routing.paths import Path, build_path
from repro.topology.torus import Torus


class RLB(ObliviousRouting):
    """Randomized local balance routing on a 2-D torus.

    Parameters
    ----------
    torus:
        Target torus.
    threshold:
        If set (RLBth), dimensions with minimal offset strictly below
        ``threshold * k`` are always routed minimally.  The paper's
        RLBth uses ``threshold = 1/4``.
    """

    translation_invariant = True

    def __init__(
        self, torus: Torus, threshold: float | None = None, name: str = "RLB"
    ) -> None:
        if torus.n != 2:
            raise ValueError("RLB is defined on 2-D tori")
        super().__init__(torus, name)
        self.threshold = threshold

    def _direction_options(self, offset: int) -> list[tuple[int, int, float]]:
        """Options ``(direction, hops, probability)`` for one dimension.

        ``offset`` is the forward ring offset in ``0..k-1``; a zero
        offset yields the single no-movement option.
        """
        k: int = self.network.k  # type: ignore[attr-defined]
        if offset == 0:
            return [(+1, 0, 1.0)]
        forward, backward = offset, k - offset
        minimal = min(forward, backward)
        if self.threshold is not None and minimal < self.threshold * k:
            # RLBth: always minimal below the threshold (even split on tie,
            # though a tie cannot occur below k/4).
            if forward < backward:
                return [(+1, forward, 1.0)]
            if backward < forward:
                return [(-1, backward, 1.0)]
            return [(+1, forward, 0.5), (-1, backward, 0.5)]
        # RLB weighting: direction probability proportional to the hops
        # *not* traveled, i.e. P[dir with m hops] = (k - m)/k.
        return [
            (+1, forward, (k - forward) / k),
            (-1, backward, (k - backward) / k),
        ]

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        torus: Torus = self.network  # type: ignore[assignment]
        delta = torus.ring_delta(src, dst)
        acc: dict[Path, float] = {}
        options = [self._direction_options(int(delta[dim])) for dim in range(2)]
        for (sx, mx, px), (sy, my, py) in itertools.product(*options):
            pick = px * py / ((mx + 1) * (my + 1))
            for a in range(mx + 1):
                for b in range(my + 1):
                    segments = [
                        (0, sx, a),
                        (1, sy, b),
                        (0, sx, mx - a),
                        (1, sy, my - b),
                    ]
                    path = build_path(torus, src, segments)
                    acc[path] = acc.get(path, 0.0) + pick
        return list(acc.items())


def RLBth(torus: Torus) -> RLB:
    """RLB with the paper's minimal-routing threshold of ``k/4``."""
    return RLB(torus, threshold=0.25, name="RLBth")
