"""Valiant's algorithm (VAL) and the improved variant IVAL (Section 5.2).

VAL [3] routes every packet minimally (DOR) to a uniformly random
intermediate node, then minimally on to the destination.  Load is exactly
balanced — VAL attains the optimal worst-case throughput of half
capacity — but paths average twice the minimal length.

IVAL keeps VAL's two phases but (a) reverses the dimension order in the
second phase, which maximizes the chance that the concatenated path
contains a *loop* (a node revisit, Figure 3), and (b) removes those
loops.  Loop removal only ever lowers channel loads, so the worst-case
throughput is preserved while the average path length drops from 2x to
about 1.61x minimal on the 8-ary 2-cube.
"""

from __future__ import annotations

from repro.routing import paths as pathmod
from repro.routing.base import ObliviousRouting
from repro.routing.dor import DimensionOrderRouting
from repro.routing.paths import Path
from repro.topology.torus import Torus


class Valiant(ObliviousRouting):
    """Two-phase randomized routing through a uniform intermediate.

    Parameters
    ----------
    torus:
        Target torus.
    reverse_second_phase:
        Use reversed dimension order in phase 2 (IVAL's trick).
    remove_loops:
        Remove loops from the concatenated paths (IVAL).  Identical
        post-removal paths are merged, so the returned distribution has
        unique support.
    """

    translation_invariant = True

    def __init__(
        self,
        torus: Torus,
        reverse_second_phase: bool = False,
        remove_loops: bool = False,
        name: str = "VAL",
    ) -> None:
        super().__init__(torus, name)
        self._phase1 = DimensionOrderRouting(torus)
        order2 = (
            tuple(reversed(range(torus.n))) if reverse_second_phase else None
        )
        self._phase2 = DimensionOrderRouting(torus, order=order2)
        self._remove_loops = remove_loops

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        n = self.network.num_nodes
        acc: dict[Path, float] = {}
        for mid in range(n):
            for p1, q1 in self._phase1.path_distribution(src, mid):
                for p2, q2 in self._phase2.path_distribution(mid, dst):
                    path = pathmod.concatenate(p1, p2)
                    if self._remove_loops:
                        path = pathmod.remove_loops(path)
                    acc[path] = acc.get(path, 0.0) + q1 * q2 / n
        return list(acc.items())


def VAL(torus: Torus) -> Valiant:
    """Valiant's algorithm as evaluated in the paper (DOR both phases)."""
    return Valiant(torus, name="VAL")


def IVAL(torus: Torus) -> Valiant:
    """Improved Valiant: reversed second-phase dimension order plus loop
    removal (Section 5.2)."""
    return Valiant(
        torus, reverse_second_phase=True, remove_loops=True, name="IVAL"
    )
