"""Registry of the paper's routing algorithms (Table 1).

:func:`standard_algorithms` builds the five previously-existing
algorithms the paper compares against (DOR, VAL, ROMM, RLB, RLBth);
the LP-designed algorithms (2TURN, 2TURNA, recovered optima) require a
solver pass and live in :mod:`repro.routing.twoturn` /
:mod:`repro.core`.
"""

from __future__ import annotations

from repro.routing.base import ObliviousRouting
from repro.routing.dor import DimensionOrderRouting
from repro.routing.rlb import RLB, RLBth
from repro.routing.romm import ROMM
from repro.routing.valiant import IVAL, VAL
from repro.topology.torus import Torus


def standard_algorithms(torus: Torus) -> dict[str, ObliviousRouting]:
    """The pre-existing algorithms of Table 1, keyed by paper name."""
    return {
        "DOR": DimensionOrderRouting(torus),
        "VAL": VAL(torus),
        "ROMM": ROMM(torus),
        "RLB": RLB(torus),
        "RLBth": RLBth(torus),
    }
