"""The 2TURN and 2TURNA routing algorithms (paper Sections 5.2, 5.4).

2TURN allows every path with at most two turns, with u-turns and
direction changes within a dimension disallowed — so a path is an
``x-y-x`` or ``y-x-y`` staircase whose movement in each dimension is
monotone (possibly the non-minimal way around).  The path *weights*
carry no closed form: they are solved for, first minimizing worst-case
channel load, then (lexicographically) minimizing average path length.

2TURNA uses the same path set but optimizes the sampled average-case
load first, then locality.

Both materialize as :class:`~repro.routing.base.TableRouting` tables.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.constants import LEXICOGRAPHIC_SLACK, SOLVER_DUST
from repro.core.path_lp import PathSetLP
from repro.routing.base import TableRouting
from repro.routing.paths import Path, build_path
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus


def two_turn_paths(torus: Torus) -> dict[int, list[Path]]:
    """Enumerate every at-most-two-turn path from node 0 to each node.

    A two-turn path is an ``x-y-x`` or ``y-x-y`` staircase of (at most)
    three monotone segments.  Turns are dimension changes; "u-turns" —
    immediately reversing direction *within* a segment — are disallowed,
    but the two same-dimension segments of a staircase may run in
    opposite directions (they occupy different rows/columns, so no
    channel is revisited).  This general reading is forced by the
    paper's claim that 2TURN contains all of IVAL's paths: IVAL's
    loop-removed routes do reverse X across the Y segment.

    For shape ``x^a | y^m | x^c`` with segment directions
    ``s1, sy, s3``: the middle length ``m`` is determined by ``sy``
    (monotone coverage of the Y offset), ``a`` ranges over ``0..k-1``,
    and ``c`` is then fixed by the X offset.  Segments of length ``k``
    (full wraps) would revisit channels and are excluded.  Degenerate
    splits reproduce the 0- and 1-turn paths; duplicates from the two
    shape families are removed.
    """
    if torus.n != 2:
        raise ValueError("2TURN is defined on 2-D tori")
    k = torus.k
    out: dict[int, list[Path]] = {}
    for t in range(1, torus.num_nodes):
        dx, dy = (int(v) for v in torus.coords(t))
        paths: set[Path] = set()
        # shape = (first_dim, first_offset, mid_dim, mid_offset)
        for first_dim, d_first, d_mid in ((0, dx, dy), (1, dy, dx)):
            mid_dim = 1 - first_dim
            mid_opts = (
                [(+1, d_mid), (-1, k - d_mid)] if d_mid else [(0, 0)]
            )
            for s_mid, m_mid in mid_opts:
                if m_mid == 0:
                    # no middle segment: only a straight path (a u-turn
                    # within one row/column would revisit a node)
                    for s1 in (+1, -1):
                        hops = (s1 * d_first) % k
                        if 0 < hops < k:
                            paths.add(
                                build_path(torus, 0, [(first_dim, s1, hops)])
                            )
                    continue
                for s1 in (+1, -1):
                    for s3 in (+1, -1):
                        for a in range(k):
                            c = (s3 * (d_first - s1 * a)) % k
                            segments = []
                            if a:
                                segments.append((first_dim, s1, a))
                            segments.append((mid_dim, s_mid, m_mid))
                            if c:
                                segments.append((first_dim, s3, c))
                            paths.add(build_path(torus, 0, segments))
        out[t] = sorted(paths)
    return out


@dataclasses.dataclass(frozen=True)
class TwoTurnDesign:
    """A solved 2TURN-family algorithm plus its design-time objectives."""

    routing: TableRouting
    objective_load: float
    avg_path_length: float
    num_paths: int
    model_stats: dict = dataclasses.field(default_factory=dict)

    @property
    def normalized_path_length(self) -> float:
        torus = self.routing.network
        return self.avg_path_length / torus.mean_min_distance()


def design_2turn(
    torus: Torus,
    group: TranslationGroup | None = None,
    method: str = "highs-ipm",
) -> TwoTurnDesign:
    """Design 2TURN: lexicographically min worst-case load, then
    min average path length (Section 5.2)."""
    if group is None:
        group = TranslationGroup(torus)
    paths = two_turn_paths(torus)

    lp = PathSetLP(torus, paths, group, name="2TURN")
    w = lp.model.add_variables("w", 1)
    lp.add_worst_case(int(w.indices()[0]))
    lp.model.set_objective(w.indices(), [1.0])
    sol = lp.model.solve(method=method)
    wc_load = float(sol[w][0])

    lp = PathSetLP(torus, paths, group, name="2TURN-stage2")
    w = lp.model.add_variables("w", 1)
    lp.add_worst_case(int(w.indices()[0]))
    lp.model.set_bounds(w, ub=wc_load * (1 + LEXICOGRAPHIC_SLACK) + SOLVER_DUST)
    cols, vals = lp.locality_terms()
    lp.model.set_objective(cols, vals)
    sol = lp.model.solve(method=method)

    routing = TableRouting(torus, lp.table_from(sol), name="2TURN")
    return TwoTurnDesign(
        routing=routing,
        objective_load=wc_load,
        avg_path_length=float(sol.objective),
        num_paths=lp.num_paths,
        model_stats=lp.model.stats(),
    )


def design_2turn_average(
    torus: Torus,
    sample,
    group: TranslationGroup | None = None,
    method: str = "highs-ipm",
) -> TwoTurnDesign:
    """Design 2TURNA: lexicographically min sampled average-case load,
    then min average path length (Section 5.4)."""
    if group is None:
        group = TranslationGroup(torus)
    paths = two_turn_paths(torus)

    lp = PathSetLP(torus, paths, group, name="2TURNA")
    m = lp.model.add_variables("m", len(sample))
    lp.add_average_case(sample, m)
    lp.model.set_objective(m.indices(), np.full(len(sample), 1 / len(sample)))
    sol = lp.model.solve(method=method)
    avg_load = float(sol.objective)

    lp = PathSetLP(torus, paths, group, name="2TURNA-stage2")
    m = lp.model.add_variables("m", len(sample))
    lp.add_average_case(sample, m)
    lp.model.add_le(
        m.indices(),
        np.full(len(sample), 1 / len(sample)),
        avg_load * (1 + LEXICOGRAPHIC_SLACK) + SOLVER_DUST,
    )
    cols, vals = lp.locality_terms()
    lp.model.set_objective(cols, vals)
    sol = lp.model.solve(method=method)

    routing = TableRouting(torus, lp.table_from(sol), name="2TURNA")
    return TwoTurnDesign(
        routing=routing,
        objective_load=avg_load,
        avg_path_length=float(sol.objective),
        num_paths=lp.num_paths,
        model_stats=lp.model.stats(),
    )
