"""Deterministic shortest-path routing on arbitrary networks.

The torus algorithms (DOR, VAL, IVAL, the LP designs) all lean on the
Cayley structure — translation-invariant canonical paths.  Topologies
without that structure (the mesh, :class:`~repro.topology.pillar.\
SparsePillarTorus3D`, fault-degraded networks) still need a baseline
oblivious algorithm to evaluate, and the natural one is deterministic
shortest-path routing: every commodity follows one BFS-minimal path.

Determinism matters for reproducibility, so ties are broken the same
way as the fault detour splicer (`repro.faults.reroute`): at every hop
take the smallest-id neighbor that still decreases the BFS distance to
the destination.  The resulting single-path distribution plugs into the
general ``(N, N, C)`` evaluator, the packet simulator, and
``repro.verify`` unchanged.
"""

from __future__ import annotations

from repro.routing.base import ObliviousRouting
from repro.routing.paths import Path
from repro.topology.network import Network


class ShortestPathRouting(ObliviousRouting):
    """Single shortest path per commodity, smallest-next-hop tie-break.

    Works on any strongly connected :class:`Network`; commodities with
    an unreachable destination raise :class:`ValueError` when their
    distribution is requested.
    """

    translation_invariant = False

    def __init__(self, network: Network, name: str = "SP") -> None:
        super().__init__(network, name)
        self._cache: dict[tuple[int, int], list[tuple[Path, float]]] = {}

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        key = (src, dst)
        if key not in self._cache:
            self._cache[key] = [(self._greedy_path(src, dst), 1.0)]
        return list(self._cache[key])

    def _greedy_path(self, src: int, dst: int) -> Path:
        net = self._network
        dist = net.distance_matrix()
        if dist[src, dst] < 0:
            raise ValueError(
                f"{self.name}: no path from {src} to {dst} on {net.name}"
            )
        path = [src]
        cur = src
        while cur != dst:
            remaining = dist[cur, dst]
            cur = min(
                int(v) for v in net.neighbors(cur) if dist[v, dst] == remaining - 1
            )
            path.append(cur)
        return tuple(path)
