"""Oblivious routing algorithms on the hypercube.

E-cube routing [15-17 setting] fixes differing address bits in
ascending dimension order — the hypercube's dimension-order routing.
Its worst-case throughput is notoriously poor (the
:math:`\\Omega(\\sqrt{N})` congestion lower bound for deterministic
oblivious routing); Valiant's two-phase randomization repairs it, just
as on the torus.
"""

from __future__ import annotations

from repro.routing.base import ObliviousRouting
from repro.routing.paths import Path
from repro.topology.hypercube import Hypercube


class ECube(ObliviousRouting):
    """Deterministic ascending-dimension bit-fixing routing."""

    translation_invariant = True

    def __init__(self, cube: Hypercube, name: str = "ECUBE") -> None:
        super().__init__(cube, name)

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        nodes = [src]
        cur = src
        diff = src ^ dst
        dim = 0
        while diff:
            if diff & 1:
                cur ^= 1 << dim
                nodes.append(cur)
            diff >>= 1
            dim += 1
        return [(tuple(nodes), 1.0)]


class HypercubeValiant(ObliviousRouting):
    """Two-phase Valiant routing on the hypercube: e-cube to a uniform
    random intermediate, then e-cube to the destination."""

    translation_invariant = True

    def __init__(self, cube: Hypercube, name: str = "VAL") -> None:
        super().__init__(cube, name)
        self._ecube = ECube(cube)

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        n = self.network.num_nodes
        acc: dict[Path, float] = {}
        for mid in range(n):
            (p1, _), = self._ecube.path_distribution(src, mid)
            (p2, _), = self._ecube.path_distribution(mid, dst)
            path = p1 + p2[1:]
            acc[path] = acc.get(path, 0.0) + 1.0 / n
        return list(acc.items())
