"""Centralized numerical tolerances (the `repro.core` constants).

Every ``1e-6``/``1e-9``-style threshold used to live inline at its call
site, which let the value checked by the code silently drift away from
the value asserted by the tests.  This module is the single source of
truth; it is deliberately import-free so any layer (``routing``,
``sim``, ``traffic``, ``deadlock``, ``verify``) can use it without
cycles, and it is re-exported from :mod:`repro.core` for the
design-layer callers.

Three regimes, ordered loose to tight:

* ``DISTRIBUTION_ATOL`` (1e-6) — checks on *accumulated* floating-point
  sums (path-probability totals, doubly-stochastic row/column sums of
  simulator inputs) where thousands of additions stack rounding error.
* ``FEASIBILITY_ATOL`` (1e-9) — per-constraint feasibility of exact
  constructions and LP solutions: flow conservation residuals,
  nonnegativity, path-recovery pruning.
* ``SOLVER_DUST`` (1e-12) — magnitudes treated as exact zero: the
  ~1e-12 dust LP vertex solutions carry on inactive variables.

Certification thresholds:

* ``DUALITY_GAP_TOL`` (1e-7) — maximum relative primal/dual objective
  gap (and scaled KKT residual) for an LP solution to be certified
  optimal (see :mod:`repro.verify.certificates`).
* ``LEXICOGRAPHIC_SLACK`` (1e-7) — relative slack when freezing a
  stage-1 optimum for a lexicographic stage-2 solve; loose enough for
  solver tolerances, far below any metric of interest.
* ``GOLDEN_RTOL`` (1e-6) — relative tolerance of the golden-data
  regression comparator (:func:`repro.verify.harness.compare_golden`).
"""

from __future__ import annotations

#: Tolerance on accumulated sums: probability totals, row/column sums.
DISTRIBUTION_ATOL = 1e-6

#: Per-constraint feasibility tolerance: conservation, nonnegativity.
FEASIBILITY_ATOL = 1e-9

#: Below this magnitude a value is solver dust and treated as zero.
SOLVER_DUST = 1e-12

#: Maximum relative duality gap / KKT residual for LP certification.
DUALITY_GAP_TOL = 1e-7

#: Relative slack when pinning a stage-1 LP optimum in stage 2.
LEXICOGRAPHIC_SLACK = 1e-7

#: Relative tolerance of golden-data regression comparisons.
GOLDEN_RTOL = 1e-6

#: Column generation (lazy worst-case rows, ``method="colgen"``):
#: a separated permutation row is "violated" when its Hungarian load
#: exceeds the master bound ``w`` by more than this, relative to
#: ``max(1, w)``.  Tighter than ``FEASIBILITY_ATOL`` because the master
#: is solved with simplex (vertex-exact) and the oracle is exact, so
#: convergence lands at rounding noise — and the differential suite
#: demands ``<= 1e-9`` agreement of the resulting throughput with the
#: full LP.
COLGEN_VIOLATION_TOL = 1e-10

#: Separation tolerance of the *general-topology* lazy worst-case LP
#: (:func:`repro.core.general.design_general_worst_case` with
#: ``method="colgen"``).  Its masters carry per-channel matching-dual
#: blocks and are solved with interior point (dual simplex is an order
#: of magnitude slower on the CN^2-variable models), whose iterates are
#: feasible only to ~1e-9 relative — a threshold below that would
#: re-flag already-covered channels forever.  Still within the 1e-9
#: agreement the differential suite demands.
COLGEN_GENERAL_VIOLATION_TOL = 1e-9

#: Residual constraint violation tolerated on *covered* channels when a
#: lexicographic stage 2 pins ``w`` against its slack cap.  With the
#: worst-case bound at its upper bound and the objective pulling on
#: locality, HiGHS (simplex and IPM alike) leaves primal residuals at
#: its ~1e-7 feasibility tolerance on the binding blocks; these are not
#: missing constraints — the blocks are in the master — so the stage-2
#: loop accepts them and returns the *exact* oracle-measured load.  The
#: duality certificate widens its lexicographic gap allowance by the
#: same amount (:func:`repro.verify.colgen.certify_colgen_design`).
COLGEN_STAGE2_DUST = 1e-6

#: ``method="auto"`` switches the worst-case design from the full
#: matching-dual LP to column generation at this node count.  100 nodes
#: is radix 10 on the 2-D torus: everything the paper evaluates (k <= 8,
#: 4-ary 3-cubes) keeps the full formulation — and its cache keys —
#: while the k >= 12 scaling sweeps get the lazy-row master.
COLGEN_AUTO_NODE_THRESHOLD = 100

#: Hard iteration cap of the column-generation loop; hitting it raises
#: (the partial design rides on the exception for diagnosis).  Each
#: iteration adds at most one row per direction class, and in practice
#: even k=16 converges in a few dozen iterations.
COLGEN_MAX_ITERATIONS = 400

#: Default simulation kernel for every sim entry point — the library
#: functions (``simulate``, ``latency_load_curve``,
#: ``saturation_throughput``), the simulator experiments and the CLI all
#: defer to this one constant so their defaults cannot drift apart.
#: The vectorized kernel reproduces the reference loop's packet counts
#: exactly (see ``tests/sim/test_differential.py``), so this choice is
#: about speed, never results.
DEFAULT_SIM_BACKEND = "vectorized"
