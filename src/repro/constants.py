"""Centralized numerical tolerances (the `repro.core` constants).

Every ``1e-6``/``1e-9``-style threshold used to live inline at its call
site, which let the value checked by the code silently drift away from
the value asserted by the tests.  This module is the single source of
truth; it is deliberately import-free so any layer (``routing``,
``sim``, ``traffic``, ``deadlock``, ``verify``) can use it without
cycles, and it is re-exported from :mod:`repro.core` for the
design-layer callers.

Three regimes, ordered loose to tight:

* ``DISTRIBUTION_ATOL`` (1e-6) — checks on *accumulated* floating-point
  sums (path-probability totals, doubly-stochastic row/column sums of
  simulator inputs) where thousands of additions stack rounding error.
* ``FEASIBILITY_ATOL`` (1e-9) — per-constraint feasibility of exact
  constructions and LP solutions: flow conservation residuals,
  nonnegativity, path-recovery pruning.
* ``SOLVER_DUST`` (1e-12) — magnitudes treated as exact zero: the
  ~1e-12 dust LP vertex solutions carry on inactive variables.

Certification thresholds:

* ``DUALITY_GAP_TOL`` (1e-7) — maximum relative primal/dual objective
  gap (and scaled KKT residual) for an LP solution to be certified
  optimal (see :mod:`repro.verify.certificates`).
* ``LEXICOGRAPHIC_SLACK`` (1e-7) — relative slack when freezing a
  stage-1 optimum for a lexicographic stage-2 solve; loose enough for
  solver tolerances, far below any metric of interest.
* ``GOLDEN_RTOL`` (1e-6) — relative tolerance of the golden-data
  regression comparator (:func:`repro.verify.harness.compare_golden`).
"""

from __future__ import annotations

#: Tolerance on accumulated sums: probability totals, row/column sums.
DISTRIBUTION_ATOL = 1e-6

#: Per-constraint feasibility tolerance: conservation, nonnegativity.
FEASIBILITY_ATOL = 1e-9

#: Below this magnitude a value is solver dust and treated as zero.
SOLVER_DUST = 1e-12

#: Maximum relative duality gap / KKT residual for LP certification.
DUALITY_GAP_TOL = 1e-7

#: Relative slack when pinning a stage-1 LP optimum in stage 2.
LEXICOGRAPHIC_SLACK = 1e-7

#: Relative tolerance of golden-data regression comparisons.
GOLDEN_RTOL = 1e-6

#: Default simulation kernel for every sim entry point — the library
#: functions (``simulate``, ``latency_load_curve``,
#: ``saturation_throughput``), the simulator experiments and the CLI all
#: defer to this one constant so their defaults cannot drift apart.
#: The vectorized kernel reproduces the reference loop's packet counts
#: exactly (see ``tests/sim/test_differential.py``), so this choice is
#: about speed, never results.
DEFAULT_SIM_BACKEND = "vectorized"
