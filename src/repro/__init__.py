"""repro — Throughput-centric oblivious routing algorithm design.

A from-scratch reproduction of Towles, Dally & Boyd, *"Throughput-
Centric Routing Algorithm Design"*, SPAA 2003: oblivious routing
algorithms as multicommodity flows, worst-case and average-case
throughput as linear programs, and the torus algorithms DOR / VAL /
IVAL / ROMM / RLB / RLBth / 2TURN / 2TURNA with their tradeoff curves.

Quickstart::

    from repro import Torus, IVAL, worst_case_load, solve_capacity

    torus = Torus(8, 2)
    ival = IVAL(torus)
    wc = worst_case_load(ival)
    cap = solve_capacity(torus)
    print(ival.normalized_path_length())      # ~1.61x minimal
    print(cap.load / wc.load)                 # 0.5 of capacity

See ``repro.experiments`` / the ``repro-experiments`` CLI for full
figure reproductions, and DESIGN.md for the system map.
"""

from repro.topology import (
    CayleyTopology,
    Hypercube,
    Mesh,
    Network,
    Torus,
    TranslationGroup,
)
from repro.traffic import (
    birkhoff_sample,
    named_patterns,
    sample_traffic_set,
    sinkhorn_sample,
    tornado,
    transpose,
    uniform,
)
from repro.routing import (
    DimensionOrderRouting,
    ECube,
    HypercubeValiant,
    Interpolated,
    IVAL,
    ObliviousRouting,
    RLB,
    RLBth,
    ROMM,
    TableRouting,
    VAL,
    design_2turn,
    design_2turn_average,
    standard_algorithms,
)
from repro.metrics import (
    AlgorithmMetrics,
    average_case_load,
    evaluate_algorithm,
    uniform_load,
    worst_case_load,
)
from repro.core import (
    design_average_case,
    design_worst_case,
    routing_from_flows,
    solve_capacity,
    worst_case_tradeoff,
    average_case_tradeoff,
)
from repro.deadlock import turn_increment_scheme, verify_deadlock_freedom
from repro.faults import (
    FaultSet,
    adversarial_faults,
    degrade,
    degrade_routing,
    random_faults,
)
from repro.sim import (
    SimulationConfig,
    WormholeConfig,
    saturation_throughput,
    simulate,
    simulate_adaptive,
    simulate_wormhole,
)

__version__ = "1.0.0"

__all__ = [
    "CayleyTopology",
    "Hypercube",
    "ECube",
    "HypercubeValiant",
    "WormholeConfig",
    "simulate_adaptive",
    "simulate_wormhole",
    "Mesh",
    "Network",
    "Torus",
    "TranslationGroup",
    "birkhoff_sample",
    "named_patterns",
    "sample_traffic_set",
    "sinkhorn_sample",
    "tornado",
    "transpose",
    "uniform",
    "DimensionOrderRouting",
    "Interpolated",
    "IVAL",
    "ObliviousRouting",
    "RLB",
    "RLBth",
    "ROMM",
    "TableRouting",
    "VAL",
    "design_2turn",
    "design_2turn_average",
    "standard_algorithms",
    "AlgorithmMetrics",
    "average_case_load",
    "evaluate_algorithm",
    "uniform_load",
    "worst_case_load",
    "design_average_case",
    "design_worst_case",
    "routing_from_flows",
    "solve_capacity",
    "worst_case_tradeoff",
    "average_case_tradeoff",
    "turn_increment_scheme",
    "verify_deadlock_freedom",
    "FaultSet",
    "adversarial_faults",
    "degrade",
    "degrade_routing",
    "random_faults",
    "SimulationConfig",
    "saturation_throughput",
    "simulate",
    "__version__",
]
