"""Invariant checkers for routing algorithms, flows and traffic.

Each checker returns a :class:`CheckResult` instead of raising, so the
CLI and the harness can run a full battery and report every violation at
once; :class:`VerificationReport` bundles a battery.  Checkers measure
the *largest* violation they find — a passing check reports how much
headroom remains below tolerance, which the golden-data tests track to
catch slow numerical drift.

All checkers run under ``verify.*`` observability spans; the per-check
maximum violation is recorded as a span attribute so ``obs-report``
surfaces certification cost and slack alongside solve times.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.constants import DISTRIBUTION_ATOL, FEASIBILITY_ATOL, SOLVER_DUST
from repro.deadlock import turn_increment_scheme, verify_deadlock_freedom
from repro.metrics.channel_load import canonical_channel_loads
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus
from repro.traffic.patterns import uniform


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant check.

    ``violation`` is the largest violation magnitude observed (0.0 for a
    structurally impossible violation); ``tol`` is the threshold it was
    compared against, so reports can show remaining headroom.
    """

    name: str
    passed: bool
    violation: float
    tol: float
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        text = f"{self.name:28s} {status:4s} max violation {self.violation:.3e}"
        if self.detail:
            text += f"  ({self.detail})"
        return text


@dataclasses.dataclass(frozen=True)
class VerificationReport:
    """A battery of checks over one subject (algorithm, flows, design)."""

    subject: str
    checks: tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        lines = [f"{self.subject}: {'PASS' if self.passed else 'FAIL'}"]
        lines += [f"  {c}" for c in self.checks]
        return "\n".join(lines)


def _result(name: str, violation: float, tol: float, detail: str = "") -> CheckResult:
    violation = float(violation)
    return CheckResult(
        name=name,
        passed=bool(violation <= tol),
        violation=violation,
        tol=float(tol),
        detail=detail,
    )


# ----------------------------------------------------------------------
# Flow-table invariants
# ----------------------------------------------------------------------
def check_nonnegative_flows(
    flows: np.ndarray, tol: float = FEASIBILITY_ATOL
) -> CheckResult:
    """Flows are expected channel-crossing counts: none may be negative
    beyond solver dust."""
    with obs.span("verify.nonnegative_flows") as sp:
        flows = np.asarray(flows, dtype=np.float64)
        violation = float(max(0.0, -flows.min(initial=0.0)))
        sp.set(violation=violation)
    return _result("nonnegative_flows", violation, tol)


def check_flow_conservation(
    torus: Torus, flows: np.ndarray, tol: float = FEASIBILITY_ATOL
) -> CheckResult:
    """Canonical flows conserve: for commodity ``(0, t)`` at node ``v``,
    (flow out) - (flow in) must equal ``[v == 0] - [v == t]`` (eq. 1 via
    the Section 4 flow reformulation).
    """
    with obs.span("verify.flow_conservation") as sp:
        flows = np.asarray(flows, dtype=np.float64)
        n, c = torus.num_nodes, torus.num_channels
        if flows.shape != (n, c):
            return CheckResult(
                name="flow_conservation",
                passed=False,
                violation=float("inf"),
                tol=float(tol),
                detail=f"shape {flows.shape} != {(n, c)}",
            )
        # node-channel incidence: +1 at (src, c), -1 at (dst, c)
        incidence = np.zeros((n, c))
        incidence[torus.channel_src, np.arange(c)] += 1.0
        incidence[torus.channel_dst, np.arange(c)] -= 1.0
        balance = flows @ incidence.T  # (t, v) net outflow
        expected = np.zeros((n, n))
        dests = np.arange(1, n)
        expected[dests, 0] = 1.0
        expected[dests, dests] = -1.0
        residual = np.abs(balance - expected)
        violation = float(residual.max())
        t_bad, v_bad = np.unravel_index(int(residual.argmax()), residual.shape)
        sp.set(violation=violation)
    return _result(
        "flow_conservation",
        violation,
        tol,
        detail=f"worst at commodity (0, {t_bad}), node {v_bad}",
    )


def check_channel_load_symmetry(
    torus: Torus,
    group: TranslationGroup,
    flows: np.ndarray,
    tol: float = FEASIBILITY_ATOL,
    algorithm=None,
) -> CheckResult:
    """Under uniform traffic, a translation-invariant algorithm loads
    every channel of a direction class identically (the edge-symmetry
    argument of Section 4).

    The uniform-traffic loads are recomputed *without* the symmetry
    shortcut — by direct path enumeration over all ``(s, d)`` pairs when
    ``algorithm`` is given, else by expanding the canonical table one
    commodity at a time — and compared against
    :func:`~repro.metrics.channel_load.canonical_channel_loads` plus the
    within-class spread.  A broken translation table, or an algorithm
    whose actual distribution is not translation-invariant, fails here
    even though every per-pair distribution is individually valid.
    """
    from repro.routing.paths import path_channels

    with obs.span("verify.channel_load_symmetry") as sp:
        flows = np.asarray(flows, dtype=np.float64)
        n = torus.num_nodes
        canonical = canonical_channel_loads(group, flows, uniform(n))
        direct = np.zeros(torus.num_channels)
        if algorithm is not None:
            for s in range(n):
                for d in range(n):
                    for path, prob in algorithm.path_distribution(s, d):
                        for c in path_channels(torus, path):
                            direct[c] += prob / n
        else:
            for s in range(n):
                for d in range(n):
                    direct += group.commodity_flow(flows, s, d) / n
        violation = float(np.abs(direct - canonical).max())
        for cls in range(torus.num_classes):
            members = direct[torus.class_members(cls)]
            violation = max(violation, float(members.max() - members.min()))
        sp.set(violation=violation)
    return _result("channel_load_symmetry", violation, tol)


def verify_flows(
    torus: Torus,
    flows: np.ndarray,
    subject: str = "flows",
    tol: float = FEASIBILITY_ATOL,
) -> VerificationReport:
    """The full flow-table battery (used on cached design entries)."""
    group = TranslationGroup(torus)
    return VerificationReport(
        subject=subject,
        checks=(
            check_nonnegative_flows(flows, tol),
            check_flow_conservation(torus, flows, tol),
            check_channel_load_symmetry(torus, group, flows, tol),
        ),
    )


# ----------------------------------------------------------------------
# Distribution / traffic invariants
# ----------------------------------------------------------------------
def check_distribution(
    algorithm,
    pairs=None,
    tol: float = FEASIBILITY_ATOL,
) -> CheckResult:
    """Path probabilities are nonnegative, sum to one, and every path is
    a valid channel-simple route (eq. 1) — the checks of
    :meth:`repro.routing.base.ObliviousRouting.validate`, reported
    rather than raised."""
    with obs.span("verify.distribution", algorithm=algorithm.name) as sp:
        try:
            algorithm.validate(pairs=pairs, tol=tol)
        except (ValueError, TypeError) as exc:
            sp.set(error=type(exc).__name__)
            return CheckResult(
                name="distribution",
                passed=False,
                violation=float("inf"),
                tol=float(tol),
                detail=str(exc),
            )
    return _result("distribution", 0.0, tol)


def check_doubly_stochastic(
    mat: np.ndarray, tol: float = DISTRIBUTION_ATOL
) -> CheckResult:
    """Row sums, column sums and nonnegativity of a traffic matrix
    (the doubly-stochastic admissibility condition of Section 2.3)."""
    with obs.span("verify.doubly_stochastic") as sp:
        mat = np.asarray(mat, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            return CheckResult(
                name="doubly_stochastic",
                passed=False,
                violation=float("inf"),
                tol=float(tol),
                detail=f"not square: {mat.shape}",
            )
        violation = max(
            float(max(0.0, -mat.min(initial=0.0))),
            float(np.abs(mat.sum(axis=0) - 1.0).max()),
            float(np.abs(mat.sum(axis=1) - 1.0).max()),
        )
        sp.set(violation=violation)
    return _result("doubly_stochastic", violation, tol)


def check_permutation_matrix(mat: np.ndarray, tol: float = SOLVER_DUST) -> CheckResult:
    """A sampled permutation matrix must be exactly 0/1 with one unit
    per row and column."""
    with obs.span("verify.permutation_matrix") as sp:
        mat = np.asarray(mat, dtype=np.float64)
        violation = float(np.abs(mat * (1.0 - mat)).max())  # entries in {0, 1}
        violation = max(
            violation,
            float(np.abs(mat.sum(axis=0) - 1.0).max()),
            float(np.abs(mat.sum(axis=1) - 1.0).max()),
        )
        sp.set(violation=violation)
    return _result("permutation_matrix", violation, tol)


# ----------------------------------------------------------------------
# Deadlock spot check
# ----------------------------------------------------------------------
def check_deadlock_freedom(algorithm, scheme=None) -> CheckResult:
    """Static deadlock-freedom of the algorithm's full path support
    under a VC scheme (default: the paper's 2TURN turn-increment scheme,
    which also covers DOR and IVAL — Section 5.2)."""
    scheme = scheme if scheme is not None else turn_increment_scheme
    with obs.span("verify.deadlock", algorithm=algorithm.name) as sp:
        try:
            report = verify_deadlock_freedom(algorithm, scheme)
        except (TypeError, ValueError) as exc:
            sp.set(error=type(exc).__name__)
            return CheckResult(
                name="deadlock_freedom",
                passed=False,
                violation=float("inf"),
                tol=0.0,
                detail=str(exc),
            )
        sp.set(deadlock_free=report.deadlock_free, num_vcs=report.num_vcs)
    return CheckResult(
        name="deadlock_freedom",
        passed=report.deadlock_free,
        violation=0.0 if report.deadlock_free else float("inf"),
        tol=0.0,
        detail=(
            f"{report.num_vcs} VCs, {report.num_dependencies} dependencies"
            + ("" if report.deadlock_free else f", cycle {report.cycle}")
        ),
    )


# ----------------------------------------------------------------------
# Algorithm-level battery
# ----------------------------------------------------------------------
def verify_algorithm(
    algorithm,
    tol: float = FEASIBILITY_ATOL,
    deadlock: bool = True,
    scheme=None,
) -> VerificationReport:
    """Run every applicable invariant checker on a routing algorithm.

    Translation-invariant torus algorithms get the flow-table battery
    and (optionally) the deadlock spot check on top of the distribution
    check; general algorithms get the distribution check alone.
    """
    with obs.span("verify.algorithm", algorithm=algorithm.name):
        checks = [check_distribution(algorithm, tol=tol)]
        net = algorithm.network
        if algorithm.translation_invariant and isinstance(net, Torus):
            flows = algorithm.canonical_flows
            group = TranslationGroup(net)
            checks += [
                check_nonnegative_flows(flows, tol),
                check_flow_conservation(net, flows, tol),
                check_channel_load_symmetry(
                    net, group, flows, tol, algorithm=algorithm
                ),
            ]
            if deadlock:
                checks.append(check_deadlock_freedom(algorithm, scheme))
    return VerificationReport(subject=algorithm.name, checks=tuple(checks))
