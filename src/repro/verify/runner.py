"""Batch verification entry points behind ``repro-experiments verify``.

Three verification targets, mirroring the CLI's flags:

* :func:`verify_algorithms` — certify named algorithms on a ``k``-ary
  2-cube: invariant battery, deadlock spot checks (where the paper's VC
  scheme applies), brute-force differential worst case, and — for the
  LP-designed 2TURN — duality certificates for every solve;
* :func:`verify_cache` — re-certify every entry of a design cache
  without re-solving (see
  :func:`repro.verify.certificates.recheck_cached_doc`);
* :func:`verify_design_file` — verify one serialized design document
  (a flows/routing JSON from :mod:`repro.routing.serialize`, or a raw
  cache entry).

All return :class:`~repro.verify.invariants.VerificationReport` lists
that the CLI renders and folds into an exit code.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.constants import DUALITY_GAP_TOL
from repro.verify.certificates import collect_certificates, recheck_cached_doc
from repro.verify.harness import differential_worst_case_check
from repro.verify.invariants import (
    CheckResult,
    VerificationReport,
    check_distribution,
    verify_algorithm,
)

#: Default battery: the paper's baselines plus the LP-designed 2TURN.
DEFAULT_ALGORITHMS = ("DOR", "VAL", "IVAL", "2TURN")

#: Algorithms whose full path sets the turn-increment VC scheme covers
#: (Section 5.2); the others use more turns than the scheme's 4 VCs.
_DEADLOCK_COVERED = frozenset({"DOR", "IVAL", "2TURN"})

#: Brute-force oracle ceiling (Held-Karp subset DP, N = k^2 <= 20).
_DIFFERENTIAL_MAX_NODES = 20


def _certificate_checks(collector) -> list[CheckResult]:
    checks = []
    for i, cert in enumerate(collector.certificates):
        checks.append(
            CheckResult(
                name=f"certificate[{i}]:{cert.model}",
                passed=cert.valid,
                violation=max(
                    cert.recomputed_gap, cert.primal_residual, cert.dual_residual
                ),
                tol=cert.tol,
                detail=f"obj {cert.objective:.9g}, gap {cert.recomputed_gap:.2e}",
            )
        )
    return checks


def _build_algorithm(name: str, torus, group, tol: float):
    """Instantiate one algorithm; returns ``(algorithm, extra_checks)``."""
    from repro.routing.registry import standard_algorithms
    from repro.routing.twoturn import design_2turn
    from repro.routing.valiant import IVAL

    if name == "IVAL":
        return IVAL(torus), []
    if name == "2TURN":
        with collect_certificates(tol) as collector:
            design = design_2turn(torus, group)
        return design.routing, _certificate_checks(collector)
    standard = standard_algorithms(torus)
    if name in standard:
        return standard[name], []
    raise ValueError(
        f"unknown algorithm {name!r}; choose from "
        f"{sorted(set(standard) | {'IVAL', '2TURN'})}"
    )


def verify_algorithms(
    k: int = 4,
    names=None,
    tol: float = DUALITY_GAP_TOL,
    differential: bool = True,
) -> list[VerificationReport]:
    """Certify each named algorithm on the ``k``-ary 2-cube."""
    from repro.topology.symmetry import TranslationGroup
    from repro.topology.torus import Torus

    torus = Torus(int(k), 2)
    group = TranslationGroup(torus)
    names = tuple(names) if names else DEFAULT_ALGORITHMS
    reports = []
    with obs.span("verify.algorithms", k=int(k), count=len(names)):
        for name in names:
            algorithm, extra = _build_algorithm(name, torus, group, tol)
            report = verify_algorithm(
                algorithm, deadlock=name in _DEADLOCK_COVERED
            )
            checks = list(report.checks) + extra
            if differential and torus.num_nodes <= _DIFFERENTIAL_MAX_NODES:
                checks.append(differential_worst_case_check(algorithm))
            reports.append(
                VerificationReport(subject=name, checks=tuple(checks))
            )
    return reports


def verify_cache(
    cache_dir=None, tol: float = DUALITY_GAP_TOL
) -> list[VerificationReport]:
    """Re-certify every entry of a design cache without re-solving.

    Unreadable entries count as failures, not skips: a cache that cannot
    be verified must not be trusted.
    """
    from repro.cache import DesignCache

    cache = DesignCache(cache_dir)
    reports = []
    with obs.span("verify.cache", root=str(cache.root)) as sp:
        paths = sorted(cache.root.glob("*.json")) if cache.root.is_dir() else []
        for path in paths:
            subject = path.stem[:16]
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                reports.append(
                    VerificationReport(
                        subject=subject,
                        checks=(
                            CheckResult(
                                name="entry_readable",
                                passed=False,
                                violation=float("inf"),
                                tol=0.0,
                                detail=f"{type(exc).__name__}: {exc}",
                            ),
                        ),
                    )
                )
                continue
            reports.append(recheck_cached_doc(doc, tol=tol, subject=subject))
        sp.set(entries=len(paths), failed=sum(1 for r in reports if not r.passed))
    return reports


def verify_design_file(path, tol: float = DUALITY_GAP_TOL) -> VerificationReport:
    """Verify a serialized design document from disk.

    Accepts the three shapes the repo produces: an engine cache entry
    (``payload`` key), a canonical-flows document (``flows`` key) or a
    routing-table document (``table`` key).
    """
    from repro.routing.serialize import flows_from_doc, routing_from_doc
    from repro.topology.torus import Torus
    from repro.verify.invariants import verify_flows

    path = Path(path)
    subject = path.name
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return VerificationReport(
            subject=subject,
            checks=(
                CheckResult(
                    name="file_readable",
                    passed=False,
                    violation=float("inf"),
                    tol=0.0,
                    detail=f"{type(exc).__name__}: {exc}",
                ),
            ),
        )
    if "payload" in doc:
        return recheck_cached_doc(doc, tol=tol, subject=subject)
    try:
        if "flows" in doc:
            topo = doc["topology"]
            torus = Torus(int(topo["k"]), int(topo["n"]))
            return verify_flows(torus, flows_from_doc(doc), subject=subject)
        if "table" in doc:
            algorithm = routing_from_doc(doc)
            checks = [check_distribution(algorithm)]
            if algorithm.network.num_nodes <= _DIFFERENTIAL_MAX_NODES:
                checks.append(differential_worst_case_check(algorithm))
            return VerificationReport(subject=subject, checks=tuple(checks))
    except (KeyError, TypeError, ValueError) as exc:
        return VerificationReport(
            subject=subject,
            checks=(
                CheckResult(
                    name="design_payload",
                    passed=False,
                    violation=float("inf"),
                    tol=0.0,
                    detail=f"{type(exc).__name__}: {exc}",
                ),
            ),
        )
    return VerificationReport(
        subject=subject,
        checks=(
            CheckResult(
                name="design_payload",
                passed=False,
                violation=float("inf"),
                tol=0.0,
                detail="unrecognized document shape "
                "(expected payload/flows/table)",
            ),
        ),
    )
