"""LP optimality certificates: independently checkable duality proofs.

A solver's "optimal" status is a claim, not a proof.  The pair
``(x, y)`` of a primal solution and its dual multipliers *is* a proof:
if ``x`` is primal feasible, ``y`` is dual feasible, and the two
objectives coincide, then ``x`` is optimal — no trust in the solver's
internals required (weak duality does all the work).  This module turns
every :meth:`repro.lp.model.LinearModel.solve` into such a certificate
via the solve-observer hook, so the LP layer never imports the verifier.

SciPy/HiGHS convention (``scipy.optimize.linprog``): for

.. math:: \\min c^T x \\;\\text{s.t.}\\; A_{ub} x \\le b_{ub},\\;
          A_{eq} x = b_{eq},\\; l \\le x \\le u

the reported marginals are :math:`\\partial f / \\partial b`, so the
inequality duals ``y_ub`` are **nonpositive** and the dual objective is

.. math:: b_{eq}^T y_{eq} + b_{ub}^T y_{ub}
          + \\sum_{l_j \\text{ finite}} l_j [z_j]_+
          - \\sum_{u_j \\text{ finite}} u_j [z_j]_-

with reduced costs :math:`z = c - A_{eq}^T y_{eq} - A_{ub}^T y_{ub}`;
dual feasibility demands :math:`[z_j]_+ = 0` when ``l_j = -inf`` and
:math:`[z_j]_- = 0` when ``u_j = +inf``.

Certificates are small JSON documents persisted alongside design-cache
entries (see the engine's ``certify`` flag), so a cached design can be
re-certified later — :func:`recheck_cached_doc` — without re-solving.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math

import numpy as np

from repro import obs
from repro.constants import DISTRIBUTION_ATOL, DUALITY_GAP_TOL
from repro.lp.model import set_solve_observer
from repro.verify.invariants import CheckResult, VerificationReport, verify_flows

#: Bump when the certificate document format changes.
CERTIFICATE_FORMAT = 1


class CertificationError(RuntimeError):
    """A solution failed certification (or a certificate is malformed)."""


@dataclasses.dataclass(frozen=True)
class Certificate:
    """An optimality certificate for one LP solve.

    All residuals are maximum absolute violations; ``duality_gap`` is
    relative to ``max(1, |objective|)``.  :attr:`valid` re-derives the
    gap from the stored objectives instead of trusting the stored gap,
    so tampering with any one field breaks the certificate.
    """

    model: str
    variables: int
    rows: int
    objective: float
    dual_objective: float
    duality_gap: float
    primal_residual: float
    dual_residual: float
    complementarity: float
    tol: float = DUALITY_GAP_TOL

    @property
    def recomputed_gap(self) -> float:
        """Relative duality gap re-derived from the two objectives."""
        return abs(self.objective - self.dual_objective) / max(
            1.0, abs(self.objective)
        )

    @property
    def valid(self) -> bool:
        gap = max(self.duality_gap, self.recomputed_gap)
        return (
            math.isfinite(self.objective)
            and gap <= self.tol
            and self.primal_residual <= self.tol
            and self.dual_residual <= self.tol
        )

    def summary(self) -> str:
        status = "certified" if self.valid else "REFUTED"
        return (
            f"{self.model}: {status} obj={self.objective:.9g} "
            f"gap={self.recomputed_gap:.2e} "
            f"primal_res={self.primal_residual:.2e} "
            f"dual_res={self.dual_residual:.2e} (tol {self.tol:.1e})"
        )

    def require(self, context: str = "") -> Certificate:
        """Raise :class:`CertificationError` unless the certificate holds."""
        if not self.valid:
            prefix = f"{context}: " if context else ""
            raise CertificationError(prefix + self.summary())
        return self

    def to_doc(self) -> dict:
        doc = dataclasses.asdict(self)
        doc["format"] = CERTIFICATE_FORMAT
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> Certificate:
        if doc.get("format") != CERTIFICATE_FORMAT:
            raise CertificationError(
                f"unsupported certificate format: {doc.get('format')!r}"
            )
        try:
            return cls(
                model=str(doc["model"]),
                variables=int(doc["variables"]),
                rows=int(doc["rows"]),
                objective=float(doc["objective"]),
                dual_objective=float(doc["dual_objective"]),
                duality_gap=float(doc["duality_gap"]),
                primal_residual=float(doc["primal_residual"]),
                dual_residual=float(doc["dual_residual"]),
                complementarity=float(doc["complementarity"]),
                tol=float(doc["tol"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CertificationError(f"malformed certificate: {exc}") from exc


def certify_solution(
    model, solution, assembled, tol: float = DUALITY_GAP_TOL
) -> Certificate:
    """Build the optimality certificate for one solved model.

    ``assembled`` is the ``(c, a_ub, b_ub, a_eq, b_eq, bounds)`` tuple
    the solver consumed — exactly what the solve observer receives.
    Every quantity is recomputed from the raw data, never read back from
    solver-reported aggregates.
    """
    c, a_ub, b_ub, a_eq, b_eq, bounds = assembled
    stats = model.stats()
    with obs.span("verify.certificate", model=model.name) as sp:
        x = np.asarray(solution.x, dtype=np.float64)
        lb = np.asarray(bounds[:, 0], dtype=np.float64)
        ub = np.asarray(bounds[:, 1], dtype=np.float64)
        lb_fin = np.isfinite(lb)
        ub_fin = np.isfinite(ub)
        primal_obj = float(np.dot(c, x))

        # --- primal feasibility -------------------------------------
        primal_res = max(
            float((lb - x)[lb_fin].max(initial=0.0)),
            float((x - ub)[ub_fin].max(initial=0.0)),
        )
        if a_eq is not None:
            primal_res = max(
                primal_res, float(np.abs(a_eq @ x - b_eq).max(initial=0.0))
            )
        if a_ub is not None:
            primal_res = max(
                primal_res, float((a_ub @ x - b_ub).max(initial=0.0))
            )

        # --- dual feasibility + dual objective ----------------------
        z = np.asarray(c, dtype=np.float64).copy()  # reduced costs
        dual_obj = 0.0
        dual_res = 0.0
        if a_eq is not None and solution.eq_duals is not None:
            y_eq = np.asarray(solution.eq_duals, dtype=np.float64)
            z -= a_eq.T @ y_eq
            dual_obj += float(np.dot(b_eq, y_eq))
        if a_ub is not None and solution.ub_duals is not None:
            y_ub = np.asarray(solution.ub_duals, dtype=np.float64)
            z -= a_ub.T @ y_ub
            dual_obj += float(np.dot(b_ub, y_ub))
            dual_res = float(y_ub.max(initial=0.0))  # must be <= 0
        z_plus = np.maximum(z, 0.0)
        z_minus = np.maximum(-z, 0.0)
        # a positive reduced cost needs a finite lower bound to lean on
        # (and symmetrically for negative / upper); otherwise the dual
        # is infeasible in that coordinate.
        dual_res = max(dual_res, float(z_plus[~lb_fin].max(initial=0.0)))
        dual_res = max(dual_res, float(z_minus[~ub_fin].max(initial=0.0)))
        dual_obj += float(np.dot(lb[lb_fin], z_plus[lb_fin]))
        dual_obj -= float(np.dot(ub[ub_fin], z_minus[ub_fin]))

        # --- complementary slackness (informational: implied by a
        # zero gap, recorded so drift shows up in reports) ------------
        comp = max(
            float(np.abs(z_plus[lb_fin] * (x - lb)[lb_fin]).max(initial=0.0)),
            float(np.abs(z_minus[ub_fin] * (ub - x)[ub_fin]).max(initial=0.0)),
        )
        if a_ub is not None and solution.ub_duals is not None:
            comp = max(
                comp, float(np.abs(y_ub * (b_ub - a_ub @ x)).max(initial=0.0))
            )

        gap = abs(primal_obj - dual_obj) / max(1.0, abs(primal_obj))
        cert = Certificate(
            model=model.name,
            variables=int(stats["variables"]),
            rows=int(stats["eq_rows"]) + int(stats["ub_rows"]),
            objective=primal_obj,
            dual_objective=dual_obj,
            duality_gap=gap,
            primal_residual=primal_res,
            dual_residual=dual_res,
            complementarity=comp,
            tol=float(tol),
        )
        sp.set(
            valid=cert.valid,
            gap=gap,
            primal_residual=primal_res,
            dual_residual=dual_res,
        )
    return cert


class CertificateCollector:
    """Accumulates certificates for every solve inside a
    :func:`collect_certificates` block."""

    def __init__(self, tol: float) -> None:
        self.tol = float(tol)
        self.certificates: list[Certificate] = []

    @property
    def all_valid(self) -> bool:
        return all(c.valid for c in self.certificates)

    def failures(self) -> list[Certificate]:
        return [c for c in self.certificates if not c.valid]

    def to_docs(self) -> list[dict]:
        return [c.to_doc() for c in self.certificates]

    def require(self, context: str = "") -> None:
        for cert in self.certificates:
            cert.require(context)


@contextlib.contextmanager
def collect_certificates(tol: float = DUALITY_GAP_TOL, strict: bool = False):
    """Certify every LP solved inside the ``with`` block.

    Installs the LP solve observer for the duration of the block and
    yields a :class:`CertificateCollector`.  With ``strict=True`` a
    failing solve raises :class:`CertificationError` immediately (from
    inside ``solve()``); otherwise inspect ``collector.certificates``
    afterwards.  A previously installed observer keeps firing (after
    collection), so blocks nest.
    """
    collector = CertificateCollector(tol)
    previous = None

    def hook(model, solution, assembled):
        cert = certify_solution(model, solution, assembled, tol=tol)
        collector.certificates.append(cert)
        if strict:
            cert.require(f"model {model.name!r}")
        if previous is not None:
            previous(model, solution, assembled)

    previous = set_solve_observer(hook)
    try:
        yield collector
    finally:
        set_solve_observer(previous)


# ----------------------------------------------------------------------
# Re-certification of cached design documents
# ----------------------------------------------------------------------
def _load_recheck(stored_load: float, measured_load: float, tol: float) -> CheckResult:
    """Compare a stored headline load against an independent
    re-measurement (Hungarian-method worst case on the stored design)."""
    rel = abs(measured_load - stored_load) / max(1.0, abs(stored_load))
    return CheckResult(
        name="load_recheck",
        passed=bool(rel <= tol),
        violation=float(rel),
        tol=float(tol),
        detail=f"stored {stored_load:.9g}, re-measured {measured_load:.9g}",
    )


def recheck_cached_doc(
    doc: dict,
    tol: float = DUALITY_GAP_TOL,
    subject: str = "cache entry",
) -> VerificationReport:
    """Re-certify a cached design document without re-solving its LP.

    Three independent lines of evidence, by design kind:

    1. every persisted certificate must still be internally consistent
       (gap re-derived from its objectives, residuals within its tol);
    2. stored flow tables must satisfy the flow invariants
       (nonnegativity, conservation, channel-load symmetry); stored
       routing tables must be valid path distributions;
    3. the stored headline load must match an independent worst-case
       re-measurement of the stored design (skipped for average-case
       kinds, whose design sample is cached only as a digest);
    4. column-generation designs (``doc["method"] == "colgen"``)
       additionally re-derive their duality certificate against the
       full constraint set
       (:func:`repro.verify.colgen.certify_colgen_design`) — such
       entries never solved the full LP, so the oracle/sampled/gap
       battery is what stands in for its constraints.

    Any corruption of the cached JSON — flows, table, load or
    certificate — fails at least one check.
    """
    from repro.metrics.worst_case_eval import worst_case_load
    from repro.routing.serialize import flows_from_doc, routing_from_doc
    from repro.topology.symmetry import TranslationGroup
    from repro.topology.torus import Torus
    from repro.verify.invariants import check_distribution

    payload = doc.get("payload") or {}
    kind = str(payload.get("kind", "?"))
    load_tol = max(float(tol), DISTRIBUTION_ATOL)
    checks: list[CheckResult] = []
    with obs.span("verify.recheck", kind=kind) as sp:
        for i, cert_doc in enumerate(doc.get("certificates") or []):
            try:
                cert = Certificate.from_doc(cert_doc)
            except CertificationError as exc:
                checks.append(
                    CheckResult(
                        name=f"certificate[{i}]",
                        passed=False,
                        violation=float("inf"),
                        tol=float(tol),
                        detail=str(exc),
                    )
                )
                continue
            checks.append(
                CheckResult(
                    name=f"certificate[{i}]:{cert.model}",
                    passed=cert.valid,
                    violation=max(
                        cert.recomputed_gap,
                        cert.primal_residual,
                        cert.dual_residual,
                    ),
                    tol=cert.tol,
                    detail=f"obj {cert.objective:.9g}",
                )
            )

        try:
            if "flows" in doc:
                flows = flows_from_doc(doc["flows"])
                topo = doc["flows"]["topology"]
                bandwidths = tuple(
                    float(b) for b in topo.get("bandwidths", ())
                )
                torus = Torus(
                    int(topo["k"]), int(topo["n"]),
                    bandwidths=bandwidths or None,
                )
                checks.extend(verify_flows(torus, flows, subject=kind).checks)
                if kind in ("wc_point", "wc_opt"):
                    group = TranslationGroup(torus)
                    measured = worst_case_load(flows, torus, group).load
                    checks.append(
                        _load_recheck(float(doc["load"]), measured, load_tol)
                    )
                    if doc.get("method") == "colgen":
                        from repro.verify.colgen import certify_colgen_design

                        stats = doc.get("colgen") or {}
                        checks.extend(
                            certify_colgen_design(
                                torus,
                                flows,
                                bound=float(doc["load"]),
                                lower_bound=stats.get("lower_bound"),
                                group=group,
                                lexicographic=int(
                                    stats.get("stage2_iterations", 0)
                                )
                                > 0,
                            ).checks
                        )
                else:
                    checks.append(
                        CheckResult(
                            name="load_recheck",
                            passed=True,
                            violation=0.0,
                            tol=load_tol,
                            detail="skipped: design sample cached as digest only",
                        )
                    )
            elif "routing" in doc:
                algorithm = routing_from_doc(doc["routing"])
                checks.append(check_distribution(algorithm))
                if kind == "twoturn":
                    measured = worst_case_load(algorithm).load
                    checks.append(
                        _load_recheck(float(doc["load"]), measured, load_tol)
                    )
                else:
                    checks.append(
                        CheckResult(
                            name="load_recheck",
                            passed=True,
                            violation=0.0,
                            tol=load_tol,
                            detail="skipped: design sample cached as digest only",
                        )
                    )
            else:
                checks.append(
                    CheckResult(
                        name="design_payload",
                        passed=False,
                        violation=float("inf"),
                        tol=0.0,
                        detail="entry stores neither flows nor routing",
                    )
                )
        except (KeyError, TypeError, ValueError) as exc:
            checks.append(
                CheckResult(
                    name="design_payload",
                    passed=False,
                    violation=float("inf"),
                    tol=0.0,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
        report = VerificationReport(subject=subject, checks=tuple(checks))
        sp.set(passed=report.passed, checks=len(checks))
    return report
