"""Correctness certification subsystem (machine-checked invariants).

Every headline number of the reproduction rests on invariants the paper
states but a solver status code alone does not guarantee: routing
distributions must conserve flow, sampled traffic must be
doubly-stochastic, and "LP optimal" must mean a feasible primal matched
by a feasible dual with zero gap.  This package re-checks all of it
*after* the fact, from three layers:

* :mod:`repro.verify.invariants` — structural checkers for routing
  algorithms, flow tables and traffic matrices (flow conservation,
  nonnegativity, distribution sums, channel-load symmetry on the torus,
  deadlock-freedom spot checks);
* :mod:`repro.verify.certificates` — independently checkable LP
  optimality certificates (primal/dual feasibility + duality gap)
  extracted from every :meth:`repro.lp.model.LinearModel.solve` via the
  solve observer, persisted alongside design-cache entries;
* :mod:`repro.verify.harness` — the differential/property harness:
  brute-force worst-case oracles cross-checking
  :mod:`repro.metrics.worst_case_eval`, and the tolerance-aware
  golden-data comparator behind ``results/golden/``.

The CLI front end is ``repro-experiments verify`` (see
:mod:`repro.verify.runner`); the experiment engine grew a ``--certify``
flag that runs certificate checks on every solved design and re-checks
cached designs without re-solving.
"""

from repro.verify.certificates import (
    Certificate,
    CertificationError,
    certify_solution,
    collect_certificates,
    recheck_cached_doc,
)
from repro.verify.colgen import (
    certify_colgen_design,
    certify_colgen_general,
)
from repro.verify.harness import (
    brute_force_assignment,
    brute_force_general_worst_case,
    brute_force_periodic_worst_case,
    brute_force_worst_case,
    compare_golden,
    differential_worst_case_check,
    load_golden,
    write_golden,
)
from repro.verify.invariants import (
    CheckResult,
    VerificationReport,
    check_channel_load_symmetry,
    check_deadlock_freedom,
    check_distribution,
    check_doubly_stochastic,
    check_flow_conservation,
    check_nonnegative_flows,
    check_permutation_matrix,
    verify_algorithm,
    verify_flows,
)
from repro.verify.runner import (
    verify_algorithms,
    verify_cache,
    verify_design_file,
)

__all__ = [
    "Certificate",
    "CertificationError",
    "certify_solution",
    "collect_certificates",
    "recheck_cached_doc",
    "certify_colgen_design",
    "certify_colgen_general",
    "brute_force_assignment",
    "brute_force_general_worst_case",
    "brute_force_periodic_worst_case",
    "brute_force_worst_case",
    "compare_golden",
    "differential_worst_case_check",
    "load_golden",
    "write_golden",
    "CheckResult",
    "VerificationReport",
    "check_channel_load_symmetry",
    "check_deadlock_freedom",
    "check_distribution",
    "check_doubly_stochastic",
    "check_flow_conservation",
    "check_nonnegative_flows",
    "check_permutation_matrix",
    "verify_algorithm",
    "verify_flows",
    "verify_algorithms",
    "verify_cache",
    "verify_design_file",
]
