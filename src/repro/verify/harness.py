"""Differential oracles and golden-data comparison.

:func:`repro.metrics.worst_case_eval.worst_case_load` reduces worst-case
throughput to one Hungarian assignment per channel class.  This module
provides *independent* oracles for the same quantity — exhaustive
permutation enumeration for tiny instances and a Held–Karp subset DP for
medium ones — sharing no code with the Hungarian path, so a bug in
either side shows up as a disagreement.  Sizes: full enumeration covers
:math:`N \\le 9` (``k=3`` 2-D tori), the :math:`O(2^N N^2)` DP covers
:math:`N \\le 20` (``k=4`` 2-D tori), and an integral Birkhoff-polytope
LP (solved by HiGHS, independent of ``linear_sum_assignment``) covers
:math:`N \\le 64` — reaching the 3-D instances (3-ary and 4-ary
3-cubes) of the heterogeneous-bandwidth sweep.

The golden-data layer (:func:`write_golden` / :func:`load_golden` /
:func:`compare_golden`) persists headline metrics under
``results/golden/`` and diffs them with a relative tolerance, so
regression tests flag drift without chasing last-digit float noise.
"""

from __future__ import annotations

import functools
import itertools
import json
from pathlib import Path

import numpy as np

from repro import obs
from repro.constants import FEASIBILITY_ATOL, GOLDEN_RTOL
from repro.metrics.worst_case_eval import WorstCaseResult, _channel_weight_matrix
from repro.topology.cayley import CayleyTopology
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus
from repro.verify.invariants import CheckResult

#: Largest N for full permutation enumeration (9! = 362,880 rows).
_ENUMERATION_LIMIT = 9

#: Largest N for the Held–Karp subset DP (2^20 masks).
_SUBSET_DP_LIMIT = 20

#: Largest N for the Birkhoff-polytope LP oracle (N^2 variables).
_LP_LIMIT = 64


@functools.lru_cache(maxsize=2)
def _permutation_table(n: int) -> np.ndarray:
    """All permutations of ``range(n)`` as an ``(n!, n)`` array.

    Building the table dominates a single enumeration (9! tuples of
    Python ints); oracles sweep one enumeration per channel, so the
    table is cached across calls.
    """
    return np.array(list(itertools.permutations(range(n))), dtype=np.int64)


def _assignment_by_enumeration(weights: np.ndarray) -> tuple[float, np.ndarray]:
    """Max-weight assignment by checking every permutation (N <= 9)."""
    n = weights.shape[0]
    perms = _permutation_table(n)
    values = weights[np.arange(n), perms].sum(axis=1)
    best = int(values.argmax())
    return float(values[best]), perms[best].copy()


def _assignment_by_subset_dp(weights: np.ndarray) -> tuple[float, np.ndarray]:
    """Max-weight assignment by Held–Karp DP over column subsets.

    ``dp[mask]`` is the best value of assigning rows ``0..r-1`` (with
    ``r = popcount(mask)``) to exactly the column set ``mask``; layers
    are processed by popcount so each transition is a vectorized sweep
    over all masks of one cardinality.
    """
    n = weights.shape[0]
    size = 1 << n
    masks = np.arange(size, dtype=np.int64)
    pop = np.zeros(size, dtype=np.int8)
    shifted = masks.copy()
    for _ in range(n):
        pop += (shifted & 1).astype(np.int8)
        shifted >>= 1
    by_count = [masks[pop == r] for r in range(n + 1)]

    dp = np.full(size, -np.inf)
    dp[0] = 0.0
    choice = np.zeros(size, dtype=np.int8)
    for r in range(1, n + 1):
        layer = by_count[r]
        row = r - 1
        best = np.full(layer.shape, -np.inf)
        best_col = np.zeros(layer.shape, dtype=np.int8)
        for j in range(n):
            bit = 1 << j
            has = (layer & bit) != 0
            cand = np.full(layer.shape, -np.inf)
            cand[has] = dp[layer[has] ^ bit] + weights[row, j]
            improved = cand > best
            best = np.where(improved, cand, best)
            best_col = np.where(improved, j, best_col).astype(np.int8)
        dp[layer] = best
        choice[layer] = best_col

    perm = np.empty(n, dtype=np.int64)
    mask = size - 1
    for row in range(n - 1, -1, -1):
        j = int(choice[mask])
        perm[row] = j
        mask ^= 1 << j
    return float(dp[size - 1]), perm


def _assignment_by_lp(weights: np.ndarray) -> tuple[float, np.ndarray]:
    """Max-weight assignment via the Birkhoff-polytope LP (N <= 64).

    The doubly-stochastic relaxation is integral (Birkhoff–von Neumann:
    every vertex is a permutation matrix), and the dual-simplex solver
    returns a vertex optimum, so the LP solution *is* an optimal
    assignment.  Shares no code with the Hungarian path — it goes
    through ``scipy.optimize.linprog`` (HiGHS), not
    ``linear_sum_assignment`` — which keeps it a valid differential
    oracle for 3-D instances (``N = 27`` / ``64``) the subset DP cannot
    reach.
    """
    from scipy.optimize import linprog
    from scipy.sparse import coo_matrix

    n = weights.shape[0]
    idx = np.arange(n * n)
    row_ind = np.concatenate([idx // n, n + idx % n])
    col_ind = np.concatenate([idx, idx])
    a_eq = coo_matrix(
        (np.ones(2 * n * n), (row_ind, col_ind)), shape=(2 * n, n * n)
    )
    res = linprog(
        -weights.ravel(),
        A_eq=a_eq,
        b_eq=np.ones(2 * n),
        bounds=(0.0, 1.0),
        method="highs-ds",
    )
    if not res.success:
        raise RuntimeError(f"assignment LP failed: {res.message}")
    x = res.x.reshape(n, n)
    if np.abs(x * (1.0 - x)).max() > 1e-6:
        raise RuntimeError("assignment LP returned a fractional vertex")
    perm = x.argmax(axis=1)
    if len(set(perm.tolist())) != n:
        raise RuntimeError("assignment LP rounding is not a permutation")
    return float(weights[np.arange(n), perm].sum()), perm.astype(np.int64)


def brute_force_assignment(weights: np.ndarray) -> tuple[float, np.ndarray]:
    """Exact max-weight assignment without the Hungarian method.

    Returns ``(value, perm)`` with ``perm[row] = col``.  Dispatches to
    full enumeration (:math:`N \\le 9`), the subset DP
    (:math:`N \\le 20`), or the integral Birkhoff LP
    (:math:`N \\le 64`); larger instances raise ``ValueError``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise ValueError(f"weight matrix must be square, got {weights.shape}")
    n = weights.shape[0]
    if n <= _ENUMERATION_LIMIT:
        return _assignment_by_enumeration(weights)
    if n <= _SUBSET_DP_LIMIT:
        return _assignment_by_subset_dp(weights)
    if n <= _LP_LIMIT:
        return _assignment_by_lp(weights)
    raise ValueError(
        f"brute-force assignment supports N <= {_LP_LIMIT}, got {n}"
    )


def brute_force_worst_case(
    algorithm_or_flows,
    torus: Torus | None = None,
    group: TranslationGroup | None = None,
) -> WorstCaseResult:
    """Worst-case load by brute force — the differential oracle.

    Mirrors :func:`repro.metrics.worst_case_eval.worst_case_load`
    (same channel-class weight matrices) but maximizes over adversarial
    permutations by enumeration / subset DP / Birkhoff LP instead of
    the Hungarian method.
    """
    if torus is None:
        alg = algorithm_or_flows
        torus = alg.network
        if not isinstance(torus, CayleyTopology):
            raise TypeError(
                "brute_force_worst_case requires a Cayley-topology algorithm"
            )
        group = TranslationGroup(torus)
        flows = alg.canonical_flows
    else:
        flows = np.asarray(algorithm_or_flows, dtype=np.float64)
        if group is None:
            group = TranslationGroup(torus)

    with obs.span("verify.brute_force", nodes=torus.num_nodes) as sp:
        best: WorstCaseResult | None = None
        for channel in torus.class_representatives():
            weights = _channel_weight_matrix(torus, group, flows, int(channel))
            value, perm = brute_force_assignment(weights)
            load = value / float(torus.bandwidth[channel])
            if best is None or load > best.load:
                best = WorstCaseResult(
                    load=load, channel=int(channel), permutation=perm
                )
        assert best is not None
        sp.set(load=best.load)
    return best


def brute_force_general_worst_case(network, full_flows) -> WorstCaseResult:
    """General-topology worst case by brute force.

    The permutation-enumeration oracle for
    :func:`repro.metrics.general_worst_case_load`: one brute-force
    assignment per *channel* over the full ``(N, N, C)`` flow tensor —
    no symmetry assumptions, so it also covers degraded (faulted)
    networks, where translation invariance is broken.
    """
    full_flows = np.asarray(full_flows, dtype=np.float64)
    with obs.span(
        "verify.brute_force_general",
        nodes=int(network.num_nodes),
        channels=int(network.num_channels),
    ) as sp:
        best: WorstCaseResult | None = None
        for channel in range(network.num_channels):
            value, perm = brute_force_assignment(full_flows[:, :, channel])
            load = value / float(network.bandwidth[channel])
            if best is None or load > best.load:
                best = WorstCaseResult(
                    load=load, channel=int(channel), permutation=perm
                )
        assert best is not None
        sp.set(load=best.load)
    return best


def brute_force_periodic_worst_case(schedule, full_flows):
    """Periodic (rotor) worst case by brute force.

    The oracle for
    :func:`repro.rotor.periodic_eval.periodic_worst_case_load`: one
    brute-force assignment per *(phase, active channel)* pair, each
    divided by the duty-cycled bandwidth ``a_c * b_c``, then averaged
    over phases with the schedule's uniform weights.  Shares only the
    flow tensor with the Hungarian evaluator.
    """
    from repro.rotor.periodic_eval import PeriodicWorstCaseResult

    full_flows = np.asarray(full_flows, dtype=np.float64)
    base = schedule.base
    duty = schedule.active_fraction()
    with obs.span(
        "verify.brute_force_periodic",
        phases=int(schedule.num_phases),
        nodes=int(base.num_nodes),
        channels=int(base.num_channels),
    ) as sp:
        phase_results = []
        for f in range(schedule.num_phases):
            best: WorstCaseResult | None = None
            for channel in schedule.phases[f]:
                value, perm = brute_force_assignment(
                    full_flows[:, :, channel]
                )
                load = value / float(duty[channel] * base.bandwidth[channel])
                if best is None or load > best.load:
                    best = WorstCaseResult(
                        load=load, channel=int(channel), permutation=perm
                    )
            assert best is not None
            phase_results.append(best)
        weights = tuple([1.0 / schedule.num_phases] * schedule.num_phases)
        gamma_bar = float(
            sum(w * r.load for w, r in zip(weights, phase_results))
        )
        sp.set(load=gamma_bar)
    return PeriodicWorstCaseResult(
        load=gamma_bar,
        phase_results=tuple(phase_results),
        weights=weights,
    )


def differential_worst_case_check(
    algorithm, tol: float = FEASIBILITY_ATOL
) -> CheckResult:
    """Cross-check the Hungarian worst case against the brute force.

    Both sides maximize the same per-class weight matrices exactly, so
    they must agree to summation-order noise; any larger gap means one
    of the two implementations is wrong.
    """
    from repro.metrics.worst_case_eval import worst_case_load

    with obs.span("verify.differential", algorithm=algorithm.name) as sp:
        hungarian = worst_case_load(algorithm)
        brute = brute_force_worst_case(algorithm)
        rel = abs(hungarian.load - brute.load) / max(1.0, abs(brute.load))
        sp.set(hungarian=hungarian.load, brute=brute.load)
    return CheckResult(
        name="differential_worst_case",
        passed=bool(rel <= tol),
        violation=float(rel),
        tol=float(tol),
        detail=(
            f"hungarian {hungarian.load:.9g} vs brute-force {brute.load:.9g}"
        ),
    )


# ----------------------------------------------------------------------
# Golden data
# ----------------------------------------------------------------------
def write_golden(path: str | Path, doc: dict) -> None:
    """Persist a golden-data document (sorted keys, stable layout)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")


def load_golden(path: str | Path) -> dict:
    """Load a golden-data document."""
    return json.loads(Path(path).read_text())


def compare_golden(
    golden, actual, rtol: float = GOLDEN_RTOL, _prefix: str = ""
) -> list[str]:
    """Tolerance-aware structural diff of two golden-data documents.

    Returns human-readable difference lines (empty when equivalent).
    Numbers compare with relative tolerance ``rtol`` (against
    ``max(1, |golden|)``); containers compare recursively; everything
    else compares exactly.
    """
    where = _prefix or "<root>"
    if isinstance(golden, dict) and isinstance(actual, dict):
        diffs = []
        for key in sorted(set(golden) | set(actual)):
            sub = f"{_prefix}.{key}" if _prefix else str(key)
            if key not in actual:
                diffs.append(f"{sub}: missing (golden has {golden[key]!r})")
            elif key not in golden:
                diffs.append(f"{sub}: unexpected key (actual has {actual[key]!r})")
            else:
                diffs.extend(
                    compare_golden(golden[key], actual[key], rtol, _prefix=sub)
                )
        return diffs
    if isinstance(golden, (list, tuple)) and isinstance(actual, (list, tuple)):
        if len(golden) != len(actual):
            return [f"{where}: length {len(actual)} != golden {len(golden)}"]
        diffs = []
        for i, (g, a) in enumerate(zip(golden, actual)):
            diffs.extend(compare_golden(g, a, rtol, _prefix=f"{where}[{i}]"))
        return diffs
    g_num = isinstance(golden, (int, float)) and not isinstance(golden, bool)
    a_num = isinstance(actual, (int, float)) and not isinstance(actual, bool)
    if g_num and a_num:
        err = abs(float(actual) - float(golden)) / max(1.0, abs(float(golden)))
        if err > rtol:
            return [
                f"{where}: {actual!r} != golden {golden!r} "
                f"(relative error {err:.3e} > {rtol:.1e})"
            ]
        return []
    if golden != actual:
        return [f"{where}: {actual!r} != golden {golden!r}"]
    return []
