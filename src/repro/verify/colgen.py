"""Certification of column-generation worst-case designs.

A ``method="colgen"`` design never materializes the full worst-case
constraint set, so its optimality claim rests on the separation oracle:
the restricted master's optimum ``w`` is a *lower* bound on the full
LP's optimum (the master is a relaxation), while the returned flows'
exact worst-case load is an achieved *upper* bound — at convergence the
two coincide up to the separation tolerance, which is a duality
certificate against the full LP without ever building it.

This module re-derives that certificate from the artifacts alone (flow
table, claimed bound, master lower bound), independently of the
column-generation loop:

* ``colgen_oracle`` — the exact separation oracle (one Hungarian
  assignment per channel class, :mod:`repro.metrics.worst_case_eval`)
  re-measures the flows' worst case; it must equal the claimed bound.
* ``colgen_duality_gap`` — claimed bound versus the master's lower
  bound; a gap means the loop stopped before convergence (or a
  generated row went missing).
* ``colgen_sampled`` — random permutations from the *full* constraint
  set, evaluated by plain indexing (no matching solver at all); none
  may load any channel beyond the bound.
* ``colgen_exhaustive`` — on small instances, the brute-force oracle of
  :mod:`repro.verify.harness` (permutation enumeration / subset DP,
  sharing no code with the Hungarian path) must agree with the bound.

Every check is reported as a :class:`repro.verify.invariants.CheckResult`
with a relative violation, so a battery renders uniformly alongside the
flow-table invariants.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.constants import (
    COLGEN_GENERAL_VIOLATION_TOL,
    COLGEN_STAGE2_DUST,
    COLGEN_VIOLATION_TOL,
    LEXICOGRAPHIC_SLACK,
)
from repro.metrics.worst_case_eval import (
    _channel_weight_matrix,
    separate_general_worst_case,
    separate_worst_case,
)
from repro.topology.network import Network
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus
from repro.verify.invariants import CheckResult, VerificationReport, _result

#: Largest node count the exhaustive check runs at by default — the
#: subset-DP ceiling of :func:`repro.verify.harness.brute_force_assignment`
#: (``k=4`` 2-D tori); beyond it the check reports itself skipped.
EXHAUSTIVE_NODE_LIMIT = 20

#: Default number of random full-constraint-set permutations spot-checked.
CERTIFY_SAMPLES = 64


def _relative(delta: float, bound: float) -> float:
    return abs(float(delta)) / max(1.0, abs(float(bound)))


def _oracle_check(measured: float, bound: float, tol: float) -> CheckResult:
    return _result(
        "colgen_oracle",
        _relative(measured - bound, bound),
        tol,
        detail=f"exact worst case {measured:.12g} vs claimed {bound:.12g}",
    )


def _duality_gap_check(
    bound: float, lower_bound: float | None, tol: float, lexicographic: bool
) -> CheckResult:
    if lower_bound is None:
        return CheckResult(
            name="colgen_duality_gap",
            passed=False,
            violation=float("inf"),
            tol=float(tol),
            detail="no master lower bound recorded",
        )
    # A lexicographic stage 2 is *allowed* to trade the worst case up by
    # LEXICOGRAPHIC_SLACK (the stage-1 optimum is pinned only to that
    # relative cap) plus the solver's residual on the blocks binding at
    # the cap (COLGEN_STAGE2_DUST), so the certified gap widens by
    # exactly that much — still three orders below any mutation.
    gap_tol = tol + (
        LEXICOGRAPHIC_SLACK + COLGEN_STAGE2_DUST if lexicographic else 0.0
    )
    return _result(
        "colgen_duality_gap",
        _relative(bound - lower_bound, bound),
        gap_tol,
        detail=f"master lower bound {lower_bound:.12g}"
        + (" (lexicographic slack included)" if lexicographic else ""),
    )


def _sampled_check(
    sampled_max: float, bound: float, tol: float, samples: int
) -> CheckResult:
    # One-sided: a sampled permutation *below* the bound is headroom,
    # not a violation (the worst case is over all permutations).
    return _result(
        "colgen_sampled",
        _relative(max(0.0, sampled_max - bound), bound),
        tol,
        detail=f"{samples} random permutations, max load {sampled_max:.12g}",
    )


def _exhaustive_skipped(num_nodes: int, limit: int) -> CheckResult:
    return _result(
        "colgen_exhaustive",
        0.0,
        0.0,
        detail=f"skipped (N={num_nodes} > {limit})",
    )


def certify_colgen_design(
    torus: Torus,
    flows: np.ndarray,
    bound: float,
    lower_bound: float | None = None,
    group: TranslationGroup | None = None,
    tol: float | None = None,
    samples: int = CERTIFY_SAMPLES,
    seed: int = 0,
    exhaustive_limit: int = EXHAUSTIVE_NODE_LIMIT,
    lexicographic: bool = False,
    subject: str = "colgen-design",
) -> VerificationReport:
    """Certify a symmetric (torus) column-generation design.

    ``flows`` is the canonical ``(N, C)`` table, ``bound`` the claimed
    worst-case load and ``lower_bound`` the restricted master's final
    optimum (:attr:`repro.core.worst_case.ColGenStats.lower_bound`).
    ``tol`` defaults to :data:`repro.constants.COLGEN_VIOLATION_TOL`,
    the loop's own convergence tolerance.  Pass ``lexicographic=True``
    for designs whose stage 2 minimized locality under a slack-relaxed
    worst-case cap (``ColGenStats.stage2_iterations > 0``): their gap
    check widens by :data:`repro.constants.LEXICOGRAPHIC_SLACK`.
    """
    tol = COLGEN_VIOLATION_TOL if tol is None else float(tol)
    bound = float(bound)
    flows = np.asarray(flows, dtype=np.float64)
    if group is None:
        group = TranslationGroup(torus)
    n = torus.num_nodes
    with obs.span("verify.colgen", nodes=int(n), general=False) as sp:
        sep = separate_worst_case(torus, group, flows, np.inf, tol)
        checks = [
            _oracle_check(float(sep.max_load), bound, tol),
            _duality_gap_check(bound, lower_bound, tol, lexicographic),
        ]

        rng = np.random.default_rng(seed)
        perms = np.array([rng.permutation(n) for _ in range(samples)])
        sampled_max = -np.inf
        rows = np.arange(n)
        for channel in torus.class_representatives():
            weights = _channel_weight_matrix(torus, group, flows, int(channel))
            loads = weights[rows, perms].sum(axis=1)
            sampled_max = max(
                sampled_max, float(loads.max() / torus.bandwidth[channel])
            )
        checks.append(_sampled_check(sampled_max, bound, tol, samples))

        if n <= exhaustive_limit:
            from repro.verify.harness import brute_force_worst_case

            brute = brute_force_worst_case(flows, torus, group)
            checks.append(
                _result(
                    "colgen_exhaustive",
                    _relative(brute.load - bound, bound),
                    tol,
                    detail=f"brute-force worst case {brute.load:.12g}",
                )
            )
        else:
            checks.append(_exhaustive_skipped(n, exhaustive_limit))
        report = VerificationReport(subject=subject, checks=tuple(checks))
        sp.set(passed=report.passed)
    obs.metric_count("verify.colgen_certificates")
    return report


def certify_colgen_general(
    network: Network,
    flows: np.ndarray,
    bound: float,
    lower_bound: float | None = None,
    tol: float | None = None,
    samples: int = CERTIFY_SAMPLES,
    seed: int = 0,
    exhaustive_limit: int = EXHAUSTIVE_NODE_LIMIT,
    lexicographic: bool = False,
    subject: str = "colgen-general",
) -> VerificationReport:
    """Certify a general-topology column-generation design.

    Same battery as :func:`certify_colgen_design` over a full
    ``(N, N, C)`` flow tensor — one oracle assignment per *channel*, no
    symmetry assumptions.  ``tol`` defaults to
    :data:`repro.constants.COLGEN_GENERAL_VIOLATION_TOL` (the general
    loop's interior-point-compatible convergence tolerance).
    """
    tol = COLGEN_GENERAL_VIOLATION_TOL if tol is None else float(tol)
    bound = float(bound)
    flows = np.asarray(flows, dtype=np.float64)
    n = network.num_nodes
    with obs.span("verify.colgen", nodes=int(n), general=True) as sp:
        sep = separate_general_worst_case(network, flows, np.inf, tol)
        checks = [
            _oracle_check(float(sep.max_load), bound, tol),
            _duality_gap_check(bound, lower_bound, tol, lexicographic),
        ]

        rng = np.random.default_rng(seed)
        rows = np.arange(n)
        sampled_max = -np.inf
        for _ in range(samples):
            perm = rng.permutation(n)
            loads = flows[rows, perm, :].sum(axis=0) / network.bandwidth
            sampled_max = max(sampled_max, float(loads.max()))
        checks.append(_sampled_check(sampled_max, bound, tol, samples))

        if n <= exhaustive_limit:
            from repro.verify.harness import brute_force_general_worst_case

            brute = brute_force_general_worst_case(network, flows)
            checks.append(
                _result(
                    "colgen_exhaustive",
                    _relative(brute.load - bound, bound),
                    tol,
                    detail=f"brute-force worst case {brute.load:.12g}",
                )
            )
        else:
            checks.append(_exhaustive_skipped(n, exhaustive_limit))
        report = VerificationReport(subject=subject, checks=tuple(checks))
        sp.set(passed=report.passed)
    obs.metric_count("verify.colgen_certificates")
    return report
