"""Time-varying (rotor) topologies: periodic schedules, oblivious
schemes, and the phase-averaged worst-case evaluator (ROADMAP item 2).
"""

from repro.rotor.certify import certify_periodic_worst_case
from repro.rotor.periodic_eval import (
    PeriodicWorstCaseResult,
    periodic_worst_case_load,
)
from repro.rotor.schedule import RotorSchedule, complete_network
from repro.rotor.schemes import ORNRouting, VLBOnRotor

__all__ = [
    "ORNRouting",
    "PeriodicWorstCaseResult",
    "RotorSchedule",
    "VLBOnRotor",
    "certify_periodic_worst_case",
    "complete_network",
    "periodic_worst_case_load",
]
