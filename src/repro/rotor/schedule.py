"""Periodic rotor schedules: time-varying topologies as phase cycles.

A rotor network (ROADMAP item 2, "Optimal Oblivious Reconfigurable
Networks") cycles through a fixed periodic sequence of *phases*, each
enabling a subset of the channels of an underlying base network — rotor
switches stepping through matchings.  :class:`RotorSchedule` is that
model: per-phase channel sets over a base :class:`Network`, each phase
materializable as an ordinary (degraded) network so every static tool —
the assignment-dual evaluator, the verify invariants, both simulator
backends — runs on it unchanged.

The simulators consume a schedule through :meth:`RotorSchedule.link_events`,
which compiles the phase cycle into the ``(cycle, channel, action)``
``link_schedule`` triples of :class:`~repro.sim.network_sim.SimulationConfig`.
A downed channel keeps its queue and keeps accepting enqueues (service
budget zero) — rotor semantics are lossless buffering, unlike the fault
model's destructive kills.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from repro.faults.model import DegradedNetwork, FaultSet
from repro.topology.network import Network


def complete_network(n: int, name: str | None = None) -> Network:
    """Complete digraph on ``n`` nodes — the base graph of a full rotor
    switch (every matching in the round-robin emulation is a subset of
    its channels)."""
    if n < 2:
        raise ValueError("complete_network needs at least 2 nodes")
    specs = [(s, d) for s in range(n) for d in range(n) if s != d]
    return Network(n, specs, name=name or f"K{n}")


@dataclasses.dataclass(frozen=True, eq=False)
class RotorSchedule:
    """A periodic schedule of channel subsets over a base network.

    ``phases[f]`` names the base-network channels active during phase
    ``f``; each phase lasts ``phase_length`` cycles and the sequence
    repeats with period ``num_phases * phase_length``.  ``start``
    offsets the phase counter — cycle 0 runs phase
    ``(start // phase_length) % num_phases`` — which is how the
    period-shift invariance property is stated (shifting ``start`` by a
    whole period is the identity).
    """

    base: Network
    phases: tuple[tuple[int, ...], ...]
    phase_length: int = 1
    start: int = 0

    def __post_init__(self):
        norm = tuple(
            tuple(sorted({int(c) for c in phase})) for phase in self.phases
        )
        object.__setattr__(self, "phases", norm)
        object.__setattr__(self, "phase_length", int(self.phase_length))
        object.__setattr__(self, "start", int(self.start))
        if not self.phases:
            raise ValueError("a RotorSchedule needs at least one phase")
        if self.phase_length < 1:
            raise ValueError("phase_length must be at least 1 cycle")
        if self.start < 0:
            raise ValueError("start offset must be nonnegative")
        seen: set[int] = set()
        for f, phase in enumerate(self.phases):
            if not phase:
                raise ValueError(f"phase {f} enables no channels")
            if phase[0] < 0 or phase[-1] >= self.base.num_channels:
                raise ValueError(
                    f"phase {f} names channels outside "
                    f"[0, {self.base.num_channels})"
                )
            seen.update(phase)
        idle = set(range(self.base.num_channels)) - seen
        if idle:
            raise ValueError(
                f"channels {sorted(idle)} are active in no phase; drop "
                "them from the base network instead"
            )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def period(self) -> int:
        """Cycles per full rotation."""
        return self.num_phases * self.phase_length

    def phase_at(self, cycle: int) -> int:
        """Index of the phase running during ``cycle``."""
        return ((self.start + int(cycle)) // self.phase_length) % self.num_phases

    def active_fraction(self) -> np.ndarray:
        """``a[c]``: fraction of the period channel ``c`` is up — the
        duty cycle that discounts its bandwidth in the periodic dual."""
        a = np.zeros(self.base.num_channels)
        for phase in self.phases:
            a[list(phase)] += 1.0
        return a / self.num_phases

    def phase_network(self, phase: int) -> DegradedNetwork:
        """Phase ``phase`` as an ordinary network (inactive channels
        masked).  Lazily cached — phases recur across evaluator and
        certificate passes."""
        cache = self.__dict__.get("_phase_networks")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_phase_networks", cache)
        if phase not in cache:
            active = set(self.phases[phase])
            inactive = tuple(
                c for c in range(self.base.num_channels) if c not in active
            )
            cache[phase] = DegradedNetwork(
                self.base, FaultSet(channels=inactive)
            )
        return cache[phase]

    def digest(self) -> str:
        """Canonical content hash — extends engine cache keys the same
        way :meth:`FaultSet.digest` does for degraded designs."""
        blob = json.dumps(
            {
                "nodes": self.base.num_nodes,
                "channels": [
                    [int(self.base.channel_src[c]), int(self.base.channel_dst[c])]
                    for c in range(self.base.num_channels)
                ],
                "phases": [list(p) for p in self.phases],
                "phase_length": self.phase_length,
                "start": self.start % self.period,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Simulator bridge
    # ------------------------------------------------------------------
    def link_events(self, cycles: int) -> tuple[tuple[int, int, str], ...]:
        """Compile the phase cycle into ``link_schedule`` triples.

        Channels inactive in the initial phase go down at cycle 0; each
        later phase boundary before ``cycles`` diffs consecutive active
        sets into up/down events.  Events are emitted strictly before
        ``cycles`` so the result always passes schedule validation.
        """
        if cycles < 1:
            raise ValueError("cycles must be positive")
        events: list[tuple[int, int, str]] = []
        current = set(self.phases[self.phase_at(0)])
        for c in range(self.base.num_channels):
            if c not in current:
                events.append((0, c, "down"))
        boundary = self.phase_length - (self.start % self.phase_length)
        while boundary < cycles:
            incoming = set(self.phases[self.phase_at(boundary)])
            for c in sorted(current - incoming):
                events.append((boundary, c, "down"))
            for c in sorted(incoming - current):
                events.append((boundary, c, "up"))
            current = incoming
            boundary += self.phase_length
        return tuple(events)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def static(cls, network: Network) -> "RotorSchedule":
        """The degenerate single-phase schedule: all channels always up.
        Periodic evaluation on it reduces exactly to the static dual."""
        return cls(
            base=network,
            phases=(tuple(range(network.num_channels)),),
        )

    @classmethod
    def round_robin(
        cls, n: int, phases: int, phase_length: int = 1
    ) -> "RotorSchedule":
        """Round-robin rotor emulation of the complete digraph on ``n``
        nodes: phase ``f`` enables the channels whose destination offset
        ``o = (dst - src) mod n`` satisfies ``(o - 1) % phases == f``,
        so every offset (and hence every channel) recurs once per
        rotation.  Requires ``phases <= n - 1`` distinct offsets.
        """
        if phases < 1:
            raise ValueError("need at least one phase")
        if phases > n - 1:
            raise ValueError(
                f"round_robin on {n} nodes supports at most {n - 1} phases"
            )
        base = complete_network(n)
        sets: list[list[int]] = [[] for _ in range(phases)]
        for c in range(base.num_channels):
            offset = (
                int(base.channel_dst[c]) - int(base.channel_src[c])
            ) % n
            sets[(offset - 1) % phases].append(c)
        return cls(
            base=base,
            phases=tuple(tuple(s) for s in sets),
            phase_length=phase_length,
        )
