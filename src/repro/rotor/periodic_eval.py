"""Analytic worst-case throughput for periodic topologies.

The static evaluator (paper Section 3.2) finds, per channel, the
maximum-weight assignment of commodity flows and divides by bandwidth.
On a rotor schedule a channel only serves during its active phases, so
its sustainable rate is its bandwidth discounted by the duty cycle
``a_c`` — and the adversary picks a worst permutation *per phase*.  The
periodic dual averages those per-phase duals over the rotation:

.. math::

    \\gamma_f = \\max_{c \\in \\text{phase } f}
        \\frac{\\mathrm{assign}(F_{\\cdot \\cdot c})}{a_c b_c},
    \\qquad
    \\bar\\gamma = \\frac{1}{P} \\sum_f \\gamma_f,
    \\qquad
    \\Theta_{wc} = 1 / \\bar\\gamma.

With a single all-up phase this is *exactly*
:func:`~repro.metrics.worst_case_eval.general_worst_case_load` — the
static machinery is the ``P = 1`` special case, which the test suite
pins, and a brute-force oracle
(:func:`repro.verify.brute_force_periodic_worst_case`) proves the
Hungarian inner solve exact on small ``k``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro import obs
from repro.metrics.worst_case_eval import WorstCaseResult
from repro.rotor.schedule import RotorSchedule


@dataclasses.dataclass(frozen=True)
class PeriodicWorstCaseResult:
    """Phase-averaged worst-case load and its per-phase witnesses.

    ``load`` is :math:`\\bar\\gamma`; ``phase_results[f]`` records the
    bottleneck channel (a *base-network* index), its adversarial
    permutation, and the duty-cycle-discounted load for phase ``f``;
    ``weights[f]`` is that phase's share of the period.
    """

    load: float
    phase_results: tuple[WorstCaseResult, ...]
    weights: tuple[float, ...]

    @property
    def throughput(self) -> float:
        return 1.0 / self.load

    @property
    def num_phases(self) -> int:
        return len(self.phase_results)


def periodic_worst_case_load(
    schedule: RotorSchedule, full_flows: np.ndarray
) -> PeriodicWorstCaseResult:
    """Exact phase-averaged :math:`\\bar\\gamma` of a routing on a
    rotor schedule, from its full ``(N, N, C)`` flow tensor (channel
    axis indexed by the schedule's *base* network)."""
    base = schedule.base
    if full_flows.shape != (
        base.num_nodes,
        base.num_nodes,
        base.num_channels,
    ):
        raise ValueError(
            f"full_flows shape {full_flows.shape} does not match "
            f"{base.num_nodes} nodes / {base.num_channels} channels"
        )
    duty = schedule.active_fraction()
    with obs.span(
        "rotor.periodic_eval",
        phases=schedule.num_phases,
        nodes=base.num_nodes,
        channels=base.num_channels,
    ) as sp:
        phase_results: list[WorstCaseResult] = []
        for f in range(schedule.num_phases):
            best: WorstCaseResult | None = None
            for channel in schedule.phases[f]:
                weights = full_flows[:, :, channel]
                rows, cols = linear_sum_assignment(weights, maximize=True)
                load = float(
                    weights[rows, cols].sum()
                    / (duty[channel] * base.bandwidth[channel])
                )
                if best is None or load > best.load:
                    perm = np.empty(base.num_nodes, dtype=np.int64)
                    perm[rows] = cols
                    best = WorstCaseResult(
                        load=load, channel=int(channel), permutation=perm
                    )
            assert best is not None
            phase_results.append(best)
        weights_f = tuple([1.0 / schedule.num_phases] * schedule.num_phases)
        gamma_bar = float(
            sum(w * r.load for w, r in zip(weights_f, phase_results))
        )
        sp.set(load=gamma_bar)
    return PeriodicWorstCaseResult(
        load=gamma_bar,
        phase_results=tuple(phase_results),
        weights=weights_f,
    )
