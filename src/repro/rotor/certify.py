"""Certificates for the periodic worst-case evaluator.

The periodic dual is an *average* of per-phase assignment duals, so the
certificate decomposes the same way: each phase's recorded witness
permutation must reproduce that phase's recorded load from the raw flow
tensor (primal feasibility of the witness), the bottleneck channel must
actually be active in its phase, and the averaged value must equal the
weighted sum of per-phase values.  A tampered result — wrong channel,
perturbed load, broken weights — fails the corresponding check rather
than everything at once, in the `repro.verify` battery style.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.rotor.periodic_eval import PeriodicWorstCaseResult
from repro.rotor.schedule import RotorSchedule
from repro.verify.invariants import VerificationReport, _result

#: Witness recomputation is pure arithmetic on the flow tensor; only
#: float roundoff separates the recorded and recomputed values.
CERT_ATOL = 1e-9


def certify_periodic_worst_case(
    schedule: RotorSchedule,
    full_flows: np.ndarray,
    result: PeriodicWorstCaseResult,
) -> VerificationReport:
    """Check ``result`` against the schedule and raw flow tensor."""
    duty = schedule.active_fraction()
    base = schedule.base
    with obs.span(
        "rotor.certify", phases=schedule.num_phases, nodes=base.num_nodes
    ):
        checks = []
        checks.append(
            _result(
                "phase_count",
                float(result.num_phases != schedule.num_phases),
                0.0,
                f"{result.num_phases} phase results for "
                f"{schedule.num_phases} phases",
            )
        )
        checks.append(
            _result(
                "weights_sum",
                abs(sum(result.weights) - 1.0),
                CERT_ATOL,
                "phase weights form a convex combination",
            )
        )
        for f, phase_result in enumerate(result.phase_results):
            c = phase_result.channel
            active = c in schedule.phases[f]
            checks.append(
                _result(
                    f"phase{f}_bottleneck_active",
                    float(not active),
                    0.0,
                    f"channel {c} in phase {f}",
                )
            )
            if not active:
                continue
            perm = phase_result.permutation
            srcs = np.arange(base.num_nodes)
            witness = float(
                full_flows[srcs, perm, c].sum() / (duty[c] * base.bandwidth[c])
            )
            checks.append(
                _result(
                    f"phase{f}_witness_load",
                    abs(witness - phase_result.load),
                    CERT_ATOL,
                    f"witness permutation reproduces gamma_{f}",
                )
            )
        averaged = sum(
            w * r.load for w, r in zip(result.weights, result.phase_results)
        )
        checks.append(
            _result(
                "averaged_dual",
                abs(averaged - result.load),
                CERT_ATOL,
                "gamma-bar equals the weighted per-phase sum",
            )
        )
    return VerificationReport(
        subject=f"periodic worst case ({schedule.num_phases} phases)",
        checks=tuple(checks),
    )
