"""Oblivious routing schemes for rotor networks.

Two schemes from the reconfigurable-network literature, expressed as
ordinary :class:`~repro.routing.base.ObliviousRouting` objects over the
rotor's complete base digraph so every static tool (flows, path-length
metrics, the assignment dual, both simulators) applies unchanged:

* :class:`VLBOnRotor` — Valiant load balancing through a uniform
  intermediate, the classic throughput-optimal scheme for uniform-rate
  rotor fabrics (two hops, perfectly balanced load).
* :class:`ORNRouting` — an ORN-style semi-oblivious scheme: the
  destination offset is decomposed into two base-``k`` digits and the
  packet hops one digit per leg, so each leg's offset belongs to a
  small digit set that a round-robin rotor revisits quickly.  Paths are
  deterministic and at most two hops, like VLB, but use only
  ``2(k - 1)`` distinct offsets instead of ``n - 1``.
"""

from __future__ import annotations

from repro.routing import paths as pathmod
from repro.routing.base import ObliviousRouting
from repro.routing.paths import Path
from repro.topology.network import Network


class VLBOnRotor(ObliviousRouting):
    """Valiant load balancing on a complete rotor digraph.

    Every packet routes source -> uniform intermediate -> destination
    (one hop per leg on the complete graph; degenerate intermediates
    collapse to the direct hop).
    """

    translation_invariant = False

    def __init__(self, network: Network, name: str = "VLBR") -> None:
        super().__init__(network, name)

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        n = self.network.num_nodes
        acc: dict[Path, float] = {}
        for mid in range(n):
            path = (src, dst) if mid in (src, dst) else (src, mid, dst)
            acc[path] = acc.get(path, 0.0) + 1.0 / n
        return list(acc.items())


class ORNRouting(ObliviousRouting):
    """Two-digit offset decomposition on ``n = k**2`` nodes.

    The destination offset ``delta = (dst - src) mod n`` is written as
    ``d0 + d1 * k`` in base ``k``; the packet hops ``+d0`` then
    ``+d1 * k`` (zero digits are skipped, loops removed).  Oblivious and
    deterministic — the load a commodity places on a channel is 0 or 1.
    """

    translation_invariant = False

    def __init__(self, network: Network, k: int, name: str = "ORN") -> None:
        super().__init__(network, name)
        self.k = int(k)
        if self.k < 2:
            raise ValueError("ORN needs k >= 2")
        if network.num_nodes != self.k**2:
            raise ValueError(
                f"ORN with k={self.k} needs n={self.k**2} nodes, "
                f"got {network.num_nodes}"
            )

    def path_distribution(self, src: int, dst: int) -> list[tuple[Path, float]]:
        if src == dst:
            return [((src,), 1.0)]
        n = self.network.num_nodes
        delta = (dst - src) % n
        d0, d1 = delta % self.k, delta // self.k
        path: Path = (src,)
        if d0:
            path = pathmod.concatenate(path, (path[-1], (path[-1] + d0) % n))
        if d1:
            path = pathmod.concatenate(
                path, (path[-1], (path[-1] + d1 * self.k) % n)
            )
        return [(pathmod.remove_loops(path), 1.0)]
