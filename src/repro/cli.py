"""Command-line entry point: regenerate any of the paper's figures.

Usage::

    repro-experiments list
    repro-experiments run headline
    repro-experiments run fig1 --k 8 --out results/
    REPRO_FAST=1 repro-experiments run fig6      # scaled-down quick run
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation of 'Throughput-Centric Routing "
            "Algorithm Design' (SPAA 2003)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run_p.add_argument("--k", type=int, default=8, help="torus radix (default 8)")
    run_p.add_argument("--seed", type=int, default=2003)
    run_p.add_argument(
        "--out", default=None, help="directory for CSV output (optional)"
    )
    run_p.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down parameters (same as REPRO_FAST=1)",
    )
    run_p.add_argument(
        "--plot",
        action="store_true",
        help="also render an ASCII plot (fig1/fig5/fig6)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "fast", False):
        import os

        os.environ["REPRO_FAST"] = "1"
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:10s} {EXPERIMENTS[name]['description']}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        data, text = run_experiment(
            name, k=args.k, seed=args.seed, out_dir=args.out
        )
        print(text)
        if getattr(args, "plot", False) and hasattr(data, "plot"):
            print()
            print(data.plot())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
