"""Command-line entry point: regenerate any of the paper's figures.

Usage::

    repro-experiments list
    repro-experiments run headline
    repro-experiments run fig1 --k 8 --out results/
    REPRO_FAST=1 repro-experiments run fig6      # scaled-down quick run
    repro-experiments run fig6 --jobs 4          # parallel LP solves
    repro-experiments run fig1 --no-cache        # force fresh solves
    repro-experiments run fig5 --metrics m.csv   # per-LP run metrics
    repro-experiments fig6 --trace t.jsonl --profile   # traced run
    repro-experiments obs-report t.jsonl         # aggregate a trace
    repro-experiments run fig6 --progress        # live stderr status line
    repro-experiments run fig6 --metrics-out m.prom  # export metrics
    repro-experiments bench-report --check       # benchmark regression gate
    repro-experiments run fig6 --certify         # certified LP solves
    repro-experiments verify --k 4               # certification battery
    repro-experiments verify --cached            # re-certify the cache
    repro-experiments verify --design table.json # verify one design file
    repro-experiments run topo3d --k 4 --bandwidths 1,1,0.5  # 3-D sweep

(``repro-experiments fig6 ...`` is shorthand for ``run fig6 ...``.)

LP design work runs through the experiment engine: ``--jobs`` (or
``$REPRO_JOBS``; default: CPU count) workers solve independent design
LPs in parallel, and solved designs persist in an on-disk cache
(``--cache-dir`` / ``$REPRO_CACHE_DIR``, default
``~/.cache/repro-designs``) so identical LPs are never re-solved.

Observability: ``--trace FILE`` writes the JSONL trace (spans from LP
solves, cache, engine workers, simulator), ``--metrics-out FILE``
exports the typed metrics registry (Prometheus text for ``.prom`` /
``.txt``, else JSONL), ``--progress`` renders a live stderr status
line, ``--profile`` prints a top-spans table on exit, ``--log-level``
tunes the stderr diagnostics.  ``bench-report`` diffs the canonical
``BENCH_<name>.json`` benchmark artifacts against committed baselines
(``--check`` makes regressions fail the exit code).  Results tables are
the only thing on stdout.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.experiments.runner import EXPERIMENTS, run_experiment

log = obs.get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation of 'Throughput-Centric Routing "
            "Algorithm Design' (SPAA 2003)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run_p.add_argument("--k", type=int, default=8, help="torus radix (default 8)")
    run_p.add_argument("--seed", type=int, default=2003)
    run_p.add_argument(
        "--out", default=None, help="directory for CSV output (optional)"
    )
    run_p.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down parameters (same as REPRO_FAST=1)",
    )
    run_p.add_argument(
        "--plot",
        action="store_true",
        help="also render an ASCII plot (fig1/fig5/fig6)",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel LP workers (default: $REPRO_JOBS or CPU count; "
        "1 = serial, in-process)",
    )
    run_p.add_argument(
        "--cache-dir",
        default=None,
        help="design-cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-designs)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the design cache entirely",
    )
    run_p.add_argument(
        "--certify",
        action="store_true",
        help="certify every design: attach LP duality certificates to "
        "fresh solves and re-check cached designs without re-solving "
        "(failures abort with exit code 1)",
    )
    run_p.add_argument(
        "--sim-backend",
        choices=["vectorized", "compiled", "reference"],
        default=None,
        help="simulation kernel for the sim/adaptive/faults experiments "
        "(default: vectorized; all produce identical results for the "
        "same seed — 'compiled' routes the cycle loop through jitted "
        "kernels when numba is importable and falls back to the NumPy "
        "twins otherwise, 'reference' runs the per-packet loop)",
    )
    run_p.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="sim/faults/rotor/topo3d experiments: average each "
        "saturation probe over an ensemble of N consecutive seeds "
        "starting at --seed (majority stability verdict; the batched "
        "backends run the whole ensemble per kernel launch)",
    )
    run_p.add_argument(
        "--fault-schedule",
        default=None,
        metavar="CYC:CH,..",
        help="sim experiment: kill channel CH at cycle CYC in every "
        "probe, e.g. '0:3,500:17' (lost packets keep the conservation "
        "identity; see the faults experiment for swept kill counts)",
    )
    run_p.add_argument(
        "--failures",
        type=int,
        default=None,
        help="faults experiment: largest failed-channel count to sweep "
        "(default 3)",
    )
    run_p.add_argument(
        "--reroute",
        choices=["renormalize", "detour"],
        default=None,
        help="faults experiment: reroute policy for degraded networks "
        "(default detour; renormalize drops dead paths and reports 0 "
        "for disconnected commodities)",
    )
    run_p.add_argument(
        "--topology",
        choices=["torus", "pillar", "mesh"],
        default=None,
        help="topo3d experiment: network family (default torus; pillar = "
        "sparse-vertical-link 3-D torus, mesh = open boundaries)",
    )
    run_p.add_argument(
        "--dims",
        type=int,
        default=None,
        help="topo3d experiment: cube dimensionality n (default 3)",
    )
    run_p.add_argument(
        "--bandwidths",
        default=None,
        metavar="B1,..,BN",
        help="topo3d experiment: per-dimension bandwidth factors, e.g. "
        "'1,1,0.5' for a half-speed Z dimension (default: sweep the "
        "trailing dimension over 1.0,0.75,0.5,0.25)",
    )
    run_p.add_argument(
        "--phases",
        type=int,
        default=None,
        help="rotor experiment: largest phase count to sweep (default 4; "
        "phases=1 is the static complete graph)",
    )
    run_p.add_argument(
        "--period",
        type=int,
        default=None,
        help="rotor experiment: cycles per full rotation (default 16; "
        "each phase count P runs max(1, period // P)-cycle phases)",
    )
    run_p.add_argument(
        "--scheme",
        choices=["vlb", "orn"],
        default=None,
        help="rotor experiment: restrict the sweep to one oblivious "
        "scheme (default: both VLB-on-rotor and ORN)",
    )
    run_p.add_argument(
        "--radices",
        default=None,
        metavar="K1,..,KM",
        help="design-scale experiment: comma-separated torus radices to "
        "time (default: 8,12,16 clipped to --k)",
    )
    run_p.add_argument(
        "--method",
        choices=["auto", "full", "colgen"],
        default=None,
        help="design-scale experiment: worst-case LP formulation for "
        "every solve (default auto: full below the node threshold, "
        "certified column generation above it)",
    )
    run_p.add_argument(
        "--bench-out",
        default=None,
        metavar="DIR",
        help="design-scale experiment: directory receiving the "
        "BENCH_design_scale.json benchmark artifact (default: not "
        "written)",
    )
    run_p.add_argument(
        "--metrics",
        default=None,
        metavar="CSV",
        help="write per-LP run metrics (solve time, LP size, cache "
        "hit/miss) to this CSV file",
    )
    run_p.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="append the structured JSONL trace (spans, counters, "
        "gauges) to FILE; aggregate it with 'obs-report FILE'",
    )
    run_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the metrics registry (counters, gauges, histograms "
        "from the engine, LP solver, cache and simulator) to FILE on "
        "exit; .prom/.txt selects the Prometheus text format, anything "
        "else JSON lines",
    )
    run_p.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress line on stderr (tasks done/total, "
        "cache hit-rate, ETA) from engine lifecycle events",
    )
    run_p.add_argument(
        "--profile",
        action="store_true",
        help="print a top-spans wall-time table to stderr on exit",
    )
    run_p.add_argument(
        "--log-level",
        default="info",
        metavar="LEVEL",
        help="stderr diagnostics level: debug, info, warning, error "
        "(default: info)",
    )

    verify_p = sub.add_parser(
        "verify",
        help="run the correctness certification battery (repro.verify)",
        description=(
            "Certify routing algorithms (invariants, deadlock spot checks, "
            "duality certificates, brute-force differential worst case), a "
            "serialized design file, or every cached design entry.  Exit "
            "code 0 when everything passes, 1 on any verification failure."
        ),
    )
    verify_p.add_argument(
        "--k", type=int, default=4, help="torus radix to certify on (default 4)"
    )
    verify_p.add_argument(
        "--algorithms",
        default=None,
        metavar="NAMES",
        help="comma-separated algorithms (default DOR,VAL,IVAL,2TURN)",
    )
    verify_p.add_argument(
        "--design",
        default=None,
        metavar="FILE",
        help="verify one serialized design document (flows/routing/cache "
        "entry JSON) instead of the algorithm battery",
    )
    verify_p.add_argument(
        "--cached",
        action="store_true",
        help="re-certify every design-cache entry without re-solving",
    )
    verify_p.add_argument(
        "--cache-dir",
        default=None,
        help="design-cache directory for --cached (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro-designs)",
    )
    verify_p.add_argument(
        "--tol",
        type=float,
        default=None,
        help="duality-gap / certificate tolerance (default 1e-7)",
    )
    verify_p.add_argument(
        "--no-differential",
        action="store_true",
        help="skip the brute-force differential worst-case cross-check",
    )
    verify_p.add_argument(
        "--trace", default=None, metavar="FILE", help="append JSONL trace to FILE"
    )
    verify_p.add_argument(
        "--profile",
        action="store_true",
        help="print a top-spans wall-time table to stderr on exit",
    )
    verify_p.add_argument(
        "--log-level", default="info", metavar="LEVEL", help="stderr log level"
    )

    report_p = sub.add_parser(
        "obs-report", help="aggregate a JSONL trace written with --trace"
    )
    report_p.add_argument("trace_file", help="trace file (JSON lines)")
    report_p.add_argument(
        "--top",
        type=int,
        default=15,
        help="span rows to show in the time breakdown (default 15)",
    )

    bench_p = sub.add_parser(
        "bench-report",
        help="diff BENCH_*.json benchmark artifacts against a baseline",
        description=(
            "Compare the median of every timing series in the results "
            "directory's canonical BENCH_<name>.json artifacts against "
            "the committed baseline copies.  With --check, exit 1 when "
            "any series regressed beyond the threshold; exit 2 on "
            "schema-invalid artifacts either way."
        ),
    )
    bench_p.add_argument(
        "--results",
        default="results",
        metavar="DIR",
        help="directory holding current BENCH_*.json artifacts "
        "(default: results)",
    )
    bench_p.add_argument(
        "--baseline",
        default="results/baselines",
        metavar="DIR",
        help="directory holding baseline BENCH_*.json artifacts "
        "(default: results/baselines)",
    )
    bench_p.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="median slowdown fraction that counts as a regression "
        "(default: 0.25 = +25%%)",
    )
    bench_p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any timing series regressed (the CI gate); "
        "without it the report is informational",
    )
    bench_p.add_argument(
        "--migrate",
        action="store_true",
        help="first convert legacy results/*_bench.json files in the "
        "results directory to canonical BENCH_<name>.json",
    )
    return parser


def _verify(args) -> int:
    from repro.constants import DUALITY_GAP_TOL
    from repro.verify import verify_algorithms, verify_cache, verify_design_file

    tol = DUALITY_GAP_TOL if args.tol is None else float(args.tol)
    reports = []
    if args.design is not None:
        reports.append(verify_design_file(args.design, tol=tol))
    if args.cached:
        cached = verify_cache(args.cache_dir, tol=tol)
        if not cached:
            log.warning("design cache is empty; nothing to re-certify")
        reports.extend(cached)
    if args.design is None and not args.cached:
        names = (
            [n.strip() for n in args.algorithms.split(",") if n.strip()]
            if args.algorithms
            else None
        )
        try:
            reports.extend(
                verify_algorithms(
                    k=args.k,
                    names=names,
                    tol=tol,
                    differential=not args.no_differential,
                )
            )
        except ValueError as exc:
            print(f"repro-experiments: error: {exc}", file=sys.stderr)
            return 2
    for report in reports:
        print(report.render())
        print()
    failed = [r for r in reports if not r.passed]
    checks = sum(len(r.checks) for r in reports)
    print(
        f"verify: {len(reports)} subjects, {checks} checks, "
        f"{len(failed)} failed"
    )
    return 1 if failed else 0


def _obs_report(args) -> int:
    try:
        report = obs.report_from_file(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"repro-experiments: error: {exc}", file=sys.stderr)
        return 2
    print(report.render(top=args.top))
    return 0


def _bench_report(args) -> int:
    from repro.obs.bench import migrate_directory

    try:
        if args.migrate:
            for path in migrate_directory(args.results):
                log.info("migrated legacy benchmark to %s", path)
        report = obs.compare_dirs(
            args.results, args.baseline, threshold=args.threshold
        )
    except (OSError, obs.BenchValidationError) as exc:
        print(f"repro-experiments: error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if args.check and not report.passed:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:  # pragma: no cover - interactive path
        argv = sys.argv[1:]
    if argv and argv[0] in EXPERIMENTS:
        argv = ["run"] + list(argv)  # 'repro-experiments fig6' shorthand
    args = build_parser().parse_args(argv)
    if getattr(args, "fast", False):
        import os

        os.environ["REPRO_FAST"] = "1"
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:10s} {EXPERIMENTS[name]['description']}")
        return 0
    if args.command == "obs-report":
        obs.setup_logging("info")
        return _obs_report(args)
    if args.command == "bench-report":
        obs.setup_logging("info")
        return _bench_report(args)

    try:
        obs.setup_logging(args.log_level)
    except ValueError as exc:
        print(f"repro-experiments: error: {exc}", file=sys.stderr)
        return 2
    tracer = obs.configure(trace_path=args.trace)
    if args.trace:
        log.info("writing trace events to %s", args.trace)

    if args.command == "verify":
        try:
            return _verify(args)
        finally:
            if args.profile:
                print(obs.profile_table(tracer), file=sys.stderr)
            tracer.close()

    from repro.verify.certificates import CertificationError

    bandwidths = None
    if getattr(args, "bandwidths", None):
        try:
            bandwidths = tuple(
                float(part) for part in args.bandwidths.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"repro-experiments: error: --bandwidths expects comma-"
                f"separated numbers, got {args.bandwidths!r}",
                file=sys.stderr,
            )
            return 2

    fault_schedule = None
    if getattr(args, "fault_schedule", None):
        try:
            fault_schedule = tuple(
                (int(cyc), int(ch))
                for part in args.fault_schedule.split(",")
                if part.strip()
                for cyc, ch in [part.split(":")]
            )
        except ValueError:
            print(
                f"repro-experiments: error: --fault-schedule expects comma-"
                f"separated CYCLE:CHANNEL pairs, got {args.fault_schedule!r}",
                file=sys.stderr,
            )
            return 2

    radices = None
    if getattr(args, "radices", None):
        try:
            radices = tuple(
                int(part) for part in args.radices.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"repro-experiments: error: --radices expects comma-"
                f"separated integers, got {args.radices!r}",
                file=sys.stderr,
            )
            return 2

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    registry = obs.configure_metrics()
    try:
        for name in names:
            progress = (
                obs.ProgressReporter(label=name) if args.progress else None
            )
            try:
                data, text = run_experiment(
                    name,
                    k=args.k,
                    seed=args.seed,
                    out_dir=args.out,
                    jobs=args.jobs,
                    cache_dir=args.cache_dir,
                    use_cache=not args.no_cache,
                    certify=args.certify,
                    metrics_path=args.metrics,
                    sim_backend=args.sim_backend,
                    seeds=args.seeds,
                    fault_schedule=fault_schedule,
                    failures=args.failures,
                    reroute=args.reroute,
                    topology=args.topology,
                    dims=args.dims,
                    bandwidths=bandwidths,
                    phases=args.phases,
                    period=args.period,
                    scheme={"vlb": "VLBR", "orn": "ORN"}.get(args.scheme),
                    radices=radices,
                    method=args.method,
                    bench_out=args.bench_out,
                    progress=progress,
                )
            except ValueError as exc:
                print(f"repro-experiments: error: {exc}", file=sys.stderr)
                return 2
            except CertificationError as exc:
                print(f"repro-experiments: certification failed: {exc}", file=sys.stderr)
                return 1
            finally:
                if progress is not None:
                    progress.close()
            print(text)
            if getattr(args, "plot", False) and hasattr(data, "plot"):
                print()
                print(data.plot())
            print()
    finally:
        if args.metrics_out:
            fmt = obs.write_metrics(registry, args.metrics_out)
            log.info("wrote %s metrics to %s", fmt, args.metrics_out)
        if args.profile:
            print(obs.profile_table(tracer), file=sys.stderr)
        tracer.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `obs-report trace | head`
        sys.exit(0)
