"""Radix-scaling benchmark of the worst-case design LP (``design-scale``).

The full matching-dual LP (8) carries one :math:`(u, v)` potential block
per direction class with :math:`N^2` pair rows each — at ``k = 16``
(:math:`N = 256`) that is past what the dense-assembly path solves in
reasonable time, which is exactly the regime ``method="colgen"`` exists
for.  This experiment times one worst-case-optimal design per requested
radix, records the resolved formulation and column-generation loop
shape, certifies every lazy-row solve against the full constraint set
(:func:`repro.verify.colgen.certify_colgen_design`), and writes the
timings as a canonical ``BENCH_design_scale.json`` benchmark artifact
(:mod:`repro.obs.bench`) so the regression gate tracks design-solve
scaling alongside the simulator and sweep benchmarks.

Unlike the figure experiments this one bypasses the engine's design
cache on purpose: a scaling benchmark that reports cache hits would be
measuring JSON deserialization.
"""

from __future__ import annotations

import dataclasses
import time

from repro import obs
from repro.core.worst_case import design_worst_case, resolve_design_method
from repro.experiments.common import render_table
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus
from repro.verify.certificates import CertificationError
from repro.verify.colgen import certify_colgen_design

log = obs.get_logger(__name__)

#: The default sweep: the paper's 8-ary 2-cube plus the two radices the
#: full formulation struggles with (k=12) or cannot reach (k=16).
DEFAULT_RADICES = (8, 12, 16)


@dataclasses.dataclass(frozen=True)
class DesignScalePoint:
    """One timed worst-case design solve."""

    k: int
    method: str  # resolved formulation, "full" or "colgen"
    theta_wc: float
    solve_seconds: float
    iterations: int  # colgen master solves (0 for the full LP)
    rows_generated: int  # oracle-separated rows (0 for the full LP)


@dataclasses.dataclass(frozen=True)
class DesignScaleData:
    points: tuple[DesignScalePoint, ...]
    requested_method: str

    def rows(self):
        return [
            (p.k, p.method, p.theta_wc, p.solve_seconds, p.iterations,
             p.rows_generated)
            for p in self.points
        ]

    def render(self) -> str:
        body = render_table(
            f"Worst-case design LP scaling (method={self.requested_method})",
            ["k", "method", "Theta_wc", "solve_s", "iterations", "rows"],
            self.rows(),
        )
        colgen = [p for p in self.points if p.method == "colgen"]
        if colgen:
            certified = ", ".join(
                f"k={p.k} in {p.solve_seconds:.1f}s" for p in colgen
            )
            return (
                f"{body}\nevery colgen design re-certified against the "
                f"full constraint set ({certified})"
            )
        return body


def _solve_point(k: int, method: str) -> DesignScalePoint:
    torus = Torus(k, 2)
    group = TranslationGroup(torus)
    with obs.span(
        "design_scale.point", k=int(k), nodes=int(torus.num_nodes)
    ) as sp:
        start = time.perf_counter()
        design = design_worst_case(torus, group=group, method=method)
        elapsed = time.perf_counter() - start
        if design.method == "colgen":
            report = certify_colgen_design(
                torus,
                design.flows,
                design.worst_case_load,
                lower_bound=design.colgen.lower_bound,
                group=group,
            )
            if not report.passed:
                raise CertificationError(
                    f"k={k} colgen design failed certification\n"
                    + report.render()
                )
        stats = design.colgen
        point = DesignScalePoint(
            k=int(k),
            method=design.method,
            theta_wc=1.0 / design.worst_case_load,
            solve_seconds=elapsed,
            iterations=0 if stats is None else int(stats.iterations),
            rows_generated=0 if stats is None else int(stats.rows_generated),
        )
        sp.set(method=design.method, solve_seconds=elapsed)
    return point


def run(
    k: int = 16,
    seed: int = 2003,
    engine=None,
    radices: tuple[int, ...] | None = None,
    method: str = "auto",
    bench_out: str | None = None,
) -> DesignScaleData:
    """Time one worst-case design per radix; optionally write the BENCH doc.

    ``radices`` defaults to :data:`DEFAULT_RADICES` clipped to ``k``
    (so ``--k 8`` runs a quick single-point smoke); ``method`` is the
    formulation request passed to every solve (``"auto"`` resolves per
    radix, which is the headline comparison: the full LP below the
    threshold, lazy rows above it).  ``engine`` is accepted for runner
    uniformity and ignored — see the module docstring.  ``bench_out``
    names a directory that receives ``BENCH_design_scale.json``.
    """
    del engine, seed  # deterministic LP solves; no cache, no sampling
    if radices is None:
        radices = tuple(r for r in DEFAULT_RADICES if r <= int(k)) or (int(k),)
    radices = tuple(int(r) for r in radices)
    resolve_design_method(method, 1)  # validate the name before solving
    with obs.span("design_scale.sweep", radices=list(radices), method=method):
        points = []
        for r in radices:
            point = _solve_point(r, method)
            log.info(
                "design-scale k=%d: %s in %.1fs", r, point.method,
                point.solve_seconds,
            )
            points.append(point)
    data = DesignScaleData(points=tuple(points), requested_method=method)
    if bench_out is not None:
        doc = obs.new_bench_doc(
            "design_scale",
            workload={
                "radices": list(radices),
                "method": method,
                "n": 2,
            },
            timings={
                f"k{p.k}_{p.method}": [round(p.solve_seconds, 3)]
                for p in data.points
            },
            derived={
                f"theta_wc_k{p.k}": float(p.theta_wc) for p in data.points
            },
            meta={
                "rows": [
                    {
                        "k": p.k,
                        "method": p.method,
                        "theta_wc": p.theta_wc,
                        "solve_seconds": round(p.solve_seconds, 3),
                        "iterations": p.iterations,
                        "rows_generated": p.rows_generated,
                    }
                    for p in data.points
                ]
            },
            git_rev=obs.bench.git_revision(),
        )
        path = obs.write_bench_doc(doc, bench_out)
        log.info("design-scale bench artifact -> %s", path)
    return data
