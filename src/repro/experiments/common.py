"""Shared experiment context and report rendering.

Every experiment evaluates algorithms against the same
:class:`ExperimentContext`: one torus, one capacity normalization and
one *evaluation* traffic sample — the sample used to score average-case
throughput is deliberately distinct from any sample used to *design*
algorithms, so LP designs are scored out-of-sample.
"""

from __future__ import annotations

import csv
import dataclasses
import os
from typing import Sequence

import numpy as np

from repro.core.capacity import solve_capacity
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus
from repro.traffic.doubly_stochastic import sample_traffic_set

#: Environment variable that shrinks every experiment for quick runs.
FAST_ENV = "REPRO_FAST"


def fast_mode() -> bool:
    """Whether scaled-down experiment parameters were requested."""
    return os.environ.get(FAST_ENV, "").strip() not in ("", "0", "false")


@dataclasses.dataclass
class ExperimentContext:
    """Everything an experiment needs about the network under study."""

    torus: Torus
    group: TranslationGroup
    capacity_load: float
    eval_sample: list[np.ndarray]
    design_sample: list[np.ndarray]
    seed: int

    @property
    def h_min(self) -> float:
        return self.torus.mean_min_distance()


def make_context(
    k: int = 8,
    seed: int = 2003,
    eval_samples: int = 100,
    design_samples: int = 25,
    eval_permutations: int = 8,
    design_permutations: int = 4,
) -> ExperimentContext:
    """Build the paper's evaluation setting.

    Defaults follow Section 5: the 8-ary 2-cube with |X| = 100 traffic
    matrices for average-case *evaluation*.  The *design* sample is
    smaller and sparser (it enters an LP; see DESIGN.md), and drawn from
    an independent stream.
    """
    if fast_mode():
        eval_samples = min(eval_samples, 20)
        design_samples = min(design_samples, 8)
    torus = Torus(k, 2)
    group = TranslationGroup(torus)
    rng_eval = np.random.default_rng(seed)
    rng_design = np.random.default_rng(seed + 1)
    return ExperimentContext(
        torus=torus,
        group=group,
        capacity_load=solve_capacity(torus, group).load,
        eval_sample=sample_traffic_set(
            rng_eval, torus.num_nodes, eval_samples, num_permutations=eval_permutations
        ),
        design_sample=sample_traffic_set(
            rng_design,
            torus.num_nodes,
            design_samples,
            num_permutations=design_permutations,
        ),
        seed=seed,
    )


def render_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain-text table used by the CLI and the bench reports."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def save_csv(path: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Write experiment rows for downstream plotting."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
