"""Figure 1: locality vs. worst-case throughput on the 8-ary 2-cube.

Reproduces (a) the optimal tradeoff curve — one locality-pinned
worst-case design LP per point — and (b) the positions of the existing
algorithms of Table 1 in that space.  Axes match the paper: horizontal
is worst-case throughput as a fraction of capacity, vertical is average
path length as a multiple of minimal.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.experiments.common import ExperimentContext, fast_mode, render_table
from repro.experiments.engine import DesignTask, Engine, ensure_engine
from repro.metrics import evaluate_algorithm
from repro.routing import standard_algorithms

log = obs.get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class Fig1Data:
    """Curve points and algorithm points of Figure 1."""

    curve: list[tuple[float, float]]  # (normalized length, wc throughput / cap)
    points: dict[str, tuple[float, float]]

    def rows(self):
        rows = [("optimal", h, th) for h, th in self.curve]
        rows += [(name, h, th) for name, (h, th) in self.points.items()]
        return rows

    def render(self) -> str:
        return render_table(
            "Figure 1: worst-case throughput vs. locality (8-ary 2-cube)",
            ["series", "H_avg / H_min", "Theta_wc / capacity"],
            self.rows(),
        )

    def plot(self) -> str:
        from repro.experiments.ascii_plot import tradeoff_plot

        return tradeoff_plot(
            "Figure 1 (worst-case tradeoff)",
            self.curve,
            self.points,
            "Theta_wc / capacity",
        )


def run(
    ctx: ExperimentContext,
    num_points: int = 11,
    engine: Engine | None = None,
) -> Fig1Data:
    """Compute Figure 1's data.

    ``num_points`` controls the resolution of the optimal curve between
    minimal locality (1.0) and VAL's locality (2.0).  Curve points are
    independent LPs, dispatched through ``engine`` (parallel + cached).
    """
    if fast_mode():
        num_points = min(num_points, 5)
    engine = ensure_engine(engine)
    ratios = np.linspace(1.0, 2.0, num_points)
    results = engine.run(
        [
            DesignTask(
                kind="wc_point",
                k=ctx.torus.k,
                n=ctx.torus.n,
                ratio=float(r),
                sense="<=",
                label=f"fig1:curve@{r:.3f}",
            )
            for r in ratios
        ]
    )
    curve = [
        (float(r), ctx.capacity_load / res.load)
        for r, res in zip(ratios, results)
    ]
    log.debug("fig1: %d curve points designed", len(curve))

    points = {}
    with obs.span("fig1.score", algorithms=len(standard_algorithms(ctx.torus))):
        for name, alg in standard_algorithms(ctx.torus).items():
            m = evaluate_algorithm(alg, capacity_load=ctx.capacity_load)
            points[name] = (m.normalized_path_length, m.worst_case_vs_capacity)
    return Fig1Data(curve=curve, points=points)
