"""Robustness sweep: failure count vs. guaranteed/saturation throughput.

The paper designs for a pristine torus; this experiment measures how
much of each algorithm's guarantee survives link failures.  For one
seeded, incrementally-grown random fault sequence (prefix ``f`` is the
network with ``f`` failed channels — each step is a real degradation of
the previous one) it reports, per failure count and per algorithm:

* the *guaranteed* throughput ``Theta_wc = 1 / gamma_wc`` of the
  rerouted algorithm, computed exactly with the general (assignment per
  channel) worst-case evaluator on the degraded network; and
* an empirical saturation bracket of the rerouted algorithm under
  uniform traffic, from the packet simulator on the degraded network.

Rerouting changes each fault prefix's path distribution (that load
concentration on the detour links is the thing being measured), so the
prefixes cannot share one compiled path table — each ``(failures,
algorithm)`` case keeps its own rerouted algorithm.  Within a case,
though, the bracket rides the replica-batched prober: every refinement
round runs its interior probe rates × the ``--seeds`` ensemble as one
kernel launch over one compiled table (cycle-0 ``fault_schedule``
kills were tried instead — one launch for the whole sweep — but dead
channels *shed* load as ``lost`` packets rather than concentrating it,
so every bracket degenerated to the stable ``[1, 1]``).

Worst-case evaluations run as ``fault_wc`` tasks through the shared
:class:`~repro.experiments.engine.Engine`, so they parallelize across
``--jobs`` workers and land in the persistent design cache keyed by the
fault-set digest.  A commodity disconnected by the reroute policy (DOR
under ``renormalize`` loses one on the first link failure) reports a
guaranteed throughput of 0 rather than failing the sweep.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.constants import DEFAULT_SIM_BACKEND
from repro.experiments.common import fast_mode, render_table
from repro.experiments.engine import (
    FAULT_ALGORITHMS,
    DesignTask,
    Engine,
    ensure_engine,
)
from repro.faults import FaultSet, degrade, degrade_routing, random_faults
from repro.routing import IVAL, VAL, DimensionOrderRouting
from repro.sim import saturation_throughput
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus
from repro.traffic import uniform

log = obs.get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class FaultsData:
    #: rows of (failures, algorithm, theta_wc, sat lower, sat upper)
    rows_data: list[tuple[int, str, float, float, float]]
    #: the failed-channel sequence the sweep walked (prefix per row count)
    fault_sequence: tuple[int, ...]
    reroute: str

    def rows(self):
        return self.rows_data

    def render(self) -> str:
        body = render_table(
            f"Fault sweep: throughput vs. failed channels ({self.reroute})",
            ["failures", "algorithm", "Theta_wc", "sat_lo", "sat_hi"],
            self.rows_data,
        )
        chans = ", ".join(str(c) for c in self.fault_sequence) or "none"
        return f"{body}\nfailed-channel sequence: {chans}"


def _base_algorithms(torus: Torus, engine: Engine) -> dict:
    group = TranslationGroup(torus)
    two_turn = engine.run_one(
        DesignTask(kind="twoturn", k=torus.k, n=torus.n, label="faults:2TURN")
    ).routing(torus)
    return {
        "DOR": DimensionOrderRouting(torus),
        "VAL": VAL(torus),
        "IVAL": IVAL(torus),
        "2TURN": two_turn,
    }


def run(
    k: int = 4,
    seed: int = 2003,
    engine: Engine | None = None,
    failures: int = 3,
    reroute: str = "detour",
    sim_backend: str = DEFAULT_SIM_BACKEND,
    cycles: int = 3000,
    seeds: int | None = None,
) -> FaultsData:
    """Sweep 0..``failures`` failed channels on a k-ary 2-cube.

    The fault sequence is drawn once with connectivity-preserving
    rejection sampling (`repro.faults.random_faults`); failure count
    ``f`` uses its length-``f`` prefix, so each row's network is the
    previous row's with exactly one more dead channel.  ``seeds`` (CLI
    ``--seeds``) averages every saturation probe over an ensemble of
    that many consecutive seeds starting at ``seed``.
    """
    if failures < 0:
        raise ValueError("failures must be >= 0")
    if seeds is not None and seeds < 1:
        raise ValueError("seeds must be >= 1")
    iterations = 6
    if fast_mode():
        failures = min(failures, 2)
        cycles = min(cycles, 1200)
        iterations = 4
    engine = ensure_engine(engine)
    torus = Torus(k, 2)
    rng = np.random.default_rng(seed)
    sequence = random_faults(torus, rng, failures)
    bases = _base_algorithms(torus, engine)
    traffic = uniform(torus.num_nodes)

    with obs.span(
        "faults.sweep",
        k=int(k),
        failures=int(failures),
        reroute=reroute,
        backend=sim_backend,
    ):
        tasks = [
            DesignTask(
                kind="fault_wc",
                k=k,
                n=2,
                algorithm=alg,
                faults=sequence.channels[:f],
                reroute=reroute,
                label=f"faults:{alg}@{f}",
            )
            for f in range(failures + 1)
            for alg in FAULT_ALGORITHMS
        ]
        wc_results = engine.run(tasks)

        seed_list = (
            None if seeds is None else tuple(seed + i for i in range(seeds))
        )
        rows = []
        for task, result in zip(tasks, wc_results):
            f = len(task.faults)
            alg = task.algorithm
            disconnected = bool(result.doc.get("disconnected"))
            theta_wc = 0.0 if disconnected else 1.0 / result.load
            with obs.span(
                "faults.case",
                failures=f,
                algorithm=alg,
                reroute=reroute,
                theta_wc=float(theta_wc),
                disconnected=disconnected,
            ) as sp:
                if disconnected:
                    sat_lo = sat_hi = 0.0
                else:
                    degraded = degrade(
                        torus, FaultSet(channels=task.faults)
                    )
                    routing = degrade_routing(
                        bases[alg], degraded, mode=reroute
                    )
                    est = saturation_throughput(
                        routing,
                        traffic,
                        cycles=cycles,
                        warmup=cycles // 3,
                        iterations=iterations,
                        seed=seed,
                        seeds=seed_list,
                        backend=sim_backend,
                    )
                    sat_lo, sat_hi = est.lower, est.upper
                sp.set(sat_lo=float(sat_lo), sat_hi=float(sat_hi))
            obs.metric_count("faults.cases", algorithm=alg, reroute=reroute)
            rows.append((f, alg, float(theta_wc), float(sat_lo), float(sat_hi)))

    return FaultsData(
        rows_data=rows, fault_sequence=sequence.channels, reroute=reroute
    )
