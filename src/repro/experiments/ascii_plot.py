"""Terminal scatter/curve plots for the figure experiments.

matplotlib is not a dependency of this library, so the CLI renders the
paper's figures as character grids: each series gets a marker, axes are
annotated with their data ranges, and a legend follows.  Good enough to
see the Pareto frontier bend and where each algorithm falls relative to
it — the information content of Figures 1, 5 and 6.
"""

from __future__ import annotations

from typing import Sequence

_MARKERS = "o*+x#@%&"


def ascii_plot(
    title: str,
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 20,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render named point series on one character grid.

    Points sharing a cell show the marker of the later series (curves
    first, scatter points after, so algorithm markers stay visible).
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = [title]
    lines.append(f"{ylabel}  [{y_lo:.3f} .. {y_hi:.3f}]")
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"{xlabel}  [{x_lo:.3f} .. {x_hi:.3f}]")
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def tradeoff_plot(
    title: str,
    curve: Sequence[tuple[float, float]],
    points: dict[str, tuple[float, float]],
    throughput_label: str,
) -> str:
    """Figure 1/6-style plot: optimal curve plus algorithm markers.

    Curve and points arrive as (normalized length, throughput); the plot
    puts throughput on the horizontal axis like the paper.
    """
    series: dict[str, Sequence[tuple[float, float]]] = {
        "optimal": [(th, h) for h, th in curve]
    }
    for name, (h, th) in points.items():
        series[name] = [(th, h)]
    return ascii_plot(
        title,
        series,
        xlabel=throughput_label,
        ylabel="H_avg / H_min",
    )
