"""Figure 6: locality vs. average-case throughput on the 8-ary 2-cube.

The optimal curve solves the locality-pinned average-case LP (15) per
point over the (sparse) *design* sample; every algorithm point — the
Table 1 algorithms, IVAL, 2TURN, and the purpose-built 2TURNA — is then
scored on the shared, larger *evaluation* sample, so designed algorithms
are compared out-of-sample exactly like the hand-built ones.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.recovery import routing_from_flows
from repro.core.tradeoff import average_case_tradeoff
from repro.core.average_case import design_average_case
from repro.experiments.common import ExperimentContext, fast_mode, render_table
from repro.metrics import average_case_load, evaluate_algorithm
from repro.routing import (
    IVAL,
    design_2turn,
    design_2turn_average,
    standard_algorithms,
)


@dataclasses.dataclass(frozen=True)
class Fig6Data:
    curve: list[tuple[float, float]]  # (normalized length, avg throughput / cap)
    points: dict[str, tuple[float, float]]
    max_average_throughput: float  # best over the curve, fraction of capacity

    def rows(self):
        rows = [("optimal", h, th) for h, th in self.curve]
        rows += [(name, h, th) for name, (h, th) in self.points.items()]
        return rows

    def render(self) -> str:
        body = render_table(
            "Figure 6: average-case throughput vs. locality (8-ary 2-cube)",
            ["series", "H_avg / H_min", "Theta_avg / capacity"],
            self.rows(),
        )
        gaps = "\n".join(
            f"  {name}: {th / self.max_average_throughput - 1.0:+.1%} vs max"
            for name, (_, th) in sorted(self.points.items())
        )
        return (
            f"{body}\n"
            f"max average-case throughput: "
            f"{self.max_average_throughput:.3f} of capacity\n{gaps}"
        )

    def plot(self) -> str:
        from repro.experiments.ascii_plot import tradeoff_plot

        return tradeoff_plot(
            "Figure 6 (average-case tradeoff)",
            self.curve,
            self.points,
            "Theta_avg / capacity",
        )


def run(ctx: ExperimentContext, num_points: int = 9) -> Fig6Data:
    """Compute Figure 6's curve and algorithm points."""
    if fast_mode():
        num_points = min(num_points, 4)
    ratios = np.linspace(1.0, 2.0, num_points)

    # Optimal tradeoff curve: design on the design sample, score each
    # design on the evaluation sample.
    curve = []
    for ratio in ratios:
        design = design_average_case(
            ctx.torus,
            ctx.design_sample,
            locality_hops=float(ratio) * ctx.h_min,
            locality_sense="<=",
            group=ctx.group,
        )
        alg = routing_from_flows(ctx.torus, design.flows, f"avg-opt@{ratio:.2f}")
        load = average_case_load(alg, ctx.eval_sample)
        curve.append((float(ratio), ctx.capacity_load / load))

    points = {}
    algs = standard_algorithms(ctx.torus)
    algs["IVAL"] = IVAL(ctx.torus)
    algs["2TURN"] = design_2turn(ctx.torus, ctx.group).routing
    algs["2TURNA"] = design_2turn_average(
        ctx.torus, ctx.design_sample, ctx.group
    ).routing
    for name, alg in algs.items():
        m = evaluate_algorithm(
            alg, traffic_sample=ctx.eval_sample, capacity_load=ctx.capacity_load
        )
        points[name] = (m.normalized_path_length, m.average_case_vs_capacity)

    return Fig6Data(
        curve=curve,
        points=points,
        max_average_throughput=max(th for _, th in curve),
    )
