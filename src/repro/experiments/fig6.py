"""Figure 6: locality vs. average-case throughput on the 8-ary 2-cube.

The optimal curve solves the locality-pinned average-case LP (15) per
point over the (sparse) *design* sample; every algorithm point — the
Table 1 algorithms, IVAL, 2TURN, and the purpose-built 2TURNA — is then
scored on the shared, larger *evaluation* sample, so designed algorithms
are compared out-of-sample exactly like the hand-built ones.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.core.recovery import routing_from_flows
from repro.experiments.common import ExperimentContext, fast_mode, render_table
from repro.experiments.engine import DesignTask, Engine, ensure_engine
from repro.metrics import average_case_load, evaluate_algorithm
from repro.routing import IVAL, standard_algorithms

log = obs.get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class Fig6Data:
    curve: list[tuple[float, float]]  # (normalized length, avg throughput / cap)
    points: dict[str, tuple[float, float]]
    max_average_throughput: float  # best over the curve, fraction of capacity

    def rows(self):
        rows = [("optimal", h, th) for h, th in self.curve]
        rows += [(name, h, th) for name, (h, th) in self.points.items()]
        return rows

    def render(self) -> str:
        body = render_table(
            "Figure 6: average-case throughput vs. locality (8-ary 2-cube)",
            ["series", "H_avg / H_min", "Theta_avg / capacity"],
            self.rows(),
        )
        gaps = "\n".join(
            f"  {name}: {th / self.max_average_throughput - 1.0:+.1%} vs max"
            for name, (_, th) in sorted(self.points.items())
        )
        return (
            f"{body}\n"
            f"max average-case throughput: "
            f"{self.max_average_throughput:.3f} of capacity\n{gaps}"
        )

    def plot(self) -> str:
        from repro.experiments.ascii_plot import tradeoff_plot

        return tradeoff_plot(
            "Figure 6 (average-case tradeoff)",
            self.curve,
            self.points,
            "Theta_avg / capacity",
        )


def run(
    ctx: ExperimentContext,
    num_points: int = 9,
    engine: Engine | None = None,
) -> Fig6Data:
    """Compute Figure 6's curve and algorithm points.

    Curve points and the 2TURN-family designs are independent LPs,
    dispatched through ``engine`` (parallel + cached).
    """
    if fast_mode():
        num_points = min(num_points, 4)
    engine = ensure_engine(engine)
    ratios = np.linspace(1.0, 2.0, num_points)
    k, n = ctx.torus.k, ctx.torus.n
    sample = tuple(ctx.design_sample)

    # Optimal tradeoff curve: design on the design sample, score each
    # design on the evaluation sample.  The two 2TURN-family designs
    # ride in the same batch so a parallel engine overlaps them.
    tasks = [
        DesignTask(
            kind="avg_point",
            k=k,
            n=n,
            ratio=float(ratio),
            sense="<=",
            sample=sample,
            label=f"fig6:curve@{ratio:.3f}",
        )
        for ratio in ratios
    ]
    tasks.append(DesignTask(kind="twoturn", k=k, n=n, label="fig6:2TURN"))
    tasks.append(
        DesignTask(kind="twoturn_avg", k=k, n=n, sample=sample, label="fig6:2TURNA")
    )
    results = engine.run(tasks)

    curve = []
    with obs.span("fig6.curve-eval", points=len(ratios)):
        for ratio, res in zip(ratios, results):
            alg = routing_from_flows(ctx.torus, res.flows, f"avg-opt@{ratio:.2f}")
            load = average_case_load(alg, ctx.eval_sample)
            curve.append((float(ratio), ctx.capacity_load / load))
    log.debug(
        "fig6: %d curve points scored on %d evaluation matrices",
        len(curve),
        len(ctx.eval_sample),
    )

    points = {}
    algs = standard_algorithms(ctx.torus)
    algs["IVAL"] = IVAL(ctx.torus)
    algs["2TURN"] = results[-2].routing(ctx.torus)
    algs["2TURNA"] = results[-1].routing(ctx.torus)
    with obs.span("fig6.score", algorithms=len(algs)):
        for name, alg in algs.items():
            m = evaluate_algorithm(
                alg,
                traffic_sample=ctx.eval_sample,
                capacity_load=ctx.capacity_load,
            )
            points[name] = (m.normalized_path_length, m.average_case_vs_capacity)

    return Fig6Data(
        curve=curve,
        points=points,
        max_average_throughput=max(th for _, th in curve),
    )
