"""3-D heterogeneous-bandwidth sweep: Z-slowdown vs. guaranteed throughput.

The paper evaluates on the homogeneous 8-ary 2-cube, where VAL's
classic argument guarantees any worst-case-optimal algorithm at least
50% of capacity.  Stacked (3-D-integrated) networks break the symmetry
that argument leans on: vertical (TSV) links are slower than in-plane
wires.  This experiment sweeps the Z-dimension bandwidth factor ``bz``
on a k-ary 3-cube and reports, per sweep point and per algorithm, the
exact guaranteed throughput ``Theta_wc = 1 / gamma_wc`` (assignment
evaluator), the network capacity (problem (6) with per-class
bandwidths), and their ratio — identifying where, and for which
algorithms, the 50% worst-case bound stops holding.

Three topology modes:

* ``torus`` (default) — k-ary ``dims``-cube with per-dimension
  bandwidths; DOR/VAL/IVAL evaluated via the class-representative
  Hungarian evaluator, and the worst-case-optimal design solved as
  ``wc_opt`` engine tasks (parallel across ``--jobs``, persistently
  cached keyed on the bandwidth vector).
* ``pillar`` — :class:`~repro.topology.pillar.SparsePillarTorus3D`
  (vertical links only at pillar nodes); no translation group, so
  shortest-path routing and the general LP design are evaluated with
  the general ``(N, N, C)`` machinery.  Radix is clamped to 3.
* ``mesh`` — the k-ary ``dims``-mesh, same general-path machinery.

A short saturation bracket (packet simulator, both backends produce
identical verdicts) validates the most-degraded torus point when the
instance is small enough to simulate.
"""

from __future__ import annotations

import dataclasses

from repro import obs
from repro.constants import DEFAULT_SIM_BACKEND
from repro.core.capacity import solve_capacity
from repro.core.general import design_general_worst_case, solve_general_capacity
from repro.experiments.common import fast_mode, render_table
from repro.experiments.engine import DesignTask, Engine, ensure_engine
from repro.metrics.worst_case_eval import general_worst_case_load, worst_case_load
from repro.routing import IVAL, VAL, DimensionOrderRouting, ShortestPathRouting
from repro.sim import saturation_throughput
from repro.topology import Mesh, SparsePillarTorus3D, Torus
from repro.traffic import uniform

log = obs.get_logger(__name__)

#: Z-bandwidth factors swept (descending) when --bandwidths is not given.
Z_SWEEP = (1.0, 0.75, 0.5, 0.25)

#: Largest node count the saturation-bracket validation simulates.
SIM_NODE_LIMIT = 128

#: Largest radix the general (N^2 C variable) LP mode solves.
GENERAL_RADIX_LIMIT = 3

#: Tolerance on the 50%-of-capacity test.  Theta_wc and capacity both
#: come out of LP solves certified to a 1e-7 duality gap, so a ratio a
#: few ulps under one half is "holds", not a broken bound.
BOUND_TOL = 1e-6


@dataclasses.dataclass(frozen=True)
class Topo3DData:
    #: rows of (bz, algorithm, Theta_wc, capacity, Theta_wc / capacity)
    rows_data: list[tuple[float, str, float, float, float]]
    topology: str
    instance: str
    #: per algorithm: largest swept bz where Theta_wc/cap < 0.5 (None = holds)
    breakpoints: tuple[tuple[str, float | None], ...]
    #: optional (bz, algorithm, sat_lo, sat_hi) simulator validation
    saturation: tuple[float, str, float, float] | None

    def rows(self):
        return self.rows_data

    def render(self) -> str:
        body = render_table(
            f"Z-slowdown sweep on {self.instance} ({self.topology})",
            ["bz", "algorithm", "Theta_wc", "capacity", "Theta_wc/cap"],
            self.rows_data,
        )
        notes = []
        for alg, broken_at in self.breakpoints:
            if broken_at is None:
                notes.append(f"{alg} holds >= 50% of capacity at every point")
            else:
                notes.append(
                    f"{alg} drops below 50% of capacity from bz={broken_at:g}"
                )
        summary = "50% worst-case bound: " + "; ".join(notes)
        lines = [body, summary]
        if self.saturation is not None:
            bz, alg, lo, hi = self.saturation
            lines.append(
                f"simulated saturation ({alg} @ bz={bz:g}): "
                f"[{lo:.4f}, {hi:.4f}]"
            )
        return "\n".join(lines)


def _parse_bandwidths(bandwidths, dims: int) -> tuple[tuple[float, ...], ...]:
    """The sweep: explicit vector = one point, else the Z_SWEEP family."""
    if bandwidths is not None:
        bw = tuple(float(b) for b in bandwidths)
        if len(bw) != dims:
            raise ValueError(
                f"--bandwidths needs {dims} comma-separated factors for "
                f"dims={dims}, got {len(bw)}"
            )
        if any(b <= 0 for b in bw):
            raise ValueError("bandwidth factors must be positive")
        return (bw,)
    # fast mode keeps the informative endpoints (pristine + half-rate)
    sweep = (1.0, 0.5) if fast_mode() else Z_SWEEP
    return tuple((1.0,) * (dims - 1) + (bz,) for bz in sweep)


def _breakpoints(rows) -> tuple[tuple[str, float | None], ...]:
    """Per algorithm, the largest swept bz whose ratio is below 0.5."""
    broken: dict[str, float | None] = {}
    for bz, alg, _theta, _cap, ratio in rows:
        broken.setdefault(alg, None)
        if ratio < 0.5 - BOUND_TOL and broken[alg] is None:
            broken[alg] = bz
    return tuple(broken.items())


def _run_torus(
    k: int, dims: int, sweep, engine: Engine, sim_backend: str,
    seed: int, cycles: int, iterations: int, seed_list,
) -> Topo3DData:
    tasks = [
        DesignTask(
            kind="wc_opt",
            k=k,
            n=dims,
            bandwidths=bw,
            label=f"topo3d:OPT@bz={bw[-1]:g}",
        )
        for bw in sweep
    ]
    opt_results = engine.run(tasks)

    rows = []
    sim_case = None
    for bw, opt in zip(sweep, opt_results):
        bz = bw[-1]
        torus = Torus(k, dims, bandwidths=bw)
        capacity = solve_capacity(torus).throughput
        with obs.span("topo3d.point", k=int(k), dims=int(dims), bz=float(bz)):
            for alg_name, alg in (
                ("DOR", DimensionOrderRouting(torus)),
                ("VAL", VAL(torus)),
                ("IVAL", IVAL(torus)),
            ):
                theta = worst_case_load(alg).throughput
                rows.append(
                    (bz, alg_name, float(theta), capacity, float(theta / capacity))
                )
            theta_opt = 1.0 / opt.load
            rows.append(
                (bz, "OPT", float(theta_opt), capacity, float(theta_opt / capacity))
            )
        sim_case = (bz, torus)  # last (most degraded) sweep point

    saturation = None
    if sim_case is not None and k**dims <= SIM_NODE_LIMIT:
        bz, torus = sim_case
        routing = IVAL(torus)
        est = saturation_throughput(
            routing,
            uniform(torus.num_nodes),
            cycles=cycles,
            warmup=cycles // 3,
            iterations=iterations,
            seed=seed,
            seeds=seed_list,
            backend=sim_backend,
        )
        saturation = (bz, "IVAL", float(est.lower), float(est.upper))
    elif sim_case is not None:
        log.warning(
            "topo3d: skipping the saturation bracket (%d nodes exceeds the "
            "simulator limit of %d)",
            k**dims,
            SIM_NODE_LIMIT,
        )

    instance = f"{k}-ary {dims}-cube"
    return Topo3DData(
        rows_data=rows,
        topology="torus",
        instance=instance,
        breakpoints=_breakpoints(rows),
        saturation=saturation,
    )


def _run_general(topology: str, k: int, dims: int, sweep) -> Topo3DData:
    if k > GENERAL_RADIX_LIMIT:
        log.warning(
            "'topo3d' caps the %s radix at k=%d (general-LP scale limit); "
            "requested k=%d was reduced",
            topology,
            GENERAL_RADIX_LIMIT,
            k,
        )
        k = GENERAL_RADIX_LIMIT

    rows = []
    network = None
    for bw in sweep:
        bz = bw[-1]
        if topology == "pillar":
            network = SparsePillarTorus3D(k, pillar_spacing=2, bandwidths=bw)
        else:
            network = Mesh(k, dims, bandwidths=bw)
        with obs.span("topo3d.point", topology=topology, k=int(k), bz=float(bz)):
            capacity = 1.0 / solve_general_capacity(network).objective_load
            sp = ShortestPathRouting(network)
            theta_sp = general_worst_case_load(network, sp.full_flows()).throughput
            rows.append((bz, "SP", float(theta_sp), capacity, float(theta_sp / capacity)))
            if not fast_mode():
                opt = design_general_worst_case(network)
                theta_opt = 1.0 / opt.objective_load
                rows.append(
                    (bz, "OPT", float(theta_opt), capacity, float(theta_opt / capacity))
                )

    assert network is not None
    # The per-point bandwidth suffix does not belong in the sweep title.
    instance = network.name.split(" b=")[0]
    return Topo3DData(
        rows_data=rows,
        topology=topology,
        instance=instance,
        breakpoints=_breakpoints(rows),
        saturation=None,
    )


def run(
    k: int = 4,
    seed: int = 2003,
    engine: Engine | None = None,
    topology: str = "torus",
    dims: int = 3,
    bandwidths=None,
    sim_backend: str = DEFAULT_SIM_BACKEND,
    cycles: int = 2000,
    seeds: int | None = None,
) -> Topo3DData:
    """Sweep the Z-dimension bandwidth factor on a 3-D instance.

    ``bandwidths`` (a length-``dims`` vector, CLI ``--bandwidths``)
    pins the sweep to a single heterogeneity point; otherwise the
    trailing dimension sweeps :data:`Z_SWEEP`.  ``seeds`` (CLI
    ``--seeds``) averages the saturation-bracket probes over an
    ensemble of that many consecutive seeds starting at ``seed``.
    """
    if seeds is not None and seeds < 1:
        raise ValueError("seeds must be >= 1")
    if topology not in ("torus", "pillar", "mesh"):
        raise ValueError(
            f"unknown topology {topology!r}; choose from torus, pillar, mesh"
        )
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    if topology == "pillar" and dims != 3:
        raise ValueError("the pillar topology is 3-D; drop --dims or use 3")
    iterations = 5
    if fast_mode():
        cycles = min(cycles, 800)
        iterations = 3
        if topology == "torus":
            # the general modes clamp (loudly) in _run_general instead
            k = min(k, 3)
    sweep = _parse_bandwidths(bandwidths, dims)

    with obs.span(
        "topo3d.sweep",
        topology=topology,
        k=int(k),
        dims=int(dims),
        points=len(sweep),
    ):
        if topology == "torus":
            engine = ensure_engine(engine)
            seed_list = (
                None
                if seeds is None
                else tuple(seed + i for i in range(seeds))
            )
            return _run_torus(
                k, dims, sweep, engine, sim_backend, seed, cycles,
                iterations, seed_list,
            )
        return _run_general(topology, k, dims, sweep)
