"""Rotor sweep: phase count vs. guaranteed/saturation throughput.

For a round-robin rotor emulation of the complete digraph on ``k**2``
nodes (ROADMAP item 2), sweep the number of phases ``P`` and report,
per phase count and per oblivious scheme (VLB-on-rotor, ORN):

* the *guaranteed* throughput ``Theta_wc = 1 / gamma_bar`` from the
  phase-averaged assignment dual
  (:func:`repro.rotor.periodic_eval.periodic_worst_case_load`),
  computed as certified ``rotor_wc`` tasks through the shared engine —
  cache-keyed by schedule digest + scheme; and
* an empirical saturation bracket under uniform traffic, from the
  packet simulator driving the schedule's compiled ``link_schedule``
  through the selected backend.

Each scheme's routing depends only on the (deterministically
constructed) complete base digraph, not on the phase count, so one
algorithm object serves every ``P`` and the whole phase sweep runs
through :func:`repro.sim.saturation_throughput_batch`: per refinement
round, every phase count's probes (× the seed ensemble) batch into one
replica launch, each replica carrying its own per-phase
``link_schedule``.

``P = 1`` is the static complete graph (every channel always up) — the
baseline each rotation is judged against.
"""

from __future__ import annotations

import dataclasses

from repro import obs
from repro.constants import DEFAULT_SIM_BACKEND
from repro.experiments.common import fast_mode, render_table
from repro.experiments.engine import (
    ROTOR_SCHEMES,
    DesignTask,
    Engine,
    ensure_engine,
)
from repro.rotor import ORNRouting, RotorSchedule, VLBOnRotor
from repro.sim import saturation_throughput_batch
from repro.traffic import uniform

log = obs.get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class RotorData:
    #: rows of (phases, scheme, theta_wc, sat lower, sat upper)
    rows_data: list[tuple[int, str, float, float, float]]
    k: int
    period: int

    def rows(self):
        return self.rows_data

    def render(self) -> str:
        body = render_table(
            f"Rotor sweep: throughput vs. phases "
            f"(n={self.k**2}, period={self.period})",
            ["phases", "scheme", "Theta_wc", "sat_lo", "sat_hi"],
            self.rows_data,
        )
        return f"{body}\nphases=1 is the static complete graph baseline"


def _scheme_algorithm(scheme: str, base, k: int):
    """Routing for ``scheme`` over the shared complete base digraph
    (phase-independent, so one object serves the whole sweep)."""
    if scheme == "VLBR":
        return VLBOnRotor(base)
    return ORNRouting(base, k=k)


def run(
    k: int = 4,
    seed: int = 2003,
    engine: Engine | None = None,
    phases: int = 4,
    period: int = 16,
    scheme: str | None = None,
    sim_backend: str = DEFAULT_SIM_BACKEND,
    cycles: int = 3000,
    seeds: int | None = None,
) -> RotorData:
    """Sweep 1..``phases`` rotor phases on ``k**2`` nodes.

    ``period`` is the cycle budget for one full rotation; each phase
    count ``P`` divides it into ``max(1, period // P)``-cycle phases.
    ``scheme`` restricts the sweep to one of :data:`ROTOR_SCHEMES`
    (default: both).  ``seeds`` (CLI ``--seeds``) averages every
    saturation probe over an ensemble of that many consecutive seeds
    starting at ``seed``.
    """
    if phases < 1:
        raise ValueError("phases must be >= 1")
    if seeds is not None and seeds < 1:
        raise ValueError("seeds must be >= 1")
    if phases > k**2 - 1:
        raise ValueError(
            f"round-robin on {k**2} nodes supports at most {k**2 - 1} phases"
        )
    if period < 1:
        raise ValueError("period must be >= 1")
    schemes = ROTOR_SCHEMES if scheme is None else (scheme,)
    for s in schemes:
        if s not in ROTOR_SCHEMES:
            raise ValueError(f"unknown scheme {s!r}; choose from {ROTOR_SCHEMES}")
    iterations = 6
    if fast_mode():
        phases = min(phases, 2)
        cycles = min(cycles, 1200)
        iterations = 4
    engine = ensure_engine(engine)
    traffic = uniform(k**2)

    with obs.span(
        "rotor.sweep",
        k=int(k),
        phases=int(phases),
        period=int(period),
        backend=sim_backend,
    ):
        tasks = [
            DesignTask(
                kind="rotor_wc",
                k=k,
                algorithm=s,
                phases=p,
                phase_length=max(1, period // p),
                label=f"rotor:{s}@P{p}",
            )
            for p in range(1, phases + 1)
            for s in schemes
        ]
        wc_results = engine.run(tasks)

        # Saturation brackets: one batched prober call per scheme.  The
        # round-robin base digraph is constructed deterministically, so
        # every phase count's link events index the same channel ids and
        # each P becomes a ((), link_schedule) case over one shared
        # algorithm (and one compiled path table).
        base = RotorSchedule.round_robin(k**2, 1, max(1, period)).base
        seed_list = (
            None if seeds is None else tuple(seed + i for i in range(seeds))
        )
        sat: dict[tuple[int, str], object] = {}
        for s in schemes:
            s_tasks = [t for t in tasks if t.algorithm == s]
            link_cases = [
                ((), t._rotor_schedule().link_events(cycles)) for t in s_tasks
            ]
            ests = saturation_throughput_batch(
                _scheme_algorithm(s, base, k),
                traffic,
                link_cases,
                cycles=cycles,
                warmup=cycles // 3,
                iterations=iterations,
                seed=seed,
                seeds=seed_list,
                backend=sim_backend,
            )
            for t, est in zip(s_tasks, ests):
                sat[(int(t.phases), s)] = est

        rows = []
        for task, result in zip(tasks, wc_results):
            theta_wc = 1.0 / result.load
            est = sat[(int(task.phases), task.algorithm)]
            with obs.span(
                "rotor.point",
                phases=int(task.phases),
                scheme=task.algorithm,
                theta_wc=float(theta_wc),
            ) as sp:
                sp.set(sat_lo=float(est.lower), sat_hi=float(est.upper))
            obs.metric_count("rotor.cases", scheme=task.algorithm)
            rows.append(
                (
                    int(task.phases),
                    task.algorithm,
                    float(theta_wc),
                    float(est.lower),
                    float(est.upper),
                )
            )

    return RotorData(rows_data=rows, k=int(k), period=int(period))
