"""Figure 5: interpolated routing algorithms in the worst-case space.

Sweeps the interpolation factor between DOR and IVAL and between DOR and
2TURN, evaluating the *exact* worst-case throughput of each mixture
(flows interpolate linearly; the worst case is re-solved per point with
the assignment evaluator).  Also reports the paper's summary statistics:
the maximum distance of each interpolated family above the optimal
locality curve.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs
from repro.experiments.common import ExperimentContext, fast_mode, render_table
from repro.experiments.engine import DesignTask, Engine, ensure_engine
from repro.metrics import worst_case_load
from repro.routing import DimensionOrderRouting, IVAL, Interpolated

log = obs.get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class Fig5Data:
    #: per family: list of (alpha, normalized length, wc throughput / cap)
    dor_ival: list[tuple[float, float, float]]
    dor_2turn: list[tuple[float, float, float]]
    #: optimal curve samples (normalized length, wc throughput / cap)
    optimal: list[tuple[float, float]]
    #: max % above optimal locality, per family
    max_gap_ival: float
    max_gap_2turn: float

    def rows(self):
        rows = [("DOR~IVAL", a, h, th) for a, h, th in self.dor_ival]
        rows += [("DOR~2TURN", a, h, th) for a, h, th in self.dor_2turn]
        return rows

    def render(self) -> str:
        body = render_table(
            "Figure 5: interpolated algorithms (8-ary 2-cube)",
            ["family", "alpha", "H_avg / H_min", "Theta_wc / capacity"],
            self.rows(),
        )
        return (
            f"{body}\n"
            f"max locality gap above optimal: DOR~IVAL {self.max_gap_ival:.1%}, "
            f"DOR~2TURN {self.max_gap_2turn:.1%}"
        )

    def plot(self) -> str:
        from repro.experiments.ascii_plot import ascii_plot

        return ascii_plot(
            "Figure 5 (interpolated algorithms)",
            {
                "optimal": [(th, h) for h, th in self.optimal],
                "DOR~IVAL": [(th, h) for _, h, th in self.dor_ival],
                "DOR~2TURN": [(th, h) for _, h, th in self.dor_2turn],
            },
            xlabel="Theta_wc / capacity",
            ylabel="H_avg / H_min",
        )


def _family(ctx, first, second, alphas):
    out = []
    with obs.span(
        "fig5.family", first=first.name, second=second.name, points=len(alphas)
    ):
        for a in alphas:
            mix = Interpolated(first, second, float(a))
            wc = worst_case_load(mix.canonical_flows, ctx.torus, ctx.group)
            out.append(
                (
                    float(a),
                    mix.average_path_length() / ctx.h_min,
                    ctx.capacity_load / wc.load,
                )
            )
    return out


def _max_gap(family, optimal_curve):
    """Max relative locality excess of a family over the optimal curve,
    compared at equal worst-case throughput (linear interpolation).

    Family points whose throughput falls outside the sampled support of
    the optimal curve are excluded: ``np.interp`` would silently clamp
    them to the nearest endpoint, comparing against an optimum for a
    *different* throughput and corrupting the gap statistic.  Returns
    ``nan`` when no family point lies inside the curve's support.
    """
    ths = np.asarray([th for _, th in optimal_curve])
    hs = np.asarray([h for h, _ in optimal_curve])
    order = np.argsort(ths)
    th_lo, th_hi = float(ths[order][0]), float(ths[order][-1])
    gaps = []
    for _, h, th in family:
        if not th_lo <= th <= th_hi:
            log.debug(
                "fig5 gap: skipping point at Theta=%g outside optimal "
                "curve support [%g, %g]", th, th_lo, th_hi,
            )
            continue
        h_opt = float(np.interp(th, ths[order], hs[order]))
        gaps.append(h / h_opt - 1.0)
    return float(max(gaps)) if gaps else float("nan")


def run(
    ctx: ExperimentContext,
    num_alphas: int = 11,
    curve_points: int = 15,
    engine: Engine | None = None,
) -> Fig5Data:
    """Compute Figure 5's two interpolation families plus gap stats."""
    if fast_mode():
        num_alphas = min(num_alphas, 5)
        curve_points = min(curve_points, 6)
    engine = ensure_engine(engine)
    alphas = np.linspace(0.0, 1.0, num_alphas)
    dor = DimensionOrderRouting(ctx.torus)
    ival = IVAL(ctx.torus)
    two_turn = engine.run_one(
        DesignTask(kind="twoturn", k=ctx.torus.k, n=ctx.torus.n, label="fig5:2TURN")
    ).routing(ctx.torus)

    dor_ival = _family(ctx, ival, dor, alphas)  # alpha weights IVAL
    dor_2turn = _family(ctx, two_turn, dor, alphas)

    h_lo = 1.0
    h_hi = max(h for _, h, _ in dor_ival) + 1e-6
    ratios = np.linspace(h_lo, h_hi, curve_points)
    results = engine.run(
        [
            DesignTask(
                kind="wc_point",
                k=ctx.torus.k,
                n=ctx.torus.n,
                ratio=float(r),
                sense="<=",
                label=f"fig5:curve@{r:.3f}",
            )
            for r in ratios
        ]
    )
    optimal = [
        (float(r), ctx.capacity_load / res.load)
        for r, res in zip(ratios, results)
    ]

    return Fig5Data(
        dor_ival=dor_ival,
        dor_2turn=dor_2turn,
        optimal=optimal,
        max_gap_ival=_max_gap(dor_ival, optimal),
        max_gap_2turn=_max_gap(dor_2turn, optimal),
    )
