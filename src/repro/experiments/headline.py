"""Headline numbers of Sections 5.2 and 5.4 on the 8-ary 2-cube.

One table with, per algorithm: normalized locality, worst-case
throughput (fraction of capacity) and average-case throughput (fraction
of capacity, on the shared evaluation sample).  The paper's comparison
points: VAL 2.0x / 50% / 50%; IVAL ~1.61x at 50% worst-case; 2TURN
~1.48x at 50%; optimal locality just below 1.48; DOR best minimal
worst case.
"""

from __future__ import annotations

import dataclasses

from repro import obs
from repro.experiments.common import ExperimentContext, render_table
from repro.experiments.engine import DesignTask, Engine, ensure_engine
from repro.metrics import evaluate_algorithm
from repro.routing import IVAL, standard_algorithms
from repro.core.recovery import routing_from_flows

log = obs.get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class HeadlineData:
    #: name -> (normalized locality, wc/cap, avg/cap)
    table: dict[str, tuple[float, float, float]]

    def rows(self):
        return [(n, *vals) for n, vals in self.table.items()]

    def render(self) -> str:
        return render_table(
            "Sections 5.2/5.4 headline metrics (8-ary 2-cube)",
            [
                "algorithm",
                "H_avg / H_min",
                "Theta_wc / capacity",
                "Theta_avg / capacity",
            ],
            self.rows(),
        )


def run(ctx: ExperimentContext, engine: Engine | None = None) -> HeadlineData:
    """Evaluate every algorithm the paper discusses, plus the LP-optimal
    worst-case design recovered as an explicit routing table.

    The three LP designs (2TURN, 2TURNA, WC-OPTIMAL) run as one engine
    batch, so they solve concurrently under a parallel engine and come
    back free from a warm cache.
    """
    engine = ensure_engine(engine)
    k, n = ctx.torus.k, ctx.torus.n
    two_turn, two_turn_avg, wc_opt = engine.run(
        [
            DesignTask(kind="twoturn", k=k, n=n, label="headline:2TURN"),
            DesignTask(
                kind="twoturn_avg",
                k=k,
                n=n,
                sample=tuple(ctx.design_sample),
                label="headline:2TURNA",
            ),
            DesignTask(kind="wc_opt", k=k, n=n, label="headline:wc-optimal"),
        ]
    )

    algs = standard_algorithms(ctx.torus)
    algs["IVAL"] = IVAL(ctx.torus)
    algs["2TURN"] = two_turn.routing(ctx.torus)
    algs["2TURNA"] = two_turn_avg.routing(ctx.torus)
    algs["WC-OPTIMAL"] = routing_from_flows(ctx.torus, wc_opt.flows, "WC-OPTIMAL")

    table = {}
    with obs.span("headline.score", algorithms=len(algs)):
        for name, alg in algs.items():
            log.debug("headline: scoring %s", name)
            m = evaluate_algorithm(
                alg,
                traffic_sample=ctx.eval_sample,
                capacity_load=ctx.capacity_load,
            )
            table[name] = (
                m.normalized_path_length,
                m.worst_case_vs_capacity,
                m.average_case_vs_capacity,
            )
    return HeadlineData(table=table)
