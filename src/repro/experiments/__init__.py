"""Experiment harnesses — one module per paper figure/table.

Each experiment builds its data through the public library API and
renders the same rows/series the paper reports:

* :mod:`repro.experiments.fig1` — worst-case throughput vs. locality
  tradeoff and algorithm points (Figure 1 / Section 5.1).
* :mod:`repro.experiments.fig4` — locality of IVAL / 2TURN / optimal
  across radices (Figure 4).
* :mod:`repro.experiments.fig5` — interpolated algorithms (Figure 5 /
  Section 5.3).
* :mod:`repro.experiments.fig6` — average-case tradeoff, algorithm
  points and 2TURNA (Figure 6 / Section 5.4).
* :mod:`repro.experiments.headline` — the headline numbers of
  Sections 5.2 and 5.4 (IVAL/2TURN locality and throughput gaps).
* :mod:`repro.experiments.sim_validation` — analytic vs. simulated
  saturation throughput (the Section 2.1 model).

Run them via ``python -m repro.cli run <experiment>`` or the
``repro-experiments`` entry point.
"""

from repro.experiments.common import ExperimentContext, make_context, render_table

__all__ = ["ExperimentContext", "make_context", "render_table"]
