"""Section 5.5: oblivious vs. adaptive routing.

The paper closes by noting that adaptivity cannot raise the worst-case
ceiling (half of capacity) but improves locality: GOAL routes at ~1.3x
minimal with an experimental worst case of half capacity.  This
experiment measures, on one torus, (a) the locality of GOAL-style
adaptive routing vs. the oblivious algorithms, and (b) empirical
saturation under two adversarial patterns — tornado and RLB's exact
worst-case permutation — for oblivious RLB, oblivious IVAL, and the
adaptive router.
"""

from __future__ import annotations

import dataclasses

from repro import obs
from repro.constants import DEFAULT_SIM_BACKEND
from repro.experiments.common import fast_mode, render_table
from repro.metrics import worst_case_load
from repro.metrics.channel_load import canonical_max_load
from repro.routing import IVAL, RLB
from repro.sim import saturation_throughput
from repro.sim.adaptive import adaptive_expected_locality, adaptive_saturation
from repro.topology import Torus, TranslationGroup
from repro.traffic import tornado


@dataclasses.dataclass(frozen=True)
class AdaptiveCompareData:
    #: rows of (router, pattern, locality, analytic theta or '-', sim bracket)
    rows_data: list[tuple]

    def rows(self):
        return self.rows_data

    def render(self) -> str:
        return render_table(
            "Section 5.5: oblivious vs. GOAL-style adaptive routing",
            ["router", "pattern", "H/Hmin", "analytic", "sim_lo", "sim_hi"],
            self.rows_data,
        )


def run(
    k: int = 6,
    cycles: int = 2500,
    seed: int = 13,
    sim_backend: str = DEFAULT_SIM_BACKEND,
) -> AdaptiveCompareData:
    """Compare oblivious and adaptive routers under adversarial traffic.

    ``sim_backend`` selects the kernel for the *oblivious* saturation
    runs; the GOAL router makes per-hop choices from live queue state,
    which the batched kernel cannot replay, so the adaptive rows always
    use the reference-style adaptive loop.
    """
    if fast_mode():
        cycles = min(cycles, 1200)
    torus = Torus(k, 2)
    group = TranslationGroup(torus)
    rlb = RLB(torus)
    ival = IVAL(torus)
    patterns = {
        "tornado": tornado(torus),
        "rlb-worst": worst_case_load(rlb).traffic_matrix(),
    }

    rows: list[tuple] = []
    warmup = cycles // 3
    for pat_name, lam in patterns.items():
        for alg in (rlb, ival):
            with obs.span("sim.case", algorithm=alg.name, traffic=pat_name):
                analytic = 1.0 / canonical_max_load(
                    torus, group, alg.canonical_flows, lam
                )
                est = saturation_throughput(
                    alg,
                    lam,
                    cycles=cycles,
                    warmup=warmup,
                    seed=seed,
                    backend=sim_backend,
                )
            rows.append(
                (
                    alg.name,
                    pat_name,
                    alg.normalized_path_length(),
                    min(analytic, 1.0),
                    est.lower,
                    est.upper,
                )
            )
        est = adaptive_saturation(
            torus, lam, cycles=cycles, warmup=warmup, seed=seed
        )
        rows.append(
            (
                "GOAL-adpt",
                pat_name,
                adaptive_expected_locality(torus),
                float("nan"),
                est.lower,
                est.upper,
            )
        )
    return AdaptiveCompareData(rows_data=rows)
