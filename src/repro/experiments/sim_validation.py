"""Validation of the analytic throughput model against simulation.

Paper Section 2.1 defines throughput purely by edge congestion and
asserts (citing [5]) that an output-queued system achieves the bound.
This experiment measures, for several (algorithm, traffic) pairs, the
empirical saturation point of the simulator and compares it with
:math:`\\Theta(R, \\Lambda)` computed by the metrics layer.
"""

from __future__ import annotations

import dataclasses

from repro import obs
from repro.constants import DEFAULT_SIM_BACKEND
from repro.experiments.common import fast_mode, render_table
from repro.metrics.channel_load import canonical_max_load
from repro.routing import IVAL, DimensionOrderRouting, VAL
from repro.sim import saturation_throughput
from repro.topology.symmetry import TranslationGroup
from repro.topology.torus import Torus
from repro.traffic import tornado, transpose, uniform

log = obs.get_logger(__name__)


@dataclasses.dataclass(frozen=True)
class SimValidationData:
    #: rows of (algorithm, traffic, analytic theta, sim lower, sim upper)
    rows_data: list[tuple[str, str, float, float, float]]

    def rows(self):
        return self.rows_data

    def render(self) -> str:
        return render_table(
            "Analytic vs. simulated saturation throughput",
            ["algorithm", "traffic", "analytic", "sim lower", "sim upper"],
            self.rows_data,
        )


def run(
    k: int = 4,
    cycles: int = 3000,
    seed: int = 7,
    sim_backend: str = DEFAULT_SIM_BACKEND,
    seeds: int | None = None,
    fault_schedule: tuple[tuple[int, int], ...] = (),
) -> SimValidationData:
    """Compare analytic and empirical saturation on a k-ary 2-cube.

    The default radix is small because the simulator is packet-exact;
    the analytic model is what scales.  All backends bracket through
    identical stability verdicts, so the reported brackets match across
    ``--sim-backend`` choices (the batched backends just run each
    refinement round as one replica launch).  ``seeds`` (CLI
    ``--seeds``) averages each probe over an ensemble of that many
    consecutive seeds starting at ``seed``; ``fault_schedule`` (CLI
    ``--fault-schedule``) injects channel kills into every probe — the
    analytic column still describes the pristine torus, so expect the
    bracket to fall away from it as channels die.
    """
    if seeds is not None and seeds < 1:
        raise ValueError("seeds must be >= 1")
    if fast_mode():
        cycles = min(cycles, 1200)
    seed_list = (
        None if seeds is None else tuple(seed + i for i in range(seeds))
    )
    torus = Torus(k, 2)
    group = TranslationGroup(torus)
    cases = [
        (DimensionOrderRouting(torus), "uniform", uniform(torus.num_nodes)),
        (DimensionOrderRouting(torus), "tornado", tornado(torus)),
        (DimensionOrderRouting(torus), "transpose", transpose(torus)),
        (VAL(torus), "tornado", tornado(torus)),
        (IVAL(torus), "transpose", transpose(torus)),
    ]
    rows = []
    for alg, traffic_name, lam in cases:
        with obs.span("sim.case", algorithm=alg.name, traffic=traffic_name):
            analytic = 1.0 / canonical_max_load(
                torus, group, alg.canonical_flows, lam
            )
            est = saturation_throughput(
                alg,
                lam,
                cycles=cycles,
                warmup=cycles // 3,
                seed=seed,
                seeds=seed_list,
                fault_schedule=fault_schedule,
                backend=sim_backend,
            )
        log.debug(
            "sim: %s/%s analytic=%.3f bracket=[%.3f, %.3f]",
            alg.name,
            traffic_name,
            analytic,
            est.lower,
            est.upper,
        )
        rows.append(
            (alg.name, traffic_name, min(analytic, 1.0), est.lower, est.upper)
        )
    return SimValidationData(rows_data=rows)
