"""Parallel experiment execution engine with a persistent design cache.

Every figure of the paper is a sweep of *independent* LP design
problems: one locality-pinned worst-case or average-case solve per curve
point, plus the 2TURN-family designs.  The engine turns each of those
solves into a self-contained :class:`DesignTask`, executes outstanding
tasks across a ``concurrent.futures.ProcessPoolExecutor`` (worker count
from ``--jobs`` / ``$REPRO_JOBS``, default ``os.cpu_count()``; ``jobs=1``
runs everything in-process so debugging and CI stay deterministic), and
memoizes results in a :class:`repro.cache.DesignCache` so an identical
LP is never solved twice — across figures, benchmark runs and test
sessions alike.

Tasks are pure functions of their fields: topology ``(k, n)``, design
kind, locality pin, and (for average-case designs) the literal traffic
sample.  Workers therefore need no shared state, and results are
bit-identical between the serial path, the parallel path and a cache
hit.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import functools
import os
import time
from typing import Sequence

import numpy as np

from repro import obs
from repro.cache import DesignCache, cache_key, sample_digest

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Supported design-task kinds.
TASK_KINDS = (
    "wc_point",
    "wc_opt",
    "avg_point",
    "twoturn",
    "twoturn_avg",
    "fault_wc",
    "rotor_wc",
)

#: Named algorithms a ``fault_wc`` task can degrade.
FAULT_ALGORITHMS = ("DOR", "VAL", "IVAL", "2TURN")

#: Oblivious schemes a ``rotor_wc`` task can evaluate.
ROTOR_SCHEMES = ("VLBR", "ORN")


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit argument, ``$REPRO_JOBS``, or CPU count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        jobs = int(env) if env else (os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


@dataclasses.dataclass(frozen=True, eq=False)
class DesignTask:
    """One independent routing-design LP.

    ``ratio`` pins the average path length as a multiple of minimal
    (``wc_point`` / ``avg_point``); ``sample`` carries the design
    traffic sample for average-case kinds (hashed, not stored, in the
    cache key).  ``label`` is for metrics display only and never enters
    the cache key.

    ``fault_wc`` tasks evaluate an existing ``algorithm`` (one of
    :data:`FAULT_ALGORITHMS`) on the torus degraded by the failed
    channels in ``faults``, rerouted under ``reroute`` — the cache key
    gains the fault-set digest so degraded evaluations never collide
    with pristine ones.

    ``bandwidths`` carries per-dimension channel bandwidths (empty for
    the uniform unit-bandwidth torus); heterogeneous tasks extend the
    cache key so they never collide with uniform entries.

    ``rotor_wc`` tasks evaluate an oblivious rotor scheme (``algorithm``
    from :data:`ROTOR_SCHEMES`) on the round-robin rotor schedule with
    ``phases`` phases of ``phase_length`` cycles over ``k**2`` nodes —
    the cache key carries the schedule's canonical digest plus the
    scheme, so distinct rotations never collide.

    ``method`` picks the worst-case LP formulation for ``wc_point`` /
    ``wc_opt`` tasks (:data:`repro.core.worst_case.DESIGN_METHODS`;
    ``"auto"`` switches to column generation above the radix
    threshold).  Only a *resolved* ``"colgen"`` enters the cache key:
    ``"full"`` and an ``"auto"`` that resolves to the full LP solve the
    identical model, so they keep sharing entries — and every
    pre-existing cache key — while lazy-row solves, whose results agree
    only to the separation tolerance, get keys (and docs) of their own.
    """

    kind: str
    k: int
    n: int = 2
    ratio: float | None = None
    sense: str = "<="
    sample: tuple = ()
    label: str = ""
    algorithm: str = ""
    faults: tuple = ()
    reroute: str = "detour"
    bandwidths: tuple = ()
    phases: int = 0
    phase_length: int = 1
    method: str = "auto"

    def __post_init__(self):
        if self.kind not in TASK_KINDS:
            raise ValueError(
                f"unknown task kind {self.kind!r}; choose from {TASK_KINDS}"
            )
        if self.kind in ("wc_point", "avg_point") and self.ratio is None:
            raise ValueError(f"{self.kind} task needs a locality ratio")
        if self.kind in ("avg_point", "twoturn_avg") and not self.sample:
            raise ValueError(f"{self.kind} task needs a traffic sample")
        if self.kind == "fault_wc":
            if self.algorithm not in FAULT_ALGORITHMS:
                raise ValueError(
                    f"fault_wc task needs algorithm from {FAULT_ALGORITHMS}, "
                    f"got {self.algorithm!r}"
                )
            if self.reroute not in ("renormalize", "detour"):
                raise ValueError(
                    f"unknown reroute mode {self.reroute!r} for fault_wc task"
                )
        if self.kind == "rotor_wc":
            if self.algorithm not in ROTOR_SCHEMES:
                raise ValueError(
                    f"rotor_wc task needs a scheme from {ROTOR_SCHEMES}, "
                    f"got {self.algorithm!r}"
                )
            if self.phases < 1:
                raise ValueError("rotor_wc task needs phases >= 1")
            if self.phase_length < 1:
                raise ValueError("rotor_wc task needs phase_length >= 1")
        from repro.core.worst_case import DESIGN_METHODS

        if self.method not in DESIGN_METHODS:
            raise ValueError(
                f"unknown design method {self.method!r}; "
                f"choose from {DESIGN_METHODS}"
            )
        if self.method != "auto" and self.kind not in ("wc_point", "wc_opt"):
            raise ValueError(
                f"method={self.method!r} applies to wc_point/wc_opt tasks, "
                f"not {self.kind!r}"
            )
        object.__setattr__(self, "sample", tuple(self.sample))
        object.__setattr__(
            self, "faults", tuple(sorted({int(c) for c in self.faults}))
        )
        bandwidths = tuple(float(b) for b in self.bandwidths)
        if bandwidths and len(bandwidths) != self.n:
            raise ValueError(
                f"bandwidths must have one entry per dimension "
                f"(expected {self.n}, got {len(bandwidths)})"
            )
        if bandwidths and all(b == 1.0 for b in bandwidths):
            bandwidths = ()  # uniform unit bandwidth is the default key
        object.__setattr__(self, "bandwidths", bandwidths)

    def cache_payload(self) -> dict:
        """The cache-key description of this task (see DESIGN.md)."""
        payload = {
            "kind": self.kind,
            "k": int(self.k),
            "n": int(self.n),
            "ratio": None if self.ratio is None else float(self.ratio),
            "sense": self.sense,
        }
        if self.bandwidths:
            payload["bandwidths"] = [float(b) for b in self.bandwidths]
        if self.kind in ("wc_point", "wc_opt"):
            from repro.core.worst_case import resolve_design_method

            if resolve_design_method(self.method, self.k**self.n) == "colgen":
                payload["method"] = "colgen"
        if self.sample:
            payload["sample"] = sample_digest(self.sample)
        if self.kind == "fault_wc":
            from repro.faults import FaultSet

            payload["algorithm"] = self.algorithm
            payload["faults"] = FaultSet(channels=self.faults).digest()
            payload["reroute"] = self.reroute
        if self.kind == "rotor_wc":
            payload["scheme"] = self.algorithm
            payload["schedule"] = self._rotor_schedule().digest()
        return payload

    def _rotor_schedule(self):
        """Rebuild the round-robin schedule a ``rotor_wc`` task names."""
        from repro.rotor import RotorSchedule

        return RotorSchedule.round_robin(
            self.k**2, self.phases, phase_length=self.phase_length
        )


@dataclasses.dataclass(frozen=True)
class TaskMetrics:
    """Structured per-task run record (CLI ``--metrics`` rows)."""

    label: str
    kind: str
    k: int
    n: int
    ratio: float | None
    cache_hit: bool
    solve_time: float
    variables: int
    rows: int
    nonzeros: int

    CSV_HEADERS = (
        "label",
        "kind",
        "k",
        "n",
        "ratio",
        "cache_hit",
        "solve_time_s",
        "lp_variables",
        "lp_rows",
        "lp_nonzeros",
    )

    def row(self) -> tuple:
        return (
            self.label,
            self.kind,
            self.k,
            self.n,
            "" if self.ratio is None else self.ratio,
            int(self.cache_hit),
            self.solve_time,
            self.variables,
            self.rows,
            self.nonzeros,
        )

    @classmethod
    def from_event_attrs(cls, attrs: dict) -> TaskMetrics:
        """Rebuild a metrics row from an ``engine.task`` span's attrs."""
        return cls(
            label=attrs["label"],
            kind=attrs["kind"],
            k=int(attrs["k"]),
            n=int(attrs["n"]),
            ratio=attrs.get("ratio"),
            cache_hit=bool(attrs["cache_hit"]),
            solve_time=float(attrs["solve_time"]),
            variables=int(attrs["variables"]),
            rows=int(attrs["rows"]),
            nonzeros=int(attrs["nonzeros"]),
        )


@dataclasses.dataclass
class TaskResult:
    """A solved (or cache-loaded) design task."""

    task: DesignTask
    load: float
    avg_path_length: float
    model_stats: dict
    solve_time: float
    cache_hit: bool
    doc: dict
    #: worker resource delta (rss_peak_kb/user_cpu_s/sys_cpu_s) for fresh
    #: solves; ``None`` on cache hits (nothing ran).
    resources: dict | None = None

    @property
    def flows(self) -> np.ndarray:
        """Canonical ``(N, C)`` flow table (flow-LP kinds only)."""
        from repro.routing.serialize import flows_from_doc

        return flows_from_doc(self.doc["flows"])

    def routing(self, torus=None):
        """Materialized routing table (path-LP kinds only)."""
        from repro.routing.serialize import routing_from_doc

        return routing_from_doc(self.doc["routing"], torus)

    def metrics(self) -> TaskMetrics:
        stats = self.model_stats or {}
        return TaskMetrics(
            label=self.task.label or self.task.kind,
            kind=self.task.kind,
            k=self.task.k,
            n=self.task.n,
            ratio=self.task.ratio,
            cache_hit=self.cache_hit,
            solve_time=self.solve_time,
            variables=int(stats.get("variables", 0)),
            rows=int(stats.get("eq_rows", 0)) + int(stats.get("ub_rows", 0)),
            nonzeros=int(stats.get("nonzeros", 0)),
        )


def solve_task(task: DesignTask, certify: bool = False) -> dict:
    """Execute one design task; returns the JSON-serializable entry doc.

    Module-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    pickle it; imports stay inside to keep worker start-up lean.

    With ``certify=True`` every LP solved for the task yields a duality
    certificate (:mod:`repro.verify.certificates`); the certificates are
    stored on the doc under ``"certificates"`` — and therefore in the
    design cache — and an invalid one raises ``CertificationError``
    instead of returning a result.

    The solve runs inside an ``engine.solve_task`` trace span, and every
    event it produced (this span, nested ``lp.solve`` spans, ...) is
    piggybacked on the returned doc under ``"obs_events"`` so pool
    workers can ship their trace back on the existing result path.
    Metrics follow the same route: the solve runs under an *isolated*
    metrics registry whose dump ships as ``"obs_metrics"`` — and unlike
    events, the engine merges it on the same path for serial and
    parallel runs, so the process registry is identical either way.  A
    resource-usage delta (RSS peak, user/sys CPU) ships as
    ``"resources"``.  The engine strips all three keys before the doc
    reaches the cache.
    """
    tracer = obs.get_tracer()
    mark = tracer.mark()
    # Fork-started workers inherit the parent's span stack as of pool
    # creation; ship paths *relative* to it so the parent's ingest()
    # rebases them exactly where the serial path would have put them.
    base = obs.current_path()
    registry = obs.MetricsRegistry()
    res0 = obs.resource_sample()
    with obs.use_registry(registry), obs.span(
        "engine.solve_task",
        kind=task.kind,
        k=int(task.k),
        n=int(task.n),
        label=task.label or task.kind,
        certify=bool(certify),
    ):
        if certify:
            from repro.verify.certificates import collect_certificates

            with collect_certificates() as collector:
                doc = _solve_task_body(task)
            collector.require(task.label or task.kind)
            doc["certificates"] = collector.to_docs()
        else:
            doc = _solve_task_body(task)
    events = tracer.events_since(mark)
    if base:
        prefix = base + "/"
        for ev in events:
            if ev.get("ev") == "span" and ev["path"].startswith(prefix):
                ev["path"] = ev["path"][len(prefix):]
    doc["obs_events"] = events
    doc["obs_metrics"] = registry.to_doc()
    doc["resources"] = obs.resource_delta_doc(res0, obs.resource_sample())
    return doc


def _solve_task_body(task: DesignTask) -> dict:
    from repro.core.average_case import design_average_case
    from repro.core.worst_case import design_worst_case
    from repro.routing.serialize import flows_to_doc, routing_to_doc
    from repro.routing.twoturn import design_2turn, design_2turn_average
    from repro.topology.symmetry import TranslationGroup
    from repro.topology.torus import Torus

    if task.kind == "rotor_wc":
        # Rotor tasks run on the schedule's complete digraph, not a torus.
        torus = group = None
    else:
        torus = Torus(
            int(task.k), int(task.n), bandwidths=task.bandwidths or None
        )
        group = TranslationGroup(torus)
    sample = [np.asarray(m, dtype=np.float64) for m in task.sample]
    start = time.perf_counter()
    if task.kind == "wc_point":
        design = design_worst_case(
            torus,
            locality_hops=float(task.ratio) * torus.mean_min_distance(),
            locality_sense=task.sense,
            group=group,
            method=task.method,
        )
        load, payload = design.worst_case_load, {
            "flows": flows_to_doc(design.flows, torus, name=task.kind)
        }
        payload.update(_colgen_doc(torus, group, design))
        apl, stats = design.avg_path_length, design.model_stats
    elif task.kind == "wc_opt":
        design = design_worst_case(
            torus, minimize_locality=True, group=group, method=task.method
        )
        load, payload = design.worst_case_load, {
            "flows": flows_to_doc(design.flows, torus, name=task.kind)
        }
        payload.update(_colgen_doc(torus, group, design))
        apl, stats = design.avg_path_length, design.model_stats
    elif task.kind == "avg_point":
        design = design_average_case(
            torus,
            sample,
            locality_hops=float(task.ratio) * torus.mean_min_distance(),
            locality_sense=task.sense,
            group=group,
        )
        load, payload = design.average_load, {
            "flows": flows_to_doc(design.flows, torus, name=task.kind)
        }
        apl, stats = design.avg_path_length, design.model_stats
    elif task.kind == "twoturn":
        design = design_2turn(torus, group)
        load, payload = design.objective_load, {
            "routing": routing_to_doc(design.routing)
        }
        apl, stats = design.avg_path_length, design.model_stats
    elif task.kind == "twoturn_avg":
        design = design_2turn_average(torus, sample, group)
        load, payload = design.objective_load, {
            "routing": routing_to_doc(design.routing)
        }
        apl, stats = design.avg_path_length, design.model_stats
    elif task.kind == "fault_wc":
        load, apl, stats, payload = _solve_fault_wc(task, torus, group)
    elif task.kind == "rotor_wc":
        load, apl, stats, payload = _solve_rotor_wc(task)
    else:  # pragma: no cover - guarded by DesignTask.__post_init__
        raise ValueError(f"unknown task kind {task.kind!r}")
    elapsed = time.perf_counter() - start

    doc = {
        "payload": task.cache_payload(),
        "load": float(load),
        "avg_path_length": float(apl),
        "model_stats": dict(stats),
        "solve_time": elapsed,
    }
    doc.update(payload)
    return doc


def _colgen_doc(torus, group, design) -> dict:
    """Doc fields a column-generation design adds to its cache entry.

    Empty for full-LP designs.  A colgen design never materialized the
    full constraint set, so its entry must carry (a) the loop stats —
    master lower bound included — and (b) a freshly derived duality
    certificate against the full set
    (:func:`repro.verify.colgen.certify_colgen_design`).  Certification
    here is unconditional (not gated on ``--certify``): an unconverged
    or buggy master must never populate the cache.
    """
    if design.method != "colgen":
        return {}
    from repro.verify.certificates import CertificationError
    from repro.verify.colgen import certify_colgen_design

    report = certify_colgen_design(
        torus,
        design.flows,
        design.worst_case_load,
        lower_bound=design.colgen.lower_bound,
        group=group,
        lexicographic=design.colgen.stage2_iterations > 0,
    )
    if not report.passed:
        raise CertificationError(
            "column-generation design failed certification\n" + report.render()
        )
    return {
        "method": "colgen",
        "colgen": design.colgen.to_doc(),
        "colgen_certificate": {
            "subject": report.subject,
            "passed": True,
            "checks": [dataclasses.asdict(c) for c in report.checks],
        },
    }


def _build_fault_algorithm(name: str, torus, group):
    """Materialize a named base algorithm for a ``fault_wc`` task."""
    from repro.routing import IVAL, VAL, DimensionOrderRouting
    from repro.routing.twoturn import design_2turn

    if name == "DOR":
        return DimensionOrderRouting(torus), {}
    if name == "VAL":
        return VAL(torus), {}
    if name == "IVAL":
        return IVAL(torus), {}
    if name == "2TURN":
        design = design_2turn(torus, group)
        return design.routing, dict(design.model_stats)
    raise ValueError(f"unknown fault_wc algorithm {name!r}")


def _solve_fault_wc(task: DesignTask, torus, group):
    """Evaluate a degraded routing's exact worst-case load.

    A disconnected commodity under the task's reroute policy (e.g. DOR
    with ``renormalize`` on any link failure) is a legitimate outcome,
    not an error: the doc records ``disconnected=True`` with a load of
    ``0.0`` (JSON cannot hold inf; guaranteed throughput is 0 either
    way).
    """
    from repro.faults import (
        DisconnectedCommodityError,
        FaultSet,
        degrade,
        degrade_routing,
    )
    from repro.metrics import general_worst_case_load

    base_alg, stats = _build_fault_algorithm(task.algorithm, torus, group)
    degraded = degrade(torus, FaultSet(channels=task.faults))
    routing = degrade_routing(base_alg, degraded, mode=task.reroute)
    obs.metric_count(
        "faults.evaluations", algorithm=task.algorithm, reroute=task.reroute
    )
    try:
        flows = routing.full_flows()
        wc = general_worst_case_load(degraded, flows)
    except DisconnectedCommodityError:
        obs.metric_count("faults.disconnected", algorithm=task.algorithm)
        payload = {
            "disconnected": True,
            "wc_channel": None,
            "num_faults": len(task.faults),
        }
        # 0.0 for both: JSON (and the cache files) cannot hold inf/nan.
        return 0.0, 0.0, stats, payload
    payload = {
        "disconnected": False,
        "wc_channel": int(wc.channel),
        "num_faults": len(task.faults),
    }
    apl = float(
        np.mean(
            [
                sum(
                    prob * (len(path) - 1)
                    for path, prob in routing.path_distribution(int(s), int(d))
                )
                for s in degraded.alive_nodes
                for d in degraded.alive_nodes
                if s != d
            ]
        )
    )
    return float(wc.load), apl, stats, payload


def _solve_rotor_wc(task: DesignTask):
    """Evaluate a rotor scheme's phase-averaged worst-case load.

    Every result is certified before it can reach the cache: the
    per-phase witness permutations, bottleneck-phase membership and the
    averaged dual are re-checked
    (:func:`repro.rotor.certify.certify_periodic_worst_case`), so a bad
    evaluator can never populate a poisoned entry.
    """
    from repro.rotor import (
        ORNRouting,
        VLBOnRotor,
        certify_periodic_worst_case,
        periodic_worst_case_load,
    )

    schedule = task._rotor_schedule()
    if task.algorithm == "VLBR":
        alg = VLBOnRotor(schedule.base)
    else:
        alg = ORNRouting(schedule.base, k=int(task.k))
    obs.metric_count("rotor.evaluations", scheme=task.algorithm)
    flows = alg.full_flows()
    result = periodic_worst_case_load(schedule, flows)
    report = certify_periodic_worst_case(schedule, flows, result)
    if not report.passed:
        raise ValueError(
            "periodic worst-case certificate failed\n" + report.render()
        )
    payload = {
        "scheme": task.algorithm,
        "num_phases": int(schedule.num_phases),
        "schedule_digest": schedule.digest(),
        "phase_loads": [float(r.load) for r in result.phase_results],
        "wc_channels": [int(r.channel) for r in result.phase_results],
    }
    return float(result.load), alg.average_path_length(), {}, payload


class Engine:
    """Cached, optionally parallel executor for design tasks.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` resolves via :func:`resolve_jobs`
        (``$REPRO_JOBS``, else CPU count).  ``1`` solves in-process.
    cache:
        A :class:`DesignCache`, or ``None`` to disable caching.  The
        default uses the standard cache directory
        (``$REPRO_CACHE_DIR`` / ``~/.cache/repro-designs``).
    certify:
        Certify every design (CLI ``--certify``): fresh solves get LP
        duality certificates attached to their cache entries, cache hits
        are re-checked (:func:`repro.verify.certificates.recheck_cached_doc`)
        without re-solving.  Certification never enters the cache key —
        certified and uncertified runs share entries.
    progress:
        Optional ``(done, total, hits)`` callback invoked from task
        lifecycle events (cache scan, per-task completion) — e.g. a
        :class:`repro.obs.progress.ProgressReporter` (CLI ``--progress``).
        Progress is display-only and never alters execution order.
    """

    _DEFAULT_CACHE = object()

    def __init__(
        self,
        jobs: int | None = None,
        cache: DesignCache | None = _DEFAULT_CACHE,  # type: ignore[assignment]
        certify: bool = False,
        progress=None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = DesignCache() if cache is Engine._DEFAULT_CACHE else cache
        self.certify = bool(certify)
        self.progress = progress
        #: attrs of every ``engine.task`` event this engine emitted, in
        #: completion order — :attr:`metrics` is a view over these.
        self._task_events: list[dict] = []

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[DesignTask]) -> list[TaskResult]:
        """Execute tasks (cache -> pool -> cache), preserving order."""
        tracer = obs.get_tracer()
        registry = obs.get_registry()
        tasks = list(tasks)
        with obs.span("engine.run", tasks=len(tasks), jobs=self.jobs) as sp:
            t_dispatch = time.perf_counter()
            results: list[TaskResult | None] = [None] * len(tasks)
            pending: list[tuple[int, DesignTask, str | None]] = []
            for i, task in enumerate(tasks):
                key = doc = None
                if self.cache is not None:
                    key = cache_key(task.cache_payload())
                    doc = self.cache.get(key)
                if doc is not None:
                    doc.pop("obs_events", None)  # pre-PR2 cache entries
                    doc.pop("obs_metrics", None)
                    doc.pop("resources", None)
                    if self.certify:
                        self._recheck(task, doc)
                    results[i] = self._make_result(task, doc, cache_hit=True)
                else:
                    pending.append((i, task, key))
            hits = len(tasks) - len(pending)
            self._report_progress(hits, len(tasks), hits)

            if pending:
                todo = [task for _, task, _ in pending]
                worker = functools.partial(solve_task, certify=self.certify)
                done_at = [0.0] * len(todo)
                if self.jobs == 1 or len(todo) == 1:
                    # In-process: spans land on this tracer directly, so
                    # the piggybacked copies are dropped, not re-ingested.
                    docs = []
                    for j, task in enumerate(todo):
                        docs.append(worker(task))
                        done_at[j] = time.perf_counter()
                        self._report_progress(
                            hits + len(docs), len(tasks), hits
                        )
                    for doc in docs:
                        doc.pop("obs_events", None)
                else:
                    workers = min(self.jobs, len(todo))
                    with concurrent.futures.ProcessPoolExecutor(
                        max_workers=workers
                    ) as pool:
                        # submit/as_completed (rather than pool.map) so
                        # progress ticks per completion; docs are still
                        # collected — and their events/metrics ingested —
                        # in submission order, keeping traces and
                        # registries deterministic.
                        futs = [pool.submit(worker, task) for task in todo]
                        index = {fut: j for j, fut in enumerate(futs)}
                        completed = 0
                        for fut in concurrent.futures.as_completed(futs):
                            done_at[index[fut]] = time.perf_counter()
                            completed += 1
                            self._report_progress(
                                hits + completed, len(tasks), hits
                            )
                        docs = [fut.result() for fut in futs]
                    for doc in docs:
                        tracer.ingest(doc.pop("obs_events", []))
                for j, ((i, task, key), doc) in enumerate(zip(pending, docs)):
                    registry.merge(doc.pop("obs_metrics", None))
                    resources = doc.pop("resources", None)
                    if self.cache is not None and key is not None:
                        self.cache.put(key, doc)
                    results[i] = self._make_result(
                        task, doc, cache_hit=False, resources=resources
                    )
                    wait = done_at[j] - t_dispatch - float(
                        doc.get("solve_time", 0.0)
                    )
                    obs.metric_observe(
                        "engine.queue_wait_seconds", max(0.0, wait), volatile=True
                    )

            out = [r for r in results if r is not None]
            assert len(out) == len(tasks)
            for result in out:
                self._record_task_event(tracer, result)
            obs.metric_count("engine.tasks", len(tasks))
            obs.metric_count("engine.cache_hits", hits)
            obs.metric_count("engine.cache_misses", len(pending))
            if tasks:
                obs.metric_gauge("engine.cache_hit_rate", hits / len(tasks))
            sp.set(solves=len(pending), hits=hits)
        return out

    def _report_progress(self, done: int, total: int, hits: int) -> None:
        if self.progress is not None:
            self.progress(done, total, hits)

    def run_one(self, task: DesignTask) -> TaskResult:
        """Convenience wrapper for a single task."""
        return self.run([task])[0]

    @staticmethod
    def _recheck(task: DesignTask, doc: dict) -> None:
        """Re-certify a cache hit without re-solving; raise on failure."""
        from repro.verify.certificates import CertificationError, recheck_cached_doc

        report = recheck_cached_doc(doc, subject=task.label or task.kind)
        if not report.passed:
            raise CertificationError(
                "cached design failed re-certification\n" + report.render()
            )

    @staticmethod
    def _make_result(
        task: DesignTask,
        doc: dict,
        cache_hit: bool,
        resources: dict | None = None,
    ) -> TaskResult:
        return TaskResult(
            task=task,
            load=float(doc["load"]),
            avg_path_length=float(doc["avg_path_length"]),
            model_stats=dict(doc.get("model_stats", {})),
            solve_time=float(doc.get("solve_time", 0.0)),
            cache_hit=cache_hit,
            doc=doc,
            resources=resources,
        )

    def _record_task_event(self, tracer, result: TaskResult) -> None:
        """Publish one ``engine.task`` span event; metrics read these."""
        m = result.metrics()
        attrs = {
            "label": m.label,
            "kind": m.kind,
            "k": m.k,
            "n": m.n,
            "ratio": m.ratio,
            "cache_hit": m.cache_hit,
            "solve_time": m.solve_time,
            "variables": m.variables,
            "rows": m.rows,
            "nonzeros": m.nonzeros,
        }
        if result.resources:
            attrs.update(result.resources)
        tracer.emit_span(
            "engine.task", dur=0.0 if m.cache_hit else m.solve_time, attrs=attrs
        )
        if not m.cache_hit:
            obs.metric_observe(
                "engine.task_seconds", m.solve_time, volatile=True
            )
        self._task_events.append(attrs)

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> list[TaskMetrics]:
        """Per-task metrics — a view over the ``engine.task`` events."""
        return [TaskMetrics.from_event_attrs(a) for a in self._task_events]

    @property
    def solves(self) -> int:
        """Number of LPs actually solved (cache misses) so far."""
        return sum(1 for m in self.metrics if not m.cache_hit)

    @property
    def hits(self) -> int:
        """Number of cache hits so far."""
        return sum(1 for m in self.metrics if m.cache_hit)

    def summary(self) -> str:
        """One-line hit/miss + LP-size digest for CLI output."""
        if not self.metrics:
            return ""
        solved = [m for m in self.metrics if not m.cache_hit]
        text = (
            f"{len(self.metrics)} LP tasks, {len(solved)} solved, "
            f"{self.hits} cache hits "
            f"({self.jobs} worker{'s' if self.jobs != 1 else ''})"
        )
        if solved:
            solve_time = sum(m.solve_time for m in solved)
            biggest = max(solved, key=lambda m: m.nonzeros)
            text += (
                f"; {solve_time:.1f}s solving, largest LP "
                f"{biggest.rows} rows x {biggest.variables} cols, "
                f"{biggest.nonzeros} nnz"
            )
        return text


def ensure_engine(engine: Engine | None) -> Engine:
    """Default engine for experiments invoked without one."""
    return engine if engine is not None else Engine()
